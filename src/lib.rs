//! # pts-mkp — parallel cooperative tabu search for the 0–1 MKP
//!
//! Facade over the workspace crates reproducing **Niar & Fréville, “A
//! Parallel Tabu Search Algorithm For The 0-1 Multidimensional Knapsack
//! Problem” (IPPS 1997)**:
//!
//! * [`mkp`] — problem model, benchmark generators, bounds, heuristics;
//! * [`simplex_lp`] — bounded-variable LP solver (relaxation bounds);
//! * [`mkp_exact`] — certifying branch & bound, DP oracle, variable fixing;
//! * [`mkp_tabu`] — the sequential tabu-search engine (paper Fig. 1);
//! * [`pvm_lite`] — PVM-style message passing over threads;
//! * [`parallel_tabu`] — the paper's contribution: master/slave cooperative
//!   search with dynamic strategy tuning (SEQ/ITS/CTS1/CTS2 + async ATS).
//!
//! ```
//! use pts_mkp::prelude::*;
//!
//! let inst = gk_instance("demo", GkSpec { n: 50, m: 5, tightness: 0.5, seed: 1 });
//! let cfg = RunConfig { p: 2, rounds: 3, ..RunConfig::new(50_000, 7) };
//! let report = run_mode(&inst, Mode::CooperativeAdaptive, &cfg);
//! assert!(report.best.is_feasible(&inst));
//! ```

#![warn(missing_docs)]

pub use mkp;
pub use mkp_exact;
pub use mkp_tabu;
pub use parallel_tabu;
pub use pvm_lite;
pub use simplex_lp;

/// The most common imports in one place.
pub mod prelude {
    pub use mkp::eval::Ratios;
    pub use mkp::generate::{
        fp_instance, fp_suite, gk_instance, large_instance, large_suite, mk_suite, table1_suite,
        uncorrelated_instance, GkSpec, LargeSpec,
    };
    pub use mkp::greedy::{greedy, randomized_greedy};
    pub use mkp::{BitVec, Instance, Solution, Xoshiro256};
    pub use mkp_exact::{solve as solve_exact, solve_with_incumbent, BbConfig};
    pub use mkp_tabu::search::{run as run_tabu, Budget, TsConfig};
    pub use mkp_tabu::{Strategy, StrategyBounds};
    pub use parallel_tabu::{
        attach_job, serve, submit_job, Journal, JournalError, NetFaultPlan, NetFaultState,
        ServeBackend, ServeConfig, ServeStats, SubmitEvent, SubmitOutcome, SubmitSpec,
    };
    pub use parallel_tabu::{
        fault_at_round, run_mode, CheckpointCfg, CoopPolicy, Delivery, Engine, EngineError,
        FaultAction, FaultPlan, IspConfig, LossCause, Mode, ModeReport, Resurrection, RunConfig,
        SgpConfig, Snapshot, SnapshotError, WorkerLoss,
    };
    pub use parallel_tabu::{
        parse_metrics_json, validate_metrics_json, Counter, EventKind, SpanKind, Telemetry,
        TelemetrySnapshot, METRICS_SCHEMA,
    };
    pub use parallel_tabu::{run_remote, serve_slave, Endpoint, ServeOutcome};
}
