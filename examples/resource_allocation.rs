//! Resource allocation — the paper's second motivating application.
//!
//! A cluster operator admits batch jobs onto a machine with four capacity
//! dimensions (CPU, memory, disk bandwidth, network bandwidth). Each job
//! has a business value; admit the job set maximizing total value within
//! every capacity. The example also contrasts all five search modes on the
//! same instance, reproducing the paper's comparison in miniature.
//!
//! ```sh
//! cargo run --release --example resource_allocation
//! ```

use pts_mkp::prelude::*;

fn main() {
    // Synthesize 120 jobs with four resource dimensions. Values correlate
    // with resource usage (big jobs pay more) — the regime where greedy
    // ranking is weakest and search matters.
    let mut rng = Xoshiro256::seed_from_u64(0xC10);
    let n = 120;
    let dims = ["cpu_millicores", "memory_mb", "disk_mbps", "network_mbps"];
    let m = dims.len();
    let mut weights = vec![0i64; n * m];
    let mut profits = Vec::with_capacity(n);
    for j in 0..n {
        let cpu = rng.range_inclusive(50, 4000) as i64;
        let mem = rng.range_inclusive(64, 8192) as i64;
        let disk = rng.range_inclusive(1, 400) as i64;
        let net = rng.range_inclusive(1, 800) as i64;
        weights[j] = cpu;
        weights[n + j] = mem;
        weights[2 * n + j] = disk;
        weights[3 * n + j] = net;
        // Value tracks resource mass plus a noisy premium.
        let mass = cpu / 40 + mem / 80 + disk / 4 + net / 8;
        profits.push(mass / 4 + rng.range_inclusive(10, 300) as i64);
    }
    // Machine capacities ≈ 40% of total demand per dimension.
    let capacities: Vec<i64> = (0..m)
        .map(|i| {
            let total: i64 = weights[i * n..(i + 1) * n].iter().sum();
            (total as f64 * 0.4) as i64
        })
        .collect();
    let inst = Instance::new("job_admission", n, m, profits, weights, capacities)
        .expect("well-formed job set");

    println!("job admission: {n} candidate jobs, {m} resource dimensions");
    for (i, d) in dims.iter().enumerate() {
        println!("  capacity {d:<15} = {}", inst.capacity(i));
    }

    // Compare the paper's modes at an equal total work budget.
    println!("\nmode comparison (equal budget, paper Table 2 in miniature):");
    let mut best_overall: Option<Solution> = None;
    for mode in [
        Mode::Sequential,
        Mode::Independent,
        Mode::Cooperative,
        Mode::CooperativeAdaptive,
        Mode::Asynchronous,
        Mode::Decomposed,
    ] {
        let cfg = RunConfig {
            p: 4,
            rounds: 10,
            ..RunConfig::new(8_000_000, 31)
        };
        let r = run_mode(&inst, mode, &cfg);
        println!(
            "  {:<4}  value {:>6}   jobs admitted {:>3}   {:?}",
            mode.label(),
            r.best.value(),
            r.best.cardinality(),
            r.wall
        );
        if best_overall
            .as_ref()
            .is_none_or(|b| r.best.value() > b.value())
        {
            best_overall = Some(r.best);
        }
    }

    let best = best_overall.expect("at least one mode ran");
    println!("\nbest admission plan: value {}", best.value());
    for (i, d) in dims.iter().enumerate() {
        let load = best.load(i);
        let cap = inst.capacity(i);
        println!(
            "  {d:<15} {load:>7} / {cap:>7} ({:.0}% utilized)",
            100.0 * load as f64 / cap as f64
        );
    }
    assert!(best.is_feasible(&inst));
}
