//! Command-line solver for OR-Library-format instance files.
//!
//! ```sh
//! # write a sample file, then solve it
//! cargo run --release --example solve_file -- --demo /tmp/demo.mkp
//! cargo run --release --example solve_file -- /tmp/demo.mkp [budget_evals]
//! ```
//!
//! The file format is the classic `mknap1` layout (see `mkp::format`):
//! `n m optimum`, then profits, then m weight rows, then capacities.

use pts_mkp::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag, path] if flag == "--demo" => write_demo(path),
        [path] => solve(path, 5_000_000),
        [path, budget] => match budget.parse() {
            Ok(b) => solve(path, b),
            Err(_) => usage(),
        },
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: solve_file <instance.mkp> [budget_evals]");
    eprintln!("       solve_file --demo <path>   (write a sample instance)");
    ExitCode::FAILURE
}

fn write_demo(path: &str) -> ExitCode {
    let inst = gk_instance(
        "demo_5x80",
        GkSpec {
            n: 80,
            m: 5,
            tightness: 0.5,
            seed: 99,
        },
    );
    let text = mkp::format::write_instance(&inst);
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote sample instance to {path}");
    ExitCode::SUCCESS
}

fn solve(path: &str, budget: u64) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let inst = match mkp::format::parse_instance(path, &text) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{}: {} items, {} constraints, budget {budget} evaluations",
        inst.name(),
        inst.n(),
        inst.m()
    );

    let cfg = RunConfig {
        p: 4,
        rounds: 12,
        ..RunConfig::new(budget, 7)
    };
    let report = run_mode(&inst, Mode::CooperativeAdaptive, &cfg);
    println!("best value : {}", report.best.value());
    println!("items      : {:?}", report.best.bits().ones());
    println!(
        "work       : {} moves / {} evals in {:?}",
        report.total_moves, report.total_evals, report.wall
    );
    if let Some(known) = inst.best_known() {
        let gap = 100.0 * (known - report.best.value()) as f64 / known as f64;
        println!("vs recorded optimum {known}: gap {gap:.3}%");
    }
    if let Ok(lp) = mkp_exact::bounds::lp_bound(&inst) {
        println!(
            "LP bound   : {:.1} (≤ {:.3}% above found value)",
            lp.objective,
            100.0 * (lp.objective - report.best.value() as f64) / lp.objective
        );
    }
    ExitCode::SUCCESS
}
