//! Capital budgeting — the application the paper's introduction motivates.
//!
//! A firm chooses among candidate projects; each project has an expected
//! net present value (profit) and consumes capital in each of several
//! budget periods (one knapsack constraint per period). Select the project
//! portfolio maximizing NPV without exceeding any period's budget.
//!
//! ```sh
//! cargo run --release --example capital_budgeting
//! ```

use pts_mkp::prelude::*;

/// A candidate project: name, NPV (k$), and capital drawn per period (k$).
struct Project {
    name: &'static str,
    npv: i64,
    draw: [i64; 4],
}

fn main() {
    // 28 candidate projects over 4 budget periods.
    let projects = portfolio();
    let periods = 4usize;
    let budgets = [950i64, 900, 800, 700]; // per-period capital (k$)

    // Assemble the 0-1 MKP: one variable per project, one constraint per
    // budget period.
    let n = projects.len();
    let profits: Vec<i64> = projects.iter().map(|p| p.npv).collect();
    let mut weights = vec![0i64; n * periods];
    for (j, p) in projects.iter().enumerate() {
        for (i, &d) in p.draw.iter().enumerate() {
            weights[i * n + j] = d;
        }
    }
    let inst = Instance::new(
        "capital_budgeting",
        n,
        periods,
        profits,
        weights,
        budgets.to_vec(),
    )
    .expect("well-formed portfolio");

    println!("capital budgeting: {} projects, {} periods", n, periods);
    println!("period budgets    : {budgets:?} k$\n");

    // Small instance: certify the decision with the exact solver, and show
    // the tabu search reproduces it.
    let cfg = RunConfig {
        p: 4,
        rounds: 12,
        ..RunConfig::new(3_000_000, 1)
    };
    let ts = run_mode(&inst, Mode::CooperativeAdaptive, &cfg);
    let exact = solve_with_incumbent(&inst, &BbConfig::default(), Some(&ts.best));
    assert!(exact.proven, "portfolio should be certifiable");
    if ts.best.value() == exact.solution.value() {
        println!("tabu search matched the certified optimum.\n");
    } else {
        println!(
            "tabu search reached {} of certified optimum {} ({:.2}% gap).\n",
            ts.best.value(),
            exact.solution.value(),
            100.0 * (exact.solution.value() - ts.best.value()) as f64
                / exact.solution.value() as f64
        );
    }
    // Report the *certified* plan below — the board wants the optimum.
    let ts = parallel_tabu::ModeReport {
        best: exact.solution.clone(),
        ..ts
    };

    println!("funded projects (total NPV {} k$):", ts.best.value());
    let mut spend = [0i64; 4];
    for j in ts.best.bits().iter_ones() {
        let p = &projects[j];
        println!("  {:<22} NPV {:>4}  draws {:?}", p.name, p.npv, p.draw);
        for (i, &d) in p.draw.iter().enumerate() {
            spend[i] += d;
        }
    }
    println!("\nper-period spend  : {spend:?} k$ (budgets {budgets:?})");
    for (i, (&s, &b)) in spend.iter().zip(&budgets).enumerate() {
        assert!(s <= b, "period {i} over budget");
    }
    println!(
        "certified optimal : {} ({} B&B nodes)",
        exact.proven, exact.nodes
    );
}

fn portfolio() -> Vec<Project> {
    vec![
        Project {
            name: "plant-retrofit",
            npv: 320,
            draw: [310, 120, 60, 30],
        },
        Project {
            name: "new-warehouse",
            npv: 270,
            draw: [240, 150, 80, 20],
        },
        Project {
            name: "erp-rollout",
            npv: 180,
            draw: [90, 140, 120, 60],
        },
        Project {
            name: "fleet-renewal",
            npv: 145,
            draw: [160, 60, 40, 10],
        },
        Project {
            name: "solar-roof",
            npv: 210,
            draw: [200, 30, 10, 10],
        },
        Project {
            name: "lab-expansion",
            npv: 260,
            draw: [120, 180, 140, 50],
        },
        Project {
            name: "export-campaign",
            npv: 95,
            draw: [40, 70, 60, 40],
        },
        Project {
            name: "patent-portfolio",
            npv: 130,
            draw: [110, 40, 20, 5],
        },
        Project {
            name: "line-automation",
            npv: 340,
            draw: [280, 200, 90, 40],
        },
        Project {
            name: "quality-program",
            npv: 75,
            draw: [30, 40, 40, 30],
        },
        Project {
            name: "training-center",
            npv: 60,
            draw: [50, 40, 20, 20],
        },
        Project {
            name: "packaging-redesign",
            npv: 85,
            draw: [60, 50, 20, 10],
        },
        Project {
            name: "cold-chain",
            npv: 190,
            draw: [150, 90, 70, 40],
        },
        Project {
            name: "recycling-unit",
            npv: 110,
            draw: [90, 60, 30, 20],
        },
        Project {
            name: "market-entry-east",
            npv: 230,
            draw: [100, 130, 130, 90],
        },
        Project {
            name: "supplier-buyout",
            npv: 280,
            draw: [330, 60, 20, 10],
        },
        Project {
            name: "rnd-materials",
            npv: 150,
            draw: [60, 80, 90, 70],
        },
        Project {
            name: "web-platform",
            npv: 120,
            draw: [80, 70, 40, 20],
        },
        Project {
            name: "safety-upgrade",
            npv: 55,
            draw: [45, 25, 15, 10],
        },
        Project {
            name: "pilot-line-b",
            npv: 165,
            draw: [120, 90, 60, 30],
        },
        Project {
            name: "brand-refresh",
            npv: 70,
            draw: [55, 45, 20, 10],
        },
        Project {
            name: "data-center",
            npv: 250,
            draw: [210, 110, 70, 50],
        },
        Project {
            name: "port-terminal",
            npv: 300,
            draw: [260, 170, 110, 60],
        },
        Project {
            name: "field-sensors",
            npv: 90,
            draw: [50, 50, 40, 30],
        },
        Project {
            name: "biogas-plant",
            npv: 205,
            draw: [170, 100, 60, 40],
        },
        Project {
            name: "apprenticeships",
            npv: 45,
            draw: [20, 25, 25, 20],
        },
        Project {
            name: "spare-parts-hub",
            npv: 135,
            draw: [100, 70, 40, 25],
        },
        Project {
            name: "night-shift-tooling",
            npv: 100,
            draw: [85, 45, 25, 15],
        },
    ]
}
