//! A guided tour of the paper, executable: each stop reproduces one claim
//! of Niar & Fréville (IPPS 1997) in miniature and prints what it found.
//!
//! ```sh
//! cargo run --release --example paper_tour
//! ```

use mkp_tabu::cets::{run_cets, CetsConfig};
use pts_mkp::prelude::*;

fn main() {
    let inst = gk_instance(
        "tour_10x150",
        GkSpec {
            n: 150,
            m: 10,
            tightness: 0.5,
            seed: 0x70,
        },
    );
    let ratios = Ratios::new(&inst);
    println!("== The instance ==");
    println!(
        "{}: {} (profit-weight correlation makes greedy weak)\n",
        inst.name(),
        mkp::stats::instance_stats(&inst)
    );

    // --- §3, Fig. 1: the sequential tabu search. ---
    println!("== Fig. 1: one tabu-search thread ==");
    let mut rng = Xoshiro256::seed_from_u64(1);
    let start = randomized_greedy(&inst, &ratios, &mut rng, 4);
    let seq = run_tabu(
        &inst,
        &ratios,
        start.clone(),
        &TsConfig::default_for(inst.n()),
        Budget::evals(2_000_000),
        &mut rng,
    );
    println!(
        "start {} → best {} after {} drop/add moves\n",
        start.value(),
        seq.best.value(),
        seq.stats.moves
    );

    // --- §4, Fig. 2: the master process and the four organizations. ---
    println!("== Table 2: the same total budget, four organizations ==");
    let budget = 8_000_000u64;
    for mode in Mode::table2() {
        let cfg = RunConfig {
            p: 4,
            rounds: 12,
            ..RunConfig::new(budget, 7)
        };
        let r = run_mode(&inst, mode, &cfg);
        println!(
            "  {:<4} best {}   ({} strategy regenerations)",
            mode.label(),
            r.best.value(),
            r.regenerations
        );
    }
    println!();

    // --- §5: the cited baseline. ---
    println!("== The cited critical-event baseline (CETS) at the same budget ==");
    let mut rng = Xoshiro256::seed_from_u64(7);
    let cets_start = randomized_greedy(&inst, &ratios, &mut rng, 4);
    let cets = run_cets(
        &inst,
        &ratios,
        cets_start,
        &CetsConfig::default_for(inst.n()),
        budget,
        &mut rng,
    );
    println!("  CETS best {}\n", cets.best.value());

    // --- The referee: certified optimum. ---
    println!("== Certification ==");
    let cfg = RunConfig {
        p: 4,
        rounds: 12,
        ..RunConfig::new(budget, 7)
    };
    let cts2 = run_mode(&inst, Mode::CooperativeAdaptive, &cfg);
    let lp = mkp_exact::bounds::lp_bound(&inst).expect("LP solvable");
    println!("  LP bound   : {:.1}", lp.objective);
    println!(
        "  CTS2 best  : {} (≤ {:.3}% below the LP bound)",
        cts2.best.value(),
        100.0 * (lp.objective - cts2.best.value() as f64) / lp.objective
    );
    println!("  (exact certification on instances this size takes minutes to");
    println!("   hours — the fp57 bench certifies the full small-instance suite)");
}
