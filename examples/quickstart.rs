//! Quickstart: generate a benchmark instance, run the paper's cooperative
//! parallel tabu search (CTS2), and sanity-check the answer against the LP
//! bound and the exact solver.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pts_mkp::prelude::*;

fn main() {
    // A correlated Glover–Kochenberger-style instance: 100 items, 5
    // knapsack constraints, capacities at 50% of total weight.
    let inst = gk_instance(
        "quickstart_5x100",
        GkSpec {
            n: 100,
            m: 5,
            tightness: 0.5,
            seed: 42,
        },
    );
    println!(
        "instance {}: {} items, {} constraints",
        inst.name(),
        inst.n(),
        inst.m()
    );

    // A baseline everyone understands: the ratio greedy.
    let ratios = Ratios::new(&inst);
    let g = greedy(&inst, &ratios);
    println!("greedy value        : {}", g.value());

    // The paper's method: 4 cooperative slaves, dynamically retuned by the
    // master (mode CTS2), under a fixed total work budget.
    let cfg = RunConfig {
        p: 4,
        rounds: 8,
        ..RunConfig::new(4_000_000, 7)
    };
    let report = run_mode(&inst, Mode::CooperativeAdaptive, &cfg);
    println!(
        "parallel tabu (CTS2): {}   [{} moves, {} strategy regenerations, {:?}]",
        report.best.value(),
        report.total_moves,
        report.regenerations,
        report.wall
    );
    assert!(report.best.is_feasible(&inst));

    // Upper bound from the LP relaxation …
    let lp = mkp_exact::bounds::lp_bound(&inst).expect("LP solvable");
    println!("LP relaxation bound : {:.1}", lp.objective);

    // … and the certified optimum (warm-started by the heuristic solution).
    let exact = solve_with_incumbent(&inst, &BbConfig::default(), Some(&report.best));
    println!(
        "exact optimum       : {} ({} B&B nodes, proven = {})",
        exact.solution.value(),
        exact.nodes,
        exact.proven
    );
    let gap = 100.0 * (exact.solution.value() - report.best.value()) as f64
        / exact.solution.value() as f64;
    println!("heuristic gap       : {gap:.3}%");
}
