//! # simplex-lp — dense bounded-variable primal simplex
//!
//! A compact LP solver for problems of the shape that MKP relaxations
//! produce:
//!
//! ```text
//! maximize    c·x
//! subject to  A x ≤ b,   0 ≤ x_j ≤ u_j,   b ≥ 0
//! ```
//!
//! Because `b ≥ 0`, the all-slack basis is primal feasible and no phase-1 is
//! needed. The implementation is a revised simplex with an explicitly
//! maintained basis inverse (`m ≤ ~30` for every instance in this workspace,
//! so the m×m inverse is tiny), Dantzig pricing with an automatic switch to
//! Bland's rule for anti-cycling, and full bounded-variable ratio tests
//! including bound flips.
//!
//! The solver returns the primal solution *and* the dual values `y`, which
//! the exact solver reuses as surrogate-relaxation multipliers.
//!
//! ```
//! use simplex_lp::{LpProblem, solve};
//!
//! // max 3x + 2y  s.t.  x + y ≤ 4,  x ≤ 3,  0 ≤ x,y ≤ 10
//! let p = LpProblem::new(
//!     vec![3.0, 2.0],
//!     vec![1.0, 1.0,
//!          1.0, 0.0],
//!     vec![4.0, 3.0],
//!     vec![10.0, 10.0],
//! ).unwrap();
//! let s = solve(&p).unwrap();
//! assert!((s.objective - 11.0).abs() < 1e-9); // x=3, y=1
//! ```

#![warn(missing_docs)]

pub mod problem;
pub mod solver;

pub use problem::{LpError, LpProblem, LpSolution};
pub use solver::solve;
