//! Revised primal simplex with bounded variables and explicit basis inverse.

// Dense matrix code reads clearest with explicit row/column indices.
#![allow(clippy::needless_range_loop)]

use crate::problem::{LpError, LpProblem, LpSolution};

const TOL: f64 = 1e-9;
/// Switch from Dantzig to Bland pricing after this many consecutive
/// degenerate pivots (guarantees termination).
const BLAND_AFTER_DEGENERATE: usize = 40;
/// Reinvert the basis from scratch this often for numerical hygiene.
const REINVERT_EVERY: usize = 128;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Basic,
    AtLower,
    AtUpper,
}

/// Solve a bounded-variable LP. See the crate docs for the accepted form.
pub fn solve(p: &LpProblem) -> Result<LpSolution, LpError> {
    Simplex::new(p).run()
}

struct Simplex<'a> {
    p: &'a LpProblem,
    n: usize,
    m: usize,
    /// Variable status; indices `0..n` structural, `n..n+m` slack.
    status: Vec<Status>,
    /// Basic variable per row.
    basis: Vec<usize>,
    /// Row-major m×m basis inverse.
    binv: Vec<f64>,
    /// Values of the basic variables, aligned with `basis`.
    xb: Vec<f64>,
    pivots: usize,
    degenerate_streak: usize,
}

impl<'a> Simplex<'a> {
    fn new(p: &'a LpProblem) -> Self {
        let (n, m) = (p.n(), p.m());
        let mut status = vec![Status::AtLower; n + m];
        let mut basis = Vec::with_capacity(m);
        for i in 0..m {
            status[n + i] = Status::Basic;
            basis.push(n + i);
        }
        let mut binv = vec![0.0; m * m];
        for i in 0..m {
            binv[i * m + i] = 1.0;
        }
        Simplex {
            p,
            n,
            m,
            status,
            basis,
            binv,
            xb: p.b().to_vec(),
            pivots: 0,
            degenerate_streak: 0,
        }
    }

    #[inline]
    fn cost(&self, q: usize) -> f64 {
        if q < self.n {
            self.p.c()[q]
        } else {
            0.0
        }
    }

    #[inline]
    fn upper(&self, q: usize) -> f64 {
        if q < self.n {
            self.p.upper()[q]
        } else {
            f64::INFINITY
        }
    }

    /// Column of variable `q` in the original constraint matrix.
    #[inline]
    fn column(&self, q: usize, out: &mut [f64]) {
        if q < self.n {
            for i in 0..self.m {
                out[i] = self.p.a(i, q);
            }
        } else {
            out.fill(0.0);
            out[q - self.n] = 1.0;
        }
    }

    /// Dual values `y = c_B B⁻¹`.
    fn duals(&self) -> Vec<f64> {
        let mut y = vec![0.0; self.m];
        for (k, &bk) in self.basis.iter().enumerate() {
            let cb = self.cost(bk);
            if cb != 0.0 {
                for i in 0..self.m {
                    y[i] += cb * self.binv[k * self.m + i];
                }
            }
        }
        y
    }

    /// Reduced cost of nonbasic variable `q` given duals `y`.
    fn reduced_cost(&self, q: usize, y: &[f64]) -> f64 {
        if q < self.n {
            let mut d = self.p.c()[q];
            for i in 0..self.m {
                let a = self.p.a(i, q);
                if a != 0.0 {
                    d -= y[i] * a;
                }
            }
            d
        } else {
            -y[q - self.n]
        }
    }

    fn run(mut self) -> Result<LpSolution, LpError> {
        let limit = 200 * (self.n + self.m + 10);
        let mut col = vec![0.0; self.m];
        let mut w = vec![0.0; self.m];
        loop {
            if self.pivots > limit {
                return Err(LpError::IterationLimit { limit });
            }
            let y = self.duals();
            let entering = self.choose_entering(&y);
            let Some((q, d)) = entering else {
                return Ok(self.extract(&y));
            };
            // Direction of change of x_q: +1 when rising from lower bound.
            let dir: f64 = if d > 0.0 { 1.0 } else { -1.0 };
            self.column(q, &mut col);
            // w = B⁻¹ A_q
            for (k, wk) in w.iter_mut().enumerate() {
                let row = &self.binv[k * self.m..(k + 1) * self.m];
                *wk = row.iter().zip(&col).map(|(r, c)| r * c).sum();
            }

            // Ratio test over v = dir · w (basic values move as xb − t·v).
            let mut t_max = self.upper(q); // bound-flip distance
            let mut leaving: Option<(usize, Status)> = None;
            for k in 0..self.m {
                let v = dir * w[k];
                if v > TOL {
                    let t = self.xb[k] / v;
                    if t < t_max - TOL {
                        t_max = t;
                        leaving = Some((k, Status::AtLower));
                    }
                } else if v < -TOL {
                    let ub = self.upper(self.basis[k]);
                    if ub.is_finite() {
                        let t = (ub - self.xb[k]) / (-v);
                        if t < t_max - TOL {
                            t_max = t;
                            leaving = Some((k, Status::AtUpper));
                        }
                    }
                }
            }
            if t_max.is_infinite() {
                return Err(LpError::Unbounded);
            }
            let t = t_max.max(0.0);
            self.degenerate_streak = if t <= TOL {
                self.degenerate_streak + 1
            } else {
                0
            };

            match leaving {
                None => {
                    // Bound flip: x_q jumps to its other bound, basis unchanged.
                    for k in 0..self.m {
                        self.xb[k] -= t * dir * w[k];
                    }
                    self.status[q] = if dir > 0.0 {
                        Status::AtUpper
                    } else {
                        Status::AtLower
                    };
                    self.pivots += 1;
                }
                Some((r, leave_status)) => {
                    let entering_value = if dir > 0.0 { t } else { self.upper(q) - t };
                    for k in 0..self.m {
                        if k != r {
                            self.xb[k] -= t * dir * w[k];
                        }
                    }
                    self.xb[r] = entering_value;
                    self.status[self.basis[r]] = leave_status;
                    self.status[q] = Status::Basic;
                    self.basis[r] = q;
                    self.update_inverse(r, &w);
                    self.pivots += 1;
                    if self.pivots.is_multiple_of(REINVERT_EVERY) {
                        self.reinvert();
                    }
                }
            }
        }
    }

    /// Entering-variable choice: Dantzig (largest |reduced cost|) normally,
    /// Bland (lowest eligible index) under a degenerate streak.
    fn choose_entering(&self, y: &[f64]) -> Option<(usize, f64)> {
        let bland = self.degenerate_streak >= BLAND_AFTER_DEGENERATE;
        let mut best: Option<(usize, f64)> = None;
        for q in 0..self.n + self.m {
            let eligible_d = match self.status[q] {
                Status::Basic => continue,
                Status::AtLower => {
                    let d = self.reduced_cost(q, y);
                    if d > TOL {
                        Some(d)
                    } else {
                        None
                    }
                }
                Status::AtUpper => {
                    let d = self.reduced_cost(q, y);
                    if d < -TOL {
                        Some(d)
                    } else {
                        None
                    }
                }
            };
            if let Some(d) = eligible_d {
                if bland {
                    return Some((q, d));
                }
                if best.is_none_or(|(_, bd)| d.abs() > bd.abs()) {
                    best = Some((q, d));
                }
            }
        }
        best
    }

    /// Product-form update of B⁻¹ after the pivot row `r` with direction `w`.
    fn update_inverse(&mut self, r: usize, w: &[f64]) {
        let m = self.m;
        let pivot = w[r];
        debug_assert!(pivot.abs() > TOL, "pivot {pivot} too small");
        for i in 0..m {
            self.binv[r * m + i] /= pivot;
        }
        for k in 0..m {
            if k != r && w[k] != 0.0 {
                let factor = w[k];
                for i in 0..m {
                    self.binv[k * m + i] -= factor * self.binv[r * m + i];
                }
            }
        }
    }

    /// Rebuild B⁻¹ and the basic values from scratch (numerical hygiene).
    fn reinvert(&mut self) {
        let m = self.m;
        // Assemble B column-by-column, then invert by Gauss–Jordan with
        // partial pivoting into `inv`.
        let mut bmat = vec![0.0; m * m]; // row-major
        let mut col = vec![0.0; m];
        for (k, &q) in self.basis.iter().enumerate() {
            self.column(q, &mut col);
            for i in 0..m {
                bmat[i * m + k] = col[i];
            }
        }
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for coli in 0..m {
            // Partial pivot.
            let mut piv = coli;
            for r in coli + 1..m {
                if bmat[r * m + coli].abs() > bmat[piv * m + coli].abs() {
                    piv = r;
                }
            }
            if bmat[piv * m + coli].abs() <= TOL {
                // Singular basis should be impossible; keep the old inverse.
                return;
            }
            if piv != coli {
                for j in 0..m {
                    bmat.swap(coli * m + j, piv * m + j);
                    inv.swap(coli * m + j, piv * m + j);
                }
            }
            let d = bmat[coli * m + coli];
            for j in 0..m {
                bmat[coli * m + j] /= d;
                inv[coli * m + j] /= d;
            }
            for r in 0..m {
                if r != coli {
                    let f = bmat[r * m + coli];
                    if f != 0.0 {
                        for j in 0..m {
                            bmat[r * m + j] -= f * bmat[coli * m + j];
                            inv[r * m + j] -= f * inv[coli * m + j];
                        }
                    }
                }
            }
        }
        self.binv = inv;
        self.recompute_xb();
    }

    /// xb = B⁻¹ (b − Σ_{q at upper} A_q u_q).
    fn recompute_xb(&mut self) {
        let m = self.m;
        let mut rhs = self.p.b().to_vec();
        let mut col = vec![0.0; m];
        for q in 0..self.n + self.m {
            if self.status[q] == Status::AtUpper {
                let u = self.upper(q);
                self.column(q, &mut col);
                for i in 0..m {
                    rhs[i] -= col[i] * u;
                }
            }
        }
        for k in 0..m {
            let row = &self.binv[k * m..(k + 1) * m];
            self.xb[k] = row.iter().zip(&rhs).map(|(r, v)| r * v).sum();
        }
    }

    fn extract(&self, y: &[f64]) -> LpSolution {
        let mut x = vec![0.0; self.n];
        for q in 0..self.n {
            x[q] = match self.status[q] {
                Status::AtLower => 0.0,
                Status::AtUpper => self.p.upper()[q],
                Status::Basic => 0.0, // filled below
            };
        }
        for (k, &q) in self.basis.iter().enumerate() {
            if q < self.n {
                // Clamp tiny numerical excursions back into the box.
                x[q] = self.xb[k].clamp(0.0, self.p.upper()[q]);
            }
        }
        let objective = self.p.objective_of(&x);
        LpSolution {
            objective,
            x,
            duals: y.to_vec(),
            pivots: self.pivots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkp::prop_check;
    use mkp::testkit::gen;

    fn lp(c: Vec<f64>, a: Vec<f64>, b: Vec<f64>, u: Vec<f64>) -> LpSolution {
        solve(&LpProblem::new(c, a, b, u).unwrap()).unwrap()
    }

    #[test]
    fn single_variable() {
        // max 5x s.t. 2x ≤ 3, x ≤ 1 → x = 1 (bound flip) → 5.
        let s = lp(vec![5.0], vec![2.0], vec![3.0], vec![1.0]);
        assert!((s.objective - 5.0).abs() < 1e-9);
        assert!((s.x[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_variable_constraint_binding() {
        // max 5x s.t. 2x ≤ 1, x ≤ 1 → x = 0.5 → 2.5.
        let s = lp(vec![5.0], vec![2.0], vec![1.0], vec![1.0]);
        assert!((s.objective - 2.5).abs() < 1e-9);
        // Dual of the binding row = 2.5.
        assert!((s.duals[0] - 2.5).abs() < 1e-9);
    }

    #[test]
    fn two_variables_textbook() {
        // max 3x + 2y s.t. x + y ≤ 4, x ≤ 3; 0 ≤ x,y ≤ 10 → (3, 1) → 11.
        let s = lp(
            vec![3.0, 2.0],
            vec![1.0, 1.0, 1.0, 0.0],
            vec![4.0, 3.0],
            vec![10.0, 10.0],
        );
        assert!((s.objective - 11.0).abs() < 1e-9);
        assert!((s.x[0] - 3.0).abs() < 1e-9);
        assert!((s.x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_knapsack_relaxation() {
        // max 10a + 6b s.t. 5a + 4b ≤ 7; 0 ≤ a,b ≤ 1.
        // Ratios 2 vs 1.5 → a = 1, b = 0.5 → 13 (matches the Dantzig bound).
        let s = lp(vec![10.0, 6.0], vec![5.0, 4.0], vec![7.0], vec![1.0, 1.0]);
        assert!((s.objective - 13.0).abs() < 1e-9);
    }

    #[test]
    fn all_items_fit() {
        let s = lp(vec![4.0, 5.0], vec![3.0, 4.0], vec![10.0], vec![1.0, 1.0]);
        assert!((s.objective - 9.0).abs() < 1e-9);
    }

    #[test]
    fn zero_objective() {
        let s = lp(vec![0.0, 0.0], vec![1.0, 1.0], vec![1.0], vec![1.0, 1.0]);
        assert!(s.objective.abs() < 1e-9);
    }

    #[test]
    fn degenerate_rhs_zero() {
        // b = 0 forces x = 0 for any weight-positive variable.
        let s = lp(vec![3.0, 1.0], vec![1.0, 2.0], vec![0.0], vec![1.0, 1.0]);
        assert!(s.objective.abs() < 1e-9);
    }

    #[test]
    fn multi_constraint_binding_mix() {
        // max x + y s.t. x ≤ 1 (row), y ≤ 1 (row), x + y ≤ 1.5.
        let s = lp(
            vec![1.0, 1.0],
            vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0],
            vec![1.0, 1.0, 1.5],
            vec![5.0, 5.0],
        );
        assert!((s.objective - 1.5).abs() < 1e-9);
    }

    #[test]
    fn duals_nonnegative_at_optimum() {
        let s = lp(
            vec![3.0, 2.0, 4.0],
            vec![1.0, 1.0, 2.0, 2.0, 1.0, 1.0],
            vec![4.0, 5.0],
            vec![1.0, 1.0, 1.0],
        );
        for &d in &s.duals {
            assert!(d >= -1e-9, "negative dual {d}");
        }
    }

    #[test]
    fn weak_duality_holds() {
        // For max c·x with Ax ≤ b, 0 ≤ x ≤ u:
        // obj ≤ y·b + Σ_j max(0, c_j − y·A_j)·u_j for the optimal duals.
        let p = LpProblem::new(
            vec![7.0, 2.0, 5.0, 4.0],
            vec![
                3.0, 1.0, 4.0, 2.0, //
                1.0, 2.0, 1.0, 3.0,
            ],
            vec![6.0, 5.0],
            vec![1.0; 4],
        )
        .unwrap();
        let s = solve(&p).unwrap();
        let mut dual_bound: f64 = s.duals.iter().zip(p.b()).map(|(y, b)| y * b).sum();
        for j in 0..p.n() {
            let mut d = p.c()[j];
            for i in 0..p.m() {
                d -= s.duals[i] * p.a(i, j);
            }
            dual_bound += d.max(0.0) * p.upper()[j];
        }
        assert!(s.objective <= dual_bound + 1e-6);
        assert!(
            (s.objective - dual_bound).abs() < 1e-6,
            "strong duality at optimum"
        );
    }

    #[test]
    fn unbounded_detected_with_infinite_upper_bound() {
        // max x with a constraint that never binds x (zero coefficient) and
        // u = ∞: the LP is unbounded above.
        let p = LpProblem::new(
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![5.0],
            vec![f64::INFINITY, 1.0],
        )
        .unwrap();
        assert!(matches!(solve(&p), Err(LpError::Unbounded)));
    }

    #[test]
    fn infinite_upper_bound_bounded_by_constraint() {
        // u = ∞ but the row binds: max 3x s.t. 2x ≤ 4 → x = 2 → 6.
        let p = LpProblem::new(vec![3.0], vec![2.0], vec![4.0], vec![f64::INFINITY]).unwrap();
        let s = solve(&p).unwrap();
        assert!((s.objective - 6.0).abs() < 1e-9);
    }

    #[test]
    fn zero_upper_bound_pins_variable() {
        // u = 0 fixes x at 0; only y contributes.
        let p =
            LpProblem::new(vec![100.0, 1.0], vec![1.0, 1.0], vec![10.0], vec![0.0, 1.0]).unwrap();
        let s = solve(&p).unwrap();
        assert!(s.x[0].abs() < 1e-9);
        assert!((s.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn highly_degenerate_lp_terminates() {
        // Many identical rows force degenerate pivots; Bland's rule must
        // still terminate at the optimum.
        let n = 6;
        let m = 8;
        let c: Vec<f64> = (0..n).map(|j| (j + 1) as f64).collect();
        let mut a = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                a[i * n + j] = 1.0; // identical rows
            }
        }
        let b = vec![3.0; m];
        let p = LpProblem::new(c, a, b, vec![1.0; n]).unwrap();
        let s = solve(&p).unwrap();
        // Take the 3 most valuable variables fully: 6 + 5 + 4 = 15.
        assert!((s.objective - 15.0).abs() < 1e-6);
    }

    #[test]
    fn matches_mkp_dantzig_bound_when_m_is_1() {
        // The LP relaxation of a single-constraint knapsack IS the Dantzig
        // bound; cross-check on a few seeded instances.
        use mkp::bounds::dantzig_bound_single;
        use mkp::generate::uncorrelated_instance;
        for seed in 0..10 {
            let inst = uncorrelated_instance("x", 30, 1, 0.5, seed);
            let c: Vec<f64> = inst.profits().iter().map(|&v| v as f64).collect();
            let a: Vec<f64> = inst.constraint_row(0).iter().map(|&v| v as f64).collect();
            let b = vec![inst.capacity(0) as f64];
            let s = lp(c, a, b, vec![1.0; inst.n()]);
            let dz = dantzig_bound_single(&inst, 0);
            assert!(
                (s.objective - dz).abs() < 1e-6,
                "seed {seed}: LP {} vs Dantzig {dz}",
                s.objective
            );
        }
    }

    #[test]
    fn solution_reported_feasible() {
        let p = LpProblem::new(
            vec![2.0, 3.0, 1.0],
            vec![1.0, 2.0, 1.0, 2.0, 1.0, 3.0],
            vec![4.0, 5.0],
            vec![1.0, 1.0, 1.0],
        )
        .unwrap();
        let s = solve(&p).unwrap();
        assert!(p.is_feasible(&s.x, 1e-7));
        assert!((p.objective_of(&s.x) - s.objective).abs() < 1e-9);
    }

    #[test]
    fn larger_random_lp_is_stable() {
        // 30 constraints × 200 vars exercises reinversion and bound flips.
        use mkp::generate::gk_instance;
        use mkp::generate::GkSpec;
        let inst = gk_instance(
            "big",
            GkSpec {
                n: 200,
                m: 30,
                tightness: 0.5,
                seed: 5,
            },
        );
        let n = inst.n();
        let m = inst.m();
        let c: Vec<f64> = inst.profits().iter().map(|&v| v as f64).collect();
        let mut a = vec![0.0; m * n];
        for i in 0..m {
            for (j, &w) in inst.constraint_row(i).iter().enumerate() {
                a[i * n + j] = w as f64;
            }
        }
        let b: Vec<f64> = inst.capacities().iter().map(|&v| v as f64).collect();
        let p = LpProblem::new(c, a, b, vec![1.0; n]).unwrap();
        let s = solve(&p).unwrap();
        assert!(p.is_feasible(&s.x, 1e-5));
        // Bound must dominate the greedy feasible integer value.
        let ratios = mkp::eval::Ratios::new(&inst);
        let g = mkp::greedy::greedy(&inst, &ratios);
        assert!(s.objective + 1e-6 >= g.value() as f64);
    }

    /// Random LPs: solver returns a feasible point whose objective
    /// dominates every vertex of a crude inner sample.
    #[test]
    fn prop_solver_feasible_and_dominant() {
        prop_check!(
            |rng| {
                let n = gen::usize_in(rng, 1, 8);
                let m = gen::usize_in(rng, 1, 5);
                let cs = gen::vec_of(rng, 8, 8, |r| gen::f64_in(r, 0.0, 20.0));
                let aw = gen::vec_of(rng, 40, 40, |r| gen::f64_in(r, 0.0, 10.0));
                let bs = gen::vec_of(rng, 5, 5, |r| gen::f64_in(r, 1.0, 30.0));
                (n, m, cs, aw, bs)
            },
            |input| {
                let (n, m, cs, aw, bs) = input;
                let (n, m) = (*n, *m);
                if !(1..8).contains(&n)
                    || !(1..5).contains(&m)
                    || cs.len() < n
                    || bs.len() < m
                    || aw.is_empty()
                {
                    return; // shrinking may void the shape invariants
                }
                let c: Vec<f64> = cs[..n].to_vec();
                let a: Vec<f64> = (0..m * n).map(|k| aw[k % aw.len()]).collect();
                let b: Vec<f64> = bs[..m].to_vec();
                let p = LpProblem::new(c, a, b, vec![1.0; n]).unwrap();
                let s = solve(&p).unwrap();
                assert!(p.is_feasible(&s.x, 1e-6));
                // Compare against all 0/1 corner points that are feasible (n ≤ 7).
                for mask in 0u32..(1 << n) {
                    let x: Vec<f64> = (0..n).map(|j| ((mask >> j) & 1) as f64).collect();
                    if p.is_feasible(&x, 1e-9) {
                        assert!(
                            s.objective + 1e-6 >= p.objective_of(&x),
                            "LP {} below integral point {}",
                            s.objective,
                            p.objective_of(&x)
                        );
                    }
                }
            }
        );
    }
}
