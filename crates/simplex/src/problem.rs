//! LP problem and solution containers.

use std::fmt;

/// A maximization LP: `max c·x` s.t. `A x ≤ b`, `0 ≤ x ≤ u`, with `b ≥ 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct LpProblem {
    n: usize,
    m: usize,
    c: Vec<f64>,
    /// Row-major `m × n`.
    a: Vec<f64>,
    b: Vec<f64>,
    upper: Vec<f64>,
}

/// Solver failure modes.
#[allow(missing_docs)] // field names are self-describing
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// Dimensions of `c`, `a`, `b`, `upper` are inconsistent.
    BadShape(String),
    /// Some `b_i < 0` (the solver requires a feasible slack basis).
    NegativeRhs { row: usize, value: f64 },
    /// Some upper bound is negative or NaN appears in the data.
    BadBound { index: usize, value: f64 },
    /// Data contains NaN/∞.
    NotFinite { what: &'static str, index: usize },
    /// The LP is unbounded above (cannot happen when all `u_j` are finite).
    Unbounded,
    /// Pivot limit exceeded (numerical trouble).
    IterationLimit { limit: usize },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::BadShape(s) => write!(f, "inconsistent LP shape: {s}"),
            LpError::NegativeRhs { row, value } => {
                write!(f, "rhs b[{row}] = {value} is negative")
            }
            LpError::BadBound { index, value } => {
                write!(f, "upper bound u[{index}] = {value} invalid")
            }
            LpError::NotFinite { what, index } => write!(f, "{what}[{index}] not finite"),
            LpError::Unbounded => write!(f, "LP unbounded above"),
            LpError::IterationLimit { limit } => {
                write!(f, "simplex exceeded {limit} pivots")
            }
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution with primal values, duals and pivot statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value.
    pub objective: f64,
    /// Primal values, one per structural variable.
    pub x: Vec<f64>,
    /// Dual values (shadow prices), one per constraint; non-negative for
    /// a maximization with `≤` rows.
    pub duals: Vec<f64>,
    /// Simplex pivots performed.
    pub pivots: usize,
}

impl LpProblem {
    /// Validate and build a problem. `a` is row-major `m × n` where
    /// `m = b.len()` and `n = c.len()`.
    pub fn new(c: Vec<f64>, a: Vec<f64>, b: Vec<f64>, upper: Vec<f64>) -> Result<Self, LpError> {
        let n = c.len();
        let m = b.len();
        if n == 0 || m == 0 {
            return Err(LpError::BadShape(format!("n={n}, m={m}")));
        }
        if a.len() != n * m {
            return Err(LpError::BadShape(format!(
                "matrix holds {} entries, expected {}",
                a.len(),
                n * m
            )));
        }
        if upper.len() != n {
            return Err(LpError::BadShape(format!(
                "upper bounds hold {} entries, expected {n}",
                upper.len()
            )));
        }
        for (k, v) in c.iter().enumerate() {
            if !v.is_finite() {
                return Err(LpError::NotFinite {
                    what: "c",
                    index: k,
                });
            }
        }
        for (k, v) in a.iter().enumerate() {
            if !v.is_finite() {
                return Err(LpError::NotFinite {
                    what: "a",
                    index: k,
                });
            }
        }
        for (i, &v) in b.iter().enumerate() {
            if !v.is_finite() {
                return Err(LpError::NotFinite {
                    what: "b",
                    index: i,
                });
            }
            if v < 0.0 {
                return Err(LpError::NegativeRhs { row: i, value: v });
            }
        }
        for (j, &u) in upper.iter().enumerate() {
            if u.is_nan() || u < 0.0 {
                return Err(LpError::BadBound { index: j, value: u });
            }
        }
        Ok(LpProblem {
            n,
            m,
            c,
            a,
            b,
            upper,
        })
    }

    /// Number of structural variables.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of constraints.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Objective coefficients.
    #[inline]
    pub fn c(&self) -> &[f64] {
        &self.c
    }

    /// Matrix entry `a_ij`.
    #[inline]
    pub fn a(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.n + j]
    }

    /// Right-hand sides.
    #[inline]
    pub fn b(&self) -> &[f64] {
        &self.b
    }

    /// Variable upper bounds.
    #[inline]
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Check a primal point for feasibility within tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.n {
            return false;
        }
        for (j, &v) in x.iter().enumerate() {
            if v < -tol || v > self.upper[j] + tol {
                return false;
            }
        }
        for i in 0..self.m {
            let lhs: f64 = (0..self.n).map(|j| self.a(i, j) * x[j]).sum();
            if lhs > self.b[i] + tol {
                return false;
            }
        }
        true
    }

    /// Objective value of a primal point.
    pub fn objective_of(&self, x: &[f64]) -> f64 {
        self.c.iter().zip(x).map(|(c, v)| c * v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_shape_mismatch() {
        assert!(matches!(
            LpProblem::new(vec![1.0], vec![1.0, 2.0], vec![1.0], vec![1.0]),
            Err(LpError::BadShape(_))
        ));
        assert!(matches!(
            LpProblem::new(vec![1.0], vec![1.0], vec![1.0], vec![]),
            Err(LpError::BadShape(_))
        ));
        assert!(matches!(
            LpProblem::new(vec![], vec![], vec![], vec![]),
            Err(LpError::BadShape(_))
        ));
    }

    #[test]
    fn rejects_negative_rhs() {
        assert!(matches!(
            LpProblem::new(vec![1.0], vec![1.0], vec![-1.0], vec![1.0]),
            Err(LpError::NegativeRhs { row: 0, .. })
        ));
    }

    #[test]
    fn rejects_nan() {
        assert!(matches!(
            LpProblem::new(vec![f64::NAN], vec![1.0], vec![1.0], vec![1.0]),
            Err(LpError::NotFinite { what: "c", .. })
        ));
    }

    #[test]
    fn rejects_negative_bound() {
        assert!(matches!(
            LpProblem::new(vec![1.0], vec![1.0], vec![1.0], vec![-0.5]),
            Err(LpError::BadBound { .. })
        ));
    }

    #[test]
    fn feasibility_checker() {
        let p = LpProblem::new(vec![1.0, 1.0], vec![1.0, 1.0], vec![1.5], vec![1.0, 1.0]).unwrap();
        assert!(p.is_feasible(&[0.5, 1.0], 1e-9));
        assert!(!p.is_feasible(&[1.0, 1.0], 1e-9)); // row sum 2 > 1.5
        assert!(!p.is_feasible(&[-0.1, 0.0], 1e-9));
        assert!(!p.is_feasible(&[0.0, 1.1], 1e-9));
        assert!(!p.is_feasible(&[0.0], 1e-9));
    }

    #[test]
    fn objective_of_point() {
        let p = LpProblem::new(vec![2.0, 3.0], vec![1.0, 1.0], vec![10.0], vec![5.0, 5.0]).unwrap();
        assert!((p.objective_of(&[1.0, 2.0]) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        let e = LpError::NegativeRhs {
            row: 3,
            value: -2.0,
        };
        assert!(e.to_string().contains("b[3]"));
    }
}
