//! How hard is the FP suite for greedy? (E1 must be a real test.)
use mkp::eval::Ratios;
use mkp::generate::fp_suite;
use mkp::greedy::greedy;
use mkp_exact::{solve, BbConfig};

fn main() {
    let cfg = BbConfig::default();
    let mut greedy_optimal = 0;
    let mut total_nodes = 0u64;
    for inst in fp_suite() {
        let r = solve(&inst, &cfg);
        assert!(r.proven);
        total_nodes += r.nodes;
        let g = greedy(&inst, &Ratios::new(&inst));
        if g.value() == r.solution.value() {
            greedy_optimal += 1;
        }
    }
    println!("greedy optimal on {greedy_optimal}/57; total nodes {total_nodes}");
}
