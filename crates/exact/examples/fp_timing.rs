//! Ad-hoc timing check: certify the whole FP suite, warm-starting the proof
//! with the best solution of a first (truncated) dive.
use mkp::generate::fp_suite;
use mkp_exact::{solve_with_incumbent, BbConfig};
use std::time::Instant;

fn main() {
    let scout = BbConfig {
        node_limit: 2_000_000,
        ..BbConfig::default()
    };
    let prove = BbConfig {
        node_limit: 100_000_000,
        ..BbConfig::default()
    };
    let start = Instant::now();
    let mut unproven = 0;
    for inst in fp_suite() {
        let t = Instant::now();
        let first = solve_with_incumbent(&inst, &scout, None);
        let r = if first.proven {
            first
        } else {
            solve_with_incumbent(&inst, &prove, Some(&first.solution))
        };
        let dt = t.elapsed().as_secs_f64();
        if !r.proven {
            unproven += 1;
            println!("UNPROVEN {} nodes={} {:.1}s", inst.name(), r.nodes, dt);
        } else if dt > 1.0 {
            println!("slow {} {:.1}s nodes={}", inst.name(), dt, r.nodes);
        }
    }
    println!(
        "total {:.2}s, unproven {}",
        start.elapsed().as_secs_f64(),
        unproven
    );
}
