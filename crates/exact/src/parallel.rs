//! Parallel branch & bound by subtree decomposition.
//!
//! The same decomposition idea the search-space mode uses (fix the first
//! `D = ⌊log₂ P⌋` variables of the branching order to the bits of the
//! worker index) applied to the *exact* solver: the 2^D cells partition
//! the B&B tree into disjoint subtrees, each proved by its own worker.
//! Workers share one atomic incumbent, so a strong solution found in one
//! cell immediately tightens the pruning in every other — the classic
//! superlinear-speedup mechanism of parallel B&B (and, on one core, still a
//! correct and tested execution path).

use crate::bounds::{lp_bound, Surrogate};
use crate::branch_bound::{BbConfig, BbResult};
use mkp::eval::Ratios;
use mkp::greedy::greedy;
use mkp::{BitVec, Instance, Solution};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Solve exactly with `workers` parallel subtree provers.
///
/// `workers` is rounded down to a power of two (the cell count); 1 worker
/// degenerates to the sequential DFS semantics.
pub fn solve_parallel(inst: &Instance, cfg: &BbConfig, workers: usize) -> BbResult {
    assert!(workers >= 1, "need at least one worker");
    let cells = workers.next_power_of_two() / if workers.is_power_of_two() { 1 } else { 2 };
    let d = cells.trailing_zeros() as usize;

    let ratios = Ratios::new(inst);
    let seed_incumbent = greedy(inst, &ratios);
    let lp = lp_bound(inst).expect("MKP relaxation is always a valid LP");
    let root_lp = lp.objective;
    if (root_lp - seed_incumbent.value() as f64).abs() < 1e-6 {
        return BbResult {
            solution: seed_incumbent,
            proven: true,
            nodes: 0,
            root_lp,
            fixed_at_root: 0,
        };
    }

    let surrogate = Surrogate::from_duals(inst, &lp.duals, cfg.surrogate_scale);
    let order = surrogate.ratio_order(inst);
    let split = &order[..d.min(order.len())];

    let best_value = AtomicI64::new(seed_incumbent.value());
    let best_bits: Mutex<Option<BitVec>> = Mutex::new(None);
    let total_nodes = AtomicU64::new(0);
    let truncated = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for cell in 0..cells {
            let surrogate = &surrogate;
            let order = &order;
            let best_value = &best_value;
            let best_bits = &best_bits;
            let total_nodes = &total_nodes;
            let truncated = &truncated;
            scope.spawn(move || {
                // Build the cell's root: forced prefix assignment.
                let mut partial = Solution::empty(inst);
                let mut s_remaining = surrogate.capacity;
                let mut feasible = true;
                for (bit, &j) in split.iter().enumerate() {
                    if (cell >> bit) & 1 == 1 {
                        if !partial.fits(inst, j) {
                            feasible = false; // empty cell
                            break;
                        }
                        partial.add(inst, j);
                        s_remaining -= surrogate.weights[j];
                    }
                }
                if !feasible {
                    return;
                }
                let mut worker = CellProver {
                    inst,
                    surrogate,
                    order,
                    split_len: split.len(),
                    node_limit: cfg.node_limit / cells as u64,
                    nodes: 0,
                    truncated: false,
                    best_value,
                    best_bits,
                };
                worker.dive(&mut partial, split.len(), s_remaining);
                total_nodes.fetch_add(worker.nodes, Ordering::Relaxed);
                if worker.truncated {
                    truncated.store(true, Ordering::Relaxed);
                }
            });
        }
    });

    let bits = best_bits
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    let solution = match bits {
        Some(b) => Solution::from_bits(inst, b),
        None => seed_incumbent,
    };
    debug_assert!(solution.is_feasible(inst));
    debug_assert_eq!(solution.value(), best_value.load(Ordering::Relaxed));
    BbResult {
        solution,
        proven: !truncated.load(Ordering::Relaxed),
        nodes: total_nodes.load(Ordering::Relaxed),
        root_lp,
        fixed_at_root: 0,
    }
}

struct CellProver<'a> {
    inst: &'a Instance,
    surrogate: &'a Surrogate,
    order: &'a [usize],
    split_len: usize,
    node_limit: u64,
    nodes: u64,
    truncated: bool,
    best_value: &'a AtomicI64,
    best_bits: &'a Mutex<Option<BitVec>>,
}

impl CellProver<'_> {
    /// Publish an improvement atomically (value CAS + bits under the lock).
    fn publish(&self, partial: &Solution) {
        let value = partial.value();
        let mut current = self.best_value.load(Ordering::Relaxed);
        while value > current {
            match self.best_value.compare_exchange(
                current,
                value,
                Ordering::SeqCst,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    // The slot is replaced wholesale, never partially
                    // written, so recovering a poisoned lock is safe.
                    *self
                        .best_bits
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner) = Some(partial.bits().clone());
                    return;
                }
                Err(actual) => current = actual,
            }
        }
    }

    fn dive(&mut self, partial: &mut Solution, k: usize, s_remaining: i64) {
        self.nodes += 1;
        if self.nodes > self.node_limit {
            self.truncated = true;
            return;
        }
        if partial.value() > self.best_value.load(Ordering::Relaxed) {
            self.publish(partial);
        }
        if k == self.order.len() {
            return;
        }
        let incumbent = self.best_value.load(Ordering::Relaxed);
        let bound = partial.value() as f64
            + self
                .surrogate
                .dantzig_suffix(self.inst, &self.order[k..], s_remaining);
        if bound < incumbent as f64 + 1.0 - 1e-6 {
            return;
        }
        debug_assert!(k >= self.split_len, "split prefix is fixed");
        let j = self.order[k];
        if partial.fits(self.inst, j) {
            partial.add(self.inst, j);
            self.dive(partial, k + 1, s_remaining - self.surrogate.weights[j]);
            partial.drop(self.inst, j);
            if self.truncated {
                return;
            }
        }
        self.dive(partial, k + 1, s_remaining);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_bound::solve;
    use mkp::generate::{fp_instance, uncorrelated_instance};

    #[test]
    fn matches_sequential_dfs() {
        for seed in 0..10 {
            let inst = uncorrelated_instance("par", 22, 3, 0.5, seed);
            let seq = solve(&inst, &BbConfig::default());
            for workers in [1usize, 2, 4] {
                let par = solve_parallel(&inst, &BbConfig::default(), workers);
                assert!(par.proven, "seed {seed} workers {workers}");
                assert_eq!(
                    par.solution.value(),
                    seq.solution.value(),
                    "seed {seed} workers {workers}"
                );
            }
        }
    }

    #[test]
    fn matches_on_fp_sample() {
        for k in [0usize, 5, 20, 36, 41] {
            let inst = fp_instance(k);
            let seq = solve(&inst, &BbConfig::default());
            let par = solve_parallel(&inst, &BbConfig::default(), 4);
            assert!(par.proven, "{}", inst.name());
            assert_eq!(
                par.solution.value(),
                seq.solution.value(),
                "{}",
                inst.name()
            );
        }
    }

    #[test]
    fn non_power_of_two_workers_rounded() {
        let inst = uncorrelated_instance("rw", 18, 3, 0.5, 3);
        let seq = solve(&inst, &BbConfig::default());
        for workers in [3usize, 5, 6] {
            let par = solve_parallel(&inst, &BbConfig::default(), workers);
            assert!(par.proven);
            assert_eq!(par.solution.value(), seq.solution.value());
        }
    }

    #[test]
    fn node_limit_truncates_gracefully() {
        let inst = fp_instance(38);
        let r = solve_parallel(
            &inst,
            &BbConfig {
                node_limit: 8,
                ..BbConfig::default()
            },
            4,
        );
        assert!(r.solution.is_feasible(&inst));
    }

    #[test]
    fn solution_always_feasible_and_consistent() {
        for seed in 0..5 {
            let inst = uncorrelated_instance("fc", 20, 4, 0.5, seed);
            let r = solve_parallel(&inst, &BbConfig::default(), 4);
            assert!(r.solution.is_feasible(&inst));
            assert!(r.solution.check_consistent(&inst));
        }
    }
}
