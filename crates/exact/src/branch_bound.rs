//! Depth-first branch & bound for the 0–1 MKP.
//!
//! Variables are branched in descending surrogate-ratio order (surrogate
//! multipliers from the root LP duals), with the fractional surrogate bound
//! pruning each node in O(remaining items). Reduced-cost fixing at the root
//! shrinks the search space before the dive — the "size reduction" idea of
//! Fréville & Plateau, whose instances this solver certifies.

use crate::bounds::{lp_bound, Surrogate};
use crate::reduce::{fix_variables, Fixing};
use mkp::eval::Ratios;
use mkp::greedy::greedy;
use mkp::{Instance, Solution};

/// Branch & bound configuration.
#[derive(Debug, Clone)]
pub struct BbConfig {
    /// Abort the proof after this many nodes (the incumbent is still
    /// returned, flagged `proven = false`).
    pub node_limit: u64,
    /// Scale applied to LP duals when deriving integer surrogate
    /// multipliers.
    pub surrogate_scale: f64,
    /// Apply reduced-cost variable fixing at the root.
    pub use_fixing: bool,
}

impl Default for BbConfig {
    fn default() -> Self {
        BbConfig {
            node_limit: 100_000_000,
            surrogate_scale: 1000.0,
            use_fixing: true,
        }
    }
}

/// Result of a branch & bound run.
#[derive(Debug, Clone)]
pub struct BbResult {
    /// Best solution found (the certified optimum when `proven`).
    pub solution: Solution,
    /// True when the search space was exhausted within the node limit.
    pub proven: bool,
    /// Nodes expanded.
    pub nodes: u64,
    /// Root LP relaxation value.
    pub root_lp: f64,
    /// Variables fixed by reduced-cost pegging at the root.
    pub fixed_at_root: usize,
}

/// Solve an instance exactly (up to the node limit).
pub fn solve(inst: &Instance, cfg: &BbConfig) -> BbResult {
    solve_with_incumbent(inst, cfg, None)
}

/// Solve with a warm-start incumbent (e.g. a tabu-search solution). A strong
/// incumbent shrinks the proof tree dramatically: reduced-cost fixing pegs
/// more variables and the bound prunes earlier.
pub fn solve_with_incumbent(inst: &Instance, cfg: &BbConfig, warm: Option<&Solution>) -> BbResult {
    let ratios = Ratios::new(inst);
    let mut incumbent = greedy(inst, &ratios);
    if let Some(w) = warm {
        assert!(w.is_feasible(inst), "warm-start incumbent must be feasible");
        if w.value() > incumbent.value() {
            incumbent = w.clone();
        }
    }

    let lp = lp_bound(inst).expect("MKP relaxation is always a valid LP");
    let root_lp = lp.objective;

    // Root LP integral and matching greedy ⇒ done without search.
    if (root_lp - incumbent.value() as f64).abs() < 1e-6 {
        return BbResult {
            solution: incumbent,
            proven: true,
            nodes: 0,
            root_lp,
            fixed_at_root: 0,
        };
    }

    let fixing = if cfg.use_fixing {
        fix_variables(inst, &lp, incumbent.value())
    } else {
        Fixing::none(inst.n())
    };

    let surrogate = Surrogate::from_duals(inst, &lp.duals, cfg.surrogate_scale);
    // Branch order: free variables only, by descending surrogate ratio.
    let order: Vec<usize> = surrogate
        .ratio_order(inst)
        .into_iter()
        .filter(|&j| fixing.fixed[j].is_none())
        .collect();

    // Base partial solution holds the variables fixed to one.
    let mut partial = Solution::empty(inst);
    let mut base_feasible = true;
    for j in 0..inst.n() {
        if fixing.fixed[j] == Some(true) {
            if !partial.fits(inst, j) {
                // Fixing produced an infeasible base — only possible when the
                // incumbent is already optimal; fall back to no fixing.
                base_feasible = false;
                break;
            }
            partial.add(inst, j);
        }
    }
    let (order, partial) = if base_feasible {
        (order, partial)
    } else {
        (surrogate.ratio_order(inst), Solution::empty(inst))
    };

    let mut search = Search {
        inst,
        surrogate: &surrogate,
        order: &order,
        cfg,
        nodes: 0,
        truncated: false,
        best_value: incumbent.value(),
        best_bits: None,
    };
    let s_remaining = surrogate.capacity
        - partial
            .bits()
            .iter_ones()
            .map(|j| surrogate.weights[j])
            .sum::<i64>();
    let mut partial = partial;
    search.dive(&mut partial, 0, s_remaining);

    if let Some(bits) = search.best_bits {
        incumbent = Solution::from_bits(inst, bits);
    }
    debug_assert!(incumbent.is_feasible(inst));
    BbResult {
        solution: incumbent,
        proven: !search.truncated,
        nodes: search.nodes,
        root_lp,
        fixed_at_root: fixing.count(),
    }
}

struct Search<'a> {
    inst: &'a Instance,
    surrogate: &'a Surrogate,
    order: &'a [usize],
    cfg: &'a BbConfig,
    nodes: u64,
    truncated: bool,
    best_value: i64,
    best_bits: Option<mkp::BitVec>,
}

impl Search<'_> {
    /// DFS from position `k` in the branch order with `s_remaining`
    /// surrogate capacity.
    fn dive(&mut self, partial: &mut Solution, k: usize, s_remaining: i64) {
        self.nodes += 1;
        if self.nodes > self.cfg.node_limit {
            self.truncated = true;
            return;
        }

        if partial.value() > self.best_value {
            self.best_value = partial.value();
            self.best_bits = Some(partial.bits().clone());
        }
        if k == self.order.len() {
            return;
        }

        // Fractional surrogate bound over the undecided suffix. Integer
        // objective ⇒ prune unless the bound admits ≥ best + 1.
        let bound = partial.value() as f64
            + self
                .surrogate
                .dantzig_suffix(self.inst, &self.order[k..], s_remaining);
        if bound < self.best_value as f64 + 1.0 - 1e-6 {
            return;
        }

        let j = self.order[k];
        // Take-branch first: ratio order makes x_j = 1 the promising side.
        if partial.fits(self.inst, j) {
            partial.add(self.inst, j);
            self.dive(partial, k + 1, s_remaining - self.surrogate.weights[j]);
            partial.drop(self.inst, j);
            if self.truncated {
                return;
            }
        }
        self.dive(partial, k + 1, s_remaining);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::solve_single;
    use mkp::generate::{fp_instance, uncorrelated_instance};
    use mkp::prop_check;
    use mkp::testkit::gen;

    fn brute_force(inst: &Instance) -> i64 {
        assert!(inst.n() <= 20);
        let mut best = 0i64;
        for mask in 0u32..(1 << inst.n()) {
            let mut ok = true;
            for i in 0..inst.m() {
                let load: i64 = (0..inst.n())
                    .filter(|&j| (mask >> j) & 1 == 1)
                    .map(|j| inst.weight(i, j))
                    .sum();
                if load > inst.capacity(i) {
                    ok = false;
                    break;
                }
            }
            if ok {
                let v: i64 = (0..inst.n())
                    .filter(|&j| (mask >> j) & 1 == 1)
                    .map(|j| inst.profit(j))
                    .sum();
                best = best.max(v);
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_small() {
        for seed in 0..25 {
            let inst = uncorrelated_instance("b", 14, 3, 0.5, seed);
            let r = solve(&inst, &BbConfig::default());
            assert!(r.proven);
            assert_eq!(r.solution.value(), brute_force(&inst), "seed {seed}");
            assert!(r.solution.is_feasible(&inst));
        }
    }

    #[test]
    fn matches_dp_on_single_constraint() {
        for seed in 0..25 {
            let inst = uncorrelated_instance("d", 40, 1, 0.5, seed);
            let bb = solve(&inst, &BbConfig::default());
            let dp = solve_single(&inst);
            assert!(bb.proven);
            assert_eq!(bb.solution.value(), dp.value(), "seed {seed}");
        }
    }

    #[test]
    fn fixing_does_not_change_optimum() {
        for seed in 0..10 {
            let inst = uncorrelated_instance("f", 25, 4, 0.5, seed);
            let with = solve(&inst, &BbConfig::default());
            let without = solve(
                &inst,
                &BbConfig {
                    use_fixing: false,
                    ..BbConfig::default()
                },
            );
            assert_eq!(
                with.solution.value(),
                without.solution.value(),
                "seed {seed}"
            );
            assert!(with.proven && without.proven);
        }
    }

    #[test]
    fn node_limit_degrades_gracefully() {
        let inst = fp_instance(30);
        let r = solve(
            &inst,
            &BbConfig {
                node_limit: 5,
                use_fixing: false,
                ..BbConfig::default()
            },
        );
        // Must still return a feasible incumbent even when truncated.
        assert!(r.solution.is_feasible(&inst));
        assert!(r.nodes <= 6);
    }

    #[test]
    fn root_lp_dominates_optimum() {
        for seed in 0..10 {
            let inst = uncorrelated_instance("l", 18, 3, 0.5, seed);
            let r = solve(&inst, &BbConfig::default());
            assert!(r.root_lp + 1e-6 >= r.solution.value() as f64);
        }
    }

    #[test]
    fn solves_fp_style_instance() {
        // A mid-size FP instance should be provable quickly.
        let inst = fp_instance(20);
        let r = solve(&inst, &BbConfig::default());
        assert!(r.proven, "FP21 not proven in node limit");
        assert!(r.solution.value() > 0);
    }

    #[test]
    fn prop_bb_matches_brute_force() {
        prop_check!(
            cases = 16,
            |rng| (rng.next_u64(), gen::usize_in(rng, 1, 5)),
            |input| {
                let (seed, m) = *input;
                if m < 1 {
                    return; // shrinking may zero the constraint count
                }
                let inst = uncorrelated_instance("p", 12, m, 0.5, seed);
                let r = solve(&inst, &BbConfig::default());
                assert!(r.proven);
                assert_eq!(r.solution.value(), brute_force(&inst));
            }
        );
    }
}
