//! Dynamic programming for the single-constraint 0–1 knapsack.
//!
//! O(n·b) time and memory — only sensible for the small capacities of the
//! test instances, where it serves as an independent oracle for the branch
//! & bound (two exact solvers implemented from different principles agreeing
//! on thousands of random instances is the strongest correctness evidence we
//! can build offline).

use mkp::{BitVec, Instance, Solution};

/// Exact solution of a single-constraint instance by DP over capacities.
///
/// Panics if `inst.m() != 1`.
pub fn solve_single(inst: &Instance) -> Solution {
    assert_eq!(inst.m(), 1, "DP solver handles exactly one constraint");
    let n = inst.n();
    let cap = inst.capacity(0) as usize;
    let row = inst.constraint_row(0);

    // dp[w] = best value with capacity w using items 0..=k; `taken` records
    // the decision per (item, capacity) for reconstruction.
    let mut dp = vec![0i64; cap + 1];
    let mut taken: Vec<BitVec> = Vec::with_capacity(n);
    for (j, &row_w) in row.iter().enumerate() {
        let w = row_w as usize;
        let c = inst.profit(j);
        let mut t = BitVec::zeros(cap + 1);
        if w <= cap {
            // Iterate downwards so each item is used at most once.
            for b in (w..=cap).rev() {
                let candidate = dp[b - w] + c;
                if candidate > dp[b] {
                    dp[b] = candidate;
                    t.set(b, true);
                }
            }
        }
        taken.push(t);
    }

    // Reconstruct the item set.
    let mut bits = BitVec::zeros(n);
    let mut b = cap;
    for j in (0..n).rev() {
        if taken[j].get(b) {
            bits.set(j, true);
            b -= row[j] as usize;
        }
    }
    let sol = Solution::from_bits(inst, bits);
    debug_assert!(sol.is_feasible(inst));
    debug_assert_eq!(sol.value(), dp[cap]);
    sol
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkp::generate::uncorrelated_instance;
    use mkp::prop_check;

    #[test]
    fn hand_example() {
        // Classic: profits 60/100/120, weights 10/20/30, cap 50 → 220.
        let inst =
            Instance::new("k", 3, 1, vec![60, 100, 120], vec![10, 20, 30], vec![50]).unwrap();
        let sol = solve_single(&inst);
        assert_eq!(sol.value(), 220);
        assert!(!sol.contains(0) && sol.contains(1) && sol.contains(2));
    }

    #[test]
    fn zero_capacity() {
        let inst = Instance::new("z", 2, 1, vec![5, 5], vec![1, 1], vec![0]).unwrap();
        assert_eq!(solve_single(&inst).value(), 0);
    }

    #[test]
    fn all_items_fit() {
        let inst = Instance::new("a", 3, 1, vec![1, 2, 3], vec![1, 1, 1], vec![10]).unwrap();
        assert_eq!(solve_single(&inst).value(), 6);
    }

    #[test]
    fn oversized_item_skipped() {
        let inst = Instance::new("o", 2, 1, vec![100, 5], vec![99, 1], vec![10]).unwrap();
        assert_eq!(solve_single(&inst).value(), 5);
    }

    #[test]
    #[should_panic(expected = "exactly one constraint")]
    fn rejects_multi_constraint() {
        let inst = Instance::new("m", 1, 2, vec![1], vec![1, 1], vec![1, 1]).unwrap();
        solve_single(&inst);
    }

    #[test]
    fn matches_brute_force_on_random() {
        for seed in 0..30 {
            let inst = uncorrelated_instance("r", 14, 1, 0.5, seed);
            let dp = solve_single(&inst);
            let mut best = 0i64;
            for mask in 0u32..(1 << inst.n()) {
                let load: i64 = (0..inst.n())
                    .filter(|&j| (mask >> j) & 1 == 1)
                    .map(|j| inst.weight(0, j))
                    .sum();
                if load <= inst.capacity(0) {
                    let v: i64 = (0..inst.n())
                        .filter(|&j| (mask >> j) & 1 == 1)
                        .map(|j| inst.profit(j))
                        .sum();
                    best = best.max(v);
                }
            }
            assert_eq!(dp.value(), best, "seed {seed}");
        }
    }

    #[test]
    fn prop_dp_solution_consistent() {
        prop_check!(|rng| rng.next_u64(), |seed| {
            let inst = uncorrelated_instance("p", 20, 1, 0.5, *seed);
            let sol = solve_single(&inst);
            assert!(sol.is_feasible(&inst));
            assert!(sol.check_consistent(&inst));
        });
    }
}
