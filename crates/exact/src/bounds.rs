//! Relaxation bounds: LP relaxation and surrogate relaxation.

use mkp::Instance;
use simplex_lp::{LpError, LpProblem, LpSolution};

/// Solve the LP relaxation of an MKP instance (`0 ≤ x_j ≤ 1`).
///
/// The optimal objective is a valid upper bound on the integer optimum; the
/// duals feed the surrogate multipliers and reduced-cost fixing.
pub fn lp_bound(inst: &Instance) -> Result<LpSolution, LpError> {
    let n = inst.n();
    let m = inst.m();
    let c: Vec<f64> = inst.profits().iter().map(|&v| v as f64).collect();
    let mut a = vec![0.0; m * n];
    for i in 0..m {
        for (j, &w) in inst.constraint_row(i).iter().enumerate() {
            a[i * n + j] = w as f64;
        }
    }
    let b: Vec<f64> = inst.capacities().iter().map(|&v| v as f64).collect();
    let problem = LpProblem::new(c, a, b, vec![1.0; n])?;
    simplex_lp::solve(&problem)
}

/// Reduced costs `d_j = c_j − y·A_j` for given duals.
pub fn reduced_costs(inst: &Instance, duals: &[f64]) -> Vec<f64> {
    assert_eq!(duals.len(), inst.m());
    (0..inst.n())
        .map(|j| {
            let mut d = inst.profit(j) as f64;
            for (i, &a) in inst.item_weights(j).iter().enumerate() {
                d -= duals[i] * a as f64;
            }
            d
        })
        .collect()
}

/// A surrogate relaxation of the MKP: the single knapsack constraint
/// `Σ_j s_j x_j ≤ S` obtained as a non-negative integer combination of the
/// original rows. Any feasible MKP solution satisfies it, so any upper bound
/// for the surrogate knapsack bounds the MKP.
#[derive(Debug, Clone)]
pub struct Surrogate {
    /// Surrogate weight per item, `s_j = Σ_i μ_i a_ij`.
    pub weights: Vec<i64>,
    /// Surrogate capacity `S = Σ_i μ_i b_i`.
    pub capacity: i64,
    /// The multipliers used.
    pub multipliers: Vec<i64>,
}

impl Surrogate {
    /// Build a surrogate constraint from non-negative integer multipliers
    /// (not all zero).
    pub fn new(inst: &Instance, multipliers: Vec<i64>) -> Self {
        assert_eq!(multipliers.len(), inst.m());
        assert!(
            multipliers.iter().all(|&u| u >= 0),
            "multipliers must be ≥ 0"
        );
        assert!(
            multipliers.iter().any(|&u| u > 0),
            "multipliers must not be all zero"
        );
        let weights: Vec<i64> = (0..inst.n())
            .map(|j| {
                inst.item_weights(j)
                    .iter()
                    .zip(&multipliers)
                    .map(|(&a, &u)| u * a)
                    .sum()
            })
            .collect();
        let capacity = inst
            .capacities()
            .iter()
            .zip(&multipliers)
            .map(|(&b, &u)| u * b)
            .sum();
        Surrogate {
            weights,
            capacity,
            multipliers,
        }
    }

    /// Derive multipliers from LP duals: `μ_i = round(scale · y_i)`, with a
    /// uniform fallback when everything rounds to zero. LP duals are the
    /// classic near-optimal surrogate multipliers for the MKP.
    pub fn from_duals(inst: &Instance, duals: &[f64], scale: f64) -> Self {
        let mut mult: Vec<i64> = duals
            .iter()
            .map(|&y| (y.max(0.0) * scale).round() as i64)
            .collect();
        if mult.iter().all(|&u| u == 0) {
            mult.fill(1);
        }
        Surrogate::new(inst, mult)
    }

    /// Dantzig (fractional) bound for the surrogate knapsack restricted to a
    /// subset of free items, given in **descending profit/surrogate-weight
    /// order**, with `capacity` remaining. O(len(order)).
    pub fn dantzig_suffix(&self, inst: &Instance, order: &[usize], capacity: i64) -> f64 {
        let mut remaining = capacity;
        if remaining < 0 {
            return f64::NEG_INFINITY; // surrogate already violated
        }
        let mut bound = 0.0;
        for &j in order {
            let s = self.weights[j];
            if s == 0 {
                bound += inst.profit(j) as f64;
            } else if s <= remaining {
                bound += inst.profit(j) as f64;
                remaining -= s;
            } else {
                bound += inst.profit(j) as f64 * remaining as f64 / s as f64;
                break;
            }
        }
        bound
    }

    /// Item order by descending `c_j / s_j` (∞ first), the branching order
    /// used by the B&B.
    pub fn ratio_order(&self, inst: &Instance) -> Vec<usize> {
        let mut order: Vec<usize> = (0..inst.n()).collect();
        let ratio = |j: usize| {
            let s = self.weights[j];
            if s == 0 {
                f64::INFINITY
            } else {
                inst.profit(j) as f64 / s as f64
            }
        };
        order.sort_by(|&a, &b| {
            ratio(b)
                .partial_cmp(&ratio(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkp::generate::uncorrelated_instance;
    use mkp::Instance;

    fn tiny() -> Instance {
        Instance::new(
            "tiny",
            3,
            2,
            vec![10, 6, 4],
            vec![5, 4, 3, 1, 2, 3],
            vec![8, 4],
        )
        .unwrap()
    }

    #[test]
    fn lp_bound_dominates_feasible_values() {
        let inst = tiny();
        let lp = lp_bound(&inst).unwrap();
        // Feasible integral solutions: {0,2} value 14 is feasible (loads 8,4).
        assert!(lp.objective + 1e-9 >= 14.0);
    }

    #[test]
    fn reduced_costs_shape_and_sign() {
        let inst = tiny();
        let lp = lp_bound(&inst).unwrap();
        let d = reduced_costs(&inst, &lp.duals);
        assert_eq!(d.len(), 3);
        // At LP optimality, variables at value 0 have d ≤ 0 and at 1 have d ≥ 0.
        for (j, &xj) in lp.x.iter().enumerate() {
            if xj < 1e-9 {
                assert!(d[j] <= 1e-6, "x[{j}]=0 but d={}", d[j]);
            } else if xj > 1.0 - 1e-9 {
                assert!(d[j] >= -1e-6, "x[{j}]=1 but d={}", d[j]);
            }
        }
    }

    #[test]
    fn surrogate_from_unit_multipliers() {
        let inst = tiny();
        let s = Surrogate::new(&inst, vec![1, 1]);
        assert_eq!(s.weights, vec![6, 6, 6]);
        assert_eq!(s.capacity, 12);
    }

    #[test]
    fn surrogate_is_valid_relaxation() {
        // Every feasible solution satisfies the surrogate constraint.
        let inst = tiny();
        let s = Surrogate::new(&inst, vec![3, 2]);
        for mask in 0u32..8 {
            let items: Vec<usize> = (0..3).filter(|&j| (mask >> j) & 1 == 1).collect();
            let feasible = (0..inst.m())
                .all(|i| items.iter().map(|&j| inst.weight(i, j)).sum::<i64>() <= inst.capacity(i));
            if feasible {
                let sw: i64 = items.iter().map(|&j| s.weights[j]).sum();
                assert!(sw <= s.capacity);
            }
        }
    }

    #[test]
    fn from_duals_falls_back_to_uniform() {
        let inst = tiny();
        let s = Surrogate::from_duals(&inst, &[0.0, 0.0], 1000.0);
        assert_eq!(s.multipliers, vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "not be all zero")]
    fn all_zero_multipliers_rejected() {
        Surrogate::new(&tiny(), vec![0, 0]);
    }

    #[test]
    fn dantzig_suffix_full_set_bounds_lp() {
        // Surrogate Dantzig with LP-dual multipliers must still be ≥ the
        // integer optimum; cross-check against brute force on small cases.
        for seed in 0..10 {
            let inst = uncorrelated_instance("s", 12, 3, 0.5, seed);
            let lp = lp_bound(&inst).unwrap();
            let sur = Surrogate::from_duals(&inst, &lp.duals, 1000.0);
            let order = sur.ratio_order(&inst);
            let bound = sur.dantzig_suffix(&inst, &order, sur.capacity);
            // Brute-force integer optimum.
            let mut best = 0i64;
            for mask in 0u32..(1 << inst.n()) {
                let mut ok = true;
                for i in 0..inst.m() {
                    let load: i64 = (0..inst.n())
                        .filter(|&j| (mask >> j) & 1 == 1)
                        .map(|j| inst.weight(i, j))
                        .sum();
                    if load > inst.capacity(i) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    let v: i64 = (0..inst.n())
                        .filter(|&j| (mask >> j) & 1 == 1)
                        .map(|j| inst.profit(j))
                        .sum();
                    best = best.max(v);
                }
            }
            assert!(
                bound + 1e-6 >= best as f64,
                "seed {seed}: surrogate bound {bound} < optimum {best}"
            );
        }
    }

    #[test]
    fn ratio_order_is_descending() {
        let inst = tiny();
        let s = Surrogate::new(&inst, vec![1, 1]);
        let order = s.ratio_order(&inst);
        // weights all 6 → order by profit: 0, 1, 2.
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn dantzig_suffix_negative_capacity() {
        let inst = tiny();
        let s = Surrogate::new(&inst, vec![1, 1]);
        let order = s.ratio_order(&inst);
        assert_eq!(s.dantzig_suffix(&inst, &order, -1), f64::NEG_INFINITY);
    }
}
