//! # mkp-exact — exact solvers and relaxation bounds for the 0–1 MKP
//!
//! The paper's experiment on the Fréville–Plateau suite claims the heuristic
//! reaches *the optimum* on all 57 problems; checking that claim requires a
//! certifying exact solver. This crate provides:
//!
//! * [`bounds::lp_bound`] — the LP relaxation bound via `simplex-lp`, plus
//!   the dual values used everywhere else;
//! * [`bounds::Surrogate`] — surrogate-relaxation machinery: integer
//!   multipliers derived from LP duals, and the O(n) Dantzig bound on the
//!   surrogate constraint that the branch & bound evaluates at every node;
//! * [`dp`] — textbook dynamic programming for the single-constraint case
//!   (an independent oracle used to cross-check the B&B);
//! * [`reduce`] — reduced-cost variable fixing (the "size reduction" of
//!   Fréville & Plateau, whose benchmark suite the paper uses);
//! * [`branch_bound`] — depth-first branch & bound over a surrogate-ratio
//!   variable order, returning certified optima with node statistics.
//!
//! ```
//! use mkp::generate::uncorrelated_instance;
//! use mkp_exact::branch_bound::{solve, BbConfig};
//!
//! let inst = uncorrelated_instance("demo", 20, 3, 0.5, 7);
//! let result = solve(&inst, &BbConfig::default());
//! assert!(result.proven);
//! assert!(result.solution.is_feasible(&inst));
//! ```

#![warn(missing_docs)]

pub mod best_first;
pub mod bounds;
pub mod branch_bound;
pub mod dp;
pub mod parallel;
pub mod reduce;

pub use best_first::solve_best_first;
pub use branch_bound::{solve, solve_with_incumbent, BbConfig, BbResult};
pub use parallel::solve_parallel;
