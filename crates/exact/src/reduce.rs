//! Reduced-cost variable fixing ("pegging").
//!
//! Classic MIP size reduction: with LP optimum `z_LP`, duals `y` and reduced
//! costs `d_j`, any integer solution strictly better than the incumbent `z*`
//! must keep `x_j` at its LP bound whenever moving it away costs more than
//! the gap:
//!
//! * `x_j = 0` in the LP and `z_LP + d_j < z* + 1` ⇒ fix `x_j = 0`;
//! * `x_j = 1` in the LP and `z_LP − d_j < z* + 1` ⇒ fix `x_j = 1`.
//!
//! (Objective values are integral, hence the `+ 1`.) This is the
//! size-reduction family the Fréville–Plateau benchmark was designed to
//! stress.

use mkp::Instance;
use simplex_lp::LpSolution;

use crate::bounds::reduced_costs;

/// Outcome of the root fixing pass: `fixed[j] = Some(v)` pegs `x_j = v` in
/// every solution that improves on the incumbent.
#[derive(Debug, Clone)]
pub struct Fixing {
    /// Per-variable peg, `None` when the variable stays free.
    pub fixed: Vec<Option<bool>>,
}

impl Fixing {
    /// No variables fixed.
    pub fn none(n: usize) -> Self {
        Fixing {
            fixed: vec![None; n],
        }
    }

    /// Number of pegged variables.
    pub fn count(&self) -> usize {
        self.fixed.iter().filter(|f| f.is_some()).count()
    }
}

const EPS: f64 = 1e-6;

/// Compute reduced-cost pegs given the root LP solution and the incumbent
/// objective value.
pub fn fix_variables(inst: &Instance, lp: &LpSolution, incumbent: i64) -> Fixing {
    let d = reduced_costs(inst, &lp.duals);
    let target = incumbent as f64 + 1.0; // smallest improving value
    let mut fixed = vec![None; inst.n()];
    for j in 0..inst.n() {
        let xj = lp.x[j];
        if xj < EPS && lp.objective + d[j] < target - EPS {
            fixed[j] = Some(false);
        } else if xj > 1.0 - EPS && lp.objective - d[j] < target - EPS {
            fixed[j] = Some(true);
        }
    }
    Fixing { fixed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::lp_bound;
    use mkp::generate::uncorrelated_instance;

    /// Brute-force optimum restricted to assignments respecting `fixing`.
    fn brute_force_respecting(inst: &Instance, fixing: Option<&Fixing>) -> i64 {
        let mut best = 0i64;
        'mask: for mask in 0u32..(1 << inst.n()) {
            if let Some(fx) = fixing {
                for j in 0..inst.n() {
                    if let Some(v) = fx.fixed[j] {
                        if ((mask >> j) & 1 == 1) != v {
                            continue 'mask;
                        }
                    }
                }
            }
            for i in 0..inst.m() {
                let load: i64 = (0..inst.n())
                    .filter(|&j| (mask >> j) & 1 == 1)
                    .map(|j| inst.weight(i, j))
                    .sum();
                if load > inst.capacity(i) {
                    continue 'mask;
                }
            }
            let v: i64 = (0..inst.n())
                .filter(|&j| (mask >> j) & 1 == 1)
                .map(|j| inst.profit(j))
                .sum();
            best = best.max(v);
        }
        best
    }

    #[test]
    fn none_fixes_nothing() {
        let f = Fixing::none(5);
        assert_eq!(f.count(), 0);
        assert!(f.fixed.iter().all(|v| v.is_none()));
    }

    #[test]
    fn fixing_preserves_improving_optima() {
        // Core validity property: the optimum over fix-respecting solutions
        // must equal the true optimum whenever the true optimum beats the
        // incumbent used for pegging.
        for seed in 0..20 {
            let inst = uncorrelated_instance("f", 14, 3, 0.5, seed);
            let lp = lp_bound(&inst).unwrap();
            let true_opt = brute_force_respecting(&inst, None);
            // Peg against a deliberately weak incumbent so improvement exists.
            let weak = true_opt - 5;
            let fixing = fix_variables(&inst, &lp, weak.max(0));
            let restricted = brute_force_respecting(&inst, Some(&fixing));
            assert_eq!(restricted, true_opt, "seed {seed} lost the optimum");
        }
    }

    #[test]
    fn tight_incumbent_fixes_more() {
        let inst = uncorrelated_instance("t", 16, 3, 0.5, 3);
        let lp = lp_bound(&inst).unwrap();
        let opt = brute_force_respecting(&inst, None);
        let loose = fix_variables(&inst, &lp, (opt - 20).max(0));
        let tight = fix_variables(&inst, &lp, opt - 1);
        assert!(
            tight.count() >= loose.count(),
            "tight incumbent should peg at least as many variables"
        );
    }

    #[test]
    fn lp_integral_variables_only() {
        // Only variables at an LP bound are eligible for pegging.
        let inst = uncorrelated_instance("i", 14, 3, 0.5, 7);
        let lp = lp_bound(&inst).unwrap();
        let fixing = fix_variables(&inst, &lp, 0);
        for j in 0..inst.n() {
            if fixing.fixed[j].is_some() {
                let xj = lp.x[j];
                assert!(
                    !(EPS..=1.0 - EPS).contains(&xj),
                    "fractional var {j} pegged"
                );
            }
        }
    }
}
