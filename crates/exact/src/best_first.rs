//! Best-first branch & bound.
//!
//! The depth-first solver in [`crate::branch_bound`] is memory-frugal but
//! explores subtrees the bound would discard given a better incumbent;
//! best-first expansion always works on the open node with the highest
//! surrogate bound, so it expands a *minimal* set of nodes for the given
//! bound function — at the price of an open list that can grow large. Both
//! solvers share the surrogate machinery and must agree exactly, which the
//! tests exploit as a cross-validation oracle.

use crate::bounds::{lp_bound, Surrogate};
use crate::branch_bound::{BbConfig, BbResult};
use mkp::eval::Ratios;
use mkp::greedy::greedy;
use mkp::{BitVec, Instance, Solution};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An open node: decisions made for `order[..k]`, packed items in `bits`.
struct Node {
    bound: f64,
    k: usize,
    bits: BitVec,
    value: i64,
    loads: Vec<i64>,
    s_remaining: i64,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by bound; deeper node first on ties (cheaper to close).
        self.bound
            .total_cmp(&other.bound)
            .then(self.k.cmp(&other.k))
    }
}

/// Cap on the open list; beyond it the proof is abandoned (truncated
/// result) rather than exhausting memory.
const MAX_OPEN: usize = 2_000_000;

/// Solve by best-first expansion. Semantics match
/// [`crate::branch_bound::solve`] (same bound, same branching order).
pub fn solve_best_first(inst: &Instance, cfg: &BbConfig) -> BbResult {
    let ratios = Ratios::new(inst);
    let mut incumbent = greedy(inst, &ratios);

    let lp = lp_bound(inst).expect("MKP relaxation is always a valid LP");
    let root_lp = lp.objective;
    if (root_lp - incumbent.value() as f64).abs() < 1e-6 {
        return BbResult {
            solution: incumbent,
            proven: true,
            nodes: 0,
            root_lp,
            fixed_at_root: 0,
        };
    }

    let surrogate = Surrogate::from_duals(inst, &lp.duals, cfg.surrogate_scale);
    let order = surrogate.ratio_order(inst);

    let root_bound = surrogate.dantzig_suffix(inst, &order, surrogate.capacity);
    let mut open = BinaryHeap::new();
    open.push(Node {
        bound: root_bound,
        k: 0,
        bits: BitVec::zeros(inst.n()),
        value: 0,
        loads: vec![0; inst.m()],
        s_remaining: surrogate.capacity,
    });

    let mut nodes = 0u64;
    let mut best_value = incumbent.value();
    let mut best_bits: Option<BitVec> = None;
    let mut truncated = false;

    while let Some(node) = open.pop() {
        nodes += 1;
        if nodes > cfg.node_limit || open.len() > MAX_OPEN {
            truncated = true;
            break;
        }
        // Best-first invariant: once the best open bound cannot beat the
        // incumbent, the proof is complete.
        if node.bound < best_value as f64 + 1.0 - 1e-6 {
            break;
        }
        if node.k == order.len() {
            continue; // leaf; value already accounted below via children
        }
        let j = order[node.k];

        // Child 1: take item j when it fits.
        let fits = node
            .loads
            .iter()
            .zip(inst.item_weights(j))
            .zip(inst.capacities())
            .all(|((&l, &a), &b)| l + a <= b);
        if fits {
            let mut bits = node.bits.clone();
            bits.set(j, true);
            let mut loads = node.loads.clone();
            for (l, &a) in loads.iter_mut().zip(inst.item_weights(j)) {
                *l += a;
            }
            let value = node.value + inst.profit(j);
            let s_remaining = node.s_remaining - surrogate.weights[j];
            if value > best_value {
                best_value = value;
                best_bits = Some(bits.clone());
            }
            let bound =
                value as f64 + surrogate.dantzig_suffix(inst, &order[node.k + 1..], s_remaining);
            if bound >= best_value as f64 + 1.0 - 1e-6 {
                open.push(Node {
                    bound,
                    k: node.k + 1,
                    bits,
                    value,
                    loads,
                    s_remaining,
                });
            }
        }

        // Child 0: skip item j.
        let bound = node.value as f64
            + surrogate.dantzig_suffix(inst, &order[node.k + 1..], node.s_remaining);
        if bound >= best_value as f64 + 1.0 - 1e-6 {
            open.push(Node {
                bound,
                k: node.k + 1,
                bits: node.bits,
                value: node.value,
                loads: node.loads,
                s_remaining: node.s_remaining,
            });
        }
    }

    if let Some(bits) = best_bits {
        incumbent = Solution::from_bits(inst, bits);
    }
    debug_assert!(incumbent.is_feasible(inst));
    BbResult {
        solution: incumbent,
        proven: !truncated,
        nodes,
        root_lp,
        fixed_at_root: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_bound::solve;
    use mkp::generate::{fp_instance, uncorrelated_instance};

    #[test]
    fn agrees_with_dfs_on_random_instances() {
        for seed in 0..15 {
            let inst = uncorrelated_instance("bf", 22, 3, 0.5, seed);
            let dfs = solve(&inst, &BbConfig::default());
            let bfs = solve_best_first(&inst, &BbConfig::default());
            assert!(dfs.proven && bfs.proven);
            assert_eq!(
                dfs.solution.value(),
                bfs.solution.value(),
                "strategies disagree on seed {seed}"
            );
        }
    }

    #[test]
    fn agrees_on_fp_sample() {
        for k in [0usize, 3, 11, 20, 41] {
            let inst = fp_instance(k);
            let dfs = solve(&inst, &BbConfig::default());
            let bfs = solve_best_first(&inst, &BbConfig::default());
            assert!(dfs.proven && bfs.proven, "{}", inst.name());
            assert_eq!(
                dfs.solution.value(),
                bfs.solution.value(),
                "{}",
                inst.name()
            );
        }
    }

    #[test]
    fn best_first_expands_no_more_nodes_with_same_bound() {
        // Best-first is node-minimal for a fixed bound function up to
        // tie-breaking; it should rarely (and never dramatically) expand
        // more nodes than DFS *without* warm starts. Allow slack for ties.
        let mut bfs_wins = 0;
        let trials = 10;
        for seed in 100..100 + trials {
            let inst = uncorrelated_instance("nm", 20, 3, 0.5, seed);
            let cfg = BbConfig {
                use_fixing: false,
                ..BbConfig::default()
            };
            let dfs = solve(&inst, &cfg);
            let bfs = solve_best_first(&inst, &cfg);
            assert!(dfs.proven && bfs.proven);
            if bfs.nodes <= dfs.nodes {
                bfs_wins += 1;
            }
        }
        assert!(
            bfs_wins * 2 >= trials,
            "best-first lost the node count on most instances ({bfs_wins}/{trials})"
        );
    }

    #[test]
    fn node_limit_truncates_gracefully() {
        let inst = fp_instance(38); // PB7-like, non-trivial
        let r = solve_best_first(
            &inst,
            &BbConfig {
                node_limit: 10,
                ..BbConfig::default()
            },
        );
        assert!(r.solution.is_feasible(&inst));
        // Either proven trivially at the root or truncated at the limit.
        assert!(r.proven || r.nodes >= 10);
    }

    #[test]
    fn feasible_solution_always_returned() {
        for seed in 0..5 {
            let inst = uncorrelated_instance("f", 18, 4, 0.5, seed);
            let r = solve_best_first(&inst, &BbConfig::default());
            assert!(r.solution.is_feasible(&inst));
            assert!(r.solution.check_consistent(&inst));
        }
    }
}
