//! Initial Solution generation Procedure (paper §4.2).
//!
//! Provides each slave's starting solution for the next search iteration:
//!
//! 1. by default, the slave continues from its own best solution;
//! 2. a slave whose best is worse than a fraction `α` of the global best is
//!    restarted from the global best (culling weak pool members, after
//!    Toulouse/Crainic/Gendreau's pool discipline);
//! 3. a slave whose prospective start has not changed for `stale_limit`
//!    rounds is restarted from a fresh randomized-greedy solution.
//!
//! `α` is the macro intensification/diversification dial the paper
//! highlights: α → 1 forces every thread onto the global best (macro
//! intensification); small α with random injections spreads threads over
//! different regions (macro diversification). Ablation A3 sweeps it.

use mkp::greedy::dynamic_randomized_greedy;
use mkp::{BitVec, Instance, Solution, Xoshiro256};

/// ISP tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IspConfig {
    /// Pool-culling fraction `α ∈ (0, 1]`.
    pub alpha: f64,
    /// Rounds an unchanged start is tolerated before a random restart.
    pub stale_limit: u32,
    /// Restricted-candidate-list width of the randomized-greedy restarts.
    pub rcl: usize,
}

impl Default for IspConfig {
    fn default() -> Self {
        // MKP mode gaps are sub-percent, so the culling threshold must sit
        // inside the last percent: a slave more than 0.2% behind the global
        // best is pulled onto it (ablation A3 sweeps this).
        IspConfig {
            alpha: 0.998,
            stale_limit: 3,
            rcl: 4,
        }
    }
}

/// Which ISP rule produced a slave's next start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartKind {
    /// Rule 1: the slave's own best.
    OwnBest,
    /// Rule 2: culled to the global best.
    GlobalBest,
    /// Rule 3: stagnation restart from randomized greedy.
    RandomRestart,
}

/// Per-slave ISP bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct IspState {
    last_start: Option<BitVec>,
    stale_rounds: u32,
}

impl IspState {
    /// The raw bookkeeping (last start, stale-round counter), for
    /// checkpointing.
    pub fn parts(&self) -> (Option<&BitVec>, u32) {
        (self.last_start.as_ref(), self.stale_rounds)
    }

    /// Rebuild the bookkeeping from checkpointed [`parts`](IspState::parts).
    pub fn from_parts(last_start: Option<BitVec>, stale_rounds: u32) -> Self {
        IspState {
            last_start,
            stale_rounds,
        }
    }

    /// Decide the slave's next starting solution.
    pub fn next_initial(
        &mut self,
        cfg: &IspConfig,
        inst: &Instance,
        slave_best: &Solution,
        global_best: &Solution,
        rng: &mut Xoshiro256,
    ) -> (Solution, StartKind) {
        assert!((0.0..=1.0).contains(&cfg.alpha), "alpha must be in (0, 1]");
        // Rule 2: cull weak solutions from the start pool.
        let (candidate, mut kind) =
            if (slave_best.value() as f64) < cfg.alpha * global_best.value() as f64 {
                (global_best.clone(), StartKind::GlobalBest)
            } else {
                (slave_best.clone(), StartKind::OwnBest)
            };

        // Rule 3: detect stagnation of the start itself.
        if self.last_start.as_ref() == Some(candidate.bits()) {
            self.stale_rounds += 1;
        } else {
            self.stale_rounds = 0;
        }
        let chosen = if self.stale_rounds >= cfg.stale_limit {
            self.stale_rounds = 0;
            kind = StartKind::RandomRestart;
            dynamic_randomized_greedy(inst, rng, cfg.rcl)
        } else {
            candidate
        };

        self.last_start = Some(chosen.bits().clone());
        (chosen, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkp::generate::uncorrelated_instance;
    use mkp::greedy::greedy;

    fn setup() -> (Instance, Solution, Solution) {
        let inst = uncorrelated_instance("isp", 30, 3, 0.5, 1);
        let ratios = mkp::eval::Ratios::new(&inst);
        let strong = greedy(&inst, &ratios);
        // A deliberately weak solution: first fitting item only.
        let mut weak = Solution::empty(&inst);
        for j in 0..inst.n() {
            if weak.fits(&inst, j) {
                weak.add(&inst, j);
                break;
            }
        }
        (inst, weak, strong)
    }

    #[test]
    fn healthy_slave_continues_from_own_best() {
        let (inst, _, strong) = setup();
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut state = IspState::default();
        let (start, kind) =
            state.next_initial(&IspConfig::default(), &inst, &strong, &strong, &mut rng);
        assert_eq!(kind, StartKind::OwnBest);
        assert_eq!(start.bits(), strong.bits());
    }

    #[test]
    fn weak_slave_is_culled_to_global_best() {
        let (inst, weak, strong) = setup();
        assert!((weak.value() as f64) < 0.998 * strong.value() as f64);
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut state = IspState::default();
        let (start, kind) =
            state.next_initial(&IspConfig::default(), &inst, &weak, &strong, &mut rng);
        assert_eq!(kind, StartKind::GlobalBest);
        assert_eq!(start.bits(), strong.bits());
    }

    #[test]
    fn alpha_zero_never_culls() {
        let (inst, weak, strong) = setup();
        let cfg = IspConfig {
            alpha: 0.0,
            ..IspConfig::default()
        };
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut state = IspState::default();
        let (_, kind) = state.next_initial(&cfg, &inst, &weak, &strong, &mut rng);
        assert_eq!(kind, StartKind::OwnBest);
    }

    #[test]
    fn stagnation_triggers_random_restart() {
        let (inst, _, strong) = setup();
        let cfg = IspConfig {
            stale_limit: 3,
            ..IspConfig::default()
        };
        let mut rng = Xoshiro256::seed_from_u64(4);
        let mut state = IspState::default();
        let mut kinds = Vec::new();
        for _ in 0..5 {
            let (_, kind) = state.next_initial(&cfg, &inst, &strong, &strong, &mut rng);
            kinds.push(kind);
        }
        assert_eq!(kinds[0], StartKind::OwnBest);
        assert_eq!(kinds[1], StartKind::OwnBest);
        assert_eq!(kinds[2], StartKind::OwnBest);
        assert_eq!(
            kinds[3],
            StartKind::RandomRestart,
            "4th identical start restarts"
        );
        // Counter resets after the restart; the restart solution itself may
        // differ from the previous start, so the next round is OwnBest again.
        assert_eq!(kinds[4], StartKind::OwnBest);
    }

    #[test]
    fn restart_solutions_are_feasible() {
        let (inst, _, strong) = setup();
        let cfg = IspConfig {
            stale_limit: 1,
            ..IspConfig::default()
        };
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut state = IspState::default();
        for _ in 0..10 {
            let (start, _) = state.next_initial(&cfg, &inst, &strong, &strong, &mut rng);
            assert!(start.is_feasible(&inst));
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        let (inst, weak, strong) = setup();
        let cfg = IspConfig {
            alpha: 1.5,
            ..IspConfig::default()
        };
        let mut rng = Xoshiro256::seed_from_u64(6);
        IspState::default().next_initial(&cfg, &inst, &weak, &strong, &mut rng);
    }
}
