//! Write-ahead job journal: append-only, checksummed, torn-tail-tolerant.
//!
//! The job server's durability (DESIGN.md §15) rests on this file format.
//! A journal is a header followed by records:
//!
//! ```text
//! [magic: b"MKPJRNL1"] [version: u32 LE]
//! repeated: [len: u32 LE] [kind: u8] [payload: len-1 bytes] [fnv: u64 LE]
//! ```
//!
//! `len` counts the kind byte plus the payload; `fnv` is the FNV-1a
//! checksum of those `len` bytes. The format deliberately mirrors the
//! socket framing and `core::snapshot`: length-prefixed, checksummed,
//! validated before allocation.
//!
//! The layer is *mechanism only*: records carry an opaque `kind` tag and
//! payload bytes, and the job server upstairs decides what they mean.
//! What this module guarantees:
//!
//! * **Appends are durable** — each [`Journal::append`] flushes and
//!   fsyncs before returning, so an accepted record survives a crash.
//! * **Replay never panics and recovers the longest valid prefix** — a
//!   torn tail (the process died mid-append), a damaged checksum or a
//!   garbage length all just end the replay at the last intact record.
//! * **Reopen truncates the tear** — [`Journal::open`] cuts the file
//!   back to its valid prefix so the next append extends intact state.
//! * **Compaction is atomic** — [`Journal::compact`] rewrites the file
//!   through a temp-and-rename, never leaving a half-written journal.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use pvm_lite::fnv1a_64;

/// First bytes of every journal file.
pub const JOURNAL_MAGIC: [u8; 8] = *b"MKPJRNL1";

/// Format version written after the magic.
pub const JOURNAL_VERSION: u32 = 1;

/// Header length: magic plus version.
const HEADER_LEN: usize = 12;

/// Per-record overhead: length prefix plus checksum trailer.
const RECORD_OVERHEAD: usize = 12;

/// Upper bound on one record's `len` field, checked before allocating —
/// same rationale as the frame layer's payload cap.
pub const MAX_RECORD_LEN: usize = 64 << 20;

/// Journal failures. Torn tails and damaged records are *not* errors —
/// replay absorbs them — so this covers only I/O and a file that is not
/// a journal at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The underlying file operation failed.
    Io(String),
    /// The file exists but does not start with the journal magic: it is
    /// some other file, and appending to it would destroy it.
    NotAJournal(String),
    /// The file's format version is newer than this build understands.
    Version {
        /// The version found in the header.
        found: u32,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(detail) => write!(f, "journal i/o failed: {detail}"),
            JournalError::NotAJournal(path) => {
                write!(f, "{path} is not a job journal (bad magic)")
            }
            JournalError::Version { found } => {
                write!(
                    f,
                    "journal format version {found} is newer than this build ({JOURNAL_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e.to_string())
    }
}

/// One replayed record: the kind tag and its payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Caller-defined record kind.
    pub kind: u8,
    /// Caller-defined payload.
    pub payload: Vec<u8>,
}

/// Encode one record's on-disk bytes.
fn encode_record(kind: u8, payload: &[u8]) -> Vec<u8> {
    let len = payload.len() + 1;
    let mut bytes = Vec::with_capacity(RECORD_OVERHEAD + len);
    bytes.extend_from_slice(&(len as u32).to_le_bytes());
    bytes.push(kind);
    bytes.extend_from_slice(payload);
    let body_start = 4;
    let sum = fnv1a_64(&bytes[body_start..]);
    bytes.extend_from_slice(&sum.to_le_bytes());
    bytes
}

/// Replay a journal's bytes (header included): decode records until the
/// first tear, damage or garbage, and return them together with the
/// byte length of the valid prefix. Never panics; a file too short to
/// hold the header replays as empty with a zero-length prefix.
pub fn replay(bytes: &[u8]) -> (Vec<Record>, usize) {
    if bytes.len() < HEADER_LEN || bytes[..8] != JOURNAL_MAGIC {
        return (Vec::new(), 0);
    }
    let mut records = Vec::new();
    let mut pos = HEADER_LEN;
    while let Some(len_bytes) = bytes.get(pos..pos + 4) {
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        if len == 0 || len > MAX_RECORD_LEN {
            break; // garbage length: stop at the last intact record
        }
        let Some(body) = bytes.get(pos + 4..pos + 4 + len) else {
            break; // torn mid-body
        };
        let Some(sum_bytes) = bytes.get(pos + 4 + len..pos + 4 + len + 8) else {
            break; // torn mid-checksum
        };
        let sum = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
        if sum != fnv1a_64(body) {
            break; // damaged record
        }
        records.push(Record {
            kind: body[0],
            payload: body[1..].to_vec(),
        });
        pos += 4 + len + 8;
    }
    // `pos` stops at the last intact record on any tear, damaged
    // checksum or garbage length encountered above.
    (records, pos)
}

/// An open journal: an append handle positioned after the last valid
/// record. See the module docs for the format and guarantees.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    records: u64,
}

impl Journal {
    /// Open (or create) the journal at `path`, replay its records, cut
    /// any torn tail, and leave the file ready for appends. Returns the
    /// journal and the replayed records.
    pub fn open(path: &Path) -> Result<(Journal, Vec<Record>), JournalError> {
        let existing = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        if !existing.is_empty() {
            if existing.len() < 8 || existing[..8] != JOURNAL_MAGIC {
                return Err(JournalError::NotAJournal(path.display().to_string()));
            }
            if existing.len() >= HEADER_LEN {
                let version = u32::from_le_bytes(existing[8..12].try_into().expect("4 bytes"));
                if version > JOURNAL_VERSION {
                    return Err(JournalError::Version { found: version });
                }
            }
        }
        let (records, valid_len) = replay(&existing);
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(path)?;
        if existing.is_empty() || valid_len == 0 {
            // Fresh file (or one torn inside its own header): start over.
            file.set_len(0)?;
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(&JOURNAL_MAGIC);
            header.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
            write_at_start(&file, &header)?;
        } else if valid_len < existing.len() {
            // Torn tail: cut back to the valid prefix.
            file.set_len(valid_len as u64)?;
        }
        let mut file = file;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0))?;
        file.sync_all()?;
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
                records: records.len() as u64,
            },
            records,
        ))
    }

    /// Append one record durably: the bytes are written, flushed and
    /// fsynced before this returns.
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> Result<(), JournalError> {
        let bytes = encode_record(kind, payload);
        self.file.write_all(&bytes)?;
        self.file.flush()?;
        self.file.sync_data()?;
        self.records += 1;
        Ok(())
    }

    /// Atomically replace the journal's contents with `records`
    /// (compaction: drop records that no longer matter). Written to a
    /// sibling temp file, fsynced, then renamed over the journal — a
    /// crash at any point leaves either the old file or the new one.
    pub fn compact(&mut self, records: &[Record]) -> Result<(), JournalError> {
        let tmp = self.path.with_extension("mkpj.tmp");
        {
            let mut out = File::create(&tmp)?;
            out.write_all(&JOURNAL_MAGIC)?;
            out.write_all(&JOURNAL_VERSION.to_le_bytes())?;
            for rec in records {
                out.write_all(&encode_record(rec.kind, &rec.payload))?;
            }
            out.flush()?;
            out.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        let mut file = OpenOptions::new().write(true).open(&self.path)?;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0))?;
        self.file = file;
        self.records = records.len() as u64;
        Ok(())
    }

    /// How many records the journal currently holds.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Write `bytes` at offset 0 of `file` regardless of its cursor.
fn write_at_start(file: &File, bytes: &[u8]) -> Result<(), JournalError> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(bytes, 0)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "mkp-journal-{tag}-{}-{:?}.mkpj",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn append_then_reopen_replays_everything() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, replayed) = Journal::open(&path).unwrap();
            assert!(replayed.is_empty());
            j.append(1, b"alpha").unwrap();
            j.append(2, b"").unwrap();
            j.append(3, &[0xFF; 100]).unwrap();
            assert_eq!(j.records(), 3);
        }
        let (j, replayed) = Journal::open(&path).unwrap();
        assert_eq!(j.records(), 3);
        assert_eq!(replayed.len(), 3);
        assert_eq!(
            (replayed[0].kind, replayed[0].payload.as_slice()),
            (1, &b"alpha"[..])
        );
        assert_eq!(
            (replayed[1].kind, replayed[1].payload.as_slice()),
            (2, &b""[..])
        );
        assert_eq!(replayed[2].payload, vec![0xFF; 100]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_cut_and_appends_continue() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(1, b"keep me").unwrap();
            j.append(2, b"tear me").unwrap();
        }
        // Tear the last record in half, as a crash mid-append would.
        let bytes = std::fs::read(&path).unwrap();
        let keep = replay(&bytes[..bytes.len() - 5]).1;
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (mut j, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].payload, b"keep me");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), keep as u64);
        // The next append lands cleanly after the cut.
        j.append(3, b"after the tear").unwrap();
        drop(j);
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[1].payload, b"after the tear");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_rewrites_atomically_and_reopens() {
        let path = tmp("compact");
        let _ = std::fs::remove_file(&path);
        let (mut j, _) = Journal::open(&path).unwrap();
        for k in 0..10u8 {
            j.append(k, &[k; 4]).unwrap();
        }
        let keep = vec![Record {
            kind: 7,
            payload: b"survivor".to_vec(),
        }];
        j.compact(&keep).unwrap();
        assert_eq!(j.records(), 1);
        // Appends after compaction extend the rewritten file.
        j.append(9, b"appended").unwrap();
        drop(j);
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].payload, b"survivor");
        assert_eq!(replayed[1].payload, b"appended");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_file_is_refused_not_clobbered() {
        let path = tmp("foreign");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        match Journal::open(&path) {
            Err(JournalError::NotAJournal(_)) => {}
            other => panic!("expected NotAJournal, got {other:?}"),
        }
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"definitely not a journal",
            "the refused file must be untouched"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn newer_version_is_refused() {
        let path = tmp("version");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&JOURNAL_MAGIC);
        bytes.extend_from_slice(&(JOURNAL_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match Journal::open(&path) {
            Err(JournalError::Version { found }) => assert_eq!(found, JOURNAL_VERSION + 1),
            other => panic!("expected Version, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    // Property (satellite: journal replay): random record sequences,
    // truncated at *every* byte boundary of the last record, replay
    // without panicking and recover exactly the longest valid prefix. A
    // bit flip anywhere in the last record likewise costs only that
    // record.
    #[test]
    fn prop_replay_recovers_the_longest_valid_prefix() {
        let mut state = 0xC0FF_EE00_DEAD_BEEFu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..30 {
            let nrecords = 1 + (next() % 6) as usize;
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&JOURNAL_MAGIC);
            bytes.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
            let mut offsets = vec![bytes.len()];
            let mut records = Vec::new();
            for _ in 0..nrecords {
                let kind = (next() % 250) as u8;
                let len = (next() % 40) as usize;
                let payload: Vec<u8> = (0..len).map(|_| next() as u8).collect();
                bytes.extend_from_slice(&encode_record(kind, &payload));
                offsets.push(bytes.len());
                records.push(Record { kind, payload });
            }

            // Intact replay: everything, and the prefix is the file.
            let (full, prefix) = replay(&bytes);
            assert_eq!(full, records);
            assert_eq!(prefix, bytes.len());

            // Truncate at every byte boundary of the last record.
            let last_start = offsets[nrecords - 1];
            for cut in last_start..bytes.len() {
                let (got, prefix) = replay(&bytes[..cut]);
                assert_eq!(got.len(), nrecords - 1, "cut {cut}");
                assert_eq!(got, records[..nrecords - 1], "cut {cut}");
                assert_eq!(prefix, last_start, "cut {cut}");
            }

            // Flip one bit somewhere inside the last record: replay
            // stops before it, never panics, earlier records survive.
            let flip = last_start + (next() as usize % (bytes.len() - last_start));
            let mut damaged = bytes.clone();
            damaged[flip] ^= 0x10;
            let (got, prefix) = replay(&damaged);
            assert!(got.len() <= nrecords, "flip {flip}");
            if got.len() == nrecords {
                // A flip in the length prefix can, rarely, still frame a
                // checksum-valid suffix; accept only full equality then.
                assert_eq!(got, records, "flip {flip}");
            } else {
                assert_eq!(got, records[..got.len()], "flip {flip}");
                assert_eq!(prefix, last_start, "flip {flip}");
            }
        }
    }

    #[test]
    fn replay_tolerates_garbage_without_panicking() {
        // Arbitrary byte soup — short files, bad magic, random tails.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..100 {
            let len = (next() % 200) as usize;
            let mut bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let (records, prefix) = replay(&bytes);
            assert!(prefix <= bytes.len());
            let _ = records;
            // With a valid header stapled on, still no panic.
            if bytes.len() >= HEADER_LEN {
                bytes[..8].copy_from_slice(&JOURNAL_MAGIC);
                bytes[8..12].copy_from_slice(&JOURNAL_VERSION.to_le_bytes());
                let (_, prefix) = replay(&bytes);
                assert!(prefix >= HEADER_LEN && prefix <= bytes.len());
            }
        }
    }
}
