//! Decentralized asynchronous cooperative search (the paper's §6 future
//! work: "replace the centralized synchronous communication scheme (master
//! slave model) by a decentralized asynchronous communication scheme").
//!
//! There is no master and no rendezvous: P workers run search chunks and,
//! whenever *they* finish one, exchange information through a shared
//! blackboard (the thread-level analogue of asynchronous message passing —
//! a worker never waits for a peer). Each worker applies the ISP culling
//! rule and the SGP scoring/adaptation *locally*, so the intensification /
//! diversification balancing of CTS2 survives decentralization.
//!
//! Unlike the synchronous modes, the outcome depends on thread scheduling
//! (which worker publishes first); runs are therefore reproducible only in
//! distribution, not bit-for-bit — inherent to asynchronous cooperation.

use crate::isp::IspConfig;
use crate::runner::{Mode, ModeReport, RunConfig};
use crate::score::Score;
use crate::sgp::{next_strategy, SgpConfig};
use mkp::eval::Ratios;
use mkp::greedy::dynamic_randomized_greedy;
use mkp::{BitVec, Instance, Solution, Xoshiro256};
use mkp_tabu::elite::ElitePool;
use mkp_tabu::{search, Budget, StrategyBounds, TsConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// The shared blackboard.
struct Board {
    /// Best assignment published so far with its value.
    best: (BitVec, i64),
}

/// Run the asynchronous decentralized mode (ATS).
pub fn run_async(inst: &Instance, cfg: &RunConfig) -> ModeReport {
    assert!(cfg.p >= 1 && cfg.rounds >= 1);
    let start = Instant::now();
    let ratios = Ratios::new(inst);
    let bounds = StrategyBounds::for_instance_size(inst.n());
    let chunk = cfg.total_evals / (cfg.p as u64 * cfg.rounds as u64);

    let mut seed_rng = Xoshiro256::seed_from_u64(cfg.seed);
    let seed_sol = dynamic_randomized_greedy(inst, &mut seed_rng, cfg.isp.rcl);
    let board = Mutex::new(Board {
        best: (seed_sol.bits().clone(), seed_sol.value()),
    });
    let evals_spent = AtomicU64::new(0);
    let moves_done = AtomicU64::new(0);
    let regenerations = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for worker in 0..cfg.p {
            let mut rng = seed_rng.fork(worker as u64);
            let board = &board;
            let evals_spent = &evals_spent;
            let moves_done = &moves_done;
            let regenerations = &regenerations;
            let ratios = &ratios;
            let bounds = &bounds;
            let isp: &IspConfig = &cfg.isp;
            let sgp: &SgpConfig = &cfg.sgp;
            let total = cfg.total_evals;
            scope.spawn(move || {
                let mut strategy = bounds.random(&mut rng);
                let mut score = Score::new();
                let mut own_best = dynamic_randomized_greedy(inst, &mut rng, isp.rcl);
                let mut elite = ElitePool::new(8);
                let mut start_sol = own_best.clone();
                // Long-term memory persists across chunks (see coop.rs).
                let mut history = mkp_tabu::history::History::new(inst.n());

                // Work until the global budget is gone — no barrier, no
                // master: the check-in below is the only synchronization.
                while evals_spent.load(Ordering::Relaxed) < total {
                    let mut ts = TsConfig::default_for(inst.n());
                    ts.strategy = strategy;
                    let mut memory =
                        mkp_tabu::tabu_list::Recency::new(inst.n(), strategy.tabu_tenure);
                    let report = search::run_with_memory(
                        inst,
                        ratios,
                        start_sol.clone(),
                        &ts,
                        Budget::evals(chunk.max(1)),
                        &mut rng,
                        &mut memory,
                        &mut history,
                    );
                    evals_spent.fetch_add(report.stats.candidate_evals, Ordering::Relaxed);
                    moves_done.fetch_add(report.stats.moves, Ordering::Relaxed);

                    let improved_own = report.best.value() > own_best.value();
                    if improved_own {
                        own_best = report.best.clone();
                    }
                    for s in &report.elite {
                        elite.offer(s);
                    }

                    // Asynchronous check-in: publish, read, adapt, move on.
                    // The board only ever holds a complete (bits, value)
                    // pair, so a poisoned lock (peer panicked mid-publish
                    // of an unrelated field) is safe to recover.
                    let global = {
                        let mut b = board.lock().unwrap_or_else(PoisonError::into_inner);
                        if own_best.value() > b.best.1 {
                            b.best = (own_best.bits().clone(), own_best.value());
                        }
                        b.best.clone()
                    };

                    // Local SGP, scored against the worker's own best (see
                    // the master-side rationale in `coop.rs`).
                    let regenerate = score.update(improved_own);
                    regenerations.fetch_add(regenerate as u64, Ordering::Relaxed);
                    let (next, _) = next_strategy(
                        strategy,
                        regenerate,
                        elite.mean_pairwise_hamming(),
                        inst.n(),
                        sgp,
                        bounds,
                        &mut rng,
                    );
                    strategy = next;

                    // Local ISP culling rule against the published best.
                    start_sol = if (own_best.value() as f64) < isp.alpha * global.1 as f64 {
                        Solution::from_bits(inst, global.0)
                    } else if rng.chance(0.15) {
                        // Decentralized stand-in for the master's stagnation
                        // restarts: occasional fresh randomized start.
                        dynamic_randomized_greedy(inst, &mut rng, isp.rcl)
                    } else {
                        own_best.clone()
                    };
                }
            });
        }
    });

    let board = board.into_inner().unwrap_or_else(PoisonError::into_inner);
    let best = Solution::from_bits(inst, board.best.0);
    debug_assert!(best.is_feasible(inst));
    ModeReport {
        mode: Mode::Asynchronous,
        best,
        round_best: Vec::new(), // no global rounds exist in this mode
        total_moves: moves_done.into_inner(),
        total_evals: evals_spent.into_inner(),
        regenerations: regenerations.into_inner(),
        wall: start.elapsed(),
    }
}
