//! Slave strategy scoring (paper §4.2, SGP).
//!
//! Each slave carries a score, initially 4. After every search iteration the
//! score is incremented when the slave's final cost beat its initial cost
//! and decremented otherwise; when it reaches 0 the strategy is discarded
//! and regenerated.

/// Initial score of a fresh strategy (paper: "four in the actual version").
pub const INITIAL_SCORE: u32 = 4;

/// A strategy's performance score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Score(u32);

impl Default for Score {
    fn default() -> Self {
        Score(INITIAL_SCORE)
    }
}

impl Score {
    /// Fresh score at the initial value.
    pub fn new() -> Self {
        Score::default()
    }

    /// Current value.
    pub fn value(&self) -> u32 {
        self.0
    }

    /// Rebuild a score from a checkpointed [`value`](Score::value).
    pub fn from_value(value: u32) -> Self {
        Score(value)
    }

    /// Apply one round's outcome; returns `true` when the score hit zero and
    /// the strategy must be regenerated (the score resets to the initial
    /// value in that case).
    pub fn update(&mut self, improved: bool) -> bool {
        if improved {
            self.0 += 1;
            false
        } else if self.0 > 1 {
            self.0 -= 1;
            false
        } else {
            self.0 = INITIAL_SCORE;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_four() {
        assert_eq!(Score::new().value(), 4);
    }

    #[test]
    fn improvement_increments() {
        let mut s = Score::new();
        assert!(!s.update(true));
        assert_eq!(s.value(), 5);
    }

    #[test]
    fn failure_decrements() {
        let mut s = Score::new();
        assert!(!s.update(false));
        assert_eq!(s.value(), 3);
    }

    #[test]
    fn regeneration_after_four_consecutive_failures() {
        let mut s = Score::new();
        assert!(!s.update(false)); // 3
        assert!(!s.update(false)); // 2
        assert!(!s.update(false)); // 1
        assert!(s.update(false)); // 0 → regenerate
        assert_eq!(s.value(), INITIAL_SCORE, "score resets after regeneration");
    }

    #[test]
    fn improvements_buy_slack() {
        let mut s = Score::new();
        s.update(true); // 5
        s.update(true); // 6
        for _ in 0..5 {
            assert!(!s.update(false));
        }
        assert!(
            s.update(false),
            "6 failures after 2 successes exhaust the score"
        );
    }
}
