//! Checkpoint/resume of the master state (DESIGN.md §10).
//!
//! Every `K` completed rounds the synchronous master serializes its full
//! state — round counter, rng, global/round bests, the B-best elite, the
//! per-worker supervision bookkeeping, each worker's latest long-term
//! History and the policy's own blob — into a versioned, checksummed file
//! written atomically (tmp + rename). [`Snapshot::load`] rejects anything
//! corrupt or truncated with a clean [`SnapshotError`], never a panic, and
//! [`crate::engine::Engine::resume`] continues the run bit-identically to
//! the uninterrupted one (objective, best solution and curves; wall clock
//! excluded).

use crate::messages::{pack_bits, unpack_bits, ProblemMsg, SeedMsg};
use crate::runner::{LossCause, Mode, Resurrection, RunConfig, WorkerLoss};
use mkp::{BitVec, Instance};
use pvm_lite::codec::{fnv1a_64, CodecError, PackBuffer, UnpackBuffer, Wire};
use std::path::Path;

/// File magic: identifies a master snapshot, format generation 1.
pub const MAGIC: [u8; 8] = *b"MKPSNAP1";
/// Payload version inside the frame; bumped on layout changes.
pub const VERSION: u32 = 1;
/// Frame overhead: magic + version + payload length + trailing checksum.
const FRAME: usize = 8 + 4 + 8 + 8;

/// Why a snapshot could not be written or read back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Filesystem failure (message includes the path).
    Io(String),
    /// The file is not a snapshot, fails its checksum, or its payload does
    /// not decode.
    Corrupt(String),
    /// The file ends before the length its header promises.
    Truncated {
        /// Bytes the header says the file should hold.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The snapshot was written by an incompatible format generation.
    Version {
        /// The version stamped in the file's header.
        found: u32,
    },
    /// The snapshot does not belong to this instance or run configuration.
    Mismatch(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(msg) => write!(f, "snapshot io error: {msg}"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            SnapshotError::Truncated { expected, found } => write!(
                f,
                "truncated snapshot: header promises {expected} bytes, file has {found}"
            ),
            SnapshotError::Version { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (expected {VERSION})"
                )
            }
            SnapshotError::Mismatch(msg) => write!(f, "snapshot mismatch: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a over the instance's problem broadcast: ties a snapshot to the
/// exact instance it was taken from.
pub fn instance_fingerprint(inst: &Instance) -> u64 {
    fnv1a_64(&ProblemMsg::from_instance(inst).to_bytes())
}

/// FNV-1a over every configuration field that feeds the deterministic
/// search stream. Resuming under a different digest would silently diverge
/// from the uninterrupted run, so [`crate::engine::Engine::resume`] rejects
/// it. Timeouts, restart budgets and checkpoint paths are deliberately
/// excluded — they shape recovery, not the search.
pub fn config_digest(cfg: &RunConfig) -> u64 {
    let mut buf = PackBuffer::new();
    buf.put_usize(cfg.p);
    buf.put_usize(cfg.rounds);
    buf.put_u64(cfg.total_evals);
    buf.put_u64(cfg.seed);
    buf.put_f64(cfg.isp.alpha);
    buf.put_u64(cfg.isp.stale_limit as u64);
    buf.put_usize(cfg.isp.rcl);
    buf.put_f64(cfg.sgp.cluster_below);
    buf.put_f64(cfg.sgp.disperse_above);
    buf.put_u8(cfg.relink as u8);
    fnv1a_64(&buf.into_bytes())
}

/// The master's complete resumable state after some prefix of rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The mode being run.
    pub mode: Mode,
    /// [`instance_fingerprint`] of the instance.
    pub fingerprint: u64,
    /// [`config_digest`] of the run configuration.
    pub cfg_digest: u64,
    /// First round the resumed run must execute.
    pub next_round: usize,
    /// Master rng state at the top of `next_round`.
    pub rng: [u64; 4],
    /// Global best assignment so far (re-evaluated against the instance on
    /// resume, so a tampered snapshot cannot smuggle a fake objective).
    pub global_best: BitVec,
    /// Global best value after each completed round.
    pub round_best: Vec<i64>,
    /// Moves executed so far across all threads.
    pub total_moves: u64,
    /// Candidate evaluations spent so far across all threads.
    pub total_evals: u64,
    /// Strategy regenerations so far.
    pub regenerations: u64,
    /// The master's B-best distinct solutions, best first.
    pub elite: Vec<BitVec>,
    /// Which workers were still alive.
    pub alive: Vec<bool>,
    /// Workers quarantined before the checkpoint.
    pub losses: Vec<WorkerLoss>,
    /// Successful resurrections before the checkpoint.
    pub resurrections: Vec<Resurrection>,
    /// Restart-budget consumption per worker.
    pub restarts_used: Vec<u64>,
    /// Incarnation epoch per worker.
    pub epochs: Vec<u64>,
    /// Latest long-term History per worker (transplanted on resume).
    pub histories: Vec<SeedMsg>,
    /// The policy's own serialized state
    /// ([`crate::engine::CoopPolicy::snapshot`]).
    pub policy: Vec<u8>,
}

fn mode_to_u8(mode: Mode) -> u8 {
    Mode::all().iter().position(|&m| m == mode).unwrap() as u8
}

fn mode_from_u8(v: u8) -> Result<Mode, CodecError> {
    Mode::all()
        .get(v as usize)
        .copied()
        .ok_or(CodecError::LengthOverflow { length: v as u64 })
}

impl Wire for Snapshot {
    fn pack(&self, buf: &mut PackBuffer) {
        buf.put_u8(mode_to_u8(self.mode));
        buf.put_u64(self.fingerprint);
        buf.put_u64(self.cfg_digest);
        buf.put_usize(self.next_round);
        for w in self.rng {
            buf.put_u64(w);
        }
        pack_bits(&self.global_best, buf);
        buf.put_i64s(&self.round_best);
        buf.put_u64(self.total_moves);
        buf.put_u64(self.total_evals);
        buf.put_u64(self.regenerations);
        buf.put_usize(self.elite.len());
        for e in &self.elite {
            pack_bits(e, buf);
        }
        buf.put_usize(self.alive.len());
        for &a in &self.alive {
            buf.put_u8(a as u8);
        }
        buf.put_usize(self.losses.len());
        for loss in &self.losses {
            buf.put_usize(loss.worker);
            buf.put_usize(loss.round);
            match &loss.cause {
                LossCause::Panicked(msg) => {
                    buf.put_u8(0);
                    buf.put_str(msg);
                }
                LossCause::Deadline => buf.put_u8(1),
                LossCause::Unreachable => buf.put_u8(2),
            }
        }
        buf.put_usize(self.resurrections.len());
        for r in &self.resurrections {
            buf.put_usize(r.worker);
            buf.put_usize(r.round);
            buf.put_usize(r.attempt);
        }
        buf.put_u64s(&self.restarts_used);
        buf.put_u64s(&self.epochs);
        buf.put_usize(self.histories.len());
        for h in &self.histories {
            h.pack(buf);
        }
        buf.put_bytes(&self.policy);
    }

    fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
        let mode = mode_from_u8(buf.get_u8()?)?;
        let fingerprint = buf.get_u64()?;
        let cfg_digest = buf.get_u64()?;
        let next_round = buf.get_usize()?;
        let mut rng = [0u64; 4];
        for w in &mut rng {
            *w = buf.get_u64()?;
        }
        let global_best = unpack_bits(buf)?;
        let round_best = buf.get_i64s()?;
        let total_moves = buf.get_u64()?;
        let total_evals = buf.get_u64()?;
        let regenerations = buf.get_u64()?;
        let n_elite = buf.get_usize()?;
        let mut elite = Vec::with_capacity(n_elite.min(1024));
        for _ in 0..n_elite {
            elite.push(unpack_bits(buf)?);
        }
        let n_alive = buf.get_usize()?;
        let mut alive = Vec::with_capacity(n_alive.min(1024));
        for _ in 0..n_alive {
            alive.push(buf.get_u8()? != 0);
        }
        let n_losses = buf.get_usize()?;
        let mut losses = Vec::with_capacity(n_losses.min(1024));
        for _ in 0..n_losses {
            let worker = buf.get_usize()?;
            let round = buf.get_usize()?;
            let cause = match buf.get_u8()? {
                0 => LossCause::Panicked(buf.get_str()?),
                1 => LossCause::Deadline,
                _ => LossCause::Unreachable,
            };
            losses.push(WorkerLoss {
                worker,
                round,
                cause,
            });
        }
        let n_res = buf.get_usize()?;
        let mut resurrections = Vec::with_capacity(n_res.min(1024));
        for _ in 0..n_res {
            resurrections.push(Resurrection {
                worker: buf.get_usize()?,
                round: buf.get_usize()?,
                attempt: buf.get_usize()?,
            });
        }
        let restarts_used = buf.get_u64s()?;
        let epochs = buf.get_u64s()?;
        let n_hist = buf.get_usize()?;
        let mut histories = Vec::with_capacity(n_hist.min(1024));
        for _ in 0..n_hist {
            histories.push(SeedMsg::unpack(buf)?);
        }
        let policy = buf.get_bytes()?;
        Ok(Snapshot {
            mode,
            fingerprint,
            cfg_digest,
            next_round,
            rng,
            global_best,
            round_best,
            total_moves,
            total_evals,
            regenerations,
            elite,
            alive,
            losses,
            resurrections,
            restarts_used,
            epochs,
            histories,
            policy,
        })
    }
}

impl Snapshot {
    /// Serialize into the framed on-disk format:
    /// `MAGIC ‖ version ‖ payload_len ‖ payload ‖ fnv1a64(payload)`.
    pub fn to_file_bytes(&self) -> Vec<u8> {
        let payload = self.to_bytes();
        let mut out = Vec::with_capacity(FRAME + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&fnv1a_64(&payload).to_le_bytes());
        out
    }

    /// Parse the framed format back, rejecting bad magic, unknown versions,
    /// truncation and checksum failures with a clean error.
    pub fn from_file_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < FRAME {
            return Err(SnapshotError::Truncated {
                expected: FRAME,
                found: bytes.len(),
            });
        }
        if bytes[..8] != MAGIC {
            return Err(SnapshotError::Corrupt(
                "bad magic: not a snapshot file".to_string(),
            ));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(SnapshotError::Version { found: version });
        }
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
        let expected = FRAME + payload_len;
        if bytes.len() < expected {
            return Err(SnapshotError::Truncated {
                expected,
                found: bytes.len(),
            });
        }
        let payload = &bytes[20..20 + payload_len];
        let checksum = u64::from_le_bytes(
            bytes[20 + payload_len..20 + payload_len + 8]
                .try_into()
                .unwrap(),
        );
        if checksum != fnv1a_64(payload) {
            return Err(SnapshotError::Corrupt("checksum mismatch".to_string()));
        }
        Snapshot::from_bytes(payload)
            .map_err(|e| SnapshotError::Corrupt(format!("payload does not decode: {e}")))
    }

    /// Write the snapshot atomically: serialize to `<path>.tmp` in the same
    /// directory, sync, then rename over `path` — a crash mid-write leaves
    /// either the old snapshot or none, never a torn one.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        use std::io::Write as _;
        let tmp = path.with_extension("tmp");
        let io_err = |what: &str, e: std::io::Error| {
            SnapshotError::Io(format!("{what} {}: {e}", tmp.display()))
        };
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err("create", e))?;
        f.write_all(&self.to_file_bytes())
            .map_err(|e| io_err("write", e))?;
        f.sync_all().map_err(|e| io_err("sync", e))?;
        drop(f);
        std::fs::rename(&tmp, path)
            .map_err(|e| SnapshotError::Io(format!("rename to {}: {e}", path.display())))
    }

    /// Read a snapshot back from disk.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)
            .map_err(|e| SnapshotError::Io(format!("read {}: {e}", path.display())))?;
        Snapshot::from_file_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkp::generate::uncorrelated_instance;

    fn sample() -> Snapshot {
        Snapshot {
            mode: Mode::CooperativeAdaptive,
            fingerprint: 0xDEAD_BEEF,
            cfg_digest: 0xFEED_FACE,
            next_round: 2,
            rng: [1, 2, 3, 4],
            global_best: BitVec::from_bools([true, false, true]),
            round_best: vec![10, 12],
            total_moves: 100,
            total_evals: 5000,
            regenerations: 1,
            elite: vec![
                BitVec::from_bools([true, false, true]),
                BitVec::from_bools([false, true, true]),
            ],
            alive: vec![true, false, true],
            losses: vec![WorkerLoss {
                worker: 1,
                round: 0,
                cause: LossCause::Panicked("boom".to_string()),
            }],
            resurrections: vec![Resurrection {
                worker: 2,
                round: 1,
                attempt: 2,
            }],
            restarts_used: vec![0, 3, 1],
            epochs: vec![0, 3, 1],
            histories: vec![
                SeedMsg {
                    history_counts: vec![1, 2, 3],
                    history_iterations: 6,
                },
                SeedMsg::default(),
                SeedMsg {
                    history_counts: vec![0, 0, 9],
                    history_iterations: 9,
                },
            ],
            policy: vec![7, 8, 9],
        }
    }

    #[test]
    fn frame_roundtrips_bit_exact() {
        let snap = sample();
        let bytes = snap.to_file_bytes();
        assert_eq!(Snapshot::from_file_bytes(&bytes).unwrap(), snap);
        // Bit-exact: re-serializing the decoded snapshot reproduces the
        // file bytes.
        assert_eq!(
            Snapshot::from_file_bytes(&bytes).unwrap().to_file_bytes(),
            bytes
        );
    }

    #[test]
    fn save_load_roundtrip_and_atomic_tmp_cleanup() {
        let snap = sample();
        let dir = std::env::temp_dir().join(format!("mkp-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");
        snap.save(&path).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap(), snap);
        assert!(!path.with_extension("tmp").exists(), "tmp file left behind");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_file_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Snapshot::from_file_bytes(&bytes),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_version_rejected() {
        let mut bytes = sample().to_file_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            Snapshot::from_file_bytes(&bytes),
            Err(SnapshotError::Version { found: 99 })
        );
    }

    #[test]
    fn checksum_catches_payload_corruption() {
        let mut bytes = sample().to_file_bytes();
        let mid = 20 + (bytes.len() - 28) / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            Snapshot::from_file_bytes(&bytes),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn truncation_at_any_point_is_a_clean_error() {
        let bytes = sample().to_file_bytes();
        for cut in 0..bytes.len() {
            let err = Snapshot::from_file_bytes(&bytes[..cut]);
            assert!(err.is_err(), "accepted a {cut}-byte prefix");
        }
    }

    #[test]
    fn digest_tracks_search_relevant_config_only() {
        let a = RunConfig::new(100_000, 7);
        let mut b = a.clone();
        b.report_timeout = std::time::Duration::from_secs(1);
        b.max_restarts = 5;
        assert_eq!(
            config_digest(&a),
            config_digest(&b),
            "recovery knobs leaked"
        );
        b.seed = 8;
        assert_ne!(config_digest(&a), config_digest(&b));
        let mut c = a.clone();
        c.rounds += 1;
        assert_ne!(config_digest(&a), config_digest(&c));
    }

    #[test]
    fn fingerprint_distinguishes_instances() {
        let a = uncorrelated_instance("a", 20, 3, 0.5, 1);
        let b = uncorrelated_instance("b", 20, 3, 0.5, 2);
        assert_ne!(instance_fingerprint(&a), instance_fingerprint(&b));
        assert_eq!(instance_fingerprint(&a), instance_fingerprint(&a));
    }
}
