//! Strategy Generation Procedure (paper §4.2).
//!
//! Produces the P strategies for the next search iteration. A slave whose
//! score survives keeps its strategy; a slave whose score hit zero gets a
//! new one, steered by the *dispersion* of its B best solutions:
//!
//! * clustered elite (small mean pairwise Hamming distance) — the slave is
//!   stuck in one area → **diversify** (longer tenure, wider moves, less
//!   patience);
//! * dispersed elite — the slave sprays over many areas → **intensify**
//!   (shorter tenure, narrower moves, more patience);
//! * in between → draw a fresh random strategy.

use mkp::{BitVec, Xoshiro256};
use mkp_tabu::{Strategy, StrategyBounds};

/// Dispersion thresholds as fractions of `n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgpConfig {
    /// Elite dispersion below this fraction of `n` counts as clustered.
    pub cluster_below: f64,
    /// Elite dispersion above this fraction of `n` counts as dispersed.
    pub disperse_above: f64,
}

impl Default for SgpConfig {
    fn default() -> Self {
        SgpConfig {
            cluster_below: 0.05,
            disperse_above: 0.25,
        }
    }
}

/// What the SGP decided for one slave's strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adaptation {
    /// Strategy kept unchanged (score still positive).
    Keep,
    /// Regenerated towards diversification (elite was clustered).
    Diversified,
    /// Regenerated towards intensification (elite was dispersed).
    Intensified,
    /// Regenerated uniformly at random (no clear signal).
    Random,
}

/// Mean pairwise Hamming distance of the elite assignments (0 for fewer
/// than two solutions) — the master-side mirror of
/// `ElitePool::mean_pairwise_hamming`, computed on raw wire bits.
pub fn elite_dispersion(elite: &[BitVec]) -> f64 {
    let k = elite.len();
    if k < 2 {
        return 0.0;
    }
    let mut total = 0usize;
    let mut pairs = 0usize;
    for a in 0..k {
        for b in a + 1..k {
            total += elite[a].hamming(&elite[b]);
            pairs += 1;
        }
    }
    total as f64 / pairs as f64
}

/// Produce the slave's next strategy.
///
/// `regenerate` is the zero-score signal from [`crate::score::Score`];
/// `dispersion` is the slave's elite dispersion in items (absolute Hamming);
/// `n` the instance size.
pub fn next_strategy(
    current: Strategy,
    regenerate: bool,
    dispersion: f64,
    n: usize,
    cfg: &SgpConfig,
    bounds: &StrategyBounds,
    rng: &mut Xoshiro256,
) -> (Strategy, Adaptation) {
    if !regenerate {
        return (current, Adaptation::Keep);
    }
    let rel = dispersion / n as f64;
    if rel < cfg.cluster_below {
        (current.diversify_step(bounds), Adaptation::Diversified)
    } else if rel > cfg.disperse_above {
        (current.intensify_step(bounds), Adaptation::Intensified)
    } else {
        (bounds.random(rng), Adaptation::Random)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(pattern: &[bool]) -> BitVec {
        BitVec::from_bools(pattern.iter().copied())
    }

    #[test]
    fn dispersion_of_singleton_is_zero() {
        assert_eq!(elite_dispersion(&[bits(&[true, false])]), 0.0);
        assert_eq!(elite_dispersion(&[]), 0.0);
    }

    #[test]
    fn dispersion_matches_hand_computation() {
        let e = [
            bits(&[true, false, false, false]),
            bits(&[false, true, false, false]),
            bits(&[true, true, false, false]),
        ];
        // pairwise distances 2, 1, 1 → mean 4/3
        assert!((elite_dispersion(&e) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn positive_score_keeps_strategy() {
        let bounds = StrategyBounds::for_instance_size(100);
        let mut rng = Xoshiro256::seed_from_u64(1);
        let s = Strategy {
            tabu_tenure: 10,
            nb_drop: 2,
            nb_local: 50,
        };
        let (next, what) = next_strategy(
            s,
            false,
            50.0,
            100,
            &SgpConfig::default(),
            &bounds,
            &mut rng,
        );
        assert_eq!(next, s);
        assert_eq!(what, Adaptation::Keep);
    }

    #[test]
    fn clustered_elite_diversifies() {
        let bounds = StrategyBounds::for_instance_size(100);
        let mut rng = Xoshiro256::seed_from_u64(2);
        let s = Strategy {
            tabu_tenure: 10,
            nb_drop: 2,
            nb_local: 50,
        };
        let (next, what) =
            next_strategy(s, true, 1.0, 100, &SgpConfig::default(), &bounds, &mut rng);
        assert_eq!(what, Adaptation::Diversified);
        assert!(next.tabu_tenure > s.tabu_tenure);
        assert!(next.nb_drop > s.nb_drop);
    }

    #[test]
    fn dispersed_elite_intensifies() {
        let bounds = StrategyBounds::for_instance_size(100);
        let mut rng = Xoshiro256::seed_from_u64(3);
        let s = Strategy {
            tabu_tenure: 12,
            nb_drop: 3,
            nb_local: 50,
        };
        let (next, what) =
            next_strategy(s, true, 40.0, 100, &SgpConfig::default(), &bounds, &mut rng);
        assert_eq!(what, Adaptation::Intensified);
        assert!(next.tabu_tenure < s.tabu_tenure);
        assert!(next.nb_drop < s.nb_drop);
        assert!(next.nb_local > s.nb_local);
    }

    #[test]
    fn mid_dispersion_randomizes_within_bounds() {
        let bounds = StrategyBounds::for_instance_size(100);
        let mut rng = Xoshiro256::seed_from_u64(4);
        let s = Strategy {
            tabu_tenure: 12,
            nb_drop: 3,
            nb_local: 50,
        };
        let (next, what) =
            next_strategy(s, true, 15.0, 100, &SgpConfig::default(), &bounds, &mut rng);
        assert_eq!(what, Adaptation::Random);
        assert!((bounds.tenure.0..=bounds.tenure.1).contains(&next.tabu_tenure));
    }
}
