//! Wire messages of the master/slave protocol.
//!
//! Everything the master and slaves exchange crosses the `pvm-lite` codec as
//! packed bytes, exactly as the original crossed PVM: the problem broadcast,
//! the per-round assignment (initial solution + strategy + work budget) and
//! the slave report (best solution, elite pool, work counters). No Rust
//! object is ever shared between tasks.

use mkp::{BitVec, Instance, Solution};
use mkp_tabu::Strategy;
use pvm_lite::codec::{CodecError, PackBuffer, UnpackBuffer, Wire};

/// Message tags of the protocol.
pub mod tags {
    /// Master → slave: problem broadcast.
    pub const PROBLEM: u32 = 1;
    /// Master → slave: round assignment.
    pub const ASSIGN: u32 = 2;
    /// Slave → master: round report.
    pub const REPORT: u32 = 3;
    /// Master → slave: terminate.
    pub const STOP: u32 = 4;
    /// Master → slave: state transplant into a reborn or resumed slave.
    pub const SEED: u32 = 5;
}

/// The problem broadcast ("Read and send to slaves problem data", Fig. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct ProblemMsg {
    /// Instance name.
    pub name: String,
    /// Items.
    pub n: usize,
    /// Constraints.
    pub m: usize,
    /// Profits, length `n`.
    pub profits: Vec<i64>,
    /// Row-major weights, length `n·m`.
    pub weights: Vec<i64>,
    /// Capacities, length `m`.
    pub capacities: Vec<i64>,
}

impl ProblemMsg {
    /// Build the broadcast from an instance.
    pub fn from_instance(inst: &Instance) -> Self {
        let mut weights = Vec::with_capacity(inst.n() * inst.m());
        for i in 0..inst.m() {
            weights.extend_from_slice(inst.constraint_row(i));
        }
        ProblemMsg {
            name: inst.name().to_string(),
            n: inst.n(),
            m: inst.m(),
            profits: inst.profits().to_vec(),
            weights,
            capacities: inst.capacities().to_vec(),
        }
    }

    /// Reconstruct the instance on the slave side.
    pub fn into_instance(self) -> Instance {
        Instance::new(
            self.name,
            self.n,
            self.m,
            self.profits,
            self.weights,
            self.capacities,
        )
        .expect("master sent a valid instance")
    }
}

impl Wire for ProblemMsg {
    fn pack(&self, buf: &mut PackBuffer) {
        buf.put_str(&self.name);
        buf.put_usize(self.n);
        buf.put_usize(self.m);
        buf.put_i64s(&self.profits);
        buf.put_i64s(&self.weights);
        buf.put_i64s(&self.capacities);
    }

    fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
        Ok(ProblemMsg {
            name: buf.get_str()?,
            n: buf.get_usize()?,
            m: buf.get_usize()?,
            profits: buf.get_i64s()?,
            weights: buf.get_i64s()?,
            capacities: buf.get_i64s()?,
        })
    }
}

/// Pack a solution as (len, ones-list); value and loads are recomputed on
/// arrival so a corrupt message cannot smuggle inconsistent caches. Shared
/// with the policy and snapshot codecs (`pub(crate)`).
pub(crate) fn pack_bits(bits: &BitVec, buf: &mut PackBuffer) {
    buf.put_usize(bits.len());
    let ones: Vec<u64> = bits.iter_ones().map(|j| j as u64).collect();
    buf.put_u64s(&ones);
}

pub(crate) fn unpack_bits(buf: &mut UnpackBuffer<'_>) -> Result<BitVec, CodecError> {
    let len = buf.get_usize()?;
    let ones = buf.get_u64s()?;
    let mut bits = BitVec::zeros(len);
    for j in ones {
        if j as usize >= len {
            return Err(CodecError::LengthOverflow { length: j });
        }
        bits.set(j as usize, true);
    }
    Ok(bits)
}

/// A search-space cell for the decomposed mode (DTS): the split variables
/// fixed in (`forced_in`) or out (`forced_out`) of the knapsack. The slave
/// builds the [`mkp::restrict::Restriction`] itself so it can also lift the
/// sub-solution back; an infeasible (or empty) cell falls back to the full
/// instance.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CellMsg {
    /// Item indices forced into the knapsack.
    pub forced_in: Vec<u64>,
    /// Item indices forced out of the knapsack.
    pub forced_out: Vec<u64>,
    /// When true the slave honors the assignment's `initial` and
    /// `strategy` inside the cell (projecting the master-chosen start onto
    /// the free variables and repairing it) instead of building its own
    /// randomized start — the CORE policy's cooperative regime. DTS leaves
    /// it false.
    pub seeded: bool,
}

/// A per-round slave assignment: where to start, how to search, how much
/// work to spend — and, for the decomposed mode, which cell to search.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignMsg {
    /// Starting solution (assignment bits). Ignored when `cell` is set (the
    /// slave constructs a randomized-greedy start inside its cell).
    pub initial: BitVec,
    /// The strategy triple for this round.
    pub strategy: Strategy,
    /// Candidate-evaluation budget for the round.
    pub budget_evals: u64,
    /// Seed for the slave's stochastic components this round.
    pub seed: u64,
    /// Incarnation epoch of the addressed worker (bumped by the master on
    /// every resurrection); the slave echoes it in its report so the master
    /// can discard reports from superseded incarnations.
    pub epoch: u64,
    /// Decomposition cell (DTS); `None` for the trajectory modes.
    pub cell: Option<CellMsg>,
}

impl AssignMsg {
    /// A plain trajectory assignment (every mode except DTS), at epoch 0
    /// (the engine stamps the live epoch before sending).
    pub fn trajectory(initial: BitVec, strategy: Strategy, budget_evals: u64, seed: u64) -> Self {
        AssignMsg {
            initial,
            strategy,
            budget_evals,
            seed,
            epoch: 0,
            cell: None,
        }
    }
}

impl Wire for AssignMsg {
    fn pack(&self, buf: &mut PackBuffer) {
        pack_bits(&self.initial, buf);
        buf.put_usize(self.strategy.tabu_tenure);
        buf.put_usize(self.strategy.nb_drop);
        buf.put_usize(self.strategy.nb_local);
        buf.put_u64(self.budget_evals);
        buf.put_u64(self.seed);
        buf.put_u64(self.epoch);
        match &self.cell {
            None => buf.put_u8(0),
            Some(cell) => {
                buf.put_u8(1);
                buf.put_u64s(&cell.forced_in);
                buf.put_u64s(&cell.forced_out);
                buf.put_u8(cell.seeded as u8);
            }
        }
    }

    fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
        Ok(AssignMsg {
            initial: unpack_bits(buf)?,
            strategy: Strategy {
                tabu_tenure: buf.get_usize()?,
                nb_drop: buf.get_usize()?,
                nb_local: buf.get_usize()?,
            },
            budget_evals: buf.get_u64()?,
            seed: buf.get_u64()?,
            epoch: buf.get_u64()?,
            cell: match buf.get_u8()? {
                0 => None,
                _ => Some(CellMsg {
                    forced_in: buf.get_u64s()?,
                    forced_out: buf.get_u64s()?,
                    seeded: buf.get_u8()? != 0,
                }),
            },
        })
    }
}

/// Master → slave state transplant (tag [`tags::SEED`]): the long-term
/// [`History`](mkp_tabu::History) memory a reborn or resumed slave
/// continues from, so recovery preserves the diversification pressure the
/// worker had built up before the loss or checkpoint.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SeedMsg {
    /// Residency counts, length `n`.
    pub history_counts: Vec<u64>,
    /// Iterations recorded into the counts.
    pub history_iterations: u64,
}

impl Wire for SeedMsg {
    fn pack(&self, buf: &mut PackBuffer) {
        buf.put_u64s(&self.history_counts);
        buf.put_u64(self.history_iterations);
    }

    fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
        Ok(SeedMsg {
            history_counts: buf.get_u64s()?,
            history_iterations: buf.get_u64()?,
        })
    }
}

/// A slave's end-of-round report.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportMsg {
    /// Best assignment found this round.
    pub best: BitVec,
    /// The B best distinct assignments, best first.
    pub elite: Vec<BitVec>,
    /// Value of the (repaired) starting solution — the master's SGP compares
    /// it with the final value to score the strategy.
    pub initial_value: i64,
    /// Value of `best` (cross-checked on arrival).
    pub best_value: i64,
    /// Moves executed.
    pub moves: u64,
    /// Candidate evaluations spent.
    pub evals: u64,
    /// Echo of the assignment's incarnation epoch; the master discards
    /// reports whose epoch does not match the worker's live incarnation.
    pub epoch: u64,
    /// The slave's long-term History residency counts after this round
    /// (the master keeps the latest copy per worker so it can transplant
    /// the memory into a reborn incarnation or a checkpoint).
    pub history_counts: Vec<u64>,
    /// Iterations recorded into `history_counts`.
    pub history_iterations: u64,
}

impl ReportMsg {
    /// Rebuild (and verify) the best solution against the instance.
    ///
    /// # Panics
    /// If the reported value does not match the rebuilt solution; masters
    /// that must survive a lying slave use
    /// [`checked_best_solution`](ReportMsg::checked_best_solution).
    pub fn best_solution(&self, inst: &Instance) -> Solution {
        self.checked_best_solution(inst)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Rebuild the best solution, reporting a value mismatch as an error
    /// instead of panicking.
    pub fn checked_best_solution(&self, inst: &Instance) -> Result<Solution, String> {
        let sol = Solution::from_bits(inst, self.best.clone());
        if sol.value() != self.best_value {
            return Err(format!(
                "slave reported inconsistent best value: claimed {}, rebuilt {}",
                self.best_value,
                sol.value()
            ));
        }
        Ok(sol)
    }
}

impl Wire for ReportMsg {
    fn pack(&self, buf: &mut PackBuffer) {
        pack_bits(&self.best, buf);
        buf.put_usize(self.elite.len());
        for e in &self.elite {
            pack_bits(e, buf);
        }
        buf.put_i64(self.initial_value);
        buf.put_i64(self.best_value);
        buf.put_u64(self.moves);
        buf.put_u64(self.evals);
        buf.put_u64(self.epoch);
        buf.put_u64s(&self.history_counts);
        buf.put_u64(self.history_iterations);
    }

    fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
        let best = unpack_bits(buf)?;
        let k = buf.get_usize()?;
        let mut elite = Vec::with_capacity(k.min(1024));
        for _ in 0..k {
            elite.push(unpack_bits(buf)?);
        }
        Ok(ReportMsg {
            best,
            elite,
            initial_value: buf.get_i64()?,
            best_value: buf.get_i64()?,
            moves: buf.get_u64()?,
            evals: buf.get_u64()?,
            epoch: buf.get_u64()?,
            history_counts: buf.get_u64s()?,
            history_iterations: buf.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkp::generate::uncorrelated_instance;

    #[test]
    fn problem_roundtrip_preserves_instance() {
        let inst = uncorrelated_instance("p", 20, 3, 0.5, 1);
        let msg = ProblemMsg::from_instance(&inst);
        let back = ProblemMsg::from_bytes(&msg.to_bytes())
            .unwrap()
            .into_instance();
        assert_eq!(back.n(), inst.n());
        assert_eq!(back.m(), inst.m());
        assert_eq!(back.profits(), inst.profits());
        assert_eq!(back.capacities(), inst.capacities());
        for i in 0..inst.m() {
            assert_eq!(back.constraint_row(i), inst.constraint_row(i));
        }
    }

    #[test]
    fn assign_roundtrip() {
        let msg = AssignMsg::trajectory(
            BitVec::from_bools([true, false, true, true]),
            Strategy {
                tabu_tenure: 9,
                nb_drop: 3,
                nb_local: 44,
            },
            1234,
            99,
        );
        assert_eq!(AssignMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
    }

    #[test]
    fn assign_roundtrip_with_cell() {
        let msg = AssignMsg {
            cell: Some(CellMsg {
                forced_in: vec![3, 17],
                forced_out: vec![4],
                seeded: true,
            }),
            ..AssignMsg::trajectory(
                BitVec::zeros(20),
                Strategy {
                    tabu_tenure: 7,
                    nb_drop: 2,
                    nb_local: 30,
                },
                50_000,
                5,
            )
        };
        assert_eq!(AssignMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
    }

    #[test]
    fn report_roundtrip() {
        let msg = ReportMsg {
            best: BitVec::from_bools([false, true, false]),
            elite: vec![
                BitVec::from_bools([false, true, false]),
                BitVec::from_bools([true, false, false]),
            ],
            initial_value: 5,
            best_value: 8,
            moves: 100,
            evals: 5000,
            epoch: 3,
            history_counts: vec![2, 100, 1],
            history_iterations: 101,
        };
        assert_eq!(ReportMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
    }

    #[test]
    fn seed_roundtrip() {
        let msg = SeedMsg {
            history_counts: vec![0, 7, u64::MAX],
            history_iterations: 42,
        };
        assert_eq!(SeedMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
        let empty = SeedMsg::default();
        assert_eq!(SeedMsg::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn assign_epoch_survives_the_wire() {
        let msg = AssignMsg {
            epoch: 7,
            ..AssignMsg::trajectory(
                BitVec::from_bools([true, false]),
                Strategy {
                    tabu_tenure: 1,
                    nb_drop: 1,
                    nb_local: 1,
                },
                1,
                0,
            )
        };
        assert_eq!(AssignMsg::from_bytes(&msg.to_bytes()).unwrap().epoch, 7);
    }

    #[test]
    fn corrupt_ones_index_rejected() {
        let msg = AssignMsg::trajectory(
            BitVec::from_bools([true, false]),
            Strategy {
                tabu_tenure: 1,
                nb_drop: 1,
                nb_local: 1,
            },
            1,
            0,
        );
        let mut bytes = msg.to_bytes();
        // The first ones-index lives after len(8) + count(8); overwrite it
        // with an out-of-range value.
        bytes[16] = 0xFF;
        assert!(AssignMsg::from_bytes(&bytes).is_err());
    }

    #[test]
    fn best_solution_verifies_value() {
        let inst = uncorrelated_instance("v", 10, 2, 0.5, 2);
        let sol = mkp::greedy::greedy(&inst, &mkp::eval::Ratios::new(&inst));
        let msg = ReportMsg {
            best: sol.bits().clone(),
            elite: vec![],
            initial_value: 0,
            best_value: sol.value(),
            moves: 0,
            evals: 0,
            epoch: 0,
            history_counts: vec![],
            history_iterations: 0,
        };
        assert_eq!(msg.best_solution(&inst).value(), sol.value());
    }

    // --- testkit property tests: every protocol message survives an
    // arbitrary pack/unpack round-trip, including the degenerate shapes
    // (empty elite pools, zero-length solutions, empty cells). ---

    use mkp::prop_check;
    use mkp::testkit::gen;
    use mkp::Xoshiro256;

    fn arb_bits(rng: &mut Xoshiro256) -> Vec<bool> {
        gen::vec_of(rng, 0, 40, gen::boolean)
    }

    #[test]
    fn problem_msg_roundtrips_by_property() {
        // Raw field round-trip: the codec must not depend on n·m
        // consistency (that is `into_instance`'s job, not the wire's).
        prop_check!(
            |rng| (
                gen::string_any(rng, 12),
                (gen::usize_in(rng, 0, 16), gen::usize_in(rng, 0, 6)),
                gen::vec_of(rng, 0, 16, |r| gen::i64_in(r, 0, 10_000)),
                gen::vec_of(rng, 0, 96, |r| gen::i64_in(r, 0, 10_000)),
                gen::vec_of(rng, 0, 6, |r| gen::i64_in(r, 0, 100_000))
            ),
            |input| {
                let (name, (n, m), profits, weights, capacities) = input.clone();
                let msg = ProblemMsg {
                    name,
                    n,
                    m,
                    profits,
                    weights,
                    capacities,
                };
                assert_eq!(ProblemMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
            }
        );
    }

    #[test]
    fn assign_msg_roundtrips_by_property() {
        prop_check!(
            |rng| (
                arb_bits(rng),
                (
                    gen::usize_in(rng, 0, 100),
                    gen::usize_in(rng, 0, 20),
                    gen::usize_in(rng, 0, 500)
                ),
                (rng.next_u64(), rng.next_u64(), rng.next_u64()),
                (gen::boolean(rng), gen::boolean(rng)),
                gen::vec_of(rng, 0, 8, |r| r.next_u64()),
                gen::vec_of(rng, 0, 8, |r| r.next_u64())
            ),
            |input| {
                let (
                    bits,
                    (tenure, drop, local),
                    (budget, seed, epoch),
                    (has_cell, seeded),
                    f_in,
                    f_out,
                ) = input.clone();
                let msg = AssignMsg {
                    initial: BitVec::from_bools(bits),
                    strategy: Strategy {
                        tabu_tenure: tenure,
                        nb_drop: drop,
                        nb_local: local,
                    },
                    budget_evals: budget,
                    seed,
                    epoch,
                    cell: has_cell.then_some(CellMsg {
                        forced_in: f_in,
                        forced_out: f_out,
                        seeded,
                    }),
                };
                assert_eq!(AssignMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
            }
        );
    }

    #[test]
    fn report_msg_roundtrips_by_property() {
        prop_check!(
            |rng| (
                arb_bits(rng),
                gen::vec_of(rng, 0, 5, arb_bits),
                (
                    gen::i64_in(rng, -1_000, 1_000_000),
                    gen::i64_in(rng, -1_000, 1_000_000)
                ),
                (rng.next_u64(), rng.next_u64(), rng.next_u64()),
                gen::vec_of(rng, 0, 40, |r| r.next_u64())
            ),
            |input| {
                let (best, elite, (initial_value, best_value), (moves, evals, epoch), counts) =
                    input.clone();
                let msg = ReportMsg {
                    best: BitVec::from_bools(best),
                    elite: elite.into_iter().map(BitVec::from_bools).collect(),
                    initial_value,
                    best_value,
                    moves,
                    evals,
                    epoch,
                    history_iterations: counts.iter().fold(0u64, |a, &c| a.wrapping_add(c)),
                    history_counts: counts,
                };
                assert_eq!(ReportMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
            }
        );
    }

    #[test]
    fn degenerate_shapes_roundtrip() {
        // Zero-length solution, empty elite, empty cell — explicitly.
        let assign = AssignMsg {
            cell: Some(CellMsg::default()),
            ..AssignMsg::trajectory(
                BitVec::zeros(0),
                Strategy {
                    tabu_tenure: 0,
                    nb_drop: 0,
                    nb_local: 0,
                },
                0,
                0,
            )
        };
        assert_eq!(AssignMsg::from_bytes(&assign.to_bytes()).unwrap(), assign);
        let report = ReportMsg {
            best: BitVec::zeros(0),
            elite: vec![],
            initial_value: 0,
            best_value: 0,
            moves: 0,
            evals: 0,
            epoch: 0,
            history_counts: vec![],
            history_iterations: 0,
        };
        assert_eq!(ReportMsg::from_bytes(&report.to_bytes()).unwrap(), report);
    }

    #[test]
    #[should_panic(expected = "inconsistent best value")]
    fn tampered_value_detected() {
        let inst = uncorrelated_instance("t", 10, 2, 0.5, 3);
        let sol = mkp::greedy::greedy(&inst, &mkp::eval::Ratios::new(&inst));
        let msg = ReportMsg {
            best: sol.bits().clone(),
            elite: vec![],
            initial_value: 0,
            best_value: sol.value() + 1,
            moves: 0,
            evals: 0,
            epoch: 0,
            history_counts: vec![],
            history_iterations: 0,
        };
        msg.best_solution(&inst);
    }
}
