//! Multi-tenant job server: many MKP jobs time-sliced over one farm
//! (DESIGN.md §14).
//!
//! [`serve`] runs a long-lived daemon that accepts *jobs* over the socket
//! layer's framed codec: a client dials in, sends one `SUBMIT` frame
//! (instance + mode + budget + optional wall-clock deadline) and then
//! just reads — `ACCEPTED`, a stream of `INCUMBENT` updates, and finally
//! `DONE` with the full report, or `REJECTED` with a reason. Admission
//! control bounds the total queue depth and the per-client in-flight
//! count, so one greedy tenant cannot starve the rest.
//!
//! Scheduling is round-robin in *round-granularity quanta*: a job runs
//! for [`ServeConfig::quantum`] master rounds, is **parked** — the
//! engine snapshots its complete master state at the round boundary
//! (PR 4's checkpoint artifact) — and the next job resumes from its own
//! snapshot. Because a parked snapshot is bit-identical to a periodic
//! checkpoint, a job sliced into N quanta produces *exactly* the report
//! an uninterrupted run would (asserted by `tests/jobserver.rs`). Modes
//! without a round boundary to park at (pipelined ATS, or SEQ/ITS/DTS
//! which fold into one round) run their whole budget in a single turn.
//!
//! Parked snapshots are held in memory as their serialized file bytes;
//! when the total exceeds [`ServeConfig::park_mem_cap`], the snapshots
//! of the jobs furthest from their next turn are spooled to
//! [`ServeConfig::spool_dir`] and read back on resume.
//!
//! Deadlines and budgets are enforced at quantum boundaries: a job whose
//! deadline has passed when its turn comes is terminated with `REJECTED`
//! rather than rescheduled; the evaluation budget is the engine's own
//! `total_evals` and runs out inside the slice machinery.
//!
//! The farm behind the scheduler is one persistent pool for the whole
//! server lifetime: in-process worker threads ([`ServeBackend::InProc`])
//! or remote `mkp slave` processes on a [`SocketHub`]
//! ([`ServeBackend::Socket`]). On the socket backend slaves are kept
//! alive *between* slices (the engine's STOP fan-out is suppressed) and
//! released with a single STOP broadcast at server shutdown, so `mkp
//! slave` exits 0 after serving any number of jobs. A slave that dies
//! mid-slice is handled by the engine's resurrection machinery as usual;
//! a slave missing at the *start* of a slice fails that job's slice, not
//! the server.

use crate::engine::{
    master_loop, policy_for, validated_resume_policy, Delivery, Engine, EngineError, MasterCtl,
    SliceOutcome,
};
use crate::messages::{pack_bits, tags, unpack_bits, ProblemMsg};
use crate::runner::{Mode, ModeReport, RunConfig};
use crate::snapshot::Snapshot;
use crate::telemetry::Telemetry;
use mkp::{BitVec, Instance, Solution};
use pvm_lite::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use pvm_lite::codec::{CodecError, PackBuffer, UnpackBuffer, Wire};
use pvm_lite::{Endpoint, FramedConn, FramedListener, SocketHub, Transport};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client-protocol frame tags. Disjoint from the engine's slave-facing
/// [`tags`] — clients and slaves connect to different endpoints, but
/// distinct values keep a misdirected frame loudly unrecognizable.
pub(crate) mod jtags {
    /// Client → server: submit one job.
    pub const SUBMIT: u32 = 0x4A42_0001;
    /// Server → client: the job is queued; here is its id.
    pub const ACCEPTED: u32 = 0x4A42_0002;
    /// Server → client: best value after a slice of this job.
    pub const INCUMBENT: u32 = 0x4A42_0003;
    /// Server → client: the job finished; full report attached.
    pub const DONE: u32 = 0x4A42_0004;
    /// Server → client: the job was refused or terminated; reason attached.
    pub const REJECTED: u32 = 0x4A42_0005;
}

/// How often the scheduler polls for client events when the run queue is
/// empty (and the bound on how stale a `max_jobs` shutdown check can be).
const IDLE_POLL: Duration = Duration::from_millis(50);

/// Delay between a client's connect attempts in [`submit_job`].
const DIAL_DELAY: Duration = Duration::from_millis(100);

fn mode_code(mode: Mode) -> u8 {
    match mode {
        Mode::Sequential => 0,
        Mode::Independent => 1,
        Mode::Cooperative => 2,
        Mode::CooperativeAdaptive => 3,
        Mode::Asynchronous => 4,
        Mode::Decomposed => 5,
    }
}

fn mode_from_code(code: u8) -> Option<Mode> {
    Some(match code {
        0 => Mode::Sequential,
        1 => Mode::Independent,
        2 => Mode::Cooperative,
        3 => Mode::CooperativeAdaptive,
        4 => Mode::Asynchronous,
        5 => Mode::Decomposed,
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Wire messages
// ---------------------------------------------------------------------------

/// The client's submission: problem + run shape. `deadline_ms == 0`
/// means no deadline.
pub(crate) struct SubmitMsg {
    pub(crate) problem: ProblemMsg,
    pub(crate) mode: u8,
    pub(crate) p: u64,
    pub(crate) rounds: u64,
    pub(crate) budget_evals: u64,
    pub(crate) seed: u64,
    pub(crate) deadline_ms: u64,
}

impl Wire for SubmitMsg {
    fn pack(&self, buf: &mut PackBuffer) {
        self.problem.pack(buf);
        buf.put_u8(self.mode);
        buf.put_u64(self.p);
        buf.put_u64(self.rounds);
        buf.put_u64(self.budget_evals);
        buf.put_u64(self.seed);
        buf.put_u64(self.deadline_ms);
    }

    fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
        Ok(SubmitMsg {
            problem: ProblemMsg::unpack(buf)?,
            mode: buf.get_u8()?,
            p: buf.get_u64()?,
            rounds: buf.get_u64()?,
            budget_evals: buf.get_u64()?,
            seed: buf.get_u64()?,
            deadline_ms: buf.get_u64()?,
        })
    }
}

struct AcceptedMsg {
    job_id: u64,
}

impl Wire for AcceptedMsg {
    fn pack(&self, buf: &mut PackBuffer) {
        buf.put_u64(self.job_id);
    }

    fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
        Ok(AcceptedMsg {
            job_id: buf.get_u64()?,
        })
    }
}

struct IncumbentMsg {
    job_id: u64,
    value: i64,
    round: u64,
}

impl Wire for IncumbentMsg {
    fn pack(&self, buf: &mut PackBuffer) {
        buf.put_u64(self.job_id);
        buf.put_i64(self.value);
        buf.put_u64(self.round);
    }

    fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
        Ok(IncumbentMsg {
            job_id: buf.get_u64()?,
            value: buf.get_i64()?,
            round: buf.get_u64()?,
        })
    }
}

struct DoneMsg {
    job_id: u64,
    report: JobReport,
}

impl Wire for DoneMsg {
    fn pack(&self, buf: &mut PackBuffer) {
        buf.put_u64(self.job_id);
        self.report.pack(buf);
    }

    fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
        Ok(DoneMsg {
            job_id: buf.get_u64()?,
            report: JobReport::unpack(buf)?,
        })
    }
}

struct RejectedMsg {
    /// 0 when the job was refused before acceptance.
    job_id: u64,
    reason: String,
}

impl Wire for RejectedMsg {
    fn pack(&self, buf: &mut PackBuffer) {
        buf.put_u64(self.job_id);
        buf.put_str(&self.reason);
    }

    fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
        Ok(RejectedMsg {
            job_id: buf.get_u64()?,
            reason: buf.get_str()?,
        })
    }
}

/// A finished job's result, as delivered over the wire — a
/// [`ModeReport`] minus the parts that don't serialize (telemetry, loss
/// records) plus the best assignment as raw bits.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// The mode that ran.
    pub mode: Mode,
    /// Best assignment found.
    pub best_bits: BitVec,
    /// Value of the best assignment.
    pub best_value: i64,
    /// Global best value after each master round.
    pub round_best: Vec<i64>,
    /// Moves executed across all threads.
    pub total_moves: u64,
    /// Candidate evaluations spent across all threads.
    pub total_evals: u64,
    /// Strategy regenerations the SGP performed.
    pub regenerations: u64,
    /// Server-side wall-clock total across this job's slices, in ms.
    pub wall_ms: u64,
    /// Whether any slice lost workers (the result is still feasible).
    pub degraded: bool,
}

impl JobReport {
    fn from_report(report: &ModeReport, wall: Duration) -> JobReport {
        JobReport {
            mode: report.mode,
            best_bits: report.best.bits().clone(),
            best_value: report.best.value(),
            round_best: report.round_best.clone(),
            total_moves: report.total_moves,
            total_evals: report.total_evals,
            regenerations: report.regenerations,
            wall_ms: wall.as_millis() as u64,
            degraded: report.is_degraded(),
        }
    }

    /// Rebuild the best solution against the instance the client holds
    /// (re-deriving value and loads; panics if the lengths disagree —
    /// that means the client submitted a different instance).
    pub fn best_solution(&self, inst: &Instance) -> Solution {
        Solution::from_bits(inst, self.best_bits.clone())
    }
}

impl Wire for JobReport {
    fn pack(&self, buf: &mut PackBuffer) {
        buf.put_u8(mode_code(self.mode));
        pack_bits(&self.best_bits, buf);
        buf.put_i64(self.best_value);
        buf.put_i64s(&self.round_best);
        buf.put_u64(self.total_moves);
        buf.put_u64(self.total_evals);
        buf.put_u64(self.regenerations);
        buf.put_u64(self.wall_ms);
        buf.put_u8(self.degraded as u8);
    }

    fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
        let code = buf.get_u8()?;
        let mode = mode_from_code(code).ok_or(CodecError::LengthOverflow {
            length: code as u64,
        })?;
        Ok(JobReport {
            mode,
            best_bits: unpack_bits(buf)?,
            best_value: buf.get_i64()?,
            round_best: buf.get_i64s()?,
            total_moves: buf.get_u64()?,
            total_evals: buf.get_u64()?,
            regenerations: buf.get_u64()?,
            wall_ms: buf.get_u64()?,
            degraded: buf.get_u8()? != 0,
        })
    }
}

// ---------------------------------------------------------------------------
// Server configuration
// ---------------------------------------------------------------------------

/// The farm a [`serve`] call schedules jobs onto.
#[derive(Debug, Clone)]
pub enum ServeBackend {
    /// One in-process [`Engine`] with `p` persistent worker threads.
    InProc {
        /// Worker threads in the pool; jobs may use any `p` up to this.
        p: usize,
    },
    /// A [`SocketHub`] with `p` slots for remote `mkp slave` processes.
    /// All `p` slaves must connect within the configured patience before
    /// the server starts accepting jobs.
    Socket {
        /// Endpoint the slaves dial.
        slaves: Endpoint,
        /// Slave slots; jobs may use any `p` up to this.
        p: usize,
    },
}

/// Knobs for [`serve`]. [`Default`] gives a single-round quantum, a
/// 16-job queue, 4 jobs per client, a 64 MiB park-memory cap, a spool
/// directory under the system temp dir, no job limit, and ~2 minutes of
/// patience.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Master rounds a job runs per turn before parking. Jobs without a
    /// round boundary (pipelined delivery, single-round modes) run their
    /// whole budget in one turn regardless.
    pub quantum: usize,
    /// Cap on accepted-but-unfinished jobs across all clients.
    pub max_queue: usize,
    /// Cap on one client's accepted-but-unfinished jobs.
    pub max_inflight: usize,
    /// Bytes of parked snapshots held in memory before spilling the
    /// longest-waiting jobs' snapshots to `spool_dir`.
    pub park_mem_cap: usize,
    /// Where evicted snapshots live (`job-<id>.snap`, removed on resume
    /// and on job termination).
    pub spool_dir: PathBuf,
    /// Stop after this many accepted jobs reach a terminal state
    /// (done, deadline-expired, failed, or canceled). 0 serves forever.
    pub max_jobs: u64,
    /// Socket-backend patience: how long to wait for the initial slave
    /// fleet, and the reconnect window during slices.
    pub patience: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            quantum: 1,
            max_queue: 16,
            max_inflight: 4,
            park_mem_cap: 64 << 20,
            spool_dir: std::env::temp_dir().join("mkp-jobserver"),
            max_jobs: 0,
            patience: Duration::from_secs(121),
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), String> {
        if self.quantum == 0 {
            return Err("quantum must be at least one round".to_string());
        }
        if self.max_queue == 0 {
            return Err("max queue depth must be at least 1".to_string());
        }
        if self.max_inflight == 0 {
            return Err("per-client in-flight cap must be at least 1".to_string());
        }
        Ok(())
    }
}

/// What a completed [`serve`] call did, for logs and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs admitted to the queue.
    pub accepted: u64,
    /// Submissions refused at admission (queue full, caps, bad config).
    pub rejected: u64,
    /// Accepted jobs that finished with a report.
    pub done: u64,
    /// Accepted jobs terminated at a quantum boundary past their deadline.
    pub expired: u64,
    /// Accepted jobs terminated by an engine error.
    pub failed: u64,
    /// Accepted jobs dropped because their client disconnected.
    pub canceled: u64,
    /// Scheduler turns executed (slices run on the farm).
    pub slices: u64,
    /// Parked snapshots spooled to disk under memory pressure.
    pub evictions: u64,
    /// Parked snapshots read back from the spool.
    pub restores: u64,
}

// ---------------------------------------------------------------------------
// Server internals
// ---------------------------------------------------------------------------

enum Pool {
    InProc(Engine),
    Socket(SocketHub),
}

impl Pool {
    /// Worker capacity: jobs asking for more than this are refused at
    /// admission, so the persistent pool is never grown mid-serve.
    fn capacity(&self) -> usize {
        match self {
            Pool::InProc(engine) => engine.pool_size() - 1, // minus the master task
            Pool::Socket(hub) => hub.nslots(),
        }
    }
}

enum Event {
    /// A new client connection; `writer` is the scheduler's send half.
    Conn {
        client: u64,
        writer: FramedConn,
    },
    Submit {
        client: u64,
        msg: Box<SubmitMsg>,
    },
    BadSubmit {
        client: u64,
        detail: String,
    },
    Gone {
        client: u64,
    },
}

/// Where a job between turns keeps its master state.
enum JobState {
    /// Never ran; starts from scratch on its first turn.
    Fresh,
    /// Parked in memory as serialized snapshot bytes.
    ParkedMem(Vec<u8>),
    /// Parked on disk (evicted under the memory cap); size remembered
    /// for the stats.
    ParkedDisk(PathBuf),
}

struct Job {
    id: u64,
    client: u64,
    inst: Instance,
    mode: Mode,
    cfg: RunConfig,
    deadline: Option<Instant>,
    /// `Some(quantum)` when the mode has round boundaries to park at.
    park_after: Option<usize>,
    /// Wall-clock spent in this job's slices so far.
    spent: Duration,
    state: JobState,
}

struct Scheduler {
    cfg: ServeConfig,
    pool: Pool,
    writers: HashMap<u64, FramedConn>,
    jobs: HashMap<u64, Job>,
    runq: VecDeque<u64>,
    inflight: HashMap<u64, usize>,
    next_job: u64,
    /// Accepted jobs that reached a terminal state (drives `max_jobs`).
    terminal: u64,
    /// Bytes of snapshots currently in `JobState::ParkedMem`.
    park_mem: usize,
    stats: ServeStats,
}

/// Run the job server on `listen` until `cfg.max_jobs` accepted jobs
/// have reached a terminal state (forever if 0). Binds the client
/// listener and — for the socket backend — the slave hub, waits for the
/// full slave fleet, then schedules jobs round-robin in
/// `cfg.quantum`-round slices. Returns the tally of what was served.
pub fn serve(
    listen: &Endpoint,
    backend: ServeBackend,
    cfg: &ServeConfig,
) -> Result<ServeStats, String> {
    cfg.validate()?;
    std::fs::create_dir_all(&cfg.spool_dir).map_err(|e| {
        format!(
            "cannot create spool directory {}: {e}",
            cfg.spool_dir.display()
        )
    })?;
    let pool = match backend {
        ServeBackend::InProc { p } => {
            if p == 0 {
                return Err("the in-process pool needs at least one worker".to_string());
            }
            Pool::InProc(Engine::new(p))
        }
        ServeBackend::Socket { slaves, p } => {
            if p == 0 {
                return Err("the slave hub needs at least one slot".to_string());
            }
            let hub = SocketHub::bind(&slaves, p, cfg.patience)
                .map_err(|e| format!("cannot listen for slaves on {slaves}: {e}"))?;
            let connected = hub.wait_ready(cfg.patience);
            if connected < p {
                return Err(format!(
                    "only {connected} of {p} slaves connected to {slaves} within {:?}; \
                     start the missing `mkp slave --connect {slaves}` processes first",
                    cfg.patience
                ));
            }
            Pool::Socket(hub)
        }
    };
    let listener = FramedListener::bind(listen)
        .map_err(|e| format!("cannot listen for clients on {listen}: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot configure the client listener: {e}"))?;

    let (tx, rx) = unbounded();
    let stop = Arc::new(AtomicBool::new(false));
    let accept = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || accept_loop(listener, tx, stop))
    };

    let mut sched = Scheduler {
        cfg: cfg.clone(),
        pool,
        writers: HashMap::new(),
        jobs: HashMap::new(),
        runq: VecDeque::new(),
        inflight: HashMap::new(),
        next_job: 1,
        terminal: 0,
        park_mem: 0,
        stats: ServeStats::default(),
    };
    sched.run(&rx);

    // Shut down: stop accepting, close every client link (which also
    // unblocks their reader threads into a clean exit), release the
    // remote slaves with the STOP the slices withheld.
    stop.store(true, Ordering::Relaxed);
    let _ = accept.join();
    for (_, writer) in sched.writers.drain() {
        writer.shutdown();
    }
    if let Pool::Socket(hub) = &sched.pool {
        for slot in 1..hub.ntasks() {
            let _ = hub.send_bytes(slot, tags::STOP, Vec::new());
        }
    }
    Ok(sched.stats)
}

/// Accept client connections and hand each a reader thread. Nonblocking
/// so the `stop` flag is honored within one poll interval.
fn accept_loop(listener: FramedListener, tx: Sender<Event>, stop: Arc<AtomicBool>) {
    let mut next_client: u64 = 1;
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok(conn) => {
                let client = next_client;
                next_client += 1;
                let tx = tx.clone();
                std::thread::spawn(move || client_reader(client, conn, tx));
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break, // listener died: the server is going down
        }
    }
}

/// Per-client reader: announce the connection (with the scheduler's
/// writer half), then forward SUBMIT frames until the client hangs up.
/// Sending Conn and Submit from the same thread keeps them ordered in
/// the scheduler's single event queue.
fn client_reader(client: u64, mut conn: FramedConn, tx: Sender<Event>) {
    match conn.try_clone() {
        Ok(writer) => {
            if tx.send(Event::Conn { client, writer }).is_err() {
                return; // server already shut down
            }
        }
        Err(_) => return,
    }
    loop {
        let event = match conn.recv() {
            Ok(Some(env)) if env.tag == jtags::SUBMIT => match SubmitMsg::from_bytes(&env.data) {
                Ok(msg) => Event::Submit {
                    client,
                    msg: Box::new(msg),
                },
                Err(e) => Event::BadSubmit {
                    client,
                    detail: format!("malformed SUBMIT payload: {e}"),
                },
            },
            Ok(Some(env)) => Event::BadSubmit {
                client,
                detail: format!("unexpected frame tag {:#x}", env.tag),
            },
            Ok(None) | Err(_) => {
                let _ = tx.send(Event::Gone { client });
                return;
            }
        };
        if tx.send(event).is_err() {
            return;
        }
    }
}

impl Scheduler {
    fn run(&mut self, rx: &Receiver<Event>) {
        loop {
            while let Ok(event) = rx.try_recv() {
                self.handle(event);
            }
            if self.cfg.max_jobs > 0 && self.terminal >= self.cfg.max_jobs {
                return;
            }
            if let Some(id) = self.runq.pop_front() {
                self.run_turn(id);
            } else {
                match rx.recv_timeout(IDLE_POLL) {
                    Ok(event) => self.handle(event),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
        }
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Conn { client, writer } => {
                self.writers.insert(client, writer);
            }
            Event::Submit { client, msg } => self.admit(client, *msg),
            Event::BadSubmit { client, detail } => {
                self.stats.rejected += 1;
                self.send(
                    client,
                    jtags::REJECTED,
                    &RejectedMsg {
                        job_id: 0,
                        reason: detail,
                    },
                );
            }
            Event::Gone { client } => {
                self.writers.remove(&client);
                self.inflight.remove(&client);
                let orphans: Vec<u64> = self
                    .jobs
                    .values()
                    .filter(|j| j.client == client)
                    .map(|j| j.id)
                    .collect();
                for id in orphans {
                    let job = self.jobs.remove(&id).expect("orphan id came from the map");
                    self.runq.retain(|&q| q != id);
                    self.discard_state(&job.state);
                    self.terminal += 1;
                    self.stats.canceled += 1;
                }
            }
        }
    }

    /// Admission control: validate the submission and either enqueue it
    /// (ACCEPTED) or refuse it (REJECTED with job id 0).
    fn admit(&mut self, client: u64, msg: SubmitMsg) {
        let reject = |this: &mut Self, reason: String| {
            this.stats.rejected += 1;
            this.send(client, jtags::REJECTED, &RejectedMsg { job_id: 0, reason });
        };
        let Some(mode) = mode_from_code(msg.mode) else {
            return reject(self, format!("unknown mode code {}", msg.mode));
        };
        let pb = &msg.problem;
        if pb.n == 0
            || pb.m == 0
            || pb.profits.len() != pb.n
            || pb.weights.len() != pb.n * pb.m
            || pb.capacities.len() != pb.m
        {
            return reject(
                self,
                "malformed instance: array lengths disagree with n/m".into(),
            );
        }
        let capacity = self.pool.capacity();
        let p = msg.p as usize;
        if p == 0 || p > capacity {
            return reject(
                self,
                format!("p={p} outside this server's capacity of {capacity} workers"),
            );
        }
        if msg.rounds == 0 {
            return reject(self, "rounds must be at least 1".into());
        }
        if msg.budget_evals == 0 {
            return reject(self, "evaluation budget must be at least 1".into());
        }
        if self.jobs.len() >= self.cfg.max_queue {
            return reject(
                self,
                format!("job queue is full ({} jobs pending)", self.jobs.len()),
            );
        }
        let inflight = self.inflight.get(&client).copied().unwrap_or(0);
        if inflight >= self.cfg.max_inflight {
            return reject(
                self,
                format!(
                    "client already has {inflight} jobs in flight (cap {})",
                    self.cfg.max_inflight
                ),
            );
        }
        let cfg = RunConfig {
            p,
            rounds: msg.rounds as usize,
            ..RunConfig::new(msg.budget_evals, msg.seed)
        };
        if let Err(detail) = cfg.validate() {
            return reject(self, detail);
        }

        let id = self.next_job;
        self.next_job += 1;
        let policy = policy_for(mode);
        let parkable = policy.delivery() == Delivery::Synchronous && policy.rounds(&cfg) > 1;
        let deadline =
            (msg.deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(msg.deadline_ms));
        self.jobs.insert(
            id,
            Job {
                id,
                client,
                inst: msg.problem.into_instance(),
                mode,
                cfg,
                deadline,
                park_after: parkable.then_some(self.cfg.quantum),
                spent: Duration::ZERO,
                state: JobState::Fresh,
            },
        );
        self.runq.push_back(id);
        *self.inflight.entry(client).or_insert(0) += 1;
        self.stats.accepted += 1;
        self.send(client, jtags::ACCEPTED, &AcceptedMsg { job_id: id });
    }

    /// One scheduler turn: resume the job, run a slice, then finish it
    /// or park it at the back of the queue.
    fn run_turn(&mut self, id: u64) {
        let mut job = match self.jobs.remove(&id) {
            Some(job) => job,
            None => return, // canceled while queued
        };
        if let Some(deadline) = job.deadline {
            if Instant::now() >= deadline {
                self.stats.expired += 1;
                let msg = RejectedMsg {
                    job_id: job.id,
                    reason: format!("deadline exceeded after {:?} of search", job.spent),
                };
                self.send(job.client, jtags::REJECTED, &msg);
                self.finish(job);
                return;
            }
        }
        let resume = match std::mem::replace(&mut job.state, JobState::Fresh) {
            JobState::Fresh => None,
            JobState::ParkedMem(bytes) => {
                self.park_mem -= bytes.len();
                match Snapshot::from_file_bytes(&bytes) {
                    Ok(snap) => Some(snap),
                    Err(e) => return self.fail(job, format!("parked state is corrupt: {e}")),
                }
            }
            JobState::ParkedDisk(path) => {
                self.stats.restores += 1;
                let snap = Snapshot::load(&path);
                let _ = std::fs::remove_file(&path);
                match snap {
                    Ok(snap) => Some(snap),
                    Err(e) => return self.fail(job, format!("cannot restore spooled state: {e}")),
                }
            }
        };

        let turn_start = Instant::now();
        let outcome = match &mut self.pool {
            Pool::InProc(engine) => {
                engine.run_slice(&job.inst, job.mode, &job.cfg, resume, job.park_after)
            }
            Pool::Socket(hub) => socket_slice(hub, &job, resume),
        };
        job.spent += turn_start.elapsed();
        self.stats.slices += 1;

        match outcome {
            Ok(SliceOutcome::Finished(report)) => {
                let incumbent = IncumbentMsg {
                    job_id: job.id,
                    value: report.best.value(),
                    round: report.round_best.len() as u64,
                };
                self.send(job.client, jtags::INCUMBENT, &incumbent);
                let done = DoneMsg {
                    job_id: job.id,
                    report: JobReport::from_report(&report, job.spent),
                };
                self.send(job.client, jtags::DONE, &done);
                self.stats.done += 1;
                self.finish(job);
            }
            Ok(SliceOutcome::Parked(snap)) => {
                let incumbent = IncumbentMsg {
                    job_id: job.id,
                    value: *snap
                        .round_best
                        .last()
                        .expect("a parked run completed a round"),
                    round: snap.next_round as u64,
                };
                self.send(job.client, jtags::INCUMBENT, &incumbent);
                let bytes = snap.to_file_bytes();
                self.park_mem += bytes.len();
                job.state = JobState::ParkedMem(bytes);
                self.jobs.insert(id, job);
                self.runq.push_back(id);
                self.enforce_mem_cap();
            }
            Err(e) => self.fail(job, format!("search failed: {e}")),
        }
    }

    /// Terminate an accepted job with a REJECTED explaining the failure.
    fn fail(&mut self, job: Job, reason: String) {
        self.stats.failed += 1;
        let msg = RejectedMsg {
            job_id: job.id,
            reason,
        };
        self.send(job.client, jtags::REJECTED, &msg);
        self.finish(job);
    }

    /// Terminal bookkeeping shared by done/expired/failed paths. The job
    /// must already be out of `jobs` and `runq`.
    fn finish(&mut self, job: Job) {
        self.discard_state(&job.state);
        if let Some(count) = self.inflight.get_mut(&job.client) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                self.inflight.remove(&job.client);
            }
        }
        self.terminal += 1;
    }

    fn discard_state(&mut self, state: &JobState) {
        match state {
            JobState::Fresh => {}
            JobState::ParkedMem(bytes) => self.park_mem -= bytes.len(),
            JobState::ParkedDisk(path) => {
                let _ = std::fs::remove_file(path);
            }
        }
    }

    /// Spool parked snapshots to disk, longest-waiting jobs first (the
    /// back of the run queue is furthest from its next turn), until the
    /// in-memory total fits the cap again.
    fn enforce_mem_cap(&mut self) {
        if self.park_mem <= self.cfg.park_mem_cap {
            return;
        }
        let victims: Vec<u64> = self.runq.iter().rev().copied().collect();
        for id in victims {
            if self.park_mem <= self.cfg.park_mem_cap {
                return;
            }
            let Some(job) = self.jobs.get_mut(&id) else {
                continue;
            };
            let JobState::ParkedMem(bytes) = &job.state else {
                continue;
            };
            let path = self.cfg.spool_dir.join(format!("job-{id}.snap"));
            if std::fs::write(&path, bytes).is_err() {
                // Disk trouble: better over the cap than losing the job.
                return;
            }
            self.park_mem -= bytes.len();
            job.state = JobState::ParkedDisk(path);
            self.stats.evictions += 1;
        }
    }

    /// Send one message to a client; a dead link just drops the message
    /// (the reader thread's Gone event will cancel the client's jobs).
    fn send<T: Wire>(&mut self, client: u64, tag: u32, msg: &T) {
        if let Some(writer) = self.writers.get_mut(&client) {
            if writer.send(0, tag, msg).is_err() {
                self.writers.remove(&client);
            }
        }
    }
}

fn socket_slice(
    hub: &SocketHub,
    job: &Job,
    resume: Option<Snapshot>,
) -> Result<SliceOutcome, EngineError> {
    let mut policy = match &resume {
        Some(snap) => {
            if snap.mode != job.mode {
                return Err(EngineError::Internal {
                    detail: format!(
                        "parked state is for mode {} but the job runs {}",
                        snap.mode.label(),
                        job.mode.label()
                    ),
                });
            }
            validated_resume_policy(&job.inst, snap, &job.cfg)?
        }
        None => policy_for(job.mode),
    };
    let ctl = MasterCtl {
        park_after: job.park_after,
        stop_on_exit: false,
    };
    let tel = Telemetry::new(hub.ntasks());
    master_loop(hub, &job.inst, &mut *policy, &job.cfg, resume, &ctl, &tel)
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Shape of a job for [`submit_job`].
#[derive(Debug, Clone)]
pub struct SubmitSpec {
    /// Search organization to run.
    pub mode: Mode,
    /// Slave threads for this job (must fit the server's farm).
    pub p: usize,
    /// Master rounds.
    pub rounds: usize,
    /// Total candidate-evaluation budget.
    pub budget_evals: u64,
    /// Master seed.
    pub seed: u64,
    /// Wall-clock deadline, measured by the server from acceptance;
    /// enforced at quantum boundaries. `None` runs to completion.
    pub deadline: Option<Duration>,
}

/// Progress updates streamed to [`submit_job`]'s callback while the job
/// runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitEvent {
    /// The server queued the job.
    Accepted {
        /// Server-assigned job id.
        job_id: u64,
    },
    /// The server finished a slice of the job.
    Incumbent {
        /// Which job.
        job_id: u64,
        /// Best value so far.
        value: i64,
        /// Master rounds completed so far.
        round: u64,
    },
}

/// How a [`submit_job`] call ended.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitOutcome {
    /// The job ran to completion; here is its report.
    Done(Box<JobReport>),
    /// The server refused or terminated the job (admission control,
    /// deadline expiry, or an engine failure).
    Rejected {
        /// The server's explanation.
        reason: String,
    },
    /// The link to the server dropped after the job was accepted — the
    /// job's fate is unknown (the degraded-link exit, like a slave's
    /// lost master).
    ServerLost,
}

/// Submit one job to the server at `server` and wait for its outcome.
/// Dials with retries for up to `patience` (the server may still be
/// starting), then applies the same window as a read timeout — so
/// `patience` must also cover the longest gap between two server
/// messages (one full scheduling cycle of the queue ahead of this job).
/// Progress (acceptance, per-slice incumbents) streams to `on_event`.
///
/// Failures *before* the server accepts the job are hard errors;
/// afterwards the job may still be running, so a dropped link returns
/// [`SubmitOutcome::ServerLost`] for the caller to map to its
/// degraded-exit convention.
pub fn submit_job(
    server: &Endpoint,
    inst: &Instance,
    spec: &SubmitSpec,
    patience: Duration,
    mut on_event: impl FnMut(SubmitEvent),
) -> Result<SubmitOutcome, String> {
    let deadline = Instant::now().checked_add(patience);
    let mut conn = loop {
        match FramedConn::dial(server) {
            Ok(conn) => break conn,
            Err(_) => match deadline {
                Some(d) if Instant::now() >= d => {
                    return Err(format!(
                        "no job server reachable at {server} within {patience:?}"
                    ));
                }
                _ => std::thread::sleep(DIAL_DELAY),
            },
        }
    };
    conn.set_read_timeout(Some(patience))
        .map_err(|e| format!("cannot configure the server link: {e}"))?;

    let msg = SubmitMsg {
        problem: ProblemMsg::from_instance(inst),
        mode: mode_code(spec.mode),
        p: spec.p as u64,
        rounds: spec.rounds as u64,
        budget_evals: spec.budget_evals,
        seed: spec.seed,
        deadline_ms: spec
            .deadline
            .map(|d| (d.as_millis() as u64).max(1))
            .unwrap_or(0),
    };
    if conn.send(0, jtags::SUBMIT, &msg).is_err() {
        return Err(format!(
            "server at {server} closed the link before the job could be submitted"
        ));
    }

    let mut accepted = false;
    loop {
        let env = match conn.recv() {
            Ok(Some(env)) => env,
            Ok(None) | Err(_) => {
                return if accepted {
                    Ok(SubmitOutcome::ServerLost)
                } else {
                    Err(format!(
                        "server at {server} went silent before answering the submission"
                    ))
                };
            }
        };
        let decode_err =
            |what: &str, e: CodecError| format!("malformed {what} from the job server: {e}");
        match env.tag {
            jtags::ACCEPTED => {
                let msg =
                    AcceptedMsg::from_bytes(&env.data).map_err(|e| decode_err("ACCEPTED", e))?;
                accepted = true;
                on_event(SubmitEvent::Accepted { job_id: msg.job_id });
            }
            jtags::INCUMBENT => {
                let msg =
                    IncumbentMsg::from_bytes(&env.data).map_err(|e| decode_err("INCUMBENT", e))?;
                on_event(SubmitEvent::Incumbent {
                    job_id: msg.job_id,
                    value: msg.value,
                    round: msg.round,
                });
            }
            jtags::DONE => {
                let msg = DoneMsg::from_bytes(&env.data).map_err(|e| decode_err("DONE", e))?;
                return Ok(SubmitOutcome::Done(Box::new(msg.report)));
            }
            jtags::REJECTED => {
                let msg =
                    RejectedMsg::from_bytes(&env.data).map_err(|e| decode_err("REJECTED", e))?;
                return Ok(SubmitOutcome::Rejected { reason: msg.reason });
            }
            tag => {
                return Err(format!(
                    "protocol violation: unexpected tag {tag:#x} from the job server"
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkp::generate::{gk_instance, GkSpec};

    fn tiny_instance(seed: u64) -> Instance {
        gk_instance(
            "jobsrv-test",
            GkSpec {
                n: 40,
                m: 5,
                tightness: 0.5,
                seed,
            },
        )
    }

    #[test]
    fn job_report_round_trips_through_the_codec() {
        let inst = tiny_instance(7);
        let mut bits = BitVec::zeros(inst.n());
        bits.set(3, true);
        bits.set(17, true);
        let report = JobReport {
            mode: Mode::CooperativeAdaptive,
            best_bits: bits,
            best_value: 4321,
            round_best: vec![100, 4321],
            total_moves: 999,
            total_evals: 12_345,
            regenerations: 3,
            wall_ms: 250,
            degraded: false,
        };
        let back = JobReport::from_bytes(&report.to_bytes()).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.best_solution(&inst).bits(), &report.best_bits);
    }

    #[test]
    fn submit_msg_round_trips_through_the_codec() {
        let inst = tiny_instance(9);
        let msg = SubmitMsg {
            problem: ProblemMsg::from_instance(&inst),
            mode: mode_code(Mode::Cooperative),
            p: 3,
            rounds: 6,
            budget_evals: 50_000,
            seed: 42,
            deadline_ms: 1500,
        };
        let back = SubmitMsg::from_bytes(&msg.to_bytes()).unwrap();
        assert_eq!(back.problem, msg.problem);
        assert_eq!(back.mode, msg.mode);
        assert_eq!(back.p, 3);
        assert_eq!(back.rounds, 6);
        assert_eq!(back.budget_evals, 50_000);
        assert_eq!(back.seed, 42);
        assert_eq!(back.deadline_ms, 1500);
    }

    #[test]
    fn every_mode_code_round_trips() {
        for mode in [
            Mode::Sequential,
            Mode::Independent,
            Mode::Cooperative,
            Mode::CooperativeAdaptive,
            Mode::Asynchronous,
            Mode::Decomposed,
        ] {
            assert_eq!(mode_from_code(mode_code(mode)), Some(mode));
        }
        assert_eq!(mode_from_code(6), None);
    }
}
