//! Multi-tenant job server: many MKP jobs time-sliced over one farm
//! (DESIGN.md §14).
//!
//! [`serve`] runs a long-lived daemon that accepts *jobs* over the socket
//! layer's framed codec: a client dials in, sends one `SUBMIT` frame
//! (instance + mode + budget + optional wall-clock deadline) and then
//! just reads — `ACCEPTED`, a stream of `INCUMBENT` updates, and finally
//! `DONE` with the full report, or `REJECTED` with a reason. Admission
//! control bounds the total queue depth and the per-client in-flight
//! count, so one greedy tenant cannot starve the rest.
//!
//! Scheduling is round-robin in *round-granularity quanta*: a job runs
//! for [`ServeConfig::quantum`] master rounds, is **parked** — the
//! engine snapshots its complete master state at the round boundary
//! (PR 4's checkpoint artifact) — and the next job resumes from its own
//! snapshot. Because a parked snapshot is bit-identical to a periodic
//! checkpoint, a job sliced into N quanta produces *exactly* the report
//! an uninterrupted run would (asserted by `tests/jobserver.rs`). Modes
//! without a round boundary to park at (pipelined ATS, or SEQ/ITS/DTS
//! which fold into one round) run their whole budget in a single turn.
//!
//! Parked snapshots are held in memory as their serialized file bytes;
//! when the total exceeds [`ServeConfig::park_mem_cap`], the snapshots
//! of the jobs furthest from their next turn are spooled to
//! [`ServeConfig::spool_dir`] and read back on resume.
//!
//! Deadlines and budgets are enforced at quantum boundaries: a job whose
//! deadline has passed when its turn comes is terminated with `REJECTED`
//! rather than rescheduled; the evaluation budget is the engine's own
//! `total_evals` and runs out inside the slice machinery.
//!
//! The farm behind the scheduler is one persistent pool for the whole
//! server lifetime: in-process worker threads ([`ServeBackend::InProc`])
//! or remote `mkp slave` processes on a [`SocketHub`]
//! ([`ServeBackend::Socket`]). On the socket backend slaves are kept
//! alive *between* slices (the engine's STOP fan-out is suppressed) and
//! released with a single STOP broadcast at server shutdown, so `mkp
//! slave` exits 0 after serving any number of jobs. A slave that dies
//! mid-slice is handled by the engine's resurrection machinery as usual;
//! a slave missing at the *start* of a slice fails that job's slice, not
//! the server.
//!
//! # Durability (DESIGN.md §15)
//!
//! With [`ServeConfig::state_dir`] set the server is crash-safe end to
//! end: every accepted job is recorded in a write-ahead journal
//! ([`crate::journal`]) at `<state_dir>/journal.mkpj`, every park
//! writes the snapshot through to `<state_dir>/spool/job-<id>.snap`
//! (the PR 4 checkpoint format, checksummed and atomically renamed),
//! and per-slice incumbents and terminal outcomes are journaled as they
//! happen. A restarted server replays the journal, re-adopts the spool,
//! and resumes every in-flight job *bit-identically* from its last
//! parked snapshot. Clients reattach by durable job id (the `ATTACH`
//! verb, [`attach_job`]) or transparently by idempotent resubmit token
//! ([`submit_job`] retries its own SUBMIT with the same token after a
//! link drop, and the server answers with the existing job instead of
//! admitting a duplicate). The journal is compacted — live jobs'
//! records rewritten, finished jobs dropped — every few terminals and
//! on drain. A drain request ([`ServeConfig::drain`], typically wired
//! to SIGTERM) stops admission, finishes the current slice, leaves
//! every job parked durably and releases the slaves with one STOP.

use crate::engine::{
    master_loop, policy_for, validated_resume_policy, Delivery, Engine, EngineError, MasterCtl,
    SliceOutcome,
};
use crate::journal::{Journal, Record};
use crate::messages::{pack_bits, tags, unpack_bits, ProblemMsg};
use crate::runner::{Mode, ModeReport, RunConfig};
use crate::snapshot::Snapshot;
use crate::telemetry::Telemetry;
use mkp::{BitVec, Instance, Solution};
use pvm_lite::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use pvm_lite::codec::{CodecError, PackBuffer, UnpackBuffer, Wire};
use pvm_lite::{Endpoint, FramedConn, FramedListener, SocketHub, Transport};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client-protocol frame tags. Disjoint from the engine's slave-facing
/// [`tags`] — clients and slaves connect to different endpoints, but
/// distinct values keep a misdirected frame loudly unrecognizable.
pub(crate) mod jtags {
    /// Client → server: submit one job.
    pub const SUBMIT: u32 = 0x4A42_0001;
    /// Server → client: the job is queued; here is its id.
    pub const ACCEPTED: u32 = 0x4A42_0002;
    /// Server → client: best value after a slice of this job.
    pub const INCUMBENT: u32 = 0x4A42_0003;
    /// Server → client: the job finished; full report attached.
    pub const DONE: u32 = 0x4A42_0004;
    /// Server → client: the job was refused or terminated; reason attached.
    pub const REJECTED: u32 = 0x4A42_0005;
    /// Client → server: reattach to a previously submitted job by id.
    pub const ATTACH: u32 = 0x4A42_0006;
}

/// Journal record kinds (see [`crate::journal`]). Payloads reuse the
/// client-protocol wire encodings so a retained terminal record can be
/// replayed to a late `ATTACH` verbatim.
mod jkind {
    /// `[job_id: u64 LE][SubmitMsg bytes]` — a job was admitted.
    pub const SUBMIT: u8 = 1;
    /// `[job_id: u64 LE]` — the job parked; its snapshot is in the spool.
    pub const PARKED: u8 = 2;
    /// `IncumbentMsg` bytes — the job's best value after a slice.
    pub const INCUMBENT: u8 = 3;
    /// `DoneMsg` bytes — the job finished with a report.
    pub const DONE: u8 = 4;
    /// `RejectedMsg` bytes — the job was terminated with a reason.
    pub const REJECTED: u8 = 5;
}

/// How often the scheduler polls for client events when the run queue is
/// empty (and the bound on how stale a `max_jobs` shutdown check can be).
const IDLE_POLL: Duration = Duration::from_millis(50);

/// Delay between a client's connect attempts in [`submit_job`].
const DIAL_DELAY: Duration = Duration::from_millis(100);

/// Terminal frames kept around (and preserved across compaction) so a
/// late `ATTACH` to a finished job still gets its DONE/REJECTED.
const RETAINED_CAP: usize = 64;

/// Compact the journal after this many terminals since the last
/// compaction — often enough that the file tracks the live set, rarely
/// enough that compaction cost stays negligible.
const COMPACT_EVERY: u64 = 8;

/// How many times [`submit_job`]/[`attach_job`] re-dial and reattach
/// after the link drops post-acceptance before giving up with
/// [`SubmitOutcome::ServerLost`]. Each cycle already waits up to
/// `patience` inside the dial loop.
const MAX_REATTACHES: u32 = 5;

fn mode_code(mode: Mode) -> u8 {
    match mode {
        Mode::Sequential => 0,
        Mode::Independent => 1,
        Mode::Cooperative => 2,
        Mode::CooperativeAdaptive => 3,
        Mode::Asynchronous => 4,
        Mode::Decomposed => 5,
        Mode::Core => 6,
        Mode::Repair => 7,
    }
}

fn mode_from_code(code: u8) -> Option<Mode> {
    Some(match code {
        0 => Mode::Sequential,
        1 => Mode::Independent,
        2 => Mode::Cooperative,
        3 => Mode::CooperativeAdaptive,
        4 => Mode::Asynchronous,
        5 => Mode::Decomposed,
        6 => Mode::Core,
        7 => Mode::Repair,
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Wire messages
// ---------------------------------------------------------------------------

/// The client's submission: problem + run shape. `deadline_ms == 0`
/// means no deadline; `token == 0` means no idempotency token (a resend
/// of a nonzero token reattaches to the already-admitted job instead of
/// admitting a duplicate).
pub(crate) struct SubmitMsg {
    pub(crate) problem: ProblemMsg,
    pub(crate) mode: u8,
    pub(crate) p: u64,
    pub(crate) rounds: u64,
    pub(crate) budget_evals: u64,
    pub(crate) seed: u64,
    pub(crate) deadline_ms: u64,
    pub(crate) token: u64,
}

impl Wire for SubmitMsg {
    fn pack(&self, buf: &mut PackBuffer) {
        self.problem.pack(buf);
        buf.put_u8(self.mode);
        buf.put_u64(self.p);
        buf.put_u64(self.rounds);
        buf.put_u64(self.budget_evals);
        buf.put_u64(self.seed);
        buf.put_u64(self.deadline_ms);
        buf.put_u64(self.token);
    }

    fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
        Ok(SubmitMsg {
            problem: ProblemMsg::unpack(buf)?,
            mode: buf.get_u8()?,
            p: buf.get_u64()?,
            rounds: buf.get_u64()?,
            budget_evals: buf.get_u64()?,
            seed: buf.get_u64()?,
            deadline_ms: buf.get_u64()?,
            token: buf.get_u64()?,
        })
    }
}

/// Client → server: reattach to job `job_id` (live or recently
/// finished) and stream its remaining events.
struct AttachMsg {
    job_id: u64,
}

impl Wire for AttachMsg {
    fn pack(&self, buf: &mut PackBuffer) {
        buf.put_u64(self.job_id);
    }

    fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
        Ok(AttachMsg {
            job_id: buf.get_u64()?,
        })
    }
}

struct AcceptedMsg {
    job_id: u64,
}

impl Wire for AcceptedMsg {
    fn pack(&self, buf: &mut PackBuffer) {
        buf.put_u64(self.job_id);
    }

    fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
        Ok(AcceptedMsg {
            job_id: buf.get_u64()?,
        })
    }
}

struct IncumbentMsg {
    job_id: u64,
    value: i64,
    round: u64,
}

impl Wire for IncumbentMsg {
    fn pack(&self, buf: &mut PackBuffer) {
        buf.put_u64(self.job_id);
        buf.put_i64(self.value);
        buf.put_u64(self.round);
    }

    fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
        Ok(IncumbentMsg {
            job_id: buf.get_u64()?,
            value: buf.get_i64()?,
            round: buf.get_u64()?,
        })
    }
}

struct DoneMsg {
    job_id: u64,
    report: JobReport,
}

impl Wire for DoneMsg {
    fn pack(&self, buf: &mut PackBuffer) {
        buf.put_u64(self.job_id);
        self.report.pack(buf);
    }

    fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
        Ok(DoneMsg {
            job_id: buf.get_u64()?,
            report: JobReport::unpack(buf)?,
        })
    }
}

struct RejectedMsg {
    /// 0 when the job was refused before acceptance.
    job_id: u64,
    reason: String,
}

impl Wire for RejectedMsg {
    fn pack(&self, buf: &mut PackBuffer) {
        buf.put_u64(self.job_id);
        buf.put_str(&self.reason);
    }

    fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
        Ok(RejectedMsg {
            job_id: buf.get_u64()?,
            reason: buf.get_str()?,
        })
    }
}

/// A finished job's result, as delivered over the wire — a
/// [`ModeReport`] minus the parts that don't serialize (telemetry, loss
/// records) plus the best assignment as raw bits.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// The mode that ran.
    pub mode: Mode,
    /// Best assignment found.
    pub best_bits: BitVec,
    /// Value of the best assignment.
    pub best_value: i64,
    /// Global best value after each master round.
    pub round_best: Vec<i64>,
    /// Moves executed across all threads.
    pub total_moves: u64,
    /// Candidate evaluations spent across all threads.
    pub total_evals: u64,
    /// Strategy regenerations the SGP performed.
    pub regenerations: u64,
    /// Server-side wall-clock total across this job's slices, in ms.
    pub wall_ms: u64,
    /// Whether any slice lost workers (the result is still feasible).
    pub degraded: bool,
}

impl JobReport {
    fn from_report(report: &ModeReport, wall: Duration) -> JobReport {
        JobReport {
            mode: report.mode,
            best_bits: report.best.bits().clone(),
            best_value: report.best.value(),
            round_best: report.round_best.clone(),
            total_moves: report.total_moves,
            total_evals: report.total_evals,
            regenerations: report.regenerations,
            wall_ms: wall.as_millis() as u64,
            degraded: report.is_degraded(),
        }
    }

    /// Rebuild the best solution against the instance the client holds
    /// (re-deriving value and loads; panics if the lengths disagree —
    /// that means the client submitted a different instance).
    pub fn best_solution(&self, inst: &Instance) -> Solution {
        Solution::from_bits(inst, self.best_bits.clone())
    }
}

impl Wire for JobReport {
    fn pack(&self, buf: &mut PackBuffer) {
        buf.put_u8(mode_code(self.mode));
        pack_bits(&self.best_bits, buf);
        buf.put_i64(self.best_value);
        buf.put_i64s(&self.round_best);
        buf.put_u64(self.total_moves);
        buf.put_u64(self.total_evals);
        buf.put_u64(self.regenerations);
        buf.put_u64(self.wall_ms);
        buf.put_u8(self.degraded as u8);
    }

    fn unpack(buf: &mut UnpackBuffer<'_>) -> Result<Self, CodecError> {
        let code = buf.get_u8()?;
        let mode = mode_from_code(code).ok_or(CodecError::LengthOverflow {
            length: code as u64,
        })?;
        Ok(JobReport {
            mode,
            best_bits: unpack_bits(buf)?,
            best_value: buf.get_i64()?,
            round_best: buf.get_i64s()?,
            total_moves: buf.get_u64()?,
            total_evals: buf.get_u64()?,
            regenerations: buf.get_u64()?,
            wall_ms: buf.get_u64()?,
            degraded: buf.get_u8()? != 0,
        })
    }
}

// ---------------------------------------------------------------------------
// Server configuration
// ---------------------------------------------------------------------------

/// The farm a [`serve`] call schedules jobs onto.
#[derive(Debug, Clone)]
pub enum ServeBackend {
    /// One in-process [`Engine`] with `p` persistent worker threads.
    InProc {
        /// Worker threads in the pool; jobs may use any `p` up to this.
        p: usize,
    },
    /// A [`SocketHub`] with `p` slots for remote `mkp slave` processes.
    /// All `p` slaves must connect within the configured patience before
    /// the server starts accepting jobs.
    Socket {
        /// Endpoint the slaves dial.
        slaves: Endpoint,
        /// Slave slots; jobs may use any `p` up to this.
        p: usize,
    },
}

/// Knobs for [`serve`]. [`Default`] gives a single-round quantum, a
/// 16-job queue, 4 jobs per client, a 64 MiB park-memory cap, a spool
/// directory under the system temp dir, no job limit, and ~2 minutes of
/// patience.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Master rounds a job runs per turn before parking. Jobs without a
    /// round boundary (pipelined delivery, single-round modes) run their
    /// whole budget in one turn regardless.
    pub quantum: usize,
    /// Cap on accepted-but-unfinished jobs across all clients.
    pub max_queue: usize,
    /// Cap on one client's accepted-but-unfinished jobs.
    pub max_inflight: usize,
    /// Bytes of parked snapshots held in memory before spilling the
    /// longest-waiting jobs' snapshots to `spool_dir`.
    pub park_mem_cap: usize,
    /// Where evicted snapshots live (`job-<id>.snap`, removed on resume
    /// and on job termination).
    pub spool_dir: PathBuf,
    /// Stop after this many accepted jobs reach a terminal state
    /// (done, deadline-expired, failed, or canceled). 0 serves forever.
    /// With a `state_dir`, terminals recovered from the journal count
    /// toward the limit, so a restarted `--max-jobs` server still stops
    /// after the same total.
    pub max_jobs: u64,
    /// Socket-backend patience: how long to wait for the initial slave
    /// fleet, and the reconnect window during slices.
    pub patience: Duration,
    /// Durable state directory. When set, accepted jobs are journaled
    /// to `<state_dir>/journal.mkpj`, parked snapshots are written
    /// through to `<state_dir>/spool/` (which overrides `spool_dir`),
    /// client disconnects *detach* jobs instead of canceling them, and
    /// a restarted server resumes every in-flight job from its last
    /// parked snapshot. `None` keeps the server purely in-memory.
    pub state_dir: Option<PathBuf>,
    /// Cooperative drain flag, typically flipped by a SIGTERM handler.
    /// When it reads `true` the scheduler stops admitting (submissions
    /// are REJECTED with a "draining" reason), finishes the slice in
    /// progress, leaves every job parked — durably when `state_dir` is
    /// set — compacts the journal, and returns.
    pub drain: Option<Arc<AtomicBool>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            quantum: 1,
            max_queue: 16,
            max_inflight: 4,
            park_mem_cap: 64 << 20,
            spool_dir: std::env::temp_dir().join("mkp-jobserver"),
            max_jobs: 0,
            patience: Duration::from_secs(121),
            state_dir: None,
            drain: None,
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), String> {
        if self.quantum == 0 {
            return Err("quantum must be at least one round".to_string());
        }
        if self.max_queue == 0 {
            return Err("max queue depth must be at least 1".to_string());
        }
        if self.max_inflight == 0 {
            return Err("per-client in-flight cap must be at least 1".to_string());
        }
        Ok(())
    }
}

/// What a completed [`serve`] call did, for logs and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs admitted to the queue.
    pub accepted: u64,
    /// Submissions refused at admission (queue full, caps, bad config).
    pub rejected: u64,
    /// Accepted jobs that finished with a report.
    pub done: u64,
    /// Accepted jobs terminated at a quantum boundary past their deadline.
    pub expired: u64,
    /// Accepted jobs terminated by an engine error.
    pub failed: u64,
    /// Accepted jobs dropped because their client disconnected.
    pub canceled: u64,
    /// Scheduler turns executed (slices run on the farm).
    pub slices: u64,
    /// Parked snapshots spooled to disk under memory pressure.
    pub evictions: u64,
    /// Parked snapshots read back from the spool.
    pub restores: u64,
    /// In-flight jobs re-adopted from the journal at startup.
    pub recovered: u64,
    /// Spooled snapshots that failed their checksum on restore
    /// (surfaced to the client as a `SpoolCorrupt:` rejection).
    pub spool_corrupt: u64,
    /// Whether the server exited through a drain request.
    pub drained: bool,
}

// ---------------------------------------------------------------------------
// Server internals
// ---------------------------------------------------------------------------

enum Pool {
    InProc(Engine),
    Socket(SocketHub),
}

impl Pool {
    /// Worker capacity: jobs asking for more than this are refused at
    /// admission, so the persistent pool is never grown mid-serve.
    fn capacity(&self) -> usize {
        match self {
            Pool::InProc(engine) => engine.pool_size() - 1, // minus the master task
            Pool::Socket(hub) => hub.nslots(),
        }
    }
}

enum Event {
    /// A new client connection; `writer` is the scheduler's send half.
    Conn {
        client: u64,
        writer: FramedConn,
    },
    Submit {
        client: u64,
        msg: Box<SubmitMsg>,
    },
    Attach {
        client: u64,
        job_id: u64,
    },
    BadSubmit {
        client: u64,
        detail: String,
    },
    Gone {
        client: u64,
    },
}

/// Where a job between turns keeps its master state.
enum JobState {
    /// Never ran; starts from scratch on its first turn.
    Fresh,
    /// Parked in memory as serialized snapshot bytes.
    ParkedMem(Vec<u8>),
    /// Parked on disk (evicted under the memory cap); size remembered
    /// for the stats.
    ParkedDisk(PathBuf),
}

struct Job {
    id: u64,
    /// Owning client, or 0 when detached (client gone, job journaled —
    /// it keeps running and waits for an ATTACH or token resubmit).
    client: u64,
    inst: Instance,
    mode: Mode,
    cfg: RunConfig,
    deadline: Option<Instant>,
    /// The submission's idempotency token; 0 means none.
    token: u64,
    /// `Some(quantum)` when the mode has round boundaries to park at.
    park_after: Option<usize>,
    /// Wall-clock spent in this job's slices so far.
    spent: Duration,
    /// Best (value, rounds-done) announced so far — replayed to a
    /// reattaching client so it never sees a silent gap.
    last_incumbent: Option<(i64, u64)>,
    state: JobState,
}

/// A finished job's final frame, retained for late `ATTACH`es: replayed
/// verbatim (same tag, same payload). The token rides along so its
/// idempotency mapping can be dropped when the terminal is evicted.
struct Terminal {
    tag: u32,
    payload: Vec<u8>,
    token: u64,
}

struct Scheduler {
    cfg: ServeConfig,
    pool: Pool,
    writers: HashMap<u64, FramedConn>,
    jobs: HashMap<u64, Job>,
    runq: VecDeque<u64>,
    inflight: HashMap<u64, usize>,
    next_job: u64,
    /// Accepted jobs that reached a terminal state (drives `max_jobs`);
    /// seeded with the journal's terminal count on recovery.
    terminal: u64,
    /// Bytes of snapshots currently in `JobState::ParkedMem`.
    park_mem: usize,
    /// Write-ahead journal (`Some` iff `cfg.state_dir` is set).
    journal: Option<Journal>,
    /// Idempotency token → job id, covering live and retained jobs.
    tokens: HashMap<u64, u64>,
    /// Terminal frames kept for late ATTACH, newest last, capped at
    /// [`RETAINED_CAP`].
    retained: HashMap<u64, Terminal>,
    retained_order: VecDeque<u64>,
    /// Terminals since the last compaction (drives [`COMPACT_EVERY`]).
    terminal_since_compact: u64,
    stats: ServeStats,
}

/// Run the job server on `listen` until `cfg.max_jobs` accepted jobs
/// have reached a terminal state (forever if 0), or until the drain
/// flag flips. Binds the client listener and — for the socket backend —
/// the slave hub, waits for the full slave fleet, then schedules jobs
/// round-robin in `cfg.quantum`-round slices. With a
/// [`ServeConfig::state_dir`], first replays the journal and re-adopts
/// any spooled jobs a previous incarnation left behind. Returns the
/// tally of what was served.
pub fn serve(
    listen: &Endpoint,
    backend: ServeBackend,
    cfg: &ServeConfig,
) -> Result<ServeStats, String> {
    cfg.validate()?;
    let mut cfg = cfg.clone();
    let mut journal = None;
    let mut recovered_records = Vec::new();
    if let Some(state_dir) = &cfg.state_dir {
        // The state dir owns the spool: write-through parks and the
        // journal must land on the same filesystem to recover together.
        cfg.spool_dir = state_dir.join("spool");
        std::fs::create_dir_all(&cfg.spool_dir)
            .map_err(|e| format!("cannot create state directory {}: {e}", state_dir.display()))?;
        let (j, records) = Journal::open(&state_dir.join("journal.mkpj"))
            .map_err(|e| format!("cannot open the job journal: {e}"))?;
        journal = Some(j);
        recovered_records = records;
    }
    std::fs::create_dir_all(&cfg.spool_dir).map_err(|e| {
        format!(
            "cannot create spool directory {}: {e}",
            cfg.spool_dir.display()
        )
    })?;
    let pool = match backend {
        ServeBackend::InProc { p } => {
            if p == 0 {
                return Err("the in-process pool needs at least one worker".to_string());
            }
            Pool::InProc(Engine::new(p))
        }
        ServeBackend::Socket { slaves, p } => {
            if p == 0 {
                return Err("the slave hub needs at least one slot".to_string());
            }
            let hub = SocketHub::bind(&slaves, p, cfg.patience)
                .map_err(|e| format!("cannot listen for slaves on {slaves}: {e}"))?;
            let connected = hub.wait_ready(cfg.patience);
            if connected < p {
                return Err(format!(
                    "only {connected} of {p} slaves connected to {slaves} within {:?}; \
                     start the missing `mkp slave --connect {slaves}` processes first",
                    cfg.patience
                ));
            }
            Pool::Socket(hub)
        }
    };
    let listener = FramedListener::bind(listen)
        .map_err(|e| format!("cannot listen for clients on {listen}: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot configure the client listener: {e}"))?;

    let (tx, rx) = unbounded();
    let stop = Arc::new(AtomicBool::new(false));
    let accept = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || accept_loop(listener, tx, stop))
    };

    let mut sched = Scheduler {
        cfg: cfg.clone(),
        pool,
        writers: HashMap::new(),
        jobs: HashMap::new(),
        runq: VecDeque::new(),
        inflight: HashMap::new(),
        next_job: 1,
        terminal: 0,
        park_mem: 0,
        journal,
        tokens: HashMap::new(),
        retained: HashMap::new(),
        retained_order: VecDeque::new(),
        terminal_since_compact: 0,
        stats: ServeStats::default(),
    };
    sched.recover(recovered_records);
    sched.run(&rx);

    // Shut down: compact the journal down to what still matters (live
    // jobs on a drain, retained terminals either way), stop accepting,
    // close every client link (which also unblocks their reader threads
    // into a clean exit), release the remote slaves with the STOP the
    // slices withheld.
    sched.compact_journal();
    stop.store(true, Ordering::Relaxed);
    let _ = accept.join();
    for (_, writer) in sched.writers.drain() {
        writer.shutdown();
    }
    if let Pool::Socket(hub) = &sched.pool {
        for slot in 1..hub.ntasks() {
            let _ = hub.send_bytes(slot, tags::STOP, Vec::new());
        }
    }
    Ok(sched.stats)
}

/// Accept client connections and hand each a reader thread. Nonblocking
/// so the `stop` flag is honored within one poll interval.
fn accept_loop(listener: FramedListener, tx: Sender<Event>, stop: Arc<AtomicBool>) {
    let mut next_client: u64 = 1;
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok(conn) => {
                let client = next_client;
                next_client += 1;
                let tx = tx.clone();
                std::thread::spawn(move || client_reader(client, conn, tx));
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break, // listener died: the server is going down
        }
    }
}

/// Per-client reader: announce the connection (with the scheduler's
/// writer half), then forward SUBMIT frames until the client hangs up.
/// Sending Conn and Submit from the same thread keeps them ordered in
/// the scheduler's single event queue.
fn client_reader(client: u64, mut conn: FramedConn, tx: Sender<Event>) {
    match conn.try_clone() {
        Ok(writer) => {
            if tx.send(Event::Conn { client, writer }).is_err() {
                return; // server already shut down
            }
        }
        Err(_) => return,
    }
    loop {
        let event = match conn.recv() {
            Ok(Some(env)) if env.tag == jtags::SUBMIT => match SubmitMsg::from_bytes(&env.data) {
                Ok(msg) => Event::Submit {
                    client,
                    msg: Box::new(msg),
                },
                Err(e) => Event::BadSubmit {
                    client,
                    detail: format!("malformed SUBMIT payload: {e}"),
                },
            },
            Ok(Some(env)) if env.tag == jtags::ATTACH => match AttachMsg::from_bytes(&env.data) {
                Ok(msg) => Event::Attach {
                    client,
                    job_id: msg.job_id,
                },
                Err(e) => Event::BadSubmit {
                    client,
                    detail: format!("malformed ATTACH payload: {e}"),
                },
            },
            Ok(Some(env)) => Event::BadSubmit {
                client,
                detail: format!("unexpected frame tag {:#x}", env.tag),
            },
            Ok(None) | Err(_) => {
                let _ = tx.send(Event::Gone { client });
                return;
            }
        };
        if tx.send(event).is_err() {
            return;
        }
    }
}

impl Scheduler {
    fn run(&mut self, rx: &Receiver<Event>) {
        loop {
            while let Ok(event) = rx.try_recv() {
                self.handle(event);
            }
            if self.drain_requested() {
                self.stats.drained = true;
                return;
            }
            self.expire_overdue();
            if self.cfg.max_jobs > 0 && self.terminal >= self.cfg.max_jobs {
                return;
            }
            if let Some(id) = self.runq.pop_front() {
                self.run_turn(id);
            } else {
                match rx.recv_timeout(IDLE_POLL) {
                    Ok(event) => self.handle(event),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
        }
    }

    fn drain_requested(&self) -> bool {
        self.cfg
            .drain
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Conn { client, writer } => {
                self.writers.insert(client, writer);
            }
            Event::Submit { client, msg } => self.admit(client, *msg),
            Event::Attach { client, job_id } => self.reattach(client, job_id),
            Event::BadSubmit { client, detail } => {
                self.stats.rejected += 1;
                self.send(
                    client,
                    jtags::REJECTED,
                    &RejectedMsg {
                        job_id: 0,
                        reason: detail,
                    },
                );
            }
            Event::Gone { client } => {
                self.writers.remove(&client);
                if self.journal.is_some() {
                    // Durable server: a vanished client *detaches* its
                    // jobs — they keep running under their journal entry
                    // and wait for an ATTACH or token resubmit.
                    self.inflight.remove(&client);
                    for job in self.jobs.values_mut().filter(|j| j.client == client) {
                        job.client = 0;
                    }
                    return;
                }
                self.inflight.remove(&client);
                let orphans: Vec<u64> = self
                    .jobs
                    .values()
                    .filter(|j| j.client == client)
                    .map(|j| j.id)
                    .collect();
                for id in orphans {
                    let job = self.jobs.remove(&id).expect("orphan id came from the map");
                    self.runq.retain(|&q| q != id);
                    self.discard_state(&job.state);
                    self.terminal += 1;
                    self.stats.canceled += 1;
                }
            }
        }
    }

    /// Satellite: enforce deadlines on *parked* jobs at the scheduler
    /// tick, not only when their quantum comes up — with a long queue a
    /// job could otherwise sit expired for many turns before being told.
    fn expire_overdue(&mut self) {
        let now = Instant::now();
        let overdue: Vec<u64> = self
            .runq
            .iter()
            .filter(|id| {
                self.jobs
                    .get(id)
                    .and_then(|j| j.deadline)
                    .is_some_and(|d| now >= d)
            })
            .copied()
            .collect();
        for id in overdue {
            self.runq.retain(|&q| q != id);
            let job = self
                .jobs
                .remove(&id)
                .expect("overdue id came from the queue");
            self.stats.expired += 1;
            let reason = format!(
                "deadline exceeded between turns after {:?} of search",
                job.spent
            );
            self.terminate_rejected(job, reason);
        }
    }

    /// Admission control: validate the submission and either enqueue it
    /// (ACCEPTED) or refuse it (REJECTED with job id 0). A resent
    /// nonzero token short-circuits into a reattach — the idempotency
    /// that makes the client's retry-after-link-drop safe.
    fn admit(&mut self, client: u64, msg: SubmitMsg) {
        if msg.token != 0 {
            if let Some(&id) = self.tokens.get(&msg.token) {
                return self.reattach(client, id);
            }
        }
        let reject = |this: &mut Self, reason: String| {
            this.stats.rejected += 1;
            this.send(client, jtags::REJECTED, &RejectedMsg { job_id: 0, reason });
        };
        if self.drain_requested() {
            return reject(
                self,
                "server is draining; resubmit after its restart".into(),
            );
        }
        if mode_from_code(msg.mode).is_none() {
            return reject(self, format!("unknown mode code {}", msg.mode));
        }
        let pb = &msg.problem;
        if pb.n == 0
            || pb.m == 0
            || pb.profits.len() != pb.n
            || pb.weights.len() != pb.n * pb.m
            || pb.capacities.len() != pb.m
        {
            return reject(
                self,
                "malformed instance: array lengths disagree with n/m".into(),
            );
        }
        let capacity = self.pool.capacity();
        let p = msg.p as usize;
        if p == 0 || p > capacity {
            return reject(
                self,
                format!("p={p} outside this server's capacity of {capacity} workers"),
            );
        }
        if msg.rounds == 0 {
            return reject(self, "rounds must be at least 1".into());
        }
        if msg.budget_evals == 0 {
            return reject(self, "evaluation budget must be at least 1".into());
        }
        if self.jobs.len() >= self.cfg.max_queue {
            return reject(
                self,
                format!("job queue is full ({} jobs pending)", self.jobs.len()),
            );
        }
        let inflight = self.inflight.get(&client).copied().unwrap_or(0);
        if inflight >= self.cfg.max_inflight {
            return reject(
                self,
                format!(
                    "client already has {inflight} jobs in flight (cap {})",
                    self.cfg.max_inflight
                ),
            );
        }
        let cfg = RunConfig {
            p,
            rounds: msg.rounds as usize,
            ..RunConfig::new(msg.budget_evals, msg.seed)
        };
        if let Err(detail) = cfg.validate() {
            return reject(self, detail);
        }

        let id = self.next_job;
        self.next_job += 1;
        // Journal first, admit second: a job the client was told about
        // must survive a crash, so the SUBMIT record hits disk before
        // the ACCEPTED frame leaves.
        if self.journal.is_some() {
            let mut payload = id.to_le_bytes().to_vec();
            payload.extend_from_slice(&msg.to_bytes());
            self.journal_append(jkind::SUBMIT, &payload);
        }
        let job = build_job(id, client, &self.cfg, msg);
        if job.token != 0 {
            self.tokens.insert(job.token, id);
        }
        self.jobs.insert(id, job);
        self.runq.push_back(id);
        *self.inflight.entry(client).or_insert(0) += 1;
        self.stats.accepted += 1;
        self.send(client, jtags::ACCEPTED, &AcceptedMsg { job_id: id });
    }

    /// Point `job_id` — live or retained — at `client` and replay what
    /// it missed: ACCEPTED plus the last incumbent for a live job, the
    /// verbatim terminal frame for a finished one.
    fn reattach(&mut self, client: u64, job_id: u64) {
        if let Some(job) = self.jobs.get_mut(&job_id) {
            let old = job.client;
            job.client = client;
            let last = job.last_incumbent;
            if old != client {
                if let Some(count) = self.inflight.get_mut(&old) {
                    *count = count.saturating_sub(1);
                    if *count == 0 {
                        self.inflight.remove(&old);
                    }
                }
                *self.inflight.entry(client).or_insert(0) += 1;
            }
            self.send(client, jtags::ACCEPTED, &AcceptedMsg { job_id });
            if let Some((value, round)) = last {
                self.send(
                    client,
                    jtags::INCUMBENT,
                    &IncumbentMsg {
                        job_id,
                        value,
                        round,
                    },
                );
            }
        } else if let Some(terminal) = self.retained.get(&job_id) {
            let (tag, payload) = (terminal.tag, terminal.payload.clone());
            self.send(client, jtags::ACCEPTED, &AcceptedMsg { job_id });
            self.send_raw(client, tag, &payload);
        } else {
            self.send(
                client,
                jtags::REJECTED,
                &RejectedMsg {
                    job_id,
                    reason: format!(
                        "unknown job id {job_id}: never submitted here, or finished too long ago"
                    ),
                },
            );
        }
    }

    /// One scheduler turn: resume the job, run a slice, then finish it
    /// or park it at the back of the queue.
    fn run_turn(&mut self, id: u64) {
        let mut job = match self.jobs.remove(&id) {
            Some(job) => job,
            None => return, // canceled while queued
        };
        if let Some(deadline) = job.deadline {
            if Instant::now() >= deadline {
                self.stats.expired += 1;
                let reason = format!("deadline exceeded after {:?} of search", job.spent);
                self.terminate_rejected(job, reason);
                return;
            }
        }
        let durable = self.journal.is_some();
        let resume = match std::mem::replace(&mut job.state, JobState::Fresh) {
            JobState::Fresh => None,
            JobState::ParkedMem(bytes) => {
                self.park_mem -= bytes.len();
                match Snapshot::from_file_bytes(&bytes) {
                    Ok(snap) => Some(snap),
                    Err(e) => return self.fail(job, format!("parked state is corrupt: {e}")),
                }
            }
            JobState::ParkedDisk(path) => {
                self.stats.restores += 1;
                let snap = Snapshot::load(&path);
                // A durable server keeps the spool file until the next
                // park overwrites it (or the job ends): a crash between
                // restore and re-park must not lose the state.
                if !durable {
                    let _ = std::fs::remove_file(&path);
                }
                match snap {
                    Ok(snap) => Some(snap),
                    Err(e) => {
                        // Satellite: a spool file that fails its
                        // checksum gets a *specific* verdict, its own
                        // telemetry count, and takes only this job down.
                        self.stats.spool_corrupt += 1;
                        let _ = std::fs::remove_file(&path);
                        return self.fail(
                            job,
                            format!("SpoolCorrupt: cannot restore spooled state: {e}"),
                        );
                    }
                }
            }
        };

        let turn_start = Instant::now();
        let outcome = match &mut self.pool {
            Pool::InProc(engine) => {
                engine.run_slice(&job.inst, job.mode, &job.cfg, resume, job.park_after)
            }
            Pool::Socket(hub) => socket_slice(hub, &job, resume),
        };
        job.spent += turn_start.elapsed();
        self.stats.slices += 1;

        match outcome {
            Ok(SliceOutcome::Finished(report)) => {
                let incumbent = IncumbentMsg {
                    job_id: job.id,
                    value: report.best.value(),
                    round: report.round_best.len() as u64,
                };
                self.send(job.client, jtags::INCUMBENT, &incumbent);
                let done = DoneMsg {
                    job_id: job.id,
                    report: JobReport::from_report(&report, job.spent),
                };
                let payload = done.to_bytes();
                self.journal_append(jkind::DONE, &payload);
                self.send_raw(job.client, jtags::DONE, &payload);
                self.stats.done += 1;
                self.retain_terminal(job.id, job.token, jtags::DONE, payload);
                self.finish(job);
            }
            Ok(SliceOutcome::Parked(snap)) => {
                let incumbent = IncumbentMsg {
                    job_id: job.id,
                    value: *snap
                        .round_best
                        .last()
                        .expect("a parked run completed a round"),
                    round: snap.next_round as u64,
                };
                job.last_incumbent = Some((incumbent.value, incumbent.round));
                if durable {
                    // Write-through park: snapshot to the spool
                    // (atomic rename), then journal the incumbent
                    // high-water mark and the park itself. After this
                    // a kill -9 costs at most the slice in progress.
                    let path = self.spool_path(id);
                    if let Err(e) = snap.save(&path) {
                        return self.fail(job, format!("cannot spool parked state: {e}"));
                    }
                    self.journal_append(jkind::INCUMBENT, &incumbent.to_bytes());
                    self.journal_append(jkind::PARKED, &id.to_le_bytes());
                }
                self.send(job.client, jtags::INCUMBENT, &incumbent);
                let bytes = snap.to_file_bytes();
                self.park_mem += bytes.len();
                job.state = JobState::ParkedMem(bytes);
                self.jobs.insert(id, job);
                self.runq.push_back(id);
                self.enforce_mem_cap();
            }
            Err(e) => self.fail(job, format!("search failed: {e}")),
        }
    }

    /// Terminate an accepted job with a REJECTED explaining the failure.
    fn fail(&mut self, job: Job, reason: String) {
        self.stats.failed += 1;
        self.terminate_rejected(job, reason);
    }

    /// Shared terminal REJECTED path (expiry and failure): journal the
    /// outcome, tell the client, retain the frame for late ATTACHes,
    /// then do the terminal bookkeeping.
    fn terminate_rejected(&mut self, job: Job, reason: String) {
        let msg = RejectedMsg {
            job_id: job.id,
            reason,
        };
        let payload = msg.to_bytes();
        self.journal_append(jkind::REJECTED, &payload);
        self.send_raw(job.client, jtags::REJECTED, &payload);
        self.retain_terminal(job.id, job.token, jtags::REJECTED, payload);
        self.finish(job);
    }

    /// Terminal bookkeeping shared by done/expired/failed paths. The job
    /// must already be out of `jobs` and `runq`.
    fn finish(&mut self, job: Job) {
        self.discard_state(&job.state);
        if self.journal.is_some() {
            // Drop the write-through spool file a ParkedMem job leaves.
            let _ = std::fs::remove_file(self.spool_path(job.id));
        }
        if let Some(count) = self.inflight.get_mut(&job.client) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                self.inflight.remove(&job.client);
            }
        }
        self.terminal += 1;
        self.terminal_since_compact += 1;
        if self.journal.is_some() && self.terminal_since_compact >= COMPACT_EVERY {
            self.compact_journal();
        }
    }

    fn discard_state(&mut self, state: &JobState) {
        match state {
            JobState::Fresh => {}
            JobState::ParkedMem(bytes) => self.park_mem -= bytes.len(),
            JobState::ParkedDisk(path) => {
                let _ = std::fs::remove_file(path);
            }
        }
    }

    /// Spool parked snapshots to disk, longest-waiting jobs first (the
    /// back of the run queue is furthest from its next turn), until the
    /// in-memory total fits the cap again. On a durable server the
    /// write-through park already put the snapshot in the spool, so
    /// eviction just drops the in-memory copy.
    fn enforce_mem_cap(&mut self) {
        if self.park_mem <= self.cfg.park_mem_cap {
            return;
        }
        let durable = self.journal.is_some();
        let victims: Vec<u64> = self.runq.iter().rev().copied().collect();
        for id in victims {
            if self.park_mem <= self.cfg.park_mem_cap {
                return;
            }
            let Some(job) = self.jobs.get_mut(&id) else {
                continue;
            };
            let JobState::ParkedMem(bytes) = &job.state else {
                continue;
            };
            let path = self.cfg.spool_dir.join(format!("job-{id}.snap"));
            let already_spooled = durable && path.exists();
            if !already_spooled && std::fs::write(&path, bytes).is_err() {
                // Disk trouble: better over the cap than losing the job.
                return;
            }
            self.park_mem -= bytes.len();
            job.state = JobState::ParkedDisk(path);
            self.stats.evictions += 1;
        }
    }

    fn spool_path(&self, id: u64) -> PathBuf {
        self.cfg.spool_dir.join(format!("job-{id}.snap"))
    }

    /// Append one record to the journal, if there is one. An append
    /// failure (disk full, dying device) is reported but does not take
    /// the server down: serving degrades to non-durable rather than
    /// dropping live jobs.
    fn journal_append(&mut self, kind: u8, payload: &[u8]) {
        if let Some(journal) = &mut self.journal {
            if let Err(e) = journal.append(kind, payload) {
                eprintln!("warning: job journal append failed ({e}); durability degraded");
            }
        }
    }

    /// Remember a finished job's final frame for late ATTACHes, evicting
    /// the oldest retained terminal (and its token mapping) past the cap.
    fn retain_terminal(&mut self, id: u64, token: u64, tag: u32, payload: Vec<u8>) {
        self.retained.insert(
            id,
            Terminal {
                tag,
                payload,
                token,
            },
        );
        self.retained_order.push_back(id);
        while self.retained_order.len() > RETAINED_CAP {
            let Some(old) = self.retained_order.pop_front() else {
                break;
            };
            if let Some(evicted) = self.retained.remove(&old) {
                if evicted.token != 0 {
                    self.tokens.remove(&evicted.token);
                }
            }
        }
    }

    /// Rewrite the journal down to what still matters: each live job's
    /// SUBMIT (re-encoded with its remaining deadline), latest
    /// incumbent and park marker, plus the retained terminal frames.
    /// Atomic (temp-and-rename) via [`Journal::compact`].
    fn compact_journal(&mut self) {
        if self.journal.is_none() {
            return;
        }
        let now = Instant::now();
        let mut records = Vec::new();
        let mut live: Vec<u64> = self.jobs.keys().copied().collect();
        live.sort_unstable();
        for id in &live {
            let job = &self.jobs[id];
            let deadline_ms = match job.deadline {
                Some(d) => (d.saturating_duration_since(now).as_millis() as u64).max(1),
                None => 0,
            };
            let msg = SubmitMsg {
                problem: ProblemMsg::from_instance(&job.inst),
                mode: mode_code(job.mode),
                p: job.cfg.p as u64,
                rounds: job.cfg.rounds as u64,
                budget_evals: job.cfg.total_evals,
                seed: job.cfg.seed,
                deadline_ms,
                token: job.token,
            };
            let mut payload = id.to_le_bytes().to_vec();
            payload.extend_from_slice(&msg.to_bytes());
            records.push(Record {
                kind: jkind::SUBMIT,
                payload,
            });
            if let Some((value, round)) = job.last_incumbent {
                let incumbent = IncumbentMsg {
                    job_id: *id,
                    value,
                    round,
                };
                records.push(Record {
                    kind: jkind::INCUMBENT,
                    payload: incumbent.to_bytes(),
                });
            }
            if !matches!(job.state, JobState::Fresh) {
                records.push(Record {
                    kind: jkind::PARKED,
                    payload: id.to_le_bytes().to_vec(),
                });
            }
        }
        for id in &self.retained_order {
            if let Some(terminal) = self.retained.get(id) {
                let kind = if terminal.tag == jtags::DONE {
                    jkind::DONE
                } else {
                    jkind::REJECTED
                };
                records.push(Record {
                    kind,
                    payload: terminal.payload.clone(),
                });
            }
        }
        if let Some(journal) = &mut self.journal {
            if let Err(e) = journal.compact(&records) {
                eprintln!("warning: job journal compaction failed ({e})");
            }
        }
        self.terminal_since_compact = 0;
    }

    /// Rebuild the scheduler's world from a replayed journal: re-admit
    /// every job that never reached a terminal record (parked state
    /// from the spool when its snapshot exists, from scratch
    /// otherwise), re-arm deadlines from now, restore token mappings
    /// and retained terminals, and seed the terminal count so
    /// `max_jobs` keeps meaning "total since the journal began".
    fn recover(&mut self, records: Vec<Record>) {
        struct Pending {
            msg: SubmitMsg,
            incumbent: Option<(i64, u64)>,
        }
        let mut pending: HashMap<u64, Pending> = HashMap::new();
        let mut order: Vec<u64> = Vec::new();
        let job_id_of = |payload: &[u8]| -> Option<u64> {
            payload
                .get(..8)
                .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
        };
        for record in records {
            match record.kind {
                jkind::SUBMIT => {
                    let Some(id) = job_id_of(&record.payload) else {
                        continue;
                    };
                    let Ok(msg) = SubmitMsg::from_bytes(&record.payload[8..]) else {
                        continue;
                    };
                    self.next_job = self.next_job.max(id + 1);
                    if pending
                        .insert(
                            id,
                            Pending {
                                msg,
                                incumbent: None,
                            },
                        )
                        .is_none()
                    {
                        order.push(id);
                    }
                }
                jkind::INCUMBENT => {
                    let Ok(msg) = IncumbentMsg::from_bytes(&record.payload) else {
                        continue;
                    };
                    if let Some(p) = pending.get_mut(&msg.job_id) {
                        p.incumbent = Some((msg.value, msg.round));
                    }
                }
                jkind::PARKED => {} // the spool file is the authority
                jkind::DONE | jkind::REJECTED => {
                    let Some(id) = job_id_of(&record.payload) else {
                        continue;
                    };
                    let token = pending.remove(&id).map(|p| p.msg.token).unwrap_or(0);
                    order.retain(|&q| q != id);
                    self.terminal += 1;
                    let tag = if record.kind == jkind::DONE {
                        jtags::DONE
                    } else {
                        jtags::REJECTED
                    };
                    if token != 0 {
                        self.tokens.insert(token, id);
                    }
                    self.retain_terminal(id, token, tag, record.payload);
                }
                _ => {} // unknown kind from a future version: skip
            }
        }
        for id in order {
            let Some(p) = pending.remove(&id) else {
                continue;
            };
            if mode_from_code(p.msg.mode).is_none() {
                continue; // journal from a stranger build: skip, don't die
            }
            let mut job = build_job(id, 0, &self.cfg, p.msg);
            job.last_incumbent = p.incumbent;
            let spool = self.spool_path(id);
            if spool.exists() {
                job.state = JobState::ParkedDisk(spool);
            }
            if job.token != 0 {
                self.tokens.insert(job.token, id);
            }
            self.jobs.insert(id, job);
            self.runq.push_back(id);
            self.stats.recovered += 1;
        }
    }

    /// Send one message to a client; a dead link just drops the message
    /// (the reader thread's Gone event will cancel the client's jobs).
    fn send<T: Wire>(&mut self, client: u64, tag: u32, msg: &T) {
        if let Some(writer) = self.writers.get_mut(&client) {
            if writer.send(0, tag, msg).is_err() {
                self.writers.remove(&client);
            }
        }
    }

    /// [`Scheduler::send`] for a pre-encoded payload (journaled bytes
    /// are reused verbatim as the wire frame).
    fn send_raw(&mut self, client: u64, tag: u32, payload: &[u8]) {
        if let Some(writer) = self.writers.get_mut(&client) {
            if writer.send_bytes(0, tag, payload).is_err() {
                self.writers.remove(&client);
            }
        }
    }
}

/// Construct a [`Job`] from a validated submission. Shared by admission
/// and journal recovery so a recovered job is built *identically* to a
/// freshly admitted one (same parkability, same re-armed deadline
/// semantics) — the bit-identity guarantee depends on it.
fn build_job(id: u64, client: u64, serve_cfg: &ServeConfig, msg: SubmitMsg) -> Job {
    let mode = mode_from_code(msg.mode).expect("caller validated the mode code");
    let cfg = RunConfig {
        p: msg.p as usize,
        rounds: msg.rounds as usize,
        ..RunConfig::new(msg.budget_evals, msg.seed)
    };
    let policy = policy_for(mode);
    let parkable = policy.delivery() == Delivery::Synchronous && policy.rounds(&cfg) > 1;
    let deadline =
        (msg.deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(msg.deadline_ms));
    Job {
        id,
        client,
        inst: msg.problem.into_instance(),
        mode,
        cfg,
        deadline,
        token: msg.token,
        park_after: parkable.then_some(serve_cfg.quantum),
        spent: Duration::ZERO,
        last_incumbent: None,
        state: JobState::Fresh,
    }
}

fn socket_slice(
    hub: &SocketHub,
    job: &Job,
    resume: Option<Snapshot>,
) -> Result<SliceOutcome, EngineError> {
    let mut policy = match &resume {
        Some(snap) => {
            if snap.mode != job.mode {
                return Err(EngineError::Internal {
                    detail: format!(
                        "parked state is for mode {} but the job runs {}",
                        snap.mode.label(),
                        job.mode.label()
                    ),
                });
            }
            validated_resume_policy(&job.inst, snap, &job.cfg)?
        }
        None => policy_for(job.mode),
    };
    let ctl = MasterCtl {
        park_after: job.park_after,
        stop_on_exit: false,
    };
    let tel = Telemetry::new(hub.ntasks());
    master_loop(hub, &job.inst, &mut *policy, &job.cfg, resume, &ctl, &tel)
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Shape of a job for [`submit_job`].
#[derive(Debug, Clone)]
pub struct SubmitSpec {
    /// Search organization to run.
    pub mode: Mode,
    /// Slave threads for this job (must fit the server's farm).
    pub p: usize,
    /// Master rounds.
    pub rounds: usize,
    /// Total candidate-evaluation budget.
    pub budget_evals: u64,
    /// Master seed.
    pub seed: u64,
    /// Wall-clock deadline, measured by the server from acceptance;
    /// enforced at quantum boundaries. `None` runs to completion.
    pub deadline: Option<Duration>,
}

/// Progress updates streamed to [`submit_job`]'s callback while the job
/// runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitEvent {
    /// The server queued the job.
    Accepted {
        /// Server-assigned job id.
        job_id: u64,
    },
    /// The server finished a slice of the job.
    Incumbent {
        /// Which job.
        job_id: u64,
        /// Best value so far.
        value: i64,
        /// Master rounds completed so far.
        round: u64,
    },
}

/// How a [`submit_job`] call ended.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitOutcome {
    /// The job ran to completion; here is its report.
    Done(Box<JobReport>),
    /// The server refused or terminated the job (admission control,
    /// deadline expiry, or an engine failure).
    Rejected {
        /// The server's explanation.
        reason: String,
    },
    /// The link to the server dropped after the job was accepted — the
    /// job's fate is unknown (the degraded-link exit, like a slave's
    /// lost master).
    ServerLost,
}

/// A fresh nonzero idempotency token: random per call (via the standard
/// library's randomly keyed hasher — no external RNG dependency), so
/// resubmitting the same payload after a link drop is recognizably the
/// *same* job while two independent submissions never collide.
fn fresh_token() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    let mut hasher = std::collections::hash_map::RandomState::new().build_hasher();
    hasher.write_u64(std::process::id() as u64);
    loop {
        let token = hasher.finish();
        if token != 0 {
            return token;
        }
        hasher.write_u64(1);
    }
}

/// Dial `server` with retries and jittered backoff for up to `patience`.
fn dial_retry(server: &Endpoint, patience: Duration) -> Result<FramedConn, String> {
    let deadline = Instant::now().checked_add(patience);
    let mut attempt: u64 = 0;
    loop {
        match FramedConn::dial(server) {
            Ok(conn) => return Ok(conn),
            Err(_) => match deadline {
                Some(d) if Instant::now() >= d => {
                    return Err(format!(
                        "no job server reachable at {server} within {patience:?}"
                    ));
                }
                _ => {
                    // Fibonacci-hash jitter decorrelates a fleet of
                    // clients all retrying against the same restart.
                    let jitter = Duration::from_millis(attempt.wrapping_mul(0x9E37_79B9) % 43);
                    std::thread::sleep(DIAL_DELAY + jitter);
                    attempt += 1;
                }
            },
        }
    }
}

/// How one connection's event stream ended.
enum Streamed {
    /// A terminal frame arrived.
    Outcome(SubmitOutcome),
    /// The link dropped mid-stream; the caller may reattach.
    Lost,
}

/// Drain one connection's job events into `on_event` until a terminal
/// frame or a link drop. Protocol violations are hard errors.
fn read_job_stream(
    conn: &mut FramedConn,
    accepted: &mut bool,
    on_event: &mut impl FnMut(SubmitEvent),
) -> Result<Streamed, String> {
    loop {
        let env = match conn.recv() {
            Ok(Some(env)) => env,
            Ok(None) | Err(_) => return Ok(Streamed::Lost),
        };
        let decode_err =
            |what: &str, e: CodecError| format!("malformed {what} from the job server: {e}");
        match env.tag {
            jtags::ACCEPTED => {
                let msg =
                    AcceptedMsg::from_bytes(&env.data).map_err(|e| decode_err("ACCEPTED", e))?;
                // Only announce the first acceptance: a reattach's echo
                // is bookkeeping, not progress.
                if !*accepted {
                    *accepted = true;
                    on_event(SubmitEvent::Accepted { job_id: msg.job_id });
                }
            }
            jtags::INCUMBENT => {
                let msg =
                    IncumbentMsg::from_bytes(&env.data).map_err(|e| decode_err("INCUMBENT", e))?;
                on_event(SubmitEvent::Incumbent {
                    job_id: msg.job_id,
                    value: msg.value,
                    round: msg.round,
                });
            }
            jtags::DONE => {
                let msg = DoneMsg::from_bytes(&env.data).map_err(|e| decode_err("DONE", e))?;
                return Ok(Streamed::Outcome(SubmitOutcome::Done(Box::new(msg.report))));
            }
            jtags::REJECTED => {
                let msg =
                    RejectedMsg::from_bytes(&env.data).map_err(|e| decode_err("REJECTED", e))?;
                return Ok(Streamed::Outcome(SubmitOutcome::Rejected {
                    reason: msg.reason,
                }));
            }
            tag => {
                return Err(format!(
                    "protocol violation: unexpected tag {tag:#x} from the job server"
                ));
            }
        }
    }
}

/// Submit one job to the server at `server` and wait for its outcome.
/// Dials with retries for up to `patience` (the server may still be
/// starting), then applies the same window as a read timeout — so
/// `patience` must also cover the longest gap between two server
/// messages (one full scheduling cycle of the queue ahead of this job).
/// Progress (acceptance, per-slice incumbents) streams to `on_event`.
///
/// Failures *before* the server accepts the job are hard errors. After
/// acceptance a dropped link is survivable: the submission carries a
/// random idempotency token, so the client re-dials (bounded retries
/// with jittered backoff, up to [`MAX_REATTACHES`] cycles of
/// `patience`) and resends the same SUBMIT — a server that still knows
/// the job, including one restarted from its journal, reattaches
/// instead of admitting a duplicate. Only when the reattach budget runs
/// out does the call return [`SubmitOutcome::ServerLost`] for the
/// caller to map to its degraded-exit convention.
pub fn submit_job(
    server: &Endpoint,
    inst: &Instance,
    spec: &SubmitSpec,
    patience: Duration,
    mut on_event: impl FnMut(SubmitEvent),
) -> Result<SubmitOutcome, String> {
    let msg = SubmitMsg {
        problem: ProblemMsg::from_instance(inst),
        mode: mode_code(spec.mode),
        p: spec.p as u64,
        rounds: spec.rounds as u64,
        budget_evals: spec.budget_evals,
        seed: spec.seed,
        deadline_ms: spec
            .deadline
            .map(|d| (d.as_millis() as u64).max(1))
            .unwrap_or(0),
        token: fresh_token(),
    };
    run_job_protocol(
        server,
        jtags::SUBMIT,
        &msg.to_bytes(),
        patience,
        &mut on_event,
    )
}

/// Reattach to job `job_id` on the server at `server` — after either
/// side restarted — and stream its remaining events exactly like
/// [`submit_job`]: ACCEPTED confirms the job is known (live or recently
/// finished), the last incumbent is replayed so no progress is silently
/// lost, and the terminal DONE/REJECTED ends the call. An unknown id is
/// a [`SubmitOutcome::Rejected`]. Link drops reattach with the same
/// bounded, jitter-backed retry as a submission.
pub fn attach_job(
    server: &Endpoint,
    job_id: u64,
    patience: Duration,
    mut on_event: impl FnMut(SubmitEvent),
) -> Result<SubmitOutcome, String> {
    let msg = AttachMsg { job_id };
    run_job_protocol(
        server,
        jtags::ATTACH,
        &msg.to_bytes(),
        patience,
        &mut on_event,
    )
}

/// Shared client loop: send `payload` under `tag`, stream events, and
/// reattach by resending the same payload when the link drops after
/// acceptance. Both SUBMIT (token-idempotent) and ATTACH (naturally
/// idempotent) are safe to resend verbatim.
fn run_job_protocol(
    server: &Endpoint,
    tag: u32,
    payload: &[u8],
    patience: Duration,
    on_event: &mut impl FnMut(SubmitEvent),
) -> Result<SubmitOutcome, String> {
    let mut accepted = false;
    let mut reattaches: u32 = 0;
    loop {
        let mut conn = match dial_retry(server, patience) {
            Ok(conn) => conn,
            Err(e) if !accepted => return Err(e),
            Err(_) => return Ok(SubmitOutcome::ServerLost),
        };
        conn.set_read_timeout(Some(patience))
            .map_err(|e| format!("cannot configure the server link: {e}"))?;
        if conn.send_bytes(0, tag, payload).is_err() {
            if accepted {
                // The server vanished between accept and send: burn one
                // reattach cycle and dial again.
                reattaches += 1;
                if reattaches > MAX_REATTACHES {
                    return Ok(SubmitOutcome::ServerLost);
                }
                continue;
            }
            return Err(format!(
                "server at {server} closed the link before the job could be submitted"
            ));
        }
        match read_job_stream(&mut conn, &mut accepted, on_event)? {
            Streamed::Outcome(outcome) => return Ok(outcome),
            Streamed::Lost if !accepted => {
                return Err(format!(
                    "server at {server} went silent before answering the submission"
                ));
            }
            Streamed::Lost => {
                reattaches += 1;
                if reattaches > MAX_REATTACHES {
                    return Ok(SubmitOutcome::ServerLost);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkp::generate::{gk_instance, GkSpec};

    fn tiny_instance(seed: u64) -> Instance {
        gk_instance(
            "jobsrv-test",
            GkSpec {
                n: 40,
                m: 5,
                tightness: 0.5,
                seed,
            },
        )
    }

    #[test]
    fn job_report_round_trips_through_the_codec() {
        let inst = tiny_instance(7);
        let mut bits = BitVec::zeros(inst.n());
        bits.set(3, true);
        bits.set(17, true);
        let report = JobReport {
            mode: Mode::CooperativeAdaptive,
            best_bits: bits,
            best_value: 4321,
            round_best: vec![100, 4321],
            total_moves: 999,
            total_evals: 12_345,
            regenerations: 3,
            wall_ms: 250,
            degraded: false,
        };
        let back = JobReport::from_bytes(&report.to_bytes()).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.best_solution(&inst).bits(), &report.best_bits);
    }

    #[test]
    fn submit_msg_round_trips_through_the_codec() {
        let inst = tiny_instance(9);
        let msg = SubmitMsg {
            problem: ProblemMsg::from_instance(&inst),
            mode: mode_code(Mode::Cooperative),
            p: 3,
            rounds: 6,
            budget_evals: 50_000,
            seed: 42,
            deadline_ms: 1500,
            token: 0xDEAD_BEEF,
        };
        let back = SubmitMsg::from_bytes(&msg.to_bytes()).unwrap();
        assert_eq!(back.problem, msg.problem);
        assert_eq!(back.mode, msg.mode);
        assert_eq!(back.p, 3);
        assert_eq!(back.rounds, 6);
        assert_eq!(back.budget_evals, 50_000);
        assert_eq!(back.seed, 42);
        assert_eq!(back.deadline_ms, 1500);
        assert_eq!(back.token, 0xDEAD_BEEF);
    }

    #[test]
    fn fresh_tokens_are_nonzero_and_distinct() {
        let a = fresh_token();
        let b = fresh_token();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b, "two submissions must never share a token");
    }

    #[test]
    fn every_mode_code_round_trips() {
        for mode in Mode::all() {
            assert_eq!(mode_from_code(mode_code(mode)), Some(mode));
        }
        assert_eq!(mode_from_code(Mode::all().len() as u8), None);
    }
}
