//! The generic master/slave engine behind every search mode.
//!
//! One [`Engine`] owns a persistent [`pvm_lite::WorkerPool`] and drives the
//! paper's Fig. 2 round loop — broadcast problem → assign → collect reports
//! → update master data structure — for *any* cooperation scheme. What
//! varies between SEQ/ITS/CTS1/CTS2/ATS/DTS is only the policy: how many
//! workers and rounds, what each assignment contains, and what the master
//! does with each report. That variation lives behind the [`CoopPolicy`]
//! trait; the message loop, budget accounting, rendezvous, relinking and
//! [`ModeReport`] assembly are written exactly once, here.
//!
//! The pool outlives individual runs: a service can keep one warm `Engine`
//! and serve consecutive solve requests without respawning threads (the
//! mailboxes are rebuilt per run, the OS threads are not — see
//! `pvm_lite::farm`).
//!
//! Report delivery comes in two flavours ([`Delivery`]):
//!
//! * **Synchronous** — the paper's rendezvous: the master gathers all P
//!   reports of a round before updating anything.
//! * **Pipelined** — the §6 asynchronous extension (ATS): no global
//!   rendezvous; a worker's next assignment leaves as soon as the master
//!   has processed that worker's report. Reports may *arrive* in any
//!   order, but the master buffers them and *processes* them in logical
//!   `(round, worker)` order, so the run is bit-deterministic while the
//!   workers still overlap rounds freely.

use crate::messages::{tags, AssignMsg, ProblemMsg, ReportMsg};
use crate::runner::{Mode, ModeReport, RunConfig};
use mkp::eval::Ratios;
use mkp::greedy::dynamic_randomized_greedy;
use mkp::restrict::Restriction;
use mkp::{Instance, Solution, Xoshiro256};
use mkp_tabu::{search, Budget, TsConfig};
use pvm_lite::{Collectives, TaskCtx, WorkerPool};
use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// How the master receives reports (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Gather all P reports per round before updating (SEQ/ITS/CTS/DTS).
    Synchronous,
    /// Process reports in logical order as they arrive; a worker's next
    /// assignment leaves without waiting for its peers (ATS).
    Pipelined,
}

/// The cooperation scheme: everything mode-specific the master does.
///
/// The engine calls the hooks in a fixed order: [`prepare`] once (after the
/// problem broadcast), then per round and worker [`assign`] and — once the
/// report is in — [`absorb`]. All randomness flows through the single master
/// `rng` handed to each hook, which is what makes every mode a deterministic
/// function of `RunConfig::seed`.
///
/// [`prepare`]: CoopPolicy::prepare
/// [`assign`]: CoopPolicy::assign
/// [`absorb`]: CoopPolicy::absorb
pub trait CoopPolicy: Send {
    /// Which mode this policy implements (stamped on the report).
    fn mode(&self) -> Mode;

    /// Number of worker tasks actually driven (SEQ: 1, everything else: P).
    fn active_workers(&self, cfg: &RunConfig) -> usize;

    /// Number of master rounds (SEQ/ITS/DTS fold everything into one).
    fn rounds(&self, cfg: &RunConfig) -> usize;

    /// Report delivery scheme.
    fn delivery(&self) -> Delivery {
        Delivery::Synchronous
    }

    /// Whether the master relinks the two best distinct slave solutions
    /// after each synchronous rendezvous (ignored under pipelined
    /// delivery, which has no rendezvous).
    fn relink(&self, cfg: &RunConfig) -> bool {
        let _ = cfg;
        false
    }

    /// Build the master data structure; the returned solutions seed the
    /// global best (may be empty for modes that start workers elsewhere,
    /// e.g. inside decomposition cells).
    fn prepare(&mut self, inst: &Instance, cfg: &RunConfig, rng: &mut Xoshiro256) -> Vec<Solution>;

    /// The assignment for worker `k` in `round`.
    fn assign(
        &mut self,
        k: usize,
        round: usize,
        inst: &Instance,
        cfg: &RunConfig,
        rng: &mut Xoshiro256,
    ) -> AssignMsg;

    /// Update the master data structure from worker `k`'s report (the
    /// engine has already folded `slave_best` into `global_best`). Returns
    /// the number of strategy regenerations performed (0 or 1).
    #[allow(clippy::too_many_arguments)] // the full Fig. 2 update context
    fn absorb(
        &mut self,
        k: usize,
        round: usize,
        report: &ReportMsg,
        slave_best: &Solution,
        global_best: &Solution,
        inst: &Instance,
        cfg: &RunConfig,
        rng: &mut Xoshiro256,
    ) -> u64;
}

/// The per-assignment slave seed: a deterministic function of the master
/// seed, the round and the worker index, so every mode's search streams are
/// reproducible and decorrelated.
pub fn assignment_seed(cfg: &RunConfig, round: usize, k: usize) -> u64 {
    let slave = k + 1;
    cfg.seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((slave as u64) << 32)
}

/// Per-task result of a run.
enum TaskOut {
    Master(Box<ModeReport>),
    Slave,
}

/// A reusable parallel search engine: one persistent worker pool serving
/// consecutive [`run`](Engine::run) calls for any [`Mode`].
pub struct Engine {
    pool: WorkerPool,
    spawned_threads: usize,
}

impl Engine {
    /// An engine whose pool can drive up to `p` slave workers (plus the
    /// master task).
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "an engine needs at least one worker");
        let pool = WorkerPool::new(p + 1);
        let spawned_threads = pool.ntasks();
        Engine {
            pool,
            spawned_threads,
        }
    }

    /// Pool size (master + workers).
    pub fn pool_size(&self) -> usize {
        self.pool.ntasks()
    }

    /// Total OS threads spawned over the engine's lifetime. Stays constant
    /// across runs unless a run needs a bigger pool — the respawn-free
    /// reuse this counter exists to verify.
    pub fn spawned_threads(&self) -> usize {
        self.spawned_threads
    }

    /// Thread ids of the current pool (for reuse assertions in tests).
    pub fn thread_ids(&self) -> Vec<std::thread::ThreadId> {
        self.pool.thread_ids()
    }

    /// Grow the pool if `cfg.p` asks for more workers than it holds; a
    /// smaller run leaves the pool alone (extra workers idle through it).
    fn ensure_capacity(&mut self, ntasks: usize) {
        if ntasks > self.pool.ntasks() {
            self.pool = WorkerPool::new(ntasks);
            self.spawned_threads += self.pool.ntasks();
        }
    }

    /// Run `mode` on `inst` under `cfg`, reusing the warm pool.
    pub fn run(&mut self, inst: &Instance, mode: Mode, cfg: &RunConfig) -> ModeReport {
        assert!(cfg.p >= 1 && cfg.rounds >= 1);
        self.run_policy(inst, &mut *policy_for(mode), cfg)
    }

    /// Run a custom policy (the extension point behind [`run`](Engine::run)).
    pub fn run_policy(
        &mut self,
        inst: &Instance,
        policy: &mut dyn CoopPolicy,
        cfg: &RunConfig,
    ) -> ModeReport {
        let active = policy.active_workers(cfg);
        assert!(active >= 1, "a run needs at least one active worker");
        self.ensure_capacity(active + 1);

        // Only task 0 touches the policy, but the job closure is shared by
        // every pool thread; the mutex documents that to the compiler.
        let policy = Mutex::new(policy);
        let results = self
            .pool
            .run(|ctx| {
                if ctx.tid() == 0 {
                    let mut policy = policy.lock().unwrap_or_else(PoisonError::into_inner);
                    TaskOut::Master(Box::new(master_loop(ctx, inst, &mut **policy, cfg)))
                } else {
                    slave_loop(ctx, cfg);
                    TaskOut::Slave
                }
            })
            .unwrap_or_else(|e| panic!("{e}"));
        for out in results {
            if let TaskOut::Master(report) = out {
                return *report;
            }
        }
        unreachable!("task 0 always returns the master report")
    }
}

/// Dispatch a mode to its policy.
fn policy_for(mode: Mode) -> Box<dyn CoopPolicy> {
    use crate::coop::FarmPolicy;
    use crate::decomposed::DecomposedPolicy;
    match mode {
        Mode::Sequential => Box::new(FarmPolicy::sequential()),
        Mode::Independent => Box::new(FarmPolicy::independent()),
        Mode::Cooperative => Box::new(FarmPolicy::cooperative()),
        Mode::CooperativeAdaptive => Box::new(FarmPolicy::cooperative_adaptive()),
        Mode::Asynchronous => Box::new(FarmPolicy::asynchronous()),
        Mode::Decomposed => Box::new(DecomposedPolicy::new()),
    }
}

/// The generic Fig. 2 master: broadcast, assign, collect, update.
fn master_loop(
    ctx: TaskCtx,
    inst: &Instance,
    policy: &mut dyn CoopPolicy,
    cfg: &RunConfig,
) -> ModeReport {
    let start = Instant::now();
    let active = policy.active_workers(cfg);
    let rounds = policy.rounds(cfg);
    assert!(active < ctx.ntasks(), "pool too small for {active} workers");

    let mut rng = Xoshiro256::seed_from_u64(cfg.seed);

    // "Read and send to slaves problem data" (Fig. 2) — a pvm_mcast. Idle
    // pool workers beyond `active` also receive it; they simply never get
    // an assignment and fold on the final STOP.
    let problem = ProblemMsg::from_instance(inst);
    ctx.broadcast(tags::PROBLEM, &problem)
        .expect("slaves alive at start");

    let initials = policy.prepare(inst, cfg, &mut rng);
    let mut state = MasterState {
        global_best: initials.iter().max_by_key(|s| s.value()).cloned(),
        round_best: Vec::with_capacity(rounds),
        total_moves: 0,
        total_evals: 0,
        regenerations: 0,
    };

    match policy.delivery() {
        Delivery::Synchronous => {
            for round in 0..rounds {
                // Launch the P slave searches.
                for k in 0..active {
                    let assign = policy.assign(k, round, inst, cfg, &mut rng);
                    ctx.send(k + 1, tags::ASSIGN, &assign).expect("slave alive");
                }

                // Rendezvous: gather all P reports (slaves finish ≈
                // simultaneously because the eval budget, not wall-clock,
                // bounds each search). The gather orders reports by slave
                // id, so the update below is deterministic regardless of
                // arrival order.
                let slave_ids: Vec<usize> = (1..=active).collect();
                let reports: Vec<ReportMsg> = ctx
                    .gather_msgs(tags::REPORT, &slave_ids, cfg.report_timeout)
                    .unwrap_or_else(|e| panic!("report rendezvous failed: {e}"));

                // Optional master-side exploitation: relink the two best
                // distinct slave solutions (information neither slave holds
                // alone).
                if policy.relink(cfg) {
                    state.total_evals += relink_round(inst, &reports, &mut state.global_best);
                }

                for (k, report) in reports.iter().enumerate() {
                    state.process_report(k, round, report, policy, inst, cfg, &mut rng);
                }
                let best = state.global_best.as_ref().expect("active >= 1");
                state.round_best.push(best.value());
            }
        }
        Delivery::Pipelined => {
            // Bootstrap: every worker gets its round-0 assignment.
            for k in 0..active {
                let assign = policy.assign(k, 0, inst, cfg, &mut rng);
                ctx.send(k + 1, tags::ASSIGN, &assign).expect("slave alive");
            }

            // Reports arrive in scheduler order; `arrived[k]` counts how
            // many worker `k` has sent, which *is* the logical round of its
            // next arrival (per-worker channels are FIFO). The buffer plus
            // the (round, worker) cursor turn that arrival stream into a
            // deterministic processing order — and each processed report
            // immediately releases that worker's next assignment, so no
            // worker ever waits for a rendezvous.
            let mut arrived = vec![0usize; active];
            let mut buffer: BTreeMap<(usize, usize), ReportMsg> = BTreeMap::new();
            let mut cursor = (0usize, 0usize);
            let mut processed = 0usize;
            while processed < rounds * active {
                let env = ctx
                    .recv_timeout(cfg.report_timeout)
                    .unwrap_or_else(|e| panic!("report wait failed: {e}"));
                assert_eq!(env.tag, tags::REPORT, "protocol violation");
                let k = env.from - 1;
                let report: ReportMsg = env.decode().expect("well-formed report");
                buffer.insert((arrived[k], k), report);
                arrived[k] += 1;

                while let Some(report) = buffer.remove(&cursor) {
                    let (round, k) = cursor;
                    state.process_report(k, round, &report, policy, inst, cfg, &mut rng);
                    processed += 1;
                    if round + 1 < rounds {
                        let assign = policy.assign(k, round + 1, inst, cfg, &mut rng);
                        ctx.send(k + 1, tags::ASSIGN, &assign).expect("slave alive");
                    }
                    cursor = if k + 1 < active {
                        (round, k + 1)
                    } else {
                        let best = state.global_best.as_ref().expect("just processed");
                        state.round_best.push(best.value());
                        (round + 1, 0)
                    };
                }
            }
        }
    }

    // Fold the farm: STOP every pool worker, including idle ones.
    for slave in 1..ctx.ntasks() {
        let _ = ctx.send_bytes(slave, tags::STOP, Vec::new());
    }

    let best = state.global_best.expect("at least one report processed");
    debug_assert!(best.is_feasible(inst));
    ModeReport {
        mode: policy.mode(),
        best,
        round_best: state.round_best,
        total_moves: state.total_moves,
        total_evals: state.total_evals,
        regenerations: state.regenerations,
        wall: start.elapsed(),
    }
}

/// The master's running aggregation over reports.
struct MasterState {
    global_best: Option<Solution>,
    round_best: Vec<i64>,
    total_moves: u64,
    total_evals: u64,
    regenerations: u64,
}

impl MasterState {
    /// Fold one report: counters, global best, then the policy's update.
    /// Shared by both delivery schemes so their master updates are
    /// identical given identical processing order.
    #[allow(clippy::too_many_arguments)] // internal fold step
    fn process_report(
        &mut self,
        k: usize,
        round: usize,
        report: &ReportMsg,
        policy: &mut dyn CoopPolicy,
        inst: &Instance,
        cfg: &RunConfig,
        rng: &mut Xoshiro256,
    ) {
        self.total_moves += report.moves;
        self.total_evals += report.evals;
        let slave_best = report.best_solution(inst);
        if self
            .global_best
            .as_ref()
            .is_none_or(|g| slave_best.value() > g.value())
        {
            self.global_best = Some(slave_best.clone());
        }
        self.regenerations += policy.absorb(
            k,
            round,
            report,
            &slave_best,
            self.global_best.as_ref().expect("just folded a report"),
            inst,
            cfg,
            rng,
        );
    }
}

/// Relink the two best distinct solutions of a rendezvous; returns the
/// candidate evaluations spent.
fn relink_round(inst: &Instance, reports: &[ReportMsg], global_best: &mut Option<Solution>) -> u64 {
    let mut tops: Vec<Solution> = reports.iter().map(|r| r.best_solution(inst)).collect();
    tops.sort_by_key(|s| std::cmp::Reverse(s.value()));
    if tops.len() < 2 || tops[0].bits() == tops[1].bits() {
        return 0;
    }
    let ratios = Ratios::new(inst);
    let mut stats = mkp_tabu::moves::MoveStats::default();
    let (relinked, _) =
        mkp_tabu::relink::path_relink(inst, &ratios, &tops[0], &tops[1], &mut stats);
    if global_best
        .as_ref()
        .is_none_or(|g| relinked.value() > g.value())
    {
        *global_best = Some(relinked);
    }
    stats.candidate_evals
}

/// The slave loop: receive the problem once, then serve assignments until
/// the stop message (or a dead master) ends the task.
fn slave_loop(ctx: TaskCtx, cfg: &RunConfig) {
    let env = match ctx.recv_timeout(cfg.report_timeout) {
        Ok(env) => env,
        Err(_) => return, // master died before the broadcast
    };
    assert_eq!(env.tag, tags::PROBLEM, "protocol violation");
    let inst = env
        .decode::<ProblemMsg>()
        .expect("well-formed problem")
        .into_instance();
    let ratios = Ratios::new(&inst);
    // The long-term frequency memory survives across rounds: each round's
    // diversification then targets regions this slave has never visited in
    // the whole session, which is what makes later rounds productive.
    let mut history = mkp_tabu::history::History::new(inst.n());

    loop {
        let env = match ctx.recv_timeout(cfg.report_timeout) {
            Ok(env) => env,
            Err(_) => return, // master gone: shut down quietly
        };
        match env.tag {
            tags::STOP => return,
            tags::ASSIGN => {
                let assign: AssignMsg = env.decode().expect("well-formed assignment");
                let msg = serve_assignment(&inst, &ratios, &mut history, &assign);
                if ctx.send(0, tags::REPORT, &msg).is_err() {
                    return; // master gone
                }
            }
            other => panic!("unexpected tag {other} in slave"),
        }
    }
}

/// Run one assignment to completion and build the report.
fn serve_assignment(
    inst: &Instance,
    ratios: &Ratios,
    history: &mut mkp_tabu::history::History,
    assign: &AssignMsg,
) -> ReportMsg {
    let mut rng = Xoshiro256::seed_from_u64(assign.seed);

    if let Some(cell) = &assign.cell {
        // Decomposition cell (DTS): fix the split variables, search the
        // sub-space, lift the result back to the full space.
        let forced_in: Vec<usize> = cell.forced_in.iter().map(|&j| j as usize).collect();
        let forced_out: Vec<usize> = cell.forced_out.iter().map(|&j| j as usize).collect();
        return match Restriction::new(inst, &forced_in, &forced_out) {
            Ok(restriction) => {
                let sub = restriction.instance();
                let sub_ratios = Ratios::new(sub);
                let init = dynamic_randomized_greedy(sub, &mut rng, 4);
                let report = search::run(
                    sub,
                    &sub_ratios,
                    init,
                    &TsConfig::default_for(sub.n()),
                    Budget::evals(assign.budget_evals),
                    &mut rng,
                );
                let lifted = restriction.lift(inst, &report.best);
                ReportMsg {
                    best: lifted.bits().clone(),
                    // Sub-space elites don't lift for free; the DTS master
                    // has no SGP to feed anyway.
                    elite: Vec::new(),
                    initial_value: report.initial_value,
                    best_value: lifted.value(),
                    moves: report.stats.moves,
                    evals: report.stats.candidate_evals,
                }
            }
            Err(_) => {
                // Infeasible (or empty) cell: the worker searches the full
                // space instead of idling.
                let init = dynamic_randomized_greedy(inst, &mut rng, 4);
                let mut ts = TsConfig::default_for(inst.n());
                ts.strategy = assign.strategy;
                let report = search::run(
                    inst,
                    ratios,
                    init,
                    &ts,
                    Budget::evals(assign.budget_evals),
                    &mut rng,
                );
                ReportMsg {
                    best: report.best.bits().clone(),
                    elite: report.elite.iter().map(|s| s.bits().clone()).collect(),
                    initial_value: report.initial_value,
                    best_value: report.best.value(),
                    moves: report.stats.moves,
                    evals: report.stats.candidate_evals,
                }
            }
        };
    }

    // Trajectory assignment: continue from the master-chosen start with the
    // master-chosen strategy.
    let initial = Solution::from_bits(inst, assign.initial.clone());
    let mut ts = TsConfig::default_for(inst.n());
    ts.strategy = assign.strategy;
    let mut memory = mkp_tabu::tabu_list::Recency::new(inst.n(), assign.strategy.tabu_tenure);
    let report = search::run_with_memory(
        inst,
        ratios,
        initial,
        &ts,
        Budget::evals(assign.budget_evals),
        &mut rng,
        &mut memory,
        history,
    );
    ReportMsg {
        best: report.best.bits().clone(),
        elite: report.elite.iter().map(|s| s.bits().clone()).collect(),
        initial_value: report.initial_value,
        best_value: report.best.value(),
        moves: report.stats.moves,
        evals: report.stats.candidate_evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkp::generate::{gk_instance, GkSpec};

    fn inst() -> Instance {
        gk_instance(
            "eng",
            GkSpec {
                n: 40,
                m: 5,
                tightness: 0.5,
                seed: 7,
            },
        )
    }

    fn cfg() -> RunConfig {
        RunConfig {
            p: 3,
            rounds: 3,
            ..RunConfig::new(60_000, 11)
        }
    }

    #[test]
    fn one_engine_serves_all_modes() {
        let inst = inst();
        let mut engine = Engine::new(3);
        for mode in Mode::all() {
            let r = engine.run(&inst, mode, &cfg());
            assert!(r.best.is_feasible(&inst), "{mode:?} infeasible");
            assert_eq!(r.mode, mode);
        }
    }

    #[test]
    fn engine_runs_match_run_mode() {
        // The warm-pool path and the one-shot path are the same search.
        let inst = inst();
        let cfg = cfg();
        let mut engine = Engine::new(3);
        for mode in [
            Mode::Cooperative,
            Mode::CooperativeAdaptive,
            Mode::Asynchronous,
        ] {
            let warm = engine.run(&inst, mode, &cfg);
            let cold = crate::runner::run_mode(&inst, mode, &cfg);
            assert_eq!(warm.best.value(), cold.best.value(), "{mode:?} diverged");
            assert_eq!(warm.round_best, cold.round_best);
        }
    }

    #[test]
    fn pool_grows_only_when_needed() {
        let inst = inst();
        let mut engine = Engine::new(2);
        assert_eq!(engine.pool_size(), 3);
        let spawned = engine.spawned_threads();

        // Smaller run: pool untouched.
        let mut small = cfg();
        small.p = 1;
        engine.run(&inst, Mode::Cooperative, &small);
        assert_eq!(engine.spawned_threads(), spawned);
        assert_eq!(engine.pool_size(), 3);

        // Bigger run: pool rebuilt once, then stable.
        let mut big = cfg();
        big.p = 4;
        engine.run(&inst, Mode::Cooperative, &big);
        assert_eq!(engine.pool_size(), 5);
        assert!(engine.spawned_threads() > spawned);
        let grown = engine.spawned_threads();
        engine.run(&inst, Mode::Cooperative, &big);
        assert_eq!(engine.spawned_threads(), grown);
    }

    #[test]
    fn pipelined_delivery_is_deterministic() {
        let inst = inst();
        let cfg = cfg();
        let mut engine = Engine::new(3);
        let a = engine.run(&inst, Mode::Asynchronous, &cfg);
        let b = engine.run(&inst, Mode::Asynchronous, &cfg);
        assert_eq!(a.best.value(), b.best.value());
        assert_eq!(a.round_best, b.round_best);
        assert_eq!(a.round_best.len(), cfg.rounds);
    }

    #[test]
    fn assignment_seeds_are_decorrelated() {
        let cfg = cfg();
        let mut seen = std::collections::HashSet::new();
        for round in 0..8 {
            for k in 0..8 {
                assert!(seen.insert(assignment_seed(&cfg, round, k)));
            }
        }
    }
}
