//! The generic master/slave engine behind every search mode.
//!
//! One [`Engine`] owns a persistent [`pvm_lite::WorkerPool`] and drives the
//! paper's Fig. 2 round loop — broadcast problem → assign → collect reports
//! → update master data structure — for *any* cooperation scheme. What
//! varies between SEQ/ITS/CTS1/CTS2/ATS/DTS is only the policy: how many
//! workers and rounds, what each assignment contains, and what the master
//! does with each report. That variation lives behind the [`CoopPolicy`]
//! trait; the message loop, budget accounting, rendezvous, relinking and
//! [`ModeReport`] assembly are written exactly once, here.
//!
//! The pool outlives individual runs: a service can keep one warm `Engine`
//! and serve consecutive solve requests without respawning threads (the
//! mailboxes are rebuilt per run, the OS threads are not — see
//! `pvm_lite::farm`).
//!
//! Report delivery comes in two flavours ([`Delivery`]):
//!
//! * **Synchronous** — the paper's rendezvous: the master gathers all P
//!   reports of a round before updating anything.
//! * **Pipelined** — the §6 asynchronous extension (ATS): no global
//!   rendezvous; a worker's next assignment leaves as soon as the master
//!   has processed that worker's report. Reports may *arrive* in any
//!   order, but the master buffers them and *processes* them in logical
//!   `(round, worker)` order, so the run is bit-deterministic while the
//!   workers still overlap rounds freely.
//!
//! # Recovery (DESIGN.md §10)
//!
//! Losing a slave no longer has to cost its share of the search. With
//! `RunConfig::max_restarts > 0` the master *resurrects* a lost worker:
//! exponential backoff, respawn the task ([`TaskCtx::respawn`]), re-send
//! the problem, transplant the worker's long-term History
//! ([`tags::SEED`]), then redo the outstanding assignment seeded from the
//! master's B-best elite. Each assignment carries an incarnation *epoch*
//! that the slave echoes, so a superseded incarnation's stale report can
//! never be mistaken for the redo. A worker whose restart budget runs dry
//! falls back to the old behavior: permanent quarantine, the run finishing
//! degraded over the survivors. Orthogonally, `RunConfig::checkpoint`
//! makes the synchronous master serialize its complete state every K
//! rounds ([`crate::snapshot`]); [`Engine::resume`] continues such a
//! snapshot bit-identically to the uninterrupted run.

use crate::messages::{tags, AssignMsg, ProblemMsg, ReportMsg, SeedMsg};
use crate::runner::{LossCause, Mode, ModeReport, Resurrection, RunConfig, WorkerLoss};
use crate::snapshot::{config_digest, instance_fingerprint, Snapshot};
use crate::telemetry::{Counter, EventKind, SpanKind, Telemetry, TelemetrySnapshot};
use mkp::eval::Ratios;
use mkp::greedy::dynamic_randomized_greedy;
use mkp::restrict::Restriction;
use mkp::{Instance, Solution, Xoshiro256};
use mkp_tabu::moves::MoveStats;
use mkp_tabu::{search, Budget, TsConfig};
use pvm_lite::{
    Collectives, CommError, FaultAction, FaultPlan, TaskOutcome, Transport, WorkerPool,
};
use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How the master receives reports (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Gather all P reports per round before updating (SEQ/ITS/CTS/DTS).
    Synchronous,
    /// Process reports in logical order as they arrive; a worker's next
    /// assignment leaves without waiting for its peers (ATS).
    Pipelined,
}

/// The B in "B best solutions" (Fig. 2): how many distinct elite solutions
/// the master banks for reseeding resurrected workers and checkpoints.
const ELITE_CAP: usize = 8;

/// The cooperation scheme: everything mode-specific the master does.
///
/// The engine calls the hooks in a fixed order: [`prepare`] once (after the
/// problem broadcast), then per round and worker [`assign`] and — once the
/// report is in — [`absorb`]. All randomness flows through the single master
/// `rng` handed to each hook, which is what makes every mode a deterministic
/// function of `RunConfig::seed`.
///
/// [`prepare`]: CoopPolicy::prepare
/// [`assign`]: CoopPolicy::assign
/// [`absorb`]: CoopPolicy::absorb
pub trait CoopPolicy: Send {
    /// Which mode this policy implements (stamped on the report).
    fn mode(&self) -> Mode;

    /// Number of worker tasks actually driven (SEQ: 1, everything else: P).
    fn active_workers(&self, cfg: &RunConfig) -> usize;

    /// Number of master rounds (SEQ/ITS/DTS fold everything into one).
    fn rounds(&self, cfg: &RunConfig) -> usize;

    /// Report delivery scheme.
    fn delivery(&self) -> Delivery {
        Delivery::Synchronous
    }

    /// Whether the master relinks the two best distinct slave solutions
    /// after each synchronous rendezvous (ignored under pipelined
    /// delivery, which has no rendezvous).
    fn relink(&self, cfg: &RunConfig) -> bool {
        let _ = cfg;
        false
    }

    /// Build the master data structure; the returned solutions seed the
    /// global best (may be empty for modes that start workers elsewhere,
    /// e.g. inside decomposition cells).
    fn prepare(&mut self, inst: &Instance, cfg: &RunConfig, rng: &mut Xoshiro256) -> Vec<Solution>;

    /// The assignment for worker `k` in `round`.
    fn assign(
        &mut self,
        k: usize,
        round: usize,
        inst: &Instance,
        cfg: &RunConfig,
        rng: &mut Xoshiro256,
    ) -> AssignMsg;

    /// Update the master data structure from worker `k`'s report (the
    /// engine has already folded `slave_best` into `global_best`). Returns
    /// the number of strategy regenerations performed (0 or 1).
    #[allow(clippy::too_many_arguments)] // the full Fig. 2 update context
    fn absorb(
        &mut self,
        k: usize,
        round: usize,
        report: &ReportMsg,
        slave_best: &Solution,
        global_best: &Solution,
        inst: &Instance,
        cfg: &RunConfig,
        rng: &mut Xoshiro256,
    ) -> u64;

    /// Serialize the policy's internal state into a checkpoint blob;
    /// `None` (the default) marks the policy as not checkpointable.
    fn snapshot(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restore internal state from a [`snapshot`](CoopPolicy::snapshot)
    /// blob taken under the same instance and configuration.
    fn restore(&mut self, inst: &Instance, cfg: &RunConfig, blob: &[u8]) -> Result<(), String> {
        let _ = (inst, cfg, blob);
        Err("this policy does not support checkpoint/resume".to_string())
    }
}

/// The per-assignment slave seed: a deterministic function of the master
/// seed, the round and the worker index, so every mode's search streams are
/// reproducible and decorrelated.
pub fn assignment_seed(cfg: &RunConfig, round: usize, k: usize) -> u64 {
    let slave = k + 1;
    cfg.seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((slave as u64) << 32)
}

/// Unrecoverable engine failures. Losing *some* workers is not an error —
/// the master quarantines them and finishes degraded (see
/// [`ModeReport::lost_workers`]); these are the cases it cannot search
/// around.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Every worker was quarantined before the run could finish; the
    /// losses tell the story in detection order.
    AllWorkersLost {
        /// The per-worker losses, in the order the master detected them.
        losses: Vec<WorkerLoss>,
    },
    /// A task broke the master/slave protocol (wrong tag, out-of-range
    /// sender, undecodable or inconsistent report).
    ProtocolViolation {
        /// What arrived and why it is invalid.
        detail: String,
    },
    /// The master task itself panicked.
    MasterPanicked {
        /// The master's panic message.
        message: String,
    },
    /// The request cannot be served as configured (invalid cross-field
    /// configuration, checkpointing a mode that has no consistent round
    /// boundary, resuming a snapshot that doesn't match the run).
    Unsupported {
        /// What was asked for and why it can't be done.
        detail: String,
    },
    /// An invariant the engine relies on failed (a bug, not a worker
    /// fault).
    Internal {
        /// Which invariant broke.
        detail: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::AllWorkersLost { losses } => {
                write!(f, "all workers lost:")?;
                for loss in losses {
                    write!(f, " [{loss}]")?;
                }
                Ok(())
            }
            EngineError::ProtocolViolation { detail } => {
                write!(f, "protocol violation: {detail}")
            }
            EngineError::MasterPanicked { message } => {
                write!(f, "master panicked: {message}")
            }
            EngineError::Unsupported { detail } => write!(f, "unsupported: {detail}"),
            EngineError::Internal { detail } => write!(f, "engine invariant broken: {detail}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Build a [`FaultPlan`] that fires when a worker dequeues its assignment
/// for `round` (`worker` is 0-based, like [`WorkerLoss::worker`]). The
/// mapping counts every delivery into the slave: one problem broadcast,
/// then one assignment per round, so round `r`'s assignment is the
/// `r + 2`-th message.
///
/// For modes that fold everything into one round (SEQ/ITS/DTS) only
/// `round == 0` can fire; later triggers never arrive.
pub fn fault_at_round(worker: usize, round: usize, action: FaultAction) -> FaultPlan {
    FaultPlan {
        tid: worker + 1,
        on_receive: round + 2,
        action,
    }
}

/// Per-task result of a run.
enum TaskOut {
    Master(Result<Box<SliceOutcome>, EngineError>),
    Slave,
}

/// Master-side exit control for one [`master_loop`] invocation.
///
/// The defaults reproduce the classic one-shot run: never park, STOP the
/// farm on the way out. The job server overrides both to time-slice one
/// persistent farm across jobs — parking at quantum boundaries and
/// keeping the slaves alive between slices.
pub(crate) struct MasterCtl {
    /// Park (snapshot and return) after this many newly executed rounds
    /// if the run has not finished first. `None` runs to completion.
    /// Requires synchronous delivery and a snapshot-capable policy.
    pub(crate) park_after: Option<usize>,
    /// Whether to fan out STOP (and notify orphans) on exit. In-process
    /// pools need it to fold the farm; the job server keeps its remote
    /// slaves alive between slices and STOPs only at shutdown.
    pub(crate) stop_on_exit: bool,
}

impl Default for MasterCtl {
    fn default() -> Self {
        MasterCtl {
            park_after: None,
            stop_on_exit: true,
        }
    }
}

/// How a bounded run slice ended (see [`Engine::run_slice`]).
#[derive(Debug)]
pub enum SliceOutcome {
    /// The run finished inside the slice; the complete report. Boxed so
    /// the variant stays as small as `Parked`'s snapshot pointer.
    Finished(Box<ModeReport>),
    /// The slice's round budget elapsed first: the master's complete
    /// state at a round boundary, ready to resume bit-identically.
    Parked(Box<Snapshot>),
}

/// A reusable parallel search engine: one persistent worker pool serving
/// consecutive [`run`](Engine::run) calls for any [`Mode`].
pub struct Engine {
    pool: WorkerPool,
    spawned_threads: usize,
    fault_plan: Option<FaultPlan>,
    telemetry: bool,
}

impl Engine {
    /// An engine whose pool can drive up to `p` slave workers (plus the
    /// master task).
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "an engine needs at least one worker");
        let pool = WorkerPool::new(p + 1);
        let spawned_threads = pool.ntasks();
        Engine {
            pool,
            spawned_threads,
            fault_plan: None,
            telemetry: true,
        }
    }

    /// Toggle telemetry recording for subsequent runs (on by default).
    /// Disabled runs return an empty [`ModeReport::telemetry`]; this is
    /// the baseline for overhead measurement.
    pub fn set_telemetry(&mut self, on: bool) {
        self.telemetry = on;
    }

    /// Pool size (master + workers).
    pub fn pool_size(&self) -> usize {
        self.pool.ntasks()
    }

    /// Total OS threads spawned over the engine's lifetime. Stays constant
    /// across runs unless a run needs a bigger pool or a lost worker
    /// thread is healed — the respawn-free reuse this counter exists to
    /// verify.
    pub fn spawned_threads(&self) -> usize {
        self.spawned_threads + self.pool.respawned_threads()
    }

    /// Thread ids of the current pool (for reuse assertions in tests).
    pub fn thread_ids(&self) -> Vec<std::thread::ThreadId> {
        self.pool.thread_ids()
    }

    /// Inject a one-shot fault into the *next* run (see [`fault_at_round`]
    /// for the worker/round mapping). Testing hook for the degradation
    /// and recovery paths.
    pub fn inject_fault(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Grow the pool if `cfg.p` asks for more workers than it holds; a
    /// smaller run leaves the pool alone (extra workers idle through it).
    fn ensure_capacity(&mut self, ntasks: usize) {
        if ntasks > self.pool.ntasks() {
            // Bank the old pool's healing count before dropping it so the
            // lifetime total keeps every thread ever spawned.
            self.spawned_threads += self.pool.respawned_threads() + ntasks;
            self.pool = WorkerPool::new(ntasks);
        }
    }

    /// Run `mode` on `inst` under `cfg`, reusing the warm pool.
    ///
    /// Losing workers mid-run is not an error: the master quarantines them
    /// and the report comes back with [`ModeReport::lost_workers`]
    /// non-empty. `Err` means the run produced no usable result (see
    /// [`EngineError`]).
    pub fn run(
        &mut self,
        inst: &Instance,
        mode: Mode,
        cfg: &RunConfig,
    ) -> Result<ModeReport, EngineError> {
        assert!(cfg.p >= 1 && cfg.rounds >= 1);
        self.run_policy(inst, &mut *policy_for(mode), cfg)
    }

    /// Continue a checkpointed run from `snap` (written by an earlier run
    /// with `RunConfig::checkpoint` set). The instance and every
    /// search-relevant configuration field must match the original run —
    /// the resumed run is then bit-identical to the uninterrupted one
    /// (objective, best solution, per-round curves; wall clock excluded).
    pub fn resume(
        &mut self,
        inst: &Instance,
        snap: Snapshot,
        cfg: &RunConfig,
    ) -> Result<ModeReport, EngineError> {
        let mut policy = validated_resume_policy(inst, &snap, cfg)?;
        finished_only(self.run_policy_inner(
            inst,
            &mut *policy,
            cfg,
            Some(snap),
            &MasterCtl::default(),
        )?)
    }

    /// Run at most `park_after` rounds of `mode` (all of them if `None`),
    /// optionally continuing a parked or checkpointed [`Snapshot`], and
    /// either finish or park again. Parking serializes the master's
    /// complete state at a round boundary — the same artifact a periodic
    /// checkpoint writes — so a chain of slices is bit-identical to one
    /// uninterrupted run. This is the preemption primitive behind the job
    /// server's time-slicing ([`crate::jobserver`]).
    pub fn run_slice(
        &mut self,
        inst: &Instance,
        mode: Mode,
        cfg: &RunConfig,
        resume: Option<Snapshot>,
        park_after: Option<usize>,
    ) -> Result<SliceOutcome, EngineError> {
        assert!(cfg.p >= 1 && cfg.rounds >= 1);
        let mut policy = match &resume {
            Some(snap) => {
                if snap.mode != mode {
                    return Err(EngineError::Unsupported {
                        detail: format!("snapshot was taken under {:?}, not {mode:?}", snap.mode),
                    });
                }
                validated_resume_policy(inst, snap, cfg)?
            }
            None => policy_for(mode),
        };
        let ctl = MasterCtl {
            park_after,
            stop_on_exit: true,
        };
        self.run_policy_inner(inst, &mut *policy, cfg, resume, &ctl)
    }

    /// Run a custom policy (the extension point behind [`run`](Engine::run)).
    pub fn run_policy(
        &mut self,
        inst: &Instance,
        policy: &mut dyn CoopPolicy,
        cfg: &RunConfig,
    ) -> Result<ModeReport, EngineError> {
        finished_only(self.run_policy_inner(inst, policy, cfg, None, &MasterCtl::default())?)
    }

    fn run_policy_inner(
        &mut self,
        inst: &Instance,
        policy: &mut dyn CoopPolicy,
        cfg: &RunConfig,
        resume: Option<Snapshot>,
        ctl: &MasterCtl,
    ) -> Result<SliceOutcome, EngineError> {
        if let Err(detail) = cfg.validate() {
            return Err(EngineError::Unsupported { detail });
        }
        if cfg.checkpoint.is_some() && policy.delivery() == Delivery::Pipelined {
            return Err(EngineError::Unsupported {
                detail: "checkpointing requires synchronous delivery: the pipelined ATS \
                         master has no consistent round boundary to snapshot"
                    .to_string(),
            });
        }
        let active = policy.active_workers(cfg);
        assert!(active >= 1, "a run needs at least one active worker");
        self.ensure_capacity(active + 1);
        if let Some(plan) = self.fault_plan.take() {
            self.pool.set_fault_plan(plan);
        }

        // One shared telemetry registry per run (slot per pool task); the
        // master and slave closures record into it directly — pvm-lite
        // runs every task in this process, so observability needs no wire
        // protocol (see crate::telemetry).
        let tel = if self.telemetry {
            Telemetry::new(self.pool.ntasks())
        } else {
            Telemetry::disabled(self.pool.ntasks())
        };

        // Only task 0 touches the policy (and consumes the resume
        // snapshot), but the job closure is shared by every pool thread;
        // the mutexes document that to the compiler.
        let policy = Mutex::new(policy);
        let resume = Mutex::new(resume);
        let outcomes = self.pool.run_collect(|ctx| {
            if Transport::tid(&ctx) == 0 {
                let mut policy = policy.lock().unwrap_or_else(PoisonError::into_inner);
                let resume = resume.lock().unwrap_or_else(PoisonError::into_inner).take();
                TaskOut::Master(
                    master_loop(&ctx, inst, &mut **policy, cfg, resume, ctl, &tel).map(Box::new),
                )
            } else {
                slave_loop(&ctx, cfg.patience(), &tel);
                TaskOut::Slave
            }
        });

        // Fold the transport's per-task comm totals in after the pool
        // joined (the join is the synchronization point for the relaxed
        // counter atomics).
        for (tid, comm) in self.pool.last_comm_stats().iter().enumerate() {
            tel.add(tid, Counter::MsgsSent, comm.sent);
            tel.add(tid, Counter::MsgsReceived, comm.received);
            tel.add(tid, Counter::BytesSent, comm.bytes_sent);
            tel.add(tid, Counter::BytesReceived, comm.bytes_received);
        }

        // The master only observes *silence* from a lost slave (a missed
        // deadline, a dead mailbox); the pool knows whether that silence
        // was a panic. Rewrite the causes so the report carries the real
        // story. A resurrected worker's final incarnation finished cleanly,
        // so its earlier panics are gone from the outcome slot (last write
        // wins) and its resurrection record is untouched here.
        let ntasks = outcomes.len();
        let mut slave_panics: Vec<Option<String>> = vec![None; ntasks];
        let mut master_out = None;
        for (tid, out) in outcomes.into_iter().enumerate() {
            match out {
                TaskOutcome::Done(TaskOut::Master(result)) => master_out = Some(result),
                TaskOutcome::Done(TaskOut::Slave) => {}
                TaskOutcome::Panicked(message) => {
                    if tid == 0 {
                        return Err(EngineError::MasterPanicked { message });
                    }
                    slave_panics[tid] = Some(message);
                }
            }
        }
        let enrich = |losses: &mut Vec<WorkerLoss>| {
            for loss in losses.iter_mut() {
                if let Some(message) = &slave_panics[loss.worker + 1] {
                    loss.cause = LossCause::Panicked(message.clone());
                }
            }
        };
        match master_out {
            Some(Ok(outcome)) => match *outcome {
                SliceOutcome::Finished(mut report) => {
                    enrich(&mut report.lost_workers);
                    report.telemetry = tel.snapshot();
                    Ok(SliceOutcome::Finished(report))
                }
                // A parked slice carries its losses inside the snapshot;
                // panic details resurface when the job resumes.
                parked => Ok(parked),
            },
            Some(Err(EngineError::AllWorkersLost { mut losses })) => {
                enrich(&mut losses);
                Err(EngineError::AllWorkersLost { losses })
            }
            Some(Err(e)) => Err(e),
            None => Err(EngineError::Internal {
                detail: "master task returned no report".into(),
            }),
        }
    }
}

/// Unwrap a [`SliceOutcome`] from a run that set no park bound — parking
/// is impossible there, so a parked outcome is an engine bug.
fn finished_only(outcome: SliceOutcome) -> Result<ModeReport, EngineError> {
    match outcome {
        SliceOutcome::Finished(report) => Ok(*report),
        SliceOutcome::Parked(_) => Err(EngineError::Internal {
            detail: "unbounded run returned a parked outcome".into(),
        }),
    }
}

/// Validate `snap` against `inst`/`cfg` and hand back the restorable
/// policy — the shared admission path of [`Engine::resume`] and
/// [`Engine::run_slice`].
pub(crate) fn validated_resume_policy(
    inst: &Instance,
    snap: &Snapshot,
    cfg: &RunConfig,
) -> Result<Box<dyn CoopPolicy>, EngineError> {
    let reject = |detail: String| Err(EngineError::Unsupported { detail });
    if snap.fingerprint != instance_fingerprint(inst) {
        return reject("snapshot was taken from a different instance".to_string());
    }
    if snap.cfg_digest != config_digest(cfg) {
        return reject(
            "snapshot was taken under a different search configuration \
             (p, rounds, budget, seed, ISP/SGP and relink must match the original run)"
                .to_string(),
        );
    }
    let policy = policy_for(snap.mode);
    let active = policy.active_workers(cfg);
    let rounds = policy.rounds(cfg);
    if policy.delivery() == Delivery::Pipelined {
        return reject("pipelined modes cannot be checkpointed or resumed".to_string());
    }
    if snap.alive.len() != active
        || snap.epochs.len() != active
        || snap.restarts_used.len() != active
        || snap.histories.len() != active
    {
        return reject(format!(
            "snapshot worker tables hold {} workers, run configures {active}",
            snap.alive.len()
        ));
    }
    if snap.next_round == 0 || snap.next_round >= rounds || snap.round_best.len() != snap.next_round
    {
        return reject(format!(
            "snapshot round counter {} is outside the resumable range 1..{rounds}",
            snap.next_round
        ));
    }
    if snap.rng == [0u64; 4] {
        return reject("snapshot rng state is degenerate".to_string());
    }
    if !snap.alive.iter().any(|&a| a) {
        return Err(EngineError::AllWorkersLost {
            losses: snap.losses.clone(),
        });
    }
    Ok(policy)
}

/// Dispatch a mode to its policy.
pub(crate) fn policy_for(mode: Mode) -> Box<dyn CoopPolicy> {
    use crate::coop::FarmPolicy;
    use crate::core_policy::CorePolicy;
    use crate::decomposed::DecomposedPolicy;
    use crate::repair::RepairPolicy;
    match mode {
        Mode::Sequential => Box::new(FarmPolicy::sequential()),
        Mode::Independent => Box::new(FarmPolicy::independent()),
        Mode::Cooperative => Box::new(FarmPolicy::cooperative()),
        Mode::CooperativeAdaptive => Box::new(FarmPolicy::cooperative_adaptive()),
        Mode::Asynchronous => Box::new(FarmPolicy::asynchronous()),
        Mode::Decomposed => Box::new(DecomposedPolicy::new()),
        Mode::Core => Box::new(CorePolicy::new()),
        Mode::Repair => Box::new(RepairPolicy::new()),
    }
}

/// Per-worker supervision bookkeeping of one run: liveness, quarantine
/// records, incarnation epochs, restart-budget consumption, each worker's
/// latest long-term History and the successful resurrections.
struct Workers {
    alive: Vec<bool>,
    losses: Vec<WorkerLoss>,
    epochs: Vec<u64>,
    restarts_used: Vec<usize>,
    histories: Vec<SeedMsg>,
    resurrections: Vec<Resurrection>,
}

impl Workers {
    fn fresh(active: usize) -> Self {
        Workers {
            alive: vec![true; active],
            losses: Vec::new(),
            epochs: vec![0; active],
            restarts_used: vec![0; active],
            histories: vec![SeedMsg::default(); active],
            resurrections: Vec::new(),
        }
    }

    fn from_snapshot(snap: &Snapshot) -> Self {
        Workers {
            alive: snap.alive.clone(),
            losses: snap.losses.clone(),
            epochs: snap.epochs.clone(),
            restarts_used: snap.restarts_used.iter().map(|&r| r as usize).collect(),
            histories: snap.histories.clone(),
            resurrections: snap.resurrections.clone(),
        }
    }

    /// Quarantine worker `k` (idempotent). Returns whether any worker is
    /// still alive — `false` is the caller's cue to give up with
    /// [`EngineError::AllWorkersLost`].
    fn mark_lost(&mut self, k: usize, round: usize, cause: LossCause, tel: &Telemetry) -> bool {
        if self.alive[k] {
            self.alive[k] = false;
            self.losses.push(WorkerLoss {
                worker: k,
                round,
                cause,
            });
            tel.event(0, EventKind::Quarantine, round, k as i64);
        }
        self.alive.iter().any(|&a| a)
    }

    /// Bank the History a report carries as the worker's latest memory.
    fn bank_history(&mut self, k: usize, report: &ReportMsg) {
        self.histories[k] = SeedMsg {
            history_counts: report.history_counts.clone(),
            history_iterations: report.history_iterations,
        };
    }
}

/// The exponential-backoff delay before restart attempt
/// `attempts_so_far + 1`: `restart_backoff × 2^attempts_so_far`,
/// saturating.
fn backoff_delay(cfg: &RunConfig, attempts_so_far: usize) -> Duration {
    cfg.restart_backoff
        .saturating_mul(1u32 << attempts_so_far.min(16))
}

/// Gather reports from the workers flagged in `need` under a single
/// deadline, clearing each flag as its report lands. Reports from
/// un-needed workers (quarantined, already reported this round) and from
/// superseded incarnations (stale epoch) are dropped silently; `need`
/// entries still set on return are the workers that missed the deadline.
fn gather_reports<C: Transport>(
    ctx: &C,
    epochs: &[u64],
    timeout: Duration,
    need: &mut [bool],
    tel: &Telemetry,
) -> Result<Vec<(usize, ReportMsg)>, EngineError> {
    let active = epochs.len();
    let mut got = Vec::new();
    let mut outstanding = need.iter().filter(|&&b| b).count();
    let deadline = Instant::now().checked_add(timeout);
    while outstanding > 0 {
        let remaining = match deadline {
            None => Duration::MAX,
            Some(deadline) => {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                deadline - now
            }
        };
        let env = match ctx.recv_timeout(remaining) {
            Ok(env) => env,
            Err(CommError::Timeout) => break,
            Err(_) => break, // every sender gone: nothing will arrive
        };
        let Some(k) = env.from.checked_sub(1).filter(|&k| k < active) else {
            return Err(EngineError::ProtocolViolation {
                detail: format!("report from out-of-range task {}", env.from),
            });
        };
        if !need[k] {
            tel.add(0, Counter::StaleIgnored, 1);
            continue; // stale: quarantined or already reported
        }
        if env.tag != tags::REPORT {
            return Err(EngineError::ProtocolViolation {
                detail: format!(
                    "unexpected tag {} from task {} (expected {})",
                    env.tag,
                    env.from,
                    tags::REPORT
                ),
            });
        }
        let report: ReportMsg = env.decode().map_err(|e| EngineError::ProtocolViolation {
            detail: format!("undecodable report from task {}: {e:?}", env.from),
        })?;
        if report.epoch != epochs[k] {
            tel.add(0, Counter::EpochsDropped, 1);
            continue; // a superseded incarnation's report
        }
        tel.add(0, Counter::ReportsReceived, 1);
        need[k] = false;
        outstanding -= 1;
        got.push((k, report));
    }
    Ok(got)
}

/// Try to bring worker `k` back mid-round (DESIGN.md §10: lost → backoff →
/// respawn → reseed → rejoined): respawn its task, re-send the problem,
/// transplant its History, redo `assign` with a bumped epoch and an
/// elite-seeded start, and wait for the redo report. Consumes restart
/// budget per attempt; returns the redo report on success, `None` when the
/// budget ran dry.
#[allow(clippy::too_many_arguments)] // the full recovery context
fn resurrect<C: Transport>(
    ctx: &C,
    problem: &ProblemMsg,
    workers: &mut Workers,
    cfg: &RunConfig,
    k: usize,
    round: usize,
    assign: &AssignMsg,
    elite: &[Solution],
    tel: &Telemetry,
) -> Result<Option<ReportMsg>, EngineError> {
    while workers.restarts_used[k] < cfg.max_restarts {
        std::thread::sleep(backoff_delay(cfg, workers.restarts_used[k]));
        workers.restarts_used[k] += 1;
        tel.add(0, Counter::Restarts, 1);
        let attempt = workers.restarts_used[k];
        workers.epochs[k] += 1;
        if !ctx.respawn(k + 1) {
            return Ok(None); // supervision retired: no rebirth possible
        }
        // A send failure means the fresh incarnation died before its
        // mailbox drained — burn the attempt and back off longer.
        if ctx.send(k + 1, tags::PROBLEM, problem).is_err() {
            continue;
        }
        tel.add(0, Counter::ProblemMsgsSent, 1);
        if ctx.send(k + 1, tags::SEED, &workers.histories[k]).is_err() {
            continue;
        }
        tel.add(0, Counter::SeedMsgsSent, 1);
        let mut redo = assign.clone();
        redo.epoch = workers.epochs[k];
        if !elite.is_empty() && redo.cell.is_none() {
            // Reseed from the master's B-best elite instead of the dead
            // incarnation's private trajectory; rotate through the bank so
            // repeated attempts explore different restarts.
            redo.initial = elite[(attempt - 1) % elite.len()].bits().clone();
        }
        if ctx.send(k + 1, tags::ASSIGN, &redo).is_err() {
            continue;
        }
        tel.add(0, Counter::AssignMsgsSent, 1);
        let mut need = vec![false; workers.epochs.len()];
        need[k] = true;
        let mut got = gather_reports(ctx, &workers.epochs, cfg.report_timeout, &mut need, tel)?;
        if let Some((_, report)) = got.pop() {
            workers.resurrections.push(Resurrection {
                worker: k,
                round,
                attempt,
            });
            tel.event(0, EventKind::Resurrection, round, k as i64);
            return Ok(Some(report));
        }
    }
    Ok(None)
}

/// The generic Fig. 2 master: broadcast, assign, collect, update — now
/// self-healing. A worker that becomes unreachable, misses its report
/// deadline or (as the pool later reveals) panicked is *resurrected* while
/// its restart budget lasts ([`resurrect`]); past the budget it is
/// *quarantined*: dropped from assignment and collection, its loss
/// recorded, the round loop continuing with the survivors. Only losing the
/// last worker aborts the run.
pub(crate) fn master_loop<C: Transport>(
    ctx: &C,
    inst: &Instance,
    policy: &mut dyn CoopPolicy,
    cfg: &RunConfig,
    resume: Option<Snapshot>,
    ctl: &MasterCtl,
    tel: &Telemetry,
) -> Result<SliceOutcome, EngineError> {
    let start = Instant::now();
    let active = policy.active_workers(cfg);
    let rounds = policy.rounds(cfg);
    assert!(active < ctx.ntasks(), "pool too small for {active} workers");
    if let Some(park) = ctl.park_after {
        // Checked before the broadcast: nothing is in flight yet, so the
        // early return cannot strand a slave waiting for instructions.
        if park == 0 {
            return Err(EngineError::Unsupported {
                detail: "park_after must be at least one round".to_string(),
            });
        }
        if policy.delivery() == Delivery::Pipelined {
            return Err(EngineError::Unsupported {
                detail: "pipelined modes have no round boundary to park at".to_string(),
            });
        }
    }

    // "Read and send to slaves problem data" (Fig. 2) — a pvm_mcast. Idle
    // pool workers beyond `active` also receive it; they simply never get
    // an assignment and fold on the final STOP. Every pool thread is fresh
    // or healed at run start, so a failure here is a pool bug, not a
    // recoverable worker loss.
    let problem = ProblemMsg::from_instance(inst);
    ctx.broadcast(tags::PROBLEM, &problem)
        .map_err(|e| EngineError::Internal {
            detail: format!("problem broadcast failed: {e}"),
        })?;
    tel.add(0, Counter::ProblemMsgsSent, (ctx.ntasks() - 1) as u64);

    let (mut rng, mut state, mut workers, start_round) = match &resume {
        None => {
            let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
            let initials = policy.prepare(inst, cfg, &mut rng);
            let mut state = MasterState {
                global_best: initials.iter().max_by_key(|s| s.value()).cloned(),
                round_best: Vec::with_capacity(rounds),
                total_moves: 0,
                total_evals: 0,
                regenerations: 0,
                elite: Vec::new(),
            };
            for sol in &initials {
                state.fold_elite(sol);
            }
            (rng, state, Workers::fresh(active), 0)
        }
        Some(snap) => {
            policy
                .restore(inst, cfg, &snap.policy)
                .map_err(|detail| EngineError::Unsupported {
                    detail: format!("policy state does not restore: {detail}"),
                })?;
            let state = MasterState {
                global_best: Some(Solution::from_bits(inst, snap.global_best.clone())),
                round_best: snap.round_best.clone(),
                total_moves: snap.total_moves,
                total_evals: snap.total_evals,
                regenerations: snap.regenerations,
                elite: snap
                    .elite
                    .iter()
                    .map(|bits| Solution::from_bits(inst, bits.clone()))
                    .collect(),
            };
            let workers = Workers::from_snapshot(snap);
            // Transplant each surviving worker's long-term History into
            // its fresh incarnation; a failed send surfaces as a loss at
            // the next assignment.
            for k in 0..active {
                if workers.alive[k]
                    && workers.histories[k].history_counts.len() == inst.n()
                    && ctx.send(k + 1, tags::SEED, &workers.histories[k]).is_ok()
                {
                    tel.add(0, Counter::SeedMsgsSent, 1);
                }
            }
            (
                Xoshiro256::from_state(snap.rng),
                state,
                workers,
                snap.next_round,
            )
        }
    };
    drop(resume);

    // The round loop proper, pulled into a closure so that *every* exit —
    // success, park, all-workers-lost, protocol violation, checkpoint
    // failure — still flows through the STOP fan-out below (when this
    // invocation owns the farm's shutdown). Returning early without
    // stopping the slaves would leave them blocked on their mailboxes for
    // a full patience window, wedging the pool. `Ok(Some(snap))` means the
    // slice parked at a round boundary instead of finishing.
    let mut run_rounds = || -> Result<Option<Box<Snapshot>>, EngineError> {
        match policy.delivery() {
            Delivery::Synchronous => {
                for round in start_round..rounds {
                    let _round_span = tel.span(0, SpanKind::Round);
                    // Launch the surviving slave searches. The sent assignment
                    // is kept per worker so a resurrection can redo it.
                    let mut sent: Vec<Option<AssignMsg>> = vec![None; active];
                    let mut send_failed = vec![false; active];
                    {
                        let _assign_span = tel.span(0, SpanKind::Assign);
                        for k in 0..active {
                            if !workers.alive[k] {
                                continue;
                            }
                            let mut assign = policy.assign(k, round, inst, cfg, &mut rng);
                            assign.epoch = workers.epochs[k];
                            send_failed[k] = ctx.send(k + 1, tags::ASSIGN, &assign).is_err();
                            if !send_failed[k] {
                                tel.add(0, Counter::AssignMsgsSent, 1);
                            }
                            sent[k] = Some(assign);
                        }
                    }

                    // Rendezvous: gather the survivors' reports (slaves finish
                    // ≈ simultaneously because the eval budget, not
                    // wall-clock, bounds each search). One deadline covers the
                    // whole gather; a worker that misses it is resurrected
                    // while its restart budget lasts, then quarantined. The
                    // reports are processed in slave-id order below, so the
                    // update is deterministic regardless of arrival order.
                    let mut need: Vec<bool> = (0..active)
                        .map(|k| workers.alive[k] && !send_failed[k])
                        .collect();
                    let mut reports = {
                        let _gather_span = tel.span(0, SpanKind::Gather);
                        gather_reports(ctx, &workers.epochs, cfg.report_timeout, &mut need, tel)?
                    };
                    for k in 0..active {
                        if !workers.alive[k] {
                            continue;
                        }
                        let missed = need[k] || send_failed[k];
                        if !missed {
                            continue;
                        }
                        let assign = sent[k].as_ref().expect("alive workers were assigned");
                        match resurrect(
                            ctx,
                            &problem,
                            &mut workers,
                            cfg,
                            k,
                            round,
                            assign,
                            &state.elite,
                            tel,
                        )? {
                            Some(report) => reports.push((k, report)),
                            None => {
                                let cause = if send_failed[k] {
                                    LossCause::Unreachable
                                } else {
                                    LossCause::Deadline
                                };
                                if !workers.mark_lost(k, round, cause, tel) {
                                    return Err(EngineError::AllWorkersLost {
                                        losses: workers.losses.clone(),
                                    });
                                }
                            }
                        }
                    }
                    reports.sort_by_key(|&(k, _)| k);
                    for (k, report) in &reports {
                        workers.bank_history(*k, report);
                    }

                    // Optional master-side exploitation: relink the two best
                    // distinct slave solutions (information neither slave holds
                    // alone).
                    if policy.relink(cfg) {
                        state.total_evals += relink_round(inst, &reports, &mut state.global_best)?;
                    }

                    for (k, report) in &reports {
                        state
                            .process_report(*k, round, report, policy, inst, cfg, &mut rng, tel)?;
                    }
                    let best = state
                        .global_best
                        .as_ref()
                        .ok_or_else(|| EngineError::Internal {
                            detail: "no global best after a processed round".into(),
                        })?;
                    state.round_best.push(best.value());

                    // Periodic checkpoint: the state as of the top of
                    // `round + 1`. The final round is never checkpointed —
                    // the run is over.
                    if let Some(cp) = &cfg.checkpoint {
                        if (round + 1) % cp.every == 0 && round + 1 < rounds {
                            let _snap_span = tel.span(0, SpanKind::SnapshotWrite);
                            let snap = build_snapshot(
                                policy,
                                inst,
                                cfg,
                                round + 1,
                                &rng,
                                &state,
                                &workers,
                            )?;
                            let nbytes = snap.to_file_bytes().len() as u64;
                            snap.save(&cp.path).map_err(|e| EngineError::Internal {
                                detail: format!("checkpoint write failed: {e}"),
                            })?;
                            tel.add(0, Counter::CheckpointsWritten, 1);
                            tel.add(0, Counter::CheckpointBytes, nbytes);
                            tel.event(0, EventKind::Checkpoint, round + 1, nbytes as i64);
                        }
                    }

                    // Quantum boundary: park once the slice's round budget
                    // is spent and the run is not already over. The parked
                    // snapshot is the identical artifact a periodic
                    // checkpoint writes, so a resumed job continues
                    // bit-identically to one that never parked.
                    if let Some(park) = ctl.park_after {
                        if round + 1 < rounds && round + 1 - start_round >= park {
                            let _snap_span = tel.span(0, SpanKind::SnapshotWrite);
                            let snap = build_snapshot(
                                policy,
                                inst,
                                cfg,
                                round + 1,
                                &rng,
                                &state,
                                &workers,
                            )?;
                            return Ok(Some(Box::new(snap)));
                        }
                    }
                }
            }
            Delivery::Pipelined => {
                // Reports arrive in scheduler order; `arrived[k]` counts how
                // many worker `k` has sent, which *is* the logical round of its
                // next arrival (per-worker channels are FIFO). The buffer plus
                // the (round, worker) cursor turn that arrival stream into a
                // deterministic processing order — and each processed report
                // immediately releases that worker's next assignment, so no
                // worker ever waits for a rendezvous. `assigned[k]` counts
                // assignments sent, so `assigned[k] > arrived[k]` means worker
                // `k` owes a report — the workers a deadline expiry resurrects
                // or quarantines.
                let mut arrived = vec![0usize; active];
                let mut assigned = vec![0usize; active];
                let mut sent: Vec<Option<AssignMsg>> = vec![None; active];
                // A rebirth in flight: (round it redoes, attempt); confirmed
                // into a Resurrection record when the redo report arrives.
                let mut rebirth: Vec<Option<(usize, usize)>> = vec![None; active];
                let mut buffer: BTreeMap<(usize, usize), ReportMsg> = BTreeMap::new();
                let mut cursor = (0usize, 0usize);
                // The pipeline has no rendezvous, so one Round span covers the
                // whole asynchronous run; Assign/Gather spans nest inside it.
                let _round_span = tel.span(0, SpanKind::Round);

                // Bootstrap: every worker gets its round-0 assignment.
                for k in 0..active {
                    let _assign_span = tel.span(0, SpanKind::Assign);
                    let mut assign = policy.assign(k, 0, inst, cfg, &mut rng);
                    assign.epoch = workers.epochs[k];
                    let ok = ctx.send(k + 1, tags::ASSIGN, &assign).is_ok();
                    sent[k] = Some(assign);
                    if ok {
                        assigned[k] = 1;
                        tel.add(0, Counter::AssignMsgsSent, 1);
                    } else if !workers.mark_lost(k, 0, LossCause::Unreachable, tel) {
                        return Err(EngineError::AllWorkersLost {
                            losses: workers.losses.clone(),
                        });
                    }
                }

                'outer: loop {
                    // Drain: process buffered reports in logical order. A
                    // quarantined worker's never-coming report is skipped so
                    // the cursor keeps rotating over the survivors; a live
                    // worker's missing report sends us to the wait below.
                    loop {
                        let (round, k) = cursor;
                        if round >= rounds {
                            break 'outer;
                        }
                        if let Some(report) = buffer.remove(&cursor) {
                            state.process_report(
                                k, round, &report, policy, inst, cfg, &mut rng, tel,
                            )?;
                            if round + 1 < rounds && workers.alive[k] {
                                let _assign_span = tel.span(0, SpanKind::Assign);
                                let mut assign = policy.assign(k, round + 1, inst, cfg, &mut rng);
                                assign.epoch = workers.epochs[k];
                                let ok = ctx.send(k + 1, tags::ASSIGN, &assign).is_ok();
                                sent[k] = Some(assign);
                                if ok {
                                    assigned[k] += 1;
                                    tel.add(0, Counter::AssignMsgsSent, 1);
                                } else if !workers.mark_lost(
                                    k,
                                    round + 1,
                                    LossCause::Unreachable,
                                    tel,
                                ) {
                                    return Err(EngineError::AllWorkersLost {
                                        losses: workers.losses.clone(),
                                    });
                                }
                            }
                        } else if workers.alive[k] {
                            break; // report still in flight: wait for it
                        }
                        cursor = if k + 1 < active {
                            (round, k + 1)
                        } else {
                            let best = state.global_best.as_ref().ok_or_else(|| {
                                EngineError::Internal {
                                    detail: "no global best after a processed round".into(),
                                }
                            })?;
                            state.round_best.push(best.value());
                            (round + 1, 0)
                        };
                    }

                    // Wait for one more report under a single deadline (the
                    // timeout budget is per expected report, not per arrival —
                    // stale stragglers burning the clock don't extend it).
                    let deadline = Instant::now().checked_add(cfg.report_timeout);
                    let gather_span = tel.span(0, SpanKind::Gather);
                    let deadline_expired = loop {
                        let remaining = match deadline {
                            None => Duration::MAX,
                            Some(deadline) => {
                                let now = Instant::now();
                                if now >= deadline {
                                    break true;
                                }
                                deadline - now
                            }
                        };
                        match ctx.recv_timeout(remaining) {
                            Ok(env) => {
                                let Some(k) = env.from.checked_sub(1).filter(|&k| k < active)
                                else {
                                    return Err(EngineError::ProtocolViolation {
                                        detail: format!(
                                            "report from out-of-range task {}",
                                            env.from
                                        ),
                                    });
                                };
                                if !workers.alive[k] {
                                    tel.add(0, Counter::StaleIgnored, 1);
                                    continue; // stale report from a quarantined worker
                                }
                                if env.tag != tags::REPORT {
                                    return Err(EngineError::ProtocolViolation {
                                        detail: format!(
                                            "unexpected tag {} from task {} (expected {})",
                                            env.tag,
                                            env.from,
                                            tags::REPORT
                                        ),
                                    });
                                }
                                let report: ReportMsg =
                                    env.decode().map_err(|e| EngineError::ProtocolViolation {
                                        detail: format!(
                                            "undecodable report from task {}: {e:?}",
                                            env.from
                                        ),
                                    })?;
                                if report.epoch != workers.epochs[k] {
                                    tel.add(0, Counter::EpochsDropped, 1);
                                    continue; // a superseded incarnation's report
                                }
                                if let Some((round, attempt)) = rebirth[k].take() {
                                    workers.resurrections.push(Resurrection {
                                        worker: k,
                                        round,
                                        attempt,
                                    });
                                    tel.event(0, EventKind::Resurrection, round, k as i64);
                                }
                                workers.bank_history(k, &report);
                                tel.add(0, Counter::ReportsReceived, 1);
                                buffer.insert((arrived[k], k), report);
                                arrived[k] += 1;
                                break false;
                            }
                            Err(CommError::Timeout) => break true,
                            Err(_) => break true, // every sender gone: nothing will arrive
                        }
                    };
                    drop(gather_span);
                    // The deadline expired: every live worker still owing a
                    // report is out of time. While a worker's restart budget
                    // lasts the master respawns it and re-sends the
                    // outstanding assignment (one attempt per expiry); past
                    // the budget it is quarantined. Each expiry thus either
                    // consumes a restart credit or quarantines a worker, and
                    // both are finite — the loop terminates.
                    if deadline_expired {
                        for k in 0..active {
                            if !workers.alive[k] || assigned[k] <= arrived[k] {
                                continue;
                            }
                            let round = arrived[k];
                            if workers.restarts_used[k] < cfg.max_restarts {
                                std::thread::sleep(backoff_delay(cfg, workers.restarts_used[k]));
                                workers.restarts_used[k] += 1;
                                tel.add(0, Counter::Restarts, 1);
                                let attempt = workers.restarts_used[k];
                                workers.epochs[k] += 1;
                                rebirth[k] = None;
                                if ctx.respawn(k + 1) {
                                    let mut redo = sent[k]
                                        .clone()
                                        .expect("an owed report implies a stored assignment");
                                    redo.epoch = workers.epochs[k];
                                    if !state.elite.is_empty() && redo.cell.is_none() {
                                        redo.initial = state.elite
                                            [(attempt - 1) % state.elite.len()]
                                        .bits()
                                        .clone();
                                    }
                                    let mut ok = ctx.send(k + 1, tags::PROBLEM, &problem).is_ok();
                                    if ok {
                                        tel.add(0, Counter::ProblemMsgsSent, 1);
                                        ok = ctx
                                            .send(k + 1, tags::SEED, &workers.histories[k])
                                            .is_ok();
                                    }
                                    if ok {
                                        tel.add(0, Counter::SeedMsgsSent, 1);
                                        ok = ctx.send(k + 1, tags::ASSIGN, &redo).is_ok();
                                    }
                                    if ok {
                                        tel.add(0, Counter::AssignMsgsSent, 1);
                                        rebirth[k] = Some((round, attempt));
                                    }
                                }
                                // Whether or not the rebirth took, the worker
                                // still owes its report; the next deadline
                                // window decides.
                                continue;
                            }
                            if !workers.mark_lost(k, round, LossCause::Deadline, tel) {
                                return Err(EngineError::AllWorkersLost {
                                    losses: workers.losses.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(None)
    };
    let round_result = run_rounds();

    // Fold the farm: STOP every pool worker, including idle ones, plus any
    // superseded incarnations still blocked on their orphaned mailboxes.
    // A caller that keeps the farm alive across slices (the job server)
    // opts out and STOPs once, at shutdown.
    if ctl.stop_on_exit {
        for slave in 1..ctx.ntasks() {
            let _ = ctx.send_bytes(slave, tags::STOP, Vec::new());
        }
        ctx.notify_orphans(tags::STOP);
    }
    if let Some(snap) = round_result? {
        return Ok(SliceOutcome::Parked(snap));
    }

    let best = state.global_best.ok_or_else(|| EngineError::Internal {
        detail: "run finished without any processed report".into(),
    })?;
    debug_assert!(best.is_feasible(inst));
    Ok(SliceOutcome::Finished(Box::new(ModeReport {
        mode: policy.mode(),
        best,
        round_best: state.round_best,
        total_moves: state.total_moves,
        total_evals: state.total_evals,
        regenerations: state.regenerations,
        wall: start.elapsed(),
        lost_workers: workers.losses,
        resurrections: workers.resurrections,
        // Filled by the engine after the farm joins; the master loop only
        // sees its own (still-live) side of the registry.
        telemetry: TelemetrySnapshot::default(),
    })))
}

/// Serialize the master's complete state as of the top of `next_round`.
fn build_snapshot(
    policy: &mut dyn CoopPolicy,
    inst: &Instance,
    cfg: &RunConfig,
    next_round: usize,
    rng: &Xoshiro256,
    state: &MasterState,
    workers: &Workers,
) -> Result<Snapshot, EngineError> {
    let blob = policy.snapshot().ok_or_else(|| EngineError::Unsupported {
        detail: format!("{:?} does not support checkpointing", policy.mode()),
    })?;
    let global_best = state
        .global_best
        .as_ref()
        .ok_or_else(|| EngineError::Internal {
            detail: "checkpoint requested before any processed report".into(),
        })?;
    Ok(Snapshot {
        mode: policy.mode(),
        fingerprint: instance_fingerprint(inst),
        cfg_digest: config_digest(cfg),
        next_round,
        rng: rng.state(),
        global_best: global_best.bits().clone(),
        round_best: state.round_best.clone(),
        total_moves: state.total_moves,
        total_evals: state.total_evals,
        regenerations: state.regenerations,
        elite: state.elite.iter().map(|s| s.bits().clone()).collect(),
        alive: workers.alive.clone(),
        losses: workers.losses.clone(),
        resurrections: workers.resurrections.clone(),
        restarts_used: workers.restarts_used.iter().map(|&r| r as u64).collect(),
        epochs: workers.epochs.clone(),
        histories: workers.histories.clone(),
        policy: blob,
    })
}

/// The master's running aggregation over reports.
struct MasterState {
    global_best: Option<Solution>,
    round_best: Vec<i64>,
    total_moves: u64,
    total_evals: u64,
    regenerations: u64,
    /// The B best distinct solutions seen so far, best first (Fig. 2's
    /// "B best solutions" bank): the reseeding source for resurrected
    /// workers and part of every checkpoint.
    elite: Vec<Solution>,
}

impl MasterState {
    /// Bank `sol` into the B-best elite (distinct assignments only,
    /// best-first, capped at [`ELITE_CAP`]). The stable sort keeps
    /// insertion order among equal values, so the bank is deterministic.
    fn fold_elite(&mut self, sol: &Solution) {
        if self.elite.iter().any(|e| e.bits() == sol.bits()) {
            return;
        }
        self.elite.push(sol.clone());
        self.elite.sort_by_key(|s| std::cmp::Reverse(s.value()));
        self.elite.truncate(ELITE_CAP);
    }

    /// Fold one report: counters, global best, elite, then the policy's
    /// update. Shared by both delivery schemes so their master updates are
    /// identical given identical processing order. A report whose claimed
    /// value doesn't survive re-evaluation is a protocol violation, not a
    /// panic.
    #[allow(clippy::too_many_arguments)] // internal fold step
    fn process_report(
        &mut self,
        k: usize,
        round: usize,
        report: &ReportMsg,
        policy: &mut dyn CoopPolicy,
        inst: &Instance,
        cfg: &RunConfig,
        rng: &mut Xoshiro256,
        tel: &Telemetry,
    ) -> Result<(), EngineError> {
        self.total_moves += report.moves;
        self.total_evals += report.evals;
        let slave_best = report.checked_best_solution(inst).map_err(|detail| {
            EngineError::ProtocolViolation {
                detail: format!("task {}: {detail}", k + 1),
            }
        })?;
        if self
            .global_best
            .as_ref()
            .is_none_or(|g| slave_best.value() > g.value())
        {
            self.global_best = Some(slave_best.clone());
            tel.add(0, Counter::IncumbentUpdates, 1);
            tel.event(0, EventKind::NewIncumbent, round, slave_best.value());
        }
        self.fold_elite(&slave_best);
        // Just folded: the global best is at least this report's best.
        let global_best = match &self.global_best {
            Some(g) => g.clone(),
            None => slave_best.clone(),
        };
        let regen = policy.absorb(k, round, report, &slave_best, &global_best, inst, cfg, rng);
        self.regenerations += regen;
        if regen > 0 {
            tel.add(0, Counter::Retunes, regen);
            tel.event(0, EventKind::Retune, round, k as i64);
        }
        Ok(())
    }
}

/// Relink the two best distinct solutions of a rendezvous; returns the
/// candidate evaluations spent.
fn relink_round(
    inst: &Instance,
    reports: &[(usize, ReportMsg)],
    global_best: &mut Option<Solution>,
) -> Result<u64, EngineError> {
    let mut tops = Vec::with_capacity(reports.len());
    for (k, report) in reports {
        let sol = report.checked_best_solution(inst).map_err(|detail| {
            EngineError::ProtocolViolation {
                detail: format!("task {}: {detail}", k + 1),
            }
        })?;
        tops.push(sol);
    }
    tops.sort_by_key(|s| std::cmp::Reverse(s.value()));
    if tops.len() < 2 || tops[0].bits() == tops[1].bits() {
        return Ok(0);
    }
    let ratios = Ratios::new(inst);
    let mut stats = mkp_tabu::moves::MoveStats::default();
    let (relinked, _) =
        mkp_tabu::relink::path_relink(inst, &ratios, &tops[0], &tops[1], &mut stats);
    if global_best
        .as_ref()
        .is_none_or(|g| relinked.value() > g.value())
    {
        *global_best = Some(relinked);
    }
    Ok(stats.candidate_evals)
}

/// Why a slave loop ended — the remote serve loop reconnects after a
/// [`Lost`](SlaveExit::Lost) master but exits cleanly after a STOP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlaveExit {
    /// The master said STOP: the run is over.
    Stopped,
    /// The master went silent or the transport failed mid-run.
    Lost,
}

/// The slave loop: receive a problem, then serve assignments until the
/// stop message (or a dead master) ends the task. A [`tags::SEED`]
/// message transplants the long-term History of a previous incarnation
/// (rebirth) or a checkpointed run (resume) into this one. A *new*
/// [`tags::PROBLEM`] mid-loop replaces the instance and resets the
/// per-problem memory — that is how one persistent slave serves
/// consecutive jobs under the job server, which broadcasts each job's
/// problem at the top of every slice instead of STOPping between jobs.
///
/// `patience` is how long the slave waits for each instruction before
/// concluding the master is gone — in-process callers pass
/// [`RunConfig::patience`], remote slaves their `--patience` flag; both
/// stretch well beyond the master's report deadline so a straggling peer
/// can't starve a healthy slave into giving up moments before its next
/// assignment arrives.
pub(crate) fn slave_loop<C: Transport>(ctx: &C, patience: Duration, tel: &Telemetry) -> SlaveExit {
    let tid = ctx.tid();
    let env = match ctx.recv_timeout(patience) {
        Ok(env) => env,
        Err(_) => return SlaveExit::Lost, // master died before the broadcast
    };
    assert_eq!(env.tag, tags::PROBLEM, "protocol violation");
    let mut inst = env
        .decode::<ProblemMsg>()
        .expect("well-formed problem")
        .into_instance();
    let mut ratios = Ratios::new(&inst);
    // The long-term frequency memory survives across rounds: each round's
    // diversification then targets regions this slave has never visited in
    // the whole session, which is what makes later rounds productive.
    let mut history = mkp_tabu::history::History::new(inst.n());

    loop {
        let env = match ctx.recv_timeout(patience) {
            Ok(env) => env,
            Err(_) => return SlaveExit::Lost, // master gone: shut down quietly
        };
        match env.tag {
            tags::STOP => return SlaveExit::Stopped,
            tags::PROBLEM => {
                // The next job's instance: per-problem state starts over.
                // (A resumed job re-seeds the History right after, via
                // SEED, exactly as a checkpoint resume does.)
                inst = env
                    .decode::<ProblemMsg>()
                    .expect("well-formed problem")
                    .into_instance();
                ratios = Ratios::new(&inst);
                history = mkp_tabu::history::History::new(inst.n());
            }
            tags::SEED => {
                let seed: SeedMsg = env.decode().expect("well-formed seed");
                // An empty seed means the worker had no banked memory yet;
                // keep the fresh History in that case.
                if seed.history_counts.len() == inst.n() {
                    history = mkp_tabu::history::History::from_parts(
                        seed.history_counts,
                        seed.history_iterations,
                    );
                    tel.add(tid, Counter::HistoryResets, 1);
                }
            }
            tags::ASSIGN => {
                let assign: AssignMsg = env.decode().expect("well-formed assignment");
                let (mut msg, stats) = {
                    let _ts_span = tel.span(tid, SpanKind::TsInner);
                    serve_assignment(&inst, &ratios, &mut history, &assign)
                };
                tel.add(tid, Counter::MovesExecuted, stats.moves);
                tel.add(tid, Counter::CandidateEvals, stats.candidate_evals);
                tel.add(tid, Counter::Drops, stats.drops);
                tel.add(tid, Counter::Adds, stats.adds);
                tel.add(tid, Counter::AspirationHits, stats.aspiration_hits);
                tel.add(tid, Counter::TabuRejections, stats.tabu_rejections);
                tel.record_max(
                    tid,
                    Counter::OscillationMaxDepth,
                    stats.oscillation_max_depth,
                );
                msg.epoch = assign.epoch;
                msg.history_counts = history.counts().to_vec();
                msg.history_iterations = history.iterations();
                if ctx.send(0, tags::REPORT, &msg).is_err() {
                    return SlaveExit::Lost; // master gone
                }
            }
            other => panic!("unexpected tag {other} in slave"),
        }
    }
}

/// Run one assignment to completion and build the report (epoch and
/// History attachments are stamped by the caller). Returns the wire
/// message plus the full kernel [`MoveStats`] so the slave loop can fold
/// the fine-grained counters into its telemetry without widening the wire
/// format.
fn serve_assignment(
    inst: &Instance,
    ratios: &Ratios,
    history: &mut mkp_tabu::history::History,
    assign: &AssignMsg,
) -> (ReportMsg, MoveStats) {
    let mut rng = Xoshiro256::seed_from_u64(assign.seed);

    if let Some(cell) = &assign.cell {
        // Decomposition cell (DTS): fix the split variables, search the
        // sub-space, lift the result back to the full space.
        let forced_in: Vec<usize> = cell.forced_in.iter().map(|&j| j as usize).collect();
        let forced_out: Vec<usize> = cell.forced_out.iter().map(|&j| j as usize).collect();
        return match Restriction::new(inst, &forced_in, &forced_out) {
            Ok(restriction) => {
                let sub = restriction.instance();
                let sub_ratios = Ratios::new(sub);
                let mut ts = TsConfig::default_for(sub.n());
                let init = if cell.seeded {
                    // CORE: project the master-chosen start onto the free
                    // variables, repair it inside the reduced space, and
                    // honor the master's (SGP-tuned) strategy.
                    ts.strategy = assign.strategy;
                    let mut sol = Solution::from_bits(sub, restriction.project(&assign.initial));
                    mkp::greedy::project_feasible(sub, &sub_ratios, &mut sol);
                    mkp::greedy::greedy_fill(sub, &sub_ratios, &mut sol);
                    sol
                } else {
                    // DTS: the slave builds its own randomized start.
                    dynamic_randomized_greedy(sub, &mut rng, 4)
                };
                let report = search::run(
                    sub,
                    &sub_ratios,
                    init,
                    &ts,
                    Budget::evals(assign.budget_evals),
                    &mut rng,
                );
                let lifted = restriction.lift(inst, &report.best);
                // A seeded (CORE) master runs ISP/SGP and needs the elite
                // pool lifted back; the DTS master has no SGP to feed, and
                // sub-space elites don't lift for free.
                let elite = if cell.seeded {
                    report
                        .elite
                        .iter()
                        .map(|s| restriction.lift(inst, s).bits().clone())
                        .collect()
                } else {
                    Vec::new()
                };
                let msg = ReportMsg {
                    best: lifted.bits().clone(),
                    elite,
                    // Report the start in full-space terms when the master
                    // chose it (SGP compares it against full-space finals).
                    initial_value: if cell.seeded {
                        report.initial_value + restriction.offset()
                    } else {
                        report.initial_value
                    },
                    best_value: lifted.value(),
                    moves: report.stats.moves,
                    evals: report.stats.candidate_evals,
                    epoch: 0,
                    history_counts: Vec::new(),
                    history_iterations: 0,
                };
                (msg, report.stats)
            }
            Err(_) => {
                // Infeasible (or empty) cell: the worker searches the full
                // space instead of idling. A seeded master picked a valid
                // full-space start — keep it; DTS workers build their own.
                let init = if cell.seeded {
                    let mut sol = Solution::from_bits(inst, assign.initial.clone());
                    mkp::greedy::project_feasible(inst, ratios, &mut sol);
                    mkp::greedy::greedy_fill(inst, ratios, &mut sol);
                    sol
                } else {
                    dynamic_randomized_greedy(inst, &mut rng, 4)
                };
                let mut ts = TsConfig::default_for(inst.n());
                ts.strategy = assign.strategy;
                let report = search::run(
                    inst,
                    ratios,
                    init,
                    &ts,
                    Budget::evals(assign.budget_evals),
                    &mut rng,
                );
                let msg = ReportMsg {
                    best: report.best.bits().clone(),
                    elite: report.elite.iter().map(|s| s.bits().clone()).collect(),
                    initial_value: report.initial_value,
                    best_value: report.best.value(),
                    moves: report.stats.moves,
                    evals: report.stats.candidate_evals,
                    epoch: 0,
                    history_counts: Vec::new(),
                    history_iterations: 0,
                };
                (msg, report.stats)
            }
        };
    }

    // Trajectory assignment: continue from the master-chosen start with the
    // master-chosen strategy.
    let initial = Solution::from_bits(inst, assign.initial.clone());
    let mut ts = TsConfig::default_for(inst.n());
    ts.strategy = assign.strategy;
    let mut memory = mkp_tabu::tabu_list::Recency::new(inst.n(), assign.strategy.tabu_tenure);
    let report = search::run_with_memory(
        inst,
        ratios,
        initial,
        &ts,
        Budget::evals(assign.budget_evals),
        &mut rng,
        &mut memory,
        history,
    );
    let msg = ReportMsg {
        best: report.best.bits().clone(),
        elite: report.elite.iter().map(|s| s.bits().clone()).collect(),
        initial_value: report.initial_value,
        best_value: report.best.value(),
        moves: report.stats.moves,
        evals: report.stats.candidate_evals,
        epoch: 0,
        history_counts: Vec::new(),
        history_iterations: 0,
    };
    (msg, report.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::CheckpointCfg;
    use mkp::generate::{gk_instance, GkSpec};

    fn inst() -> Instance {
        gk_instance(
            "eng",
            GkSpec {
                n: 40,
                m: 5,
                tightness: 0.5,
                seed: 7,
            },
        )
    }

    fn cfg() -> RunConfig {
        RunConfig {
            p: 3,
            rounds: 3,
            ..RunConfig::new(60_000, 11)
        }
    }

    #[test]
    fn one_engine_serves_all_modes() {
        let inst = inst();
        let mut engine = Engine::new(3);
        for mode in Mode::all() {
            let r = engine.run(&inst, mode, &cfg()).unwrap();
            assert!(r.best.is_feasible(&inst), "{mode:?} infeasible");
            assert_eq!(r.mode, mode);
            assert!(!r.is_degraded(), "{mode:?} lost workers on a healthy farm");
            assert!(
                r.resurrections.is_empty(),
                "{mode:?} resurrected on a healthy farm"
            );
        }
    }

    #[test]
    fn engine_runs_match_run_mode() {
        // The warm-pool path and the one-shot path are the same search.
        let inst = inst();
        let cfg = cfg();
        let mut engine = Engine::new(3);
        for mode in [
            Mode::Cooperative,
            Mode::CooperativeAdaptive,
            Mode::Asynchronous,
        ] {
            let warm = engine.run(&inst, mode, &cfg).unwrap();
            let cold = crate::runner::run_mode(&inst, mode, &cfg);
            assert_eq!(warm.best.value(), cold.best.value(), "{mode:?} diverged");
            assert_eq!(warm.round_best, cold.round_best);
        }
    }

    #[test]
    fn pool_grows_only_when_needed() {
        let inst = inst();
        let mut engine = Engine::new(2);
        assert_eq!(engine.pool_size(), 3);
        let spawned = engine.spawned_threads();

        // Smaller run: pool untouched.
        let mut small = cfg();
        small.p = 1;
        engine.run(&inst, Mode::Cooperative, &small).unwrap();
        assert_eq!(engine.spawned_threads(), spawned);
        assert_eq!(engine.pool_size(), 3);

        // Bigger run: pool rebuilt once, then stable.
        let mut big = cfg();
        big.p = 4;
        engine.run(&inst, Mode::Cooperative, &big).unwrap();
        assert_eq!(engine.pool_size(), 5);
        assert!(engine.spawned_threads() > spawned);
        let grown = engine.spawned_threads();
        engine.run(&inst, Mode::Cooperative, &big).unwrap();
        assert_eq!(engine.spawned_threads(), grown);
    }

    #[test]
    fn pipelined_delivery_is_deterministic() {
        let inst = inst();
        let cfg = cfg();
        let mut engine = Engine::new(3);
        let a = engine.run(&inst, Mode::Asynchronous, &cfg).unwrap();
        let b = engine.run(&inst, Mode::Asynchronous, &cfg).unwrap();
        assert_eq!(a.best.value(), b.best.value());
        assert_eq!(a.round_best, b.round_best);
        assert_eq!(a.round_best.len(), cfg.rounds);
    }

    #[test]
    fn assignment_seeds_are_decorrelated() {
        let cfg = cfg();
        let mut seen = std::collections::HashSet::new();
        for round in 0..8 {
            for k in 0..8 {
                assert!(seen.insert(assignment_seed(&cfg, round, k)));
            }
        }
    }

    #[test]
    fn checkpointing_a_pipelined_mode_is_rejected_up_front() {
        let inst = inst();
        let mut engine = Engine::new(3);
        let mut cfg = cfg();
        cfg.checkpoint = Some(CheckpointCfg {
            path: std::env::temp_dir().join("ats-reject.snap"),
            every: 1,
        });
        let err = engine.run(&inst, Mode::Asynchronous, &cfg).unwrap_err();
        assert!(
            matches!(err, EngineError::Unsupported { .. }),
            "expected Unsupported, got {err:?}"
        );
    }

    #[test]
    fn invalid_config_is_rejected_up_front() {
        let inst = inst();
        let mut engine = Engine::new(3);
        let mut cfg = cfg();
        cfg.report_timeout = Duration::from_secs(10);
        cfg.slave_patience = Some(Duration::from_secs(1));
        let err = engine.run(&inst, Mode::Cooperative, &cfg).unwrap_err();
        assert!(matches!(err, EngineError::Unsupported { .. }));
    }

    #[test]
    fn resume_rejects_foreign_snapshots() {
        let dir = std::env::temp_dir().join(format!("mkp-resume-neg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mid.snap");
        let inst = inst();
        let mut cfg = cfg();
        cfg.rounds = 4;
        cfg.checkpoint = Some(CheckpointCfg {
            path: path.clone(),
            every: 2,
        });
        let mut engine = Engine::new(3);
        engine.run(&inst, Mode::CooperativeAdaptive, &cfg).unwrap();
        let snap = Snapshot::load(&path).unwrap();
        assert_eq!(snap.next_round, 2);

        // Wrong instance.
        let other = gk_instance(
            "other",
            GkSpec {
                n: 40,
                m: 5,
                tightness: 0.5,
                seed: 8,
            },
        );
        let err = engine.resume(&other, snap.clone(), &cfg).unwrap_err();
        assert!(matches!(err, EngineError::Unsupported { .. }), "{err}");

        // Wrong seed.
        let mut drifted = cfg.clone();
        drifted.seed += 1;
        let err = engine.resume(&inst, snap.clone(), &drifted).unwrap_err();
        assert!(matches!(err, EngineError::Unsupported { .. }), "{err}");

        // Matching everything: resumes fine.
        let resumed = engine.resume(&inst, snap, &cfg).unwrap();
        assert_eq!(resumed.round_best.len(), cfg.rounds);
        std::fs::remove_dir_all(&dir).ok();
    }
}
