//! # parallel-tabu — cooperative parallel tabu search for the 0–1 MKP
//!
//! The primary contribution of Niar & Fréville (IPPS 1997): a master/slave
//! parallel tabu search in which the master not only exchanges solutions
//! between slave search threads (cooperation) but *dynamically tunes each
//! slave's strategy parameters* — tabu tenure, move width, patience — from
//! the slaves' scores and the Hamming dispersion of their B best solutions.
//! This adds a macro level of intensification/diversification balancing on
//! top of the classic single-thread mechanisms.
//!
//! The crate exposes the five search organizations compared in the paper's
//! evaluation (plus its future-work extension), all driven by one reusable
//! [`Engine`] whose persistent worker pool survives across runs; each mode
//! is a thin [`CoopPolicy`]:
//!
//! | mode | meaning |
//! |------|---------|
//! | [`Mode::Sequential`] | one TS, random parameters (SEQ) |
//! | [`Mode::Independent`] | P independent TS threads (ITS) |
//! | [`Mode::Cooperative`] | cooperation via the master's ISP, fixed strategies (CTS1) |
//! | [`Mode::CooperativeAdaptive`] | cooperation + dynamic strategy tuning (CTS2) |
//! | [`Mode::Asynchronous`] | rendezvous-free pipelined cooperation (ATS, §6) |
//! | [`Mode::Decomposed`] | search-space decomposition over critical variables (DTS, §2 taxonomy) |
//! | [`Mode::Core`] | CTS2 inside an LP-reduced-cost promising core (CORE) |
//! | [`Mode::Repair`] | randomized greedy construction + repair restarts (REPAIR) |
//!
//! ```
//! use mkp::generate::{gk_instance, GkSpec};
//! use parallel_tabu::{run_mode, Mode, RunConfig};
//!
//! let inst = gk_instance("demo", GkSpec { n: 60, m: 5, tightness: 0.5, seed: 1 });
//! let cfg = RunConfig { p: 2, rounds: 3, ..RunConfig::new(60_000, 42) };
//! let report = run_mode(&inst, Mode::CooperativeAdaptive, &cfg);
//! assert!(report.best.is_feasible(&inst));
//! ```

#![warn(missing_docs)]

pub mod coop;
pub mod core_policy;
pub mod decomposed;
pub mod engine;
pub mod isp;
pub mod jobserver;
pub mod journal;
pub mod messages;
pub mod remote;
pub mod repair;
pub mod runner;
pub mod score;
pub mod sgp;
pub mod snapshot;
pub mod telemetry;

pub use engine::{fault_at_round, CoopPolicy, Delivery, Engine, EngineError, SliceOutcome};
pub use isp::{IspConfig, StartKind};
pub use jobserver::{
    attach_job, serve, submit_job, JobReport, ServeBackend, ServeConfig, ServeStats, SubmitEvent,
    SubmitOutcome, SubmitSpec,
};
pub use journal::{Journal, JournalError, Record};
pub use pvm_lite::{Endpoint, FaultAction, FaultPlan, NetFaultAction, NetFaultPlan, NetFaultState};
pub use remote::{run_remote, run_remote_with, serve_slave, serve_slave_with, ServeOutcome};
pub use runner::{
    run_mode, CheckpointCfg, LossCause, Mode, ModeReport, Resurrection, RunConfig, WorkerLoss,
};
pub use score::Score;
pub use sgp::SgpConfig;
pub use snapshot::{config_digest, instance_fingerprint, Snapshot, SnapshotError};
pub use telemetry::{
    parse_metrics_json, validate_metrics_json, Clock, Counter, Event, EventKind, MetricsDoc,
    MonoClock, SpanKind, SpanSummary, Telemetry, TelemetrySnapshot, TestClock, WorkerCounters,
    METRICS_SCHEMA,
};
