//! In-tree observability: per-worker metrics, span timing, event tracing.
//!
//! A run emits three kinds of telemetry, all zero-dependency and cheap
//! enough to stay on by default (DESIGN.md §11):
//!
//! * **Counters** — monotonic per-worker atomics ([`Counter`] catalogues
//!   them): move/eval work, drop/add split, aspiration hits, tabu
//!   rejections, message and byte traffic, restarts, dropped stale
//!   epochs, checkpoint volume. For a fault-free seeded run every counter
//!   is a deterministic function of `RunConfig::seed`, which is what lets
//!   the test suite assert on them and lets `--metrics` promise
//!   byte-identical JSON across repeats.
//! * **Spans** — RAII timing of labelled regions ([`SpanKind`]) over a
//!   pluggable [`Clock`]: the production [`MonoClock`] reads a monotonic
//!   timer, the deterministic [`TestClock`] is hand-advanced by tests.
//!   Per (worker, kind) the registry keeps count/total/max plus a
//!   decimating reservoir for p50/p95 — wall-clock figures, so they go to
//!   the `--trace` stream, never the deterministic metrics document.
//! * **Events** — a bounded per-worker ring ([`EventKind`]: re-tune,
//!   quarantine, resurrection, new incumbent, checkpoint) stamped with a
//!   global sequence number; [`Telemetry::snapshot`] merges the rings
//!   into one causally-ordered trace, keeping the newest events and
//!   counting what overflowed.
//!
//! Transport: the engine shares one [`Telemetry`] by `Arc` across the
//! master and slave closures — pvm-lite runs every task in one process,
//! so observability does not need to ride the message-passing discipline
//! (the PVM analogue is XPVM's out-of-band tracing). The wire protocol is
//! untouched.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Fixed-order catalogue of the per-worker counters. The declaration
/// order is the canonical order in the metrics JSON document, so adding
/// a counter is a (backwards-compatible) schema extension, not a
/// reshuffle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Tabu-search moves executed (drop/add exchanges applied).
    MovesExecuted,
    /// Candidate evaluations spent (the budget currency).
    CandidateEvals,
    /// Items dropped by executed moves.
    Drops,
    /// Items added by executed moves.
    Adds,
    /// Tabu candidates admitted by the aspiration criterion.
    AspirationHits,
    /// Candidates rejected because they were tabu (and not aspired).
    TabuRejections,
    /// Long-term History transplants applied from a SEED message.
    HistoryResets,
    /// Deepest infeasible excursion reached by strategic oscillation
    /// (a high-water gauge: merged by max, not sum).
    OscillationMaxDepth,
    /// Envelopes this task sent (pvm-lite transport count).
    MsgsSent,
    /// Envelopes delivered into this task's mailbox.
    MsgsReceived,
    /// Payload bytes this task encoded and sent.
    BytesSent,
    /// Payload bytes delivered into this task's mailbox.
    BytesReceived,
    /// ProblemMsg sends by the master (broadcast + resurrection resends).
    ProblemMsgsSent,
    /// SeedMsg (History transplant) sends by the master.
    SeedMsgsSent,
    /// AssignMsg sends by the master.
    AssignMsgsSent,
    /// Reports the master accepted (current-epoch, needed).
    ReportsReceived,
    /// Worker restart attempts consumed (resurrection machinery).
    Restarts,
    /// Reports dropped because their incarnation epoch was stale.
    EpochsDropped,
    /// Socket transport: connections accepted beyond a slot's first
    /// (remote slave rebirths).
    Reconnects,
    /// Socket transport: frames dropped because their connection
    /// generation was fenced off by a respawn.
    FencedDrops,
    /// Reports ignored as stale for non-epoch reasons (quarantined
    /// sender, already reported this round).
    StaleIgnored,
    /// Times a report improved the master's global best.
    IncumbentUpdates,
    /// Strategy regenerations (CTS2 re-tunes) triggered by reports.
    Retunes,
    /// Checkpoint snapshots written.
    CheckpointsWritten,
    /// Bytes of checkpoint snapshots written.
    CheckpointBytes,
    /// Events lost to ring-buffer overflow (filled at snapshot time).
    EventsDropped,
    /// Socket transport: frames that arrived damaged (checksum
    /// mismatch) and were dropped without desynchronising the stream.
    CorruptDrops,
}

/// Number of [`Counter`] variants.
pub const COUNTER_COUNT: usize = 27;

impl Counter {
    /// Every counter, in canonical (declaration) order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::MovesExecuted,
        Counter::CandidateEvals,
        Counter::Drops,
        Counter::Adds,
        Counter::AspirationHits,
        Counter::TabuRejections,
        Counter::HistoryResets,
        Counter::OscillationMaxDepth,
        Counter::MsgsSent,
        Counter::MsgsReceived,
        Counter::BytesSent,
        Counter::BytesReceived,
        Counter::ProblemMsgsSent,
        Counter::SeedMsgsSent,
        Counter::AssignMsgsSent,
        Counter::ReportsReceived,
        Counter::Restarts,
        Counter::EpochsDropped,
        Counter::Reconnects,
        Counter::FencedDrops,
        Counter::StaleIgnored,
        Counter::IncumbentUpdates,
        Counter::Retunes,
        Counter::CheckpointsWritten,
        Counter::CheckpointBytes,
        Counter::EventsDropped,
        Counter::CorruptDrops,
    ];

    /// Stable snake_case name used as the JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Counter::MovesExecuted => "moves_executed",
            Counter::CandidateEvals => "candidate_evals",
            Counter::Drops => "drops",
            Counter::Adds => "adds",
            Counter::AspirationHits => "aspiration_hits",
            Counter::TabuRejections => "tabu_rejections",
            Counter::HistoryResets => "history_resets",
            Counter::OscillationMaxDepth => "oscillation_max_depth",
            Counter::MsgsSent => "msgs_sent",
            Counter::MsgsReceived => "msgs_received",
            Counter::BytesSent => "bytes_sent",
            Counter::BytesReceived => "bytes_received",
            Counter::ProblemMsgsSent => "problem_msgs_sent",
            Counter::SeedMsgsSent => "seed_msgs_sent",
            Counter::AssignMsgsSent => "assign_msgs_sent",
            Counter::ReportsReceived => "reports_received",
            Counter::Restarts => "restarts",
            Counter::EpochsDropped => "epochs_dropped",
            Counter::Reconnects => "reconnects",
            Counter::FencedDrops => "fenced_drops",
            Counter::StaleIgnored => "stale_ignored",
            Counter::IncumbentUpdates => "incumbent_updates",
            Counter::Retunes => "retunes",
            Counter::CheckpointsWritten => "checkpoints_written",
            Counter::CheckpointBytes => "checkpoint_bytes",
            Counter::EventsDropped => "events_dropped",
            Counter::CorruptDrops => "corrupt_drops",
        }
    }

    /// Whether per-worker values merge into the totals row by max
    /// (high-water gauges) instead of sum.
    pub fn merges_by_max(self) -> bool {
        matches!(self, Counter::OscillationMaxDepth)
    }
}

/// Timed regions. Like counters, the declaration order is canonical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One master round (synchronous: per rendezvous; pipelined: the
    /// whole report-driven loop, since it has no round boundary).
    Round,
    /// Master waiting on / draining worker reports.
    Gather,
    /// Master building and sending assignments.
    Assign,
    /// A slave's tabu-search inner loop (one assignment served).
    TsInner,
    /// Serializing and writing a checkpoint snapshot.
    SnapshotWrite,
}

/// Number of [`SpanKind`] variants.
pub const SPAN_KIND_COUNT: usize = 5;

impl SpanKind {
    /// Every span kind, in canonical order.
    pub const ALL: [SpanKind; SPAN_KIND_COUNT] = [
        SpanKind::Round,
        SpanKind::Gather,
        SpanKind::Assign,
        SpanKind::TsInner,
        SpanKind::SnapshotWrite,
    ];

    /// Stable snake_case name used in the trace stream.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Round => "round",
            SpanKind::Gather => "gather",
            SpanKind::Assign => "assign",
            SpanKind::TsInner => "ts_inner",
            SpanKind::SnapshotWrite => "snapshot_write",
        }
    }
}

/// Traced occurrences (the low-rate, high-signal moments of a run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// The master regenerated a slave's strategy (CTS2 dynamic tuning).
    Retune,
    /// A worker was permanently quarantined.
    Quarantine,
    /// A worker was successfully resurrected.
    Resurrection,
    /// The global best improved.
    NewIncumbent,
    /// A checkpoint snapshot hit the disk.
    Checkpoint,
}

impl EventKind {
    /// Stable snake_case name used in the trace stream.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Retune => "retune",
            EventKind::Quarantine => "quarantine",
            EventKind::Resurrection => "resurrection",
            EventKind::NewIncumbent => "new_incumbent",
            EventKind::Checkpoint => "checkpoint",
        }
    }
}

/// One traced occurrence. `seq` is a global (cross-worker) sequence
/// number: sorting by it reconstructs the causal order in which events
/// were recorded, regardless of which ring they sat in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global causal sequence number.
    pub seq: u64,
    /// Clock reading when the event was recorded.
    pub t_ns: u64,
    /// Recording task (0 = master).
    pub task: usize,
    /// What happened.
    pub kind: EventKind,
    /// Master round the event belongs to.
    pub round: usize,
    /// Kind-specific payload (objective for incumbents, worker for
    /// quarantine/resurrection, bytes for checkpoints, …).
    pub value: i64,
}

/// Time source for spans and event stamps. Implementations must be
/// monotonic per clock instance.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary fixed origin.
    fn now_ns(&self) -> u64;
}

/// Production clock: [`Instant`]-based monotonic time since construction.
#[derive(Debug)]
pub struct MonoClock {
    origin: Instant,
}

impl MonoClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        MonoClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonoClock {
    fn default() -> Self {
        MonoClock::new()
    }
}

impl Clock for MonoClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Deterministic test clock: time moves only when a test advances it.
#[derive(Debug, Default)]
pub struct TestClock {
    now: AtomicU64,
}

impl TestClock {
    /// A clock frozen at zero.
    pub fn new() -> Self {
        TestClock::default()
    }

    /// Advance the clock by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for TestClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// Capacity of each span-duration reservoir. When full, the reservoir
/// decimates: every second retained sample is dropped and the keep
/// stride doubles, so an arbitrarily long run keeps a deterministic,
/// evenly-thinned subset.
const RESERVOIR_CAP: usize = 512;

/// Default per-worker event-ring capacity.
const EVENT_RING_CAP: usize = 256;

/// Per-(worker, kind) span aggregation.
#[derive(Debug, Clone)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    max_ns: u64,
    /// Every `stride`-th duration, in record order.
    reservoir: Vec<u64>,
    stride: u64,
}

impl SpanAgg {
    fn new() -> Self {
        SpanAgg {
            count: 0,
            total_ns: 0,
            max_ns: 0,
            reservoir: Vec::new(),
            stride: 1,
        }
    }

    fn record(&mut self, ns: u64) {
        if self.count.is_multiple_of(self.stride) {
            if self.reservoir.len() == RESERVOIR_CAP {
                // Decimate deterministically: keep indices 0, 2, 4, …
                let mut keep = 0;
                for i in (0..self.reservoir.len()).step_by(2) {
                    self.reservoir[keep] = self.reservoir[i];
                    keep += 1;
                }
                self.reservoir.truncate(keep);
                self.stride *= 2;
            }
            if self.count.is_multiple_of(self.stride) {
                self.reservoir.push(ns);
            }
        }
        self.count += 1;
        self.total_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }
}

/// Bounded newest-wins event buffer.
#[derive(Debug)]
struct EventRing {
    buf: std::collections::VecDeque<Event>,
    cap: usize,
    dropped: u64,
}

impl EventRing {
    fn new(cap: usize) -> Self {
        EventRing {
            buf: std::collections::VecDeque::with_capacity(cap.min(64)),
            cap,
            dropped: 0,
        }
    }

    fn push(&mut self, event: Event) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }
}

/// Per-task telemetry slot.
struct WorkerSlot {
    counters: [AtomicU64; COUNTER_COUNT],
    spans: Mutex<[SpanAgg; SPAN_KIND_COUNT]>,
    events: Mutex<EventRing>,
}

impl WorkerSlot {
    fn new(event_cap: usize) -> Self {
        WorkerSlot {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            spans: Mutex::new(std::array::from_fn(|_| SpanAgg::new())),
            events: Mutex::new(EventRing::new(event_cap)),
        }
    }
}

/// The shared telemetry registry of one run: one slot per pool task
/// (index 0 is the master). Cloned by `Arc` into every task closure;
/// counter writes are `Relaxed` atomics — the pool join that ends the
/// run is the synchronization point before the master snapshots them.
pub struct Telemetry {
    enabled: bool,
    clock: Arc<dyn Clock>,
    slots: Vec<WorkerSlot>,
    seq: AtomicU64,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled)
            .field("ntasks", &self.slots.len())
            .finish()
    }
}

impl Telemetry {
    fn build(ntasks: usize, clock: Arc<dyn Clock>, event_cap: usize, enabled: bool) -> Arc<Self> {
        Arc::new(Telemetry {
            enabled,
            clock,
            slots: (0..ntasks).map(|_| WorkerSlot::new(event_cap)).collect(),
            seq: AtomicU64::new(0),
        })
    }

    /// An enabled registry over the production [`MonoClock`].
    pub fn new(ntasks: usize) -> Arc<Self> {
        Telemetry::build(ntasks, Arc::new(MonoClock::new()), EVENT_RING_CAP, true)
    }

    /// An enabled registry over an explicit clock (tests).
    pub fn with_clock(ntasks: usize, clock: Arc<dyn Clock>) -> Arc<Self> {
        Telemetry::build(ntasks, clock, EVENT_RING_CAP, true)
    }

    /// An enabled registry with a custom event-ring capacity (overflow
    /// tests, or trimming memory on huge farms).
    pub fn with_event_capacity(ntasks: usize, event_cap: usize) -> Arc<Self> {
        assert!(event_cap >= 1, "an event ring needs at least one slot");
        Telemetry::build(ntasks, Arc::new(MonoClock::new()), event_cap, true)
    }

    /// A no-op registry: every record call returns immediately. The
    /// overhead-measurement baseline.
    pub fn disabled(ntasks: usize) -> Arc<Self> {
        Telemetry::build(ntasks, Arc::new(MonoClock::new()), 1, false)
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of task slots.
    pub fn ntasks(&self) -> usize {
        self.slots.len()
    }

    /// Add `delta` to `task`'s `counter`.
    pub fn add(&self, task: usize, counter: Counter, delta: u64) {
        if !self.enabled || delta == 0 {
            return;
        }
        self.slots[task].counters[counter as usize].fetch_add(delta, Ordering::Relaxed);
    }

    /// Raise `task`'s `counter` to at least `value` (high-water gauges).
    pub fn record_max(&self, task: usize, counter: Counter, value: u64) {
        if !self.enabled || value == 0 {
            return;
        }
        self.slots[task].counters[counter as usize].fetch_max(value, Ordering::Relaxed);
    }

    /// Current value of `task`'s `counter`.
    pub fn counter(&self, task: usize, counter: Counter) -> u64 {
        self.slots[task].counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Open an RAII span: the region between this call and the returned
    /// guard's drop is recorded under (`task`, `kind`).
    pub fn span(&self, task: usize, kind: SpanKind) -> Span<'_> {
        let start_ns = if self.enabled { self.clock.now_ns() } else { 0 };
        Span {
            tel: self,
            task,
            kind,
            start_ns,
        }
    }

    fn record_span(&self, task: usize, kind: SpanKind, ns: u64) {
        let mut spans = self.slots[task]
            .spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        spans[kind as usize].record(ns);
    }

    /// Record an event into `task`'s ring (newest-wins on overflow).
    pub fn event(&self, task: usize, kind: EventKind, round: usize, value: i64) {
        if !self.enabled {
            return;
        }
        let event = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            t_ns: self.clock.now_ns(),
            task,
            kind,
            round,
            value,
        };
        self.slots[task]
            .events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event);
    }

    /// Freeze everything into a plain-data snapshot: counter matrix,
    /// span summaries, and the causally-merged event trace.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut counters = Vec::with_capacity(self.slots.len());
        let mut spans = Vec::with_capacity(self.slots.len());
        let mut events = Vec::new();
        for slot in &self.slots {
            let mut row = [0u64; COUNTER_COUNT];
            for (i, cell) in slot.counters.iter().enumerate() {
                row[i] = cell.load(Ordering::Relaxed);
            }
            let ring = slot.events.lock().unwrap_or_else(PoisonError::into_inner);
            row[Counter::EventsDropped as usize] = ring.dropped;
            events.extend(ring.buf.iter().cloned());
            drop(ring);
            counters.push(row);

            let aggs = slot.spans.lock().unwrap_or_else(PoisonError::into_inner);
            let mut summaries = Vec::new();
            for kind in SpanKind::ALL {
                let agg = &aggs[kind as usize];
                if agg.count == 0 {
                    continue;
                }
                let mut sorted = agg.reservoir.clone();
                sorted.sort_unstable();
                summaries.push(SpanSummary {
                    kind,
                    count: agg.count,
                    total_ns: agg.total_ns,
                    max_ns: agg.max_ns,
                    p50_ns: percentile(&sorted, 50),
                    p95_ns: percentile(&sorted, 95),
                });
            }
            spans.push(summaries);
        }
        events.sort_by_key(|e| e.seq);
        TelemetrySnapshot {
            counters,
            spans,
            events,
        }
    }
}

/// Floor-rank percentile of an ascending-sorted sample (0 for empty):
/// the element at index `⌊p·(len−1)/100⌋`, so p50 of `1..=100` is 50.
fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = p * (sorted.len() as u64 - 1) / 100;
    sorted[rank as usize]
}

/// RAII span guard: records the elapsed region on drop.
pub struct Span<'a> {
    tel: &'a Telemetry,
    task: usize,
    kind: SpanKind,
    start_ns: u64,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.tel.enabled {
            return;
        }
        let ns = self.tel.clock.now_ns().saturating_sub(self.start_ns);
        self.tel.record_span(self.task, self.kind, ns);
    }
}

/// A span's frozen aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSummary {
    /// Which region.
    pub kind: SpanKind,
    /// Number of times the region ran.
    pub count: u64,
    /// Sum of all durations.
    pub total_ns: u64,
    /// Longest single duration.
    pub max_ns: u64,
    /// Median duration (over the decimated reservoir).
    pub p50_ns: u64,
    /// 95th-percentile duration (over the decimated reservoir).
    pub p95_ns: u64,
}

/// Everything a finished run observed, as plain data (part of
/// `ModeReport`). `counters` is deterministic for seeded fault-free
/// runs; spans and event timestamps carry wall-clock time and are not.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Counter matrix: `counters[task][counter as usize]`.
    pub counters: Vec<[u64; COUNTER_COUNT]>,
    /// Span summaries per task (kinds with at least one record).
    pub spans: Vec<Vec<SpanSummary>>,
    /// Causally-ordered merged event trace.
    pub events: Vec<Event>,
}

/// Schema identifier of the metrics JSON document.
pub const METRICS_SCHEMA: &str = "mkp-telemetry/metrics/v1";

impl TelemetrySnapshot {
    /// Value of `task`'s `counter` (0 if the task is out of range).
    pub fn counter(&self, task: usize, counter: Counter) -> u64 {
        self.counters
            .get(task)
            .map_or(0, |row| row[counter as usize])
    }

    /// Counter merged across tasks (sum, or max for high-water gauges).
    pub fn total(&self, counter: Counter) -> u64 {
        let per_task = self.counters.iter().map(|row| row[counter as usize]);
        if counter.merges_by_max() {
            per_task.max().unwrap_or(0)
        } else {
            per_task.sum()
        }
    }

    /// `task`'s summary for `kind`, if that region ever ran.
    pub fn span(&self, task: usize, kind: SpanKind) -> Option<&SpanSummary> {
        self.spans.get(task)?.iter().find(|s| s.kind == kind)
    }

    /// The deterministic metrics document: counters only, fixed key
    /// order, so identical runs serialize to identical bytes.
    pub fn to_metrics_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{METRICS_SCHEMA}\",");
        out.push_str("  \"workers\": [\n");
        for (task, row) in self.counters.iter().enumerate() {
            let _ = write!(out, "    {{\"task\": {task}, \"counters\": {{");
            for (i, c) in Counter::ALL.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\": {}", c.name(), row[*c as usize]);
            }
            out.push_str("}}");
            out.push_str(if task + 1 < self.counters.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"totals\": {");
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", c.name(), self.total(*c));
        }
        out.push_str("}\n}\n");
        out
    }

    /// The trace stream: one JSON object per line — span summaries first
    /// (per task, canonical kind order), then the causally-ordered
    /// events. Wall-clock figures live here, not in the metrics
    /// document.
    pub fn to_trace_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (task, summaries) in self.spans.iter().enumerate() {
            for s in summaries {
                let _ = writeln!(
                    out,
                    "{{\"type\": \"span\", \"task\": {task}, \"kind\": \"{}\", \
                     \"count\": {}, \"total_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \
                     \"max_ns\": {}}}",
                    s.kind.name(),
                    s.count,
                    s.total_ns,
                    s.p50_ns,
                    s.p95_ns,
                    s.max_ns,
                );
            }
        }
        for e in &self.events {
            let _ = writeln!(
                out,
                "{{\"type\": \"event\", \"seq\": {}, \"t_ns\": {}, \"task\": {}, \
                 \"kind\": \"{}\", \"round\": {}, \"value\": {}}}",
                e.seq,
                e.t_ns,
                e.task,
                e.kind.name(),
                e.round,
                e.value,
            );
        }
        out
    }
}

// ---------------------------------------------------------------------
// Minimal JSON reader — the in-tree validator behind `mkp
// validate-metrics` and the codec property tests. Parses general JSON
// (tolerating unknown fields for forward compatibility), then projects
// the metrics document shape out of it.
// ---------------------------------------------------------------------

/// A parsed JSON value (just enough for the metrics document).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-utf8 number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number {text:?}")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (the input is a &str,
                    // so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("non-utf8 string"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn document(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing garbage"));
        }
        Ok(v)
    }
}

/// One worker's counters as read back from a metrics document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerCounters {
    /// Task index (0 = master).
    pub task: usize,
    /// `(name, value)` pairs in document order. Unknown names are kept —
    /// a newer writer's extra counters must survive an older reader.
    pub counters: Vec<(String, u64)>,
}

impl WorkerCounters {
    /// Value of the counter called `name`, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// A metrics document read back from JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsDoc {
    /// The document's schema string.
    pub schema: String,
    /// Per-worker counters, in document order.
    pub workers: Vec<WorkerCounters>,
}

/// Parse a metrics JSON document, tolerating unknown fields anywhere
/// (forward compatibility: newer writers may add fields and counters).
pub fn parse_metrics_json(text: &str) -> Result<MetricsDoc, String> {
    let root = JsonParser::new(text).document()?;
    let schema = match root.get("schema") {
        Some(Json::Str(s)) => s.clone(),
        _ => return Err("missing or non-string \"schema\"".into()),
    };
    let workers_json = match root.get("workers") {
        Some(Json::Arr(items)) => items,
        _ => return Err("missing or non-array \"workers\"".into()),
    };
    let mut workers = Vec::with_capacity(workers_json.len());
    for (i, w) in workers_json.iter().enumerate() {
        let task = w
            .get("task")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("worker {i}: missing or non-integer \"task\""))?
            as usize;
        let counters_json = match w.get("counters") {
            Some(Json::Obj(fields)) => fields,
            _ => return Err(format!("worker {i}: missing or non-object \"counters\"")),
        };
        let mut counters = Vec::with_capacity(counters_json.len());
        for (name, value) in counters_json {
            let value = value.as_u64().ok_or_else(|| {
                format!("worker {i}: counter {name:?} is not a non-negative integer")
            })?;
            counters.push((name.clone(), value));
        }
        workers.push(WorkerCounters { task, counters });
    }
    Ok(MetricsDoc { schema, workers })
}

/// Validate a metrics document: parseable, right schema, at least one
/// worker, every catalogue counter present on every worker. Returns the
/// parsed document so callers can report on it.
pub fn validate_metrics_json(text: &str) -> Result<MetricsDoc, String> {
    let doc = parse_metrics_json(text)?;
    if doc.schema != METRICS_SCHEMA {
        return Err(format!("schema {:?} is not {METRICS_SCHEMA:?}", doc.schema));
    }
    if doc.workers.is_empty() {
        return Err("document has no workers".into());
    }
    for w in &doc.workers {
        for c in Counter::ALL {
            if w.get(c.name()).is_none() {
                return Err(format!(
                    "worker {} is missing counter {:?}",
                    w.task,
                    c.name()
                ));
            }
        }
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_order_and_names_are_stable() {
        assert_eq!(Counter::ALL.len(), COUNTER_COUNT);
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{c:?} out of order");
        }
        // Names are unique.
        let mut names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COUNTER_COUNT);
    }

    #[test]
    fn counters_accumulate_and_gauge_by_max() {
        let tel = Telemetry::new(2);
        tel.add(0, Counter::MovesExecuted, 3);
        tel.add(0, Counter::MovesExecuted, 4);
        tel.record_max(1, Counter::OscillationMaxDepth, 5);
        tel.record_max(1, Counter::OscillationMaxDepth, 2);
        assert_eq!(tel.counter(0, Counter::MovesExecuted), 7);
        assert_eq!(tel.counter(1, Counter::OscillationMaxDepth), 5);
        let snap = tel.snapshot();
        assert_eq!(snap.counter(0, Counter::MovesExecuted), 7);
        assert_eq!(snap.total(Counter::MovesExecuted), 7);
        assert_eq!(snap.total(Counter::OscillationMaxDepth), 5);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let tel = Telemetry::disabled(1);
        tel.add(0, Counter::MovesExecuted, 9);
        tel.record_max(0, Counter::OscillationMaxDepth, 9);
        tel.event(0, EventKind::NewIncumbent, 0, 1);
        drop(tel.span(0, SpanKind::Round));
        let snap = tel.snapshot();
        assert_eq!(snap.counter(0, Counter::MovesExecuted), 0);
        assert!(snap.spans[0].is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn spans_aggregate_deterministically_under_test_clock() {
        let clock = Arc::new(TestClock::new());
        let tel = Telemetry::with_clock(1, clock.clone());
        // 100 spans of 1..=100 time units.
        for ns in 1..=100u64 {
            let span = tel.span(0, SpanKind::Gather);
            clock.advance(ns);
            drop(span);
        }
        let snap = tel.snapshot();
        let s = snap.span(0, SpanKind::Gather).expect("gather ran");
        assert_eq!(s.count, 100);
        assert_eq!(s.total_ns, (1..=100u64).sum::<u64>());
        assert_eq!(s.max_ns, 100);
        assert_eq!(s.p50_ns, 50);
        assert_eq!(s.p95_ns, 95);
    }

    #[test]
    fn reservoir_decimates_but_keeps_max_and_count() {
        let clock = Arc::new(TestClock::new());
        let tel = Telemetry::with_clock(1, clock.clone());
        for ns in 1..=5_000u64 {
            let span = tel.span(0, SpanKind::TsInner);
            clock.advance(ns);
            drop(span);
        }
        let snap = tel.snapshot();
        let s = snap.span(0, SpanKind::TsInner).expect("spans ran");
        assert_eq!(s.count, 5_000);
        assert_eq!(s.max_ns, 5_000);
        // Percentiles come from a thinned sample but must stay in range
        // and ordered.
        assert!(s.p50_ns >= 1 && s.p50_ns <= 5_000);
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.max_ns);
        // The decimated estimate stays close to the true quantile.
        assert!(
            (s.p50_ns as i64 - 2_500).unsigned_abs() < 250,
            "{}",
            s.p50_ns
        );
    }

    #[test]
    fn event_ring_overflow_keeps_newest_and_counts_dropped() {
        let tel = Telemetry::with_event_capacity(1, 4);
        for i in 0..10 {
            tel.event(0, EventKind::NewIncumbent, i, i as i64);
        }
        let snap = tel.snapshot();
        assert_eq!(snap.events.len(), 4);
        let rounds: Vec<usize> = snap.events.iter().map(|e| e.round).collect();
        assert_eq!(rounds, vec![6, 7, 8, 9], "newest events were not kept");
        assert_eq!(snap.counter(0, Counter::EventsDropped), 6);
    }

    #[test]
    fn events_merge_causally_across_workers() {
        let tel = Telemetry::new(3);
        tel.event(2, EventKind::Resurrection, 1, 2);
        tel.event(0, EventKind::NewIncumbent, 1, 10);
        tel.event(1, EventKind::Quarantine, 2, 1);
        let snap = tel.snapshot();
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(snap.events[0].task, 2);
        assert_eq!(snap.events[1].task, 0);
        assert_eq!(snap.events[2].task, 1);
    }

    #[test]
    fn metrics_json_round_trips() {
        let tel = Telemetry::new(2);
        tel.add(0, Counter::ReportsReceived, 6);
        tel.add(1, Counter::MovesExecuted, 1234);
        tel.add(1, Counter::BytesSent, 98765);
        let snap = tel.snapshot();
        let json = snap.to_metrics_json();
        let doc = validate_metrics_json(&json).expect("own output validates");
        assert_eq!(doc.schema, METRICS_SCHEMA);
        assert_eq!(doc.workers.len(), 2);
        assert_eq!(doc.workers[0].get("reports_received"), Some(6));
        assert_eq!(doc.workers[1].get("moves_executed"), Some(1234));
        assert_eq!(doc.workers[1].get("bytes_sent"), Some(98765));
    }

    #[test]
    fn parser_tolerates_unknown_fields() {
        let json = format!(
            "{{\"schema\": \"{METRICS_SCHEMA}\", \"future_field\": [1, {{\"x\": null}}], \
             \"workers\": [{{\"task\": 0, \"hostname\": \"m1\", \
             \"counters\": {{\"moves_executed\": 3, \"counter_from_the_future\": 9}}}}]}}"
        );
        let doc = parse_metrics_json(&json).expect("unknown fields tolerated");
        assert_eq!(doc.workers[0].get("moves_executed"), Some(3));
        assert_eq!(doc.workers[0].get("counter_from_the_future"), Some(9));
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_metrics_json("{").is_err());
        assert!(validate_metrics_json("{}").is_err());
        assert!(validate_metrics_json("{\"schema\": \"other/v9\", \"workers\": []}").is_err());
        // Right schema, but a worker missing catalogue counters.
        let json = format!(
            "{{\"schema\": \"{METRICS_SCHEMA}\", \
             \"workers\": [{{\"task\": 0, \"counters\": {{\"moves_executed\": 1}}}}]}}"
        );
        let err = validate_metrics_json(&json).unwrap_err();
        assert!(err.contains("missing counter"), "{err}");
        // Negative and fractional counter values are rejected.
        let json = format!(
            "{{\"schema\": \"{METRICS_SCHEMA}\", \
             \"workers\": [{{\"task\": 0, \"counters\": {{\"moves_executed\": -1}}}}]}}"
        );
        assert!(parse_metrics_json(&json).is_err());
    }

    #[test]
    fn trace_jsonl_has_one_object_per_line() {
        let clock = Arc::new(TestClock::new());
        let tel = Telemetry::with_clock(1, clock.clone());
        {
            let _round = tel.span(0, SpanKind::Round);
            clock.advance(10);
        }
        tel.event(0, EventKind::Checkpoint, 2, 4096);
        let trace = tel.snapshot().to_trace_jsonl();
        let lines: Vec<&str> = trace.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\": \"span\""));
        assert!(lines[0].contains("\"kind\": \"round\""));
        assert!(lines[1].contains("\"type\": \"event\""));
        assert!(lines[1].contains("\"kind\": \"checkpoint\""));
        for line in lines {
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }
}
