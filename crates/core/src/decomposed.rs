//! Search-space decomposition (the paper's §2 *third* source of
//! parallelism, used by Taillard for vehicle routing: "parallelism in
//! problem decomposition").
//!
//! For the MKP the natural decomposition is a partition of the solution
//! space by the values of a few *critical* variables — the items whose
//! utility rank sits at the expected solution boundary, where the packing
//! decision is genuinely uncertain. With `D = ⌊log₂ P⌋` split variables,
//! worker `k` receives the subproblem with those variables fixed to the
//! bits of `k`: the assignment carries a [`CellMsg`] and the slave builds
//! the [`mkp::restrict::Restriction`] itself (and lifts the sub-solution
//! back — see `engine::serve_assignment`), so the workers explore *provably
//! disjoint* regions — a complementary regime to the overlapping
//! trajectories of ITS/CTS. Workers whose cell is infeasible fall back to
//! the full instance.

use crate::engine::{assignment_seed, CoopPolicy};
use crate::messages::{AssignMsg, CellMsg, ReportMsg};
use crate::runner::{Mode, RunConfig};
use mkp::eval::Ratios;
use mkp::stats::instance_stats;
use mkp::{BitVec, Instance, Solution, Xoshiro256};
use mkp_tabu::{Strategy, StrategyBounds};

/// Pick the `d` split variables: the items straddling the expected
/// cardinality boundary in the static utility order (the most uncertain
/// packing decisions).
pub fn split_variables(inst: &Instance, ratios: &Ratios, d: usize) -> Vec<usize> {
    let order = ratios.by_utility_desc();
    let boundary = (instance_stats(inst).expected_cardinality as usize).min(inst.n() - 1);
    let lo = boundary.saturating_sub(d / 2);
    order[lo..(lo + d).min(inst.n())].to_vec()
}

/// The decomposed mode (DTS): one round, each worker fixed to its cell.
#[derive(Default)]
pub struct DecomposedPolicy {
    split: Vec<usize>,
    cells: usize,
    strategies: Vec<Strategy>,
}

impl DecomposedPolicy {
    /// A fresh DTS policy (the split is computed in `prepare`).
    pub fn new() -> Self {
        DecomposedPolicy::default()
    }
}

impl CoopPolicy for DecomposedPolicy {
    fn mode(&self) -> Mode {
        Mode::Decomposed
    }

    fn active_workers(&self, cfg: &RunConfig) -> usize {
        cfg.p
    }

    fn rounds(&self, _cfg: &RunConfig) -> usize {
        1
    }

    fn prepare(&mut self, inst: &Instance, cfg: &RunConfig, rng: &mut Xoshiro256) -> Vec<Solution> {
        let d = (cfg.p as f64).log2().floor() as usize;
        self.cells = 1usize << d;
        let ratios = Ratios::new(inst);
        self.split = split_variables(inst, &ratios, d);
        // Strategies only matter for infeasible-cell fallbacks, but drawing
        // them unconditionally keeps the master rng stream independent of
        // which cells happen to be feasible.
        let bounds = StrategyBounds::for_instance_size(inst.n());
        self.strategies = (0..cfg.p).map(|_| bounds.random(rng)).collect();
        // No master-chosen starts: each worker builds its own inside its
        // cell, so there is nothing to seed the global best with yet.
        Vec::new()
    }

    fn assign(
        &mut self,
        k: usize,
        round: usize,
        inst: &Instance,
        cfg: &RunConfig,
        _rng: &mut Xoshiro256,
    ) -> AssignMsg {
        let cell = k % self.cells;
        let forced_in: Vec<u64> = self
            .split
            .iter()
            .enumerate()
            .filter(|(b, _)| (cell >> b) & 1 == 1)
            .map(|(_, &j)| j as u64)
            .collect();
        let forced_out: Vec<u64> = self
            .split
            .iter()
            .enumerate()
            .filter(|(b, _)| (cell >> b) & 1 == 0)
            .map(|(_, &j)| j as u64)
            .collect();
        AssignMsg {
            // Ignored by the slave: it starts from a randomized greedy
            // inside the (restricted) cell.
            initial: BitVec::zeros(inst.n()),
            strategy: self.strategies[k],
            budget_evals: cfg.total_evals / cfg.p as u64,
            seed: assignment_seed(cfg, round, k),
            epoch: 0, // stamped by the engine before sending
            cell: Some(CellMsg {
                forced_in,
                forced_out,
                seeded: false,
            }),
        }
    }

    fn absorb(
        &mut self,
        _k: usize,
        _round: usize,
        _report: &ReportMsg,
        _slave_best: &Solution,
        _global_best: &Solution,
        _inst: &Instance,
        _cfg: &RunConfig,
        _rng: &mut Xoshiro256,
    ) -> u64 {
        // The cells are disjoint by construction; there is nothing to
        // exchange and nothing to adapt in a single round. The engine's
        // generic reduction (fold each report into the global best, in
        // worker order) is the whole mode.
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_mode;
    use mkp::generate::{gk_instance, uncorrelated_instance, GkSpec};

    #[test]
    fn split_variables_sit_at_the_boundary() {
        let inst = gk_instance(
            "sv",
            GkSpec {
                n: 100,
                m: 5,
                tightness: 0.5,
                seed: 1,
            },
        );
        let ratios = Ratios::new(&inst);
        let split = split_variables(&inst, &ratios, 3);
        assert_eq!(split.len(), 3);
        // All split vars are distinct and in range.
        let mut s = split.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 3);
        assert!(split.iter().all(|&j| j < inst.n()));
    }

    #[test]
    fn cells_partition_the_split_variables() {
        let inst = gk_instance(
            "cp",
            GkSpec {
                n: 80,
                m: 5,
                tightness: 0.5,
                seed: 7,
            },
        );
        let cfg = RunConfig {
            p: 4,
            rounds: 1,
            ..RunConfig::new(10_000, 3)
        };
        let mut policy = DecomposedPolicy::new();
        let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
        policy.prepare(&inst, &cfg, &mut rng);
        for k in 0..cfg.p {
            let assign = policy.assign(k, 0, &inst, &cfg, &mut rng);
            let cell = assign.cell.expect("DTS always assigns a cell");
            // Every split variable is fixed one way or the other, none both.
            let mut fixed: Vec<u64> = cell
                .forced_in
                .iter()
                .chain(cell.forced_out.iter())
                .copied()
                .collect();
            fixed.sort_unstable();
            let mut expect: Vec<u64> = policy.split.iter().map(|&j| j as u64).collect();
            expect.sort_unstable();
            assert_eq!(fixed, expect, "worker {k} cell is not a full fixing");
        }
    }

    #[test]
    fn decomposed_mode_is_feasible_and_deterministic() {
        let inst = gk_instance(
            "dts",
            GkSpec {
                n: 60,
                m: 5,
                tightness: 0.5,
                seed: 2,
            },
        );
        let cfg = RunConfig {
            p: 4,
            rounds: 1,
            ..RunConfig::new(200_000, 9)
        };
        let a = run_mode(&inst, Mode::Decomposed, &cfg);
        let b = run_mode(&inst, Mode::Decomposed, &cfg);
        assert!(a.best.is_feasible(&inst));
        assert_eq!(a.best.value(), b.best.value());
        assert_eq!(a.mode, Mode::Decomposed);
    }

    #[test]
    fn single_worker_degenerates_to_full_search() {
        // p = 1 → d = 0 split variables → an empty cell, which the slave's
        // restriction rejects → the one worker searches the full space.
        let inst = uncorrelated_instance("one", 30, 3, 0.5, 3);
        let cfg = RunConfig {
            p: 1,
            rounds: 1,
            ..RunConfig::new(100_000, 5)
        };
        let r = run_mode(&inst, Mode::Decomposed, &cfg);
        assert!(r.best.is_feasible(&inst));
        assert!(r.best.value() > 0);
    }

    #[test]
    fn finds_optimum_on_small_instance() {
        let inst = uncorrelated_instance("opt", 16, 3, 0.5, 4);
        let mut brute = 0i64;
        for mask in 0u32..(1 << inst.n()) {
            let ok = (0..inst.m()).all(|i| {
                (0..inst.n())
                    .filter(|&j| (mask >> j) & 1 == 1)
                    .map(|j| inst.weight(i, j))
                    .sum::<i64>()
                    <= inst.capacity(i)
            });
            if ok {
                brute = brute.max(
                    (0..inst.n())
                        .filter(|&j| (mask >> j) & 1 == 1)
                        .map(|j| inst.profit(j))
                        .sum(),
                );
            }
        }
        let cfg = RunConfig {
            p: 4,
            rounds: 1,
            ..RunConfig::new(400_000, 6)
        };
        let r = run_mode(&inst, Mode::Decomposed, &cfg);
        assert_eq!(r.best.value(), brute, "decomposition lost the optimum cell");
    }
}
