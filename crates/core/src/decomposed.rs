//! Search-space decomposition (the paper's §2 *third* source of
//! parallelism, used by Taillard for vehicle routing: "parallelism in
//! problem decomposition").
//!
//! For the MKP the natural decomposition is a partition of the solution
//! space by the values of a few *critical* variables — the items whose
//! utility rank sits at the expected solution boundary, where the packing
//! decision is genuinely uncertain. With `D = ⌊log₂ P⌋` split variables,
//! worker `k` receives the subproblem with those variables fixed to the
//! bits of `k` (via [`mkp::restrict::Restriction`], which also shrinks the
//! capacities), so the workers explore *provably disjoint* regions — a
//! complementary regime to the overlapping trajectories of ITS/CTS.
//! Workers whose cell is infeasible fall back to the full instance.

use crate::runner::{Mode, ModeReport, RunConfig};
use mkp::eval::Ratios;
use mkp::greedy::dynamic_randomized_greedy;
use mkp::restrict::Restriction;
use mkp::stats::instance_stats;
use mkp::{Instance, Solution, Xoshiro256};
use mkp_tabu::{search, Budget, StrategyBounds, TsConfig};
use std::time::Instant;

/// Pick the `d` split variables: the items straddling the expected
/// cardinality boundary in the static utility order (the most uncertain
/// packing decisions).
pub fn split_variables(inst: &Instance, ratios: &Ratios, d: usize) -> Vec<usize> {
    let order = ratios.by_utility_desc();
    let boundary = (instance_stats(inst).expected_cardinality as usize).min(inst.n() - 1);
    let lo = boundary.saturating_sub(d / 2);
    order[lo..(lo + d).min(inst.n())].to_vec()
}

/// Run the decomposed mode (DTS).
pub fn run_decomposed(inst: &Instance, cfg: &RunConfig) -> ModeReport {
    assert!(cfg.p >= 1);
    let start = Instant::now();
    let ratios = Ratios::new(inst);
    let bounds = StrategyBounds::for_instance_size(inst.n());

    let d = (cfg.p as f64).log2().floor() as usize;
    let cells = 1usize << d;
    let split = split_variables(inst, &ratios, d);
    let per_worker_budget = cfg.total_evals / cfg.p as u64;

    let mut seed_rng = Xoshiro256::seed_from_u64(cfg.seed);
    let worker_seeds: Vec<u64> = (0..cfg.p).map(|_| seed_rng.next_u64()).collect();

    let results: Vec<(i64, Solution, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.p)
            .map(|k| {
                let split = &split;
                let ratios = &ratios;
                let bounds = &bounds;
                let seed = worker_seeds[k];
                scope.spawn(move || {
                    let mut rng = Xoshiro256::seed_from_u64(seed);
                    let cell = k % cells;
                    let forced_in: Vec<usize> = split
                        .iter()
                        .enumerate()
                        .filter(|(b, _)| (cell >> b) & 1 == 1)
                        .map(|(_, &j)| j)
                        .collect();
                    let forced_out: Vec<usize> = split
                        .iter()
                        .enumerate()
                        .filter(|(b, _)| (cell >> b) & 1 == 0)
                        .map(|(_, &j)| j)
                        .collect();

                    let mut ts = TsConfig::default_for(inst.n());
                    ts.strategy = bounds.random(&mut rng);

                    match Restriction::new(inst, &forced_in, &forced_out) {
                        Ok(restriction) => {
                            let sub = restriction.instance();
                            let sub_ratios = Ratios::new(sub);
                            let init = dynamic_randomized_greedy(sub, &mut rng, 4);
                            let report = search::run(
                                sub,
                                &sub_ratios,
                                init,
                                &TsConfig::default_for(sub.n()),
                                Budget::evals(per_worker_budget),
                                &mut rng,
                            );
                            let lifted = restriction.lift(inst, &report.best);
                            (
                                lifted.value(),
                                lifted,
                                report.stats.moves,
                                report.stats.candidate_evals,
                            )
                        }
                        Err(_) => {
                            // Infeasible cell: the worker searches the full
                            // space instead of idling.
                            let init = dynamic_randomized_greedy(inst, &mut rng, 4);
                            let report = search::run(
                                inst,
                                ratios,
                                init,
                                &ts,
                                Budget::evals(per_worker_budget),
                                &mut rng,
                            );
                            (
                                report.best.value(),
                                report.best,
                                report.stats.moves,
                                report.stats.candidate_evals,
                            )
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("decomposition worker panicked"))
            .collect()
    });

    // Deterministic reduction in worker order.
    let mut best: Option<Solution> = None;
    let mut total_moves = 0;
    let mut total_evals = 0;
    for (value, sol, moves, evals) in results {
        total_moves += moves;
        total_evals += evals;
        if best.as_ref().is_none_or(|b| value > b.value()) {
            best = Some(sol);
        }
    }
    let best = best.expect("p >= 1");
    debug_assert!(best.is_feasible(inst));
    ModeReport {
        mode: Mode::Decomposed,
        best,
        round_best: Vec::new(),
        total_moves,
        total_evals,
        regenerations: 0,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkp::generate::{gk_instance, uncorrelated_instance, GkSpec};

    #[test]
    fn split_variables_sit_at_the_boundary() {
        let inst = gk_instance(
            "sv",
            GkSpec {
                n: 100,
                m: 5,
                tightness: 0.5,
                seed: 1,
            },
        );
        let ratios = Ratios::new(&inst);
        let split = split_variables(&inst, &ratios, 3);
        assert_eq!(split.len(), 3);
        // All split vars are distinct and in range.
        let mut s = split.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 3);
        assert!(split.iter().all(|&j| j < inst.n()));
    }

    #[test]
    fn decomposed_mode_is_feasible_and_deterministic() {
        let inst = gk_instance(
            "dts",
            GkSpec {
                n: 60,
                m: 5,
                tightness: 0.5,
                seed: 2,
            },
        );
        let cfg = RunConfig {
            p: 4,
            rounds: 1,
            ..RunConfig::new(200_000, 9)
        };
        let a = run_decomposed(&inst, &cfg);
        let b = run_decomposed(&inst, &cfg);
        assert!(a.best.is_feasible(&inst));
        assert_eq!(a.best.value(), b.best.value());
        assert_eq!(a.mode, Mode::Decomposed);
    }

    #[test]
    fn single_worker_degenerates_to_full_search() {
        // p = 1 → d = 0 split variables → the one worker searches the full
        // space (restriction with no fixes is rejected as degenerate-free,
        // d = 0 means empty fix sets are never built).
        let inst = uncorrelated_instance("one", 30, 3, 0.5, 3);
        let cfg = RunConfig {
            p: 1,
            rounds: 1,
            ..RunConfig::new(100_000, 5)
        };
        let r = run_decomposed(&inst, &cfg);
        assert!(r.best.is_feasible(&inst));
        assert!(r.best.value() > 0);
    }

    #[test]
    fn finds_optimum_on_small_instance() {
        let inst = uncorrelated_instance("opt", 16, 3, 0.5, 4);
        let mut brute = 0i64;
        for mask in 0u32..(1 << inst.n()) {
            let ok = (0..inst.m()).all(|i| {
                (0..inst.n())
                    .filter(|&j| (mask >> j) & 1 == 1)
                    .map(|j| inst.weight(i, j))
                    .sum::<i64>()
                    <= inst.capacity(i)
            });
            if ok {
                brute = brute.max(
                    (0..inst.n())
                        .filter(|&j| (mask >> j) & 1 == 1)
                        .map(|j| inst.profit(j))
                        .sum(),
                );
            }
        }
        let cfg = RunConfig {
            p: 4,
            rounds: 1,
            ..RunConfig::new(400_000, 6)
        };
        let r = run_decomposed(&inst, &cfg);
        assert_eq!(r.best.value(), brute, "decomposition lost the optimum cell");
    }
}
