//! The CORE policy: LP-guided core fixing around CTS2 cooperation.
//!
//! Xu/Li/Yin (arXiv 2210.03918) observe that on hard MKP instances the
//! optimum differs from the LP relaxation's rounding only on a small
//! *promising core* of genuinely uncertain variables, and that the
//! uncertainty is measured by the reduced costs: a variable whose reduced
//! cost has large magnitude is all but decided by the relaxation, one near
//! zero is worth searching. This policy:
//!
//! 1. solves the LP relaxation with the in-tree simplex crate and ranks the
//!    variables by |reduced cost| (`mkp_exact::bounds`);
//! 2. fixes the confident ones — integral in the LP and far from zero
//!    reduced cost — via [`mkp::restrict::Restriction`], keeping at least a
//!    [`CORE_MIN`]-sized core free;
//! 3. drives the full CTS2 machinery (ISP cooperation + SGP strategy
//!    tuning, delegated to [`FarmPolicy::cooperative_adaptive`]) *inside*
//!    the core: every assignment carries the fixing as a seeded
//!    [`CellMsg`], the slave projects the master-chosen start onto the free
//!    variables and lifts its results back (`engine::serve_assignment`);
//! 4. periodically re-identifies the core from the incumbent: every
//!    [`REFIX_EVERY`] rounds a variable is only fixed if the incumbent
//!    *agrees* with the LP rounding — disagreements rejoin the core, so the
//!    search can overrule a confident-looking but wrong fixing.
//!
//! Because the master data structure stays in the full variable space
//! (initials, elites and bests all cross the wire lifted), transports,
//! resurrection and checkpoint/resume behave exactly as they do for CTS2.

use crate::coop::FarmPolicy;
use crate::engine::{CoopPolicy, Delivery};
use crate::messages::{pack_bits, unpack_bits, AssignMsg, CellMsg, ReportMsg};
use crate::runner::{Mode, RunConfig};
use mkp::restrict::Restriction;
use mkp::{BitVec, Instance, Solution, Xoshiro256};
use mkp_exact::bounds::{lp_bound, reduced_costs};
use pvm_lite::codec::{CodecError, PackBuffer, UnpackBuffer};

/// Re-identify the core from the incumbent every this many rounds.
pub const REFIX_EVERY: usize = 4;
/// Never fix below this many free variables (the core must hold a real
/// search problem; `Restriction` itself insists on ≥ 2).
pub const CORE_MIN: usize = 24;
/// LP values closer to a bound than this count as integral.
const INTEGRALITY_EPS: f64 = 1e-6;

/// CTS2 cooperation restricted to an LP-identified promising core.
pub struct CorePolicy {
    inner: FarmPolicy,
    forced_in: Vec<usize>,
    forced_out: Vec<usize>,
    /// Bits of the best solution absorbed so far; steers re-identification.
    incumbent: Option<BitVec>,
    /// Round of the last core (re-)identification.
    last_refix: usize,
}

impl Default for CorePolicy {
    fn default() -> Self {
        CorePolicy::new()
    }
}

impl CorePolicy {
    /// A fresh CORE policy (the core is identified in `prepare`).
    pub fn new() -> Self {
        CorePolicy {
            inner: FarmPolicy::cooperative_adaptive(),
            forced_in: Vec::new(),
            forced_out: Vec::new(),
            incumbent: None,
            last_refix: 0,
        }
    }

    /// The number of variables kept free: a quarter of the instance, at
    /// least [`CORE_MIN`] (bounded by n − 2 so the restriction stays legal).
    fn core_size(n: usize) -> usize {
        (n / 4).max(CORE_MIN).min(n.saturating_sub(2))
    }

    /// (Re-)identify the promising core. Confident variables — integral LP
    /// value, largest |reduced cost| — are fixed to their LP value until
    /// only [`Self::core_size`] stay free; a variable the `incumbent`
    /// disagrees with is never fixed. Any LP failure or restriction error
    /// degrades to an empty fixing (plain CTS2 over the full space).
    fn identify_core(&mut self, inst: &Instance, incumbent: Option<&BitVec>) {
        self.forced_in.clear();
        self.forced_out.clear();
        let n = inst.n();
        let lp = match lp_bound(inst) {
            Ok(lp) => lp,
            Err(_) => return,
        };
        let d = reduced_costs(inst, &lp.duals);
        // Most confident first: by descending |reduced cost|, integral only.
        let mut order: Vec<usize> = (0..n)
            .filter(|&j| lp.x[j] < INTEGRALITY_EPS || lp.x[j] > 1.0 - INTEGRALITY_EPS)
            .collect();
        order.sort_by(|&a, &b| {
            d[b].abs()
                .partial_cmp(&d[a].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let fix_quota = n - Self::core_size(n);
        for &j in &order {
            if self.forced_in.len() + self.forced_out.len() >= fix_quota {
                break;
            }
            let packed = lp.x[j] > 0.5;
            if let Some(inc) = incumbent {
                if inc.get(j) != packed {
                    continue; // the incumbent overrules the relaxation
                }
            }
            if packed {
                self.forced_in.push(j);
            } else {
                self.forced_out.push(j);
            }
        }
        // Backstop: the forced-in set is a subset of the LP's integral ones
        // and therefore feasible up to f64 rounding, but never trust that —
        // shed the least confident half of both lists until the restriction
        // builds, or give up and search the full space.
        loop {
            if self.forced_in.is_empty() && self.forced_out.is_empty() {
                return;
            }
            if Restriction::new(inst, &self.forced_in, &self.forced_out).is_ok() {
                return;
            }
            self.forced_in.truncate(self.forced_in.len() / 2);
            self.forced_out.truncate(self.forced_out.len() / 2);
        }
    }

    fn cell(&self) -> Option<CellMsg> {
        if self.forced_in.is_empty() && self.forced_out.is_empty() {
            return None;
        }
        Some(CellMsg {
            forced_in: self.forced_in.iter().map(|&j| j as u64).collect(),
            forced_out: self.forced_out.iter().map(|&j| j as u64).collect(),
            seeded: true,
        })
    }
}

impl CoopPolicy for CorePolicy {
    fn mode(&self) -> Mode {
        Mode::Core
    }

    fn active_workers(&self, cfg: &RunConfig) -> usize {
        self.inner.active_workers(cfg)
    }

    fn rounds(&self, cfg: &RunConfig) -> usize {
        self.inner.rounds(cfg)
    }

    fn delivery(&self) -> Delivery {
        Delivery::Synchronous
    }

    fn relink(&self, cfg: &RunConfig) -> bool {
        self.inner.relink(cfg)
    }

    fn prepare(&mut self, inst: &Instance, cfg: &RunConfig, rng: &mut Xoshiro256) -> Vec<Solution> {
        let starts = self.inner.prepare(inst, cfg, rng);
        self.incumbent = None;
        self.last_refix = 0;
        self.identify_core(inst, None);
        starts
    }

    fn assign(
        &mut self,
        k: usize,
        round: usize,
        inst: &Instance,
        cfg: &RunConfig,
        rng: &mut Xoshiro256,
    ) -> AssignMsg {
        if round > self.last_refix && round.is_multiple_of(REFIX_EVERY) {
            self.last_refix = round;
            let incumbent = self.incumbent.clone();
            self.identify_core(inst, incumbent.as_ref());
        }
        let mut msg = self.inner.assign(k, round, inst, cfg, rng);
        msg.cell = self.cell();
        msg
    }

    fn absorb(
        &mut self,
        k: usize,
        round: usize,
        report: &ReportMsg,
        slave_best: &Solution,
        global_best: &Solution,
        inst: &Instance,
        cfg: &RunConfig,
        rng: &mut Xoshiro256,
    ) -> u64 {
        self.incumbent = Some(global_best.bits().clone());
        self.inner
            .absorb(k, round, report, slave_best, global_best, inst, cfg, rng)
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        let inner = self.inner.snapshot()?;
        let mut buf = PackBuffer::new();
        buf.put_u64s(&self.forced_in.iter().map(|&j| j as u64).collect::<Vec<_>>());
        buf.put_u64s(
            &self
                .forced_out
                .iter()
                .map(|&j| j as u64)
                .collect::<Vec<_>>(),
        );
        buf.put_u64(self.last_refix as u64);
        match &self.incumbent {
            Some(bits) => {
                buf.put_u8(1);
                pack_bits(bits, &mut buf);
            }
            None => buf.put_u8(0),
        }
        buf.put_bytes(&inner);
        Some(buf.into_bytes())
    }

    fn restore(&mut self, inst: &Instance, cfg: &RunConfig, blob: &[u8]) -> Result<(), String> {
        let decode = |e: CodecError| format!("core policy blob does not decode: {e:?}");
        let mut buf = UnpackBuffer::new(blob);
        let forced_in: Vec<usize> = buf
            .get_u64s()
            .map_err(decode)?
            .into_iter()
            .map(|j| j as usize)
            .collect();
        let forced_out: Vec<usize> = buf
            .get_u64s()
            .map_err(decode)?
            .into_iter()
            .map(|j| j as usize)
            .collect();
        let last_refix = buf.get_u64().map_err(decode)? as usize;
        let incumbent = match buf.get_u8().map_err(decode)? {
            0 => None,
            1 => Some(unpack_bits(&mut buf).map_err(decode)?),
            other => return Err(format!("bad incumbent flag {other}")),
        };
        let inner_blob = buf.get_bytes().map_err(decode)?;
        if buf.remaining() != 0 {
            return Err(format!(
                "{} trailing bytes in core policy blob",
                buf.remaining()
            ));
        }
        // Structural validation before trusting any of it.
        let n = inst.n();
        let mut seen = vec![false; n];
        for &j in forced_in.iter().chain(&forced_out) {
            if j >= n {
                return Err(format!("core fixing names item {j}, instance has {n}"));
            }
            if seen[j] {
                return Err(format!("core fixing names item {j} twice"));
            }
            seen[j] = true;
        }
        if forced_in.len() + forced_out.len() > n.saturating_sub(2) {
            return Err(format!(
                "core fixing pins {} of {n} variables, fewer than two stay free",
                forced_in.len() + forced_out.len()
            ));
        }
        if let Some(bits) = &incumbent {
            if bits.len() != n {
                return Err(format!(
                    "incumbent has {} variables, instance has {n}",
                    bits.len()
                ));
            }
        }
        self.inner.restore(inst, cfg, &inner_blob)?;
        self.forced_in = forced_in;
        self.forced_out = forced_out;
        self.last_refix = last_refix;
        self.incumbent = incumbent;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_mode;
    use mkp::generate::{gk_instance, uncorrelated_instance, GkSpec};

    fn inst() -> Instance {
        gk_instance(
            "core",
            GkSpec {
                n: 60,
                m: 5,
                tightness: 0.5,
                seed: 11,
            },
        )
    }

    fn cfg(seed: u64) -> RunConfig {
        RunConfig {
            p: 3,
            rounds: 3,
            ..RunConfig::new(90_000, seed)
        }
    }

    #[test]
    fn identifies_a_nonempty_feasible_core() {
        let inst = inst();
        let mut policy = CorePolicy::new();
        let mut rng = Xoshiro256::seed_from_u64(1);
        policy.prepare(&inst, &cfg(1), &mut rng);
        let fixed = policy.forced_in.len() + policy.forced_out.len();
        assert!(fixed > 0, "LP fixing found nothing to fix");
        assert_eq!(fixed, inst.n() - CorePolicy::core_size(inst.n()));
        // The fixing must build a legal restriction.
        Restriction::new(&inst, &policy.forced_in, &policy.forced_out).unwrap();
    }

    #[test]
    fn incumbent_disagreement_keeps_variables_free() {
        let inst = inst();
        let mut policy = CorePolicy::new();
        let mut rng = Xoshiro256::seed_from_u64(2);
        policy.prepare(&inst, &cfg(2), &mut rng);
        // An incumbent that disagrees everywhere with the fixing: every
        // previously fixed variable must drop out of the new fixing.
        let mut contrarian = BitVec::zeros(inst.n());
        for &j in &policy.forced_out {
            contrarian.set(j, true);
        }
        let old_in = policy.forced_in.clone();
        let old_out = policy.forced_out.clone();
        policy.identify_core(&inst, Some(&contrarian));
        for &j in &old_in {
            assert!(
                !policy.forced_in.contains(&j),
                "item {j} fixed in against the incumbent"
            );
        }
        for &j in &old_out {
            assert!(
                !policy.forced_out.contains(&j),
                "item {j} fixed out against the incumbent"
            );
        }
    }

    #[test]
    fn core_mode_is_feasible_and_deterministic() {
        let inst = inst();
        let a = run_mode(&inst, Mode::Core, &cfg(5));
        let b = run_mode(&inst, Mode::Core, &cfg(5));
        assert!(a.best.is_feasible(&inst));
        assert!(a.best.value() > 0);
        assert_eq!(a.best.bits(), b.best.bits());
        assert_eq!(a.round_best, b.round_best);
        assert_eq!(a.mode, Mode::Core);
    }

    #[test]
    fn tiny_instances_degrade_to_full_space() {
        // n below CORE_MIN + 2 leaves nothing worth fixing; the policy must
        // run as plain cooperation, not panic.
        let inst = uncorrelated_instance("tiny", 16, 3, 0.5, 9);
        let r = run_mode(&inst, Mode::Core, &cfg(7));
        assert!(r.best.is_feasible(&inst));
        assert!(r.best.value() > 0);
    }

    #[test]
    fn policy_blob_round_trips_fixing_and_inner_state() {
        let inst = inst();
        let cfg = cfg(13);
        let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
        let mut policy = CorePolicy::new();
        policy.prepare(&inst, &cfg, &mut rng);
        policy.last_refix = 4;
        policy.incumbent = Some(BitVec::from_bools((0..inst.n()).map(|j| j % 3 == 0)));
        let blob = policy.snapshot().expect("core policy checkpoints");

        let mut back = CorePolicy::new();
        back.restore(&inst, &cfg, &blob).unwrap();
        assert_eq!(back.forced_in, policy.forced_in);
        assert_eq!(back.forced_out, policy.forced_out);
        assert_eq!(back.last_refix, 4);
        assert_eq!(back.incumbent, policy.incumbent);
        // Same state ⇒ identical re-encoding (the resume-bit-identity
        // contract rides on this).
        assert_eq!(back.snapshot(), policy.snapshot());
    }

    #[test]
    fn corrupt_policy_blobs_are_rejected_never_panic() {
        let inst = inst();
        let cfg = cfg(17);
        let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
        let mut policy = CorePolicy::new();
        policy.prepare(&inst, &cfg, &mut rng);
        let blob = policy.snapshot().unwrap();

        let mut back = CorePolicy::new();
        // Truncation at every prefix is a clean error.
        for cut in 0..blob.len() {
            assert!(back.restore(&inst, &cfg, &blob[..cut]).is_err());
        }
        // Wrong worker count propagates from the inner farm blob.
        let mut small = cfg.clone();
        small.p = 2;
        let err = back.restore(&inst, &small, &blob).unwrap_err();
        assert!(err.contains("configures 2 workers"), "{err}");
        // An out-of-range fixing index is caught structurally.
        let mut bad = CorePolicy::new();
        bad.forced_in = vec![inst.n() + 5];
        let mut rng2 = Xoshiro256::seed_from_u64(1);
        bad.inner.prepare(&inst, &cfg, &mut rng2);
        let bad_blob = bad.snapshot().unwrap();
        let err = back.restore(&inst, &cfg, &bad_blob).unwrap_err();
        assert!(err.contains("names item"), "{err}");
    }
}
