//! The trajectory-mode policies: SEQ, ITS, CTS1, CTS2 and ATS.
//!
//! All five modes share one master data structure (Fig. 2: per slave a
//! strategy, an initial solution, the B best solutions and a score) and one
//! [`FarmPolicy`] implementation; they differ only in which of its switches
//! are on:
//!
//! | mode | workers | rounds | ISP | SGP | delivery |
//! |------|---------|--------|-----|-----|----------|
//! | SEQ  | 1       | 1      |  —  |  —  | synchronous |
//! | ITS  | P       | 1      |  —  |  —  | synchronous |
//! | CTS1 | P       | R      |  ✓  |  —  | synchronous |
//! | CTS2 | P       | R      |  ✓  |  ✓  | synchronous |
//! | ATS  | P       | R      |  ✓  |  ✓  | pipelined |
//!
//! CTS2 is the paper's contribution: cooperation (the master's initial
//! solution procedure, ISP) *plus* dynamic strategy tuning (the strategy
//! generation procedure, SGP). ATS is the §6 future-work extension —
//! the same cooperation without the round rendezvous (see
//! [`Delivery::Pipelined`](crate::engine::Delivery)). The round loop itself
//! lives in [`crate::engine`]; this module only decides what to assign and
//! how to digest reports.

use crate::engine::{assignment_seed, CoopPolicy, Delivery};
use crate::isp::IspState;
use crate::messages::{AssignMsg, ReportMsg};
use crate::runner::{Mode, RunConfig};
use crate::score::Score;
use crate::sgp::{elite_dispersion, next_strategy};

use mkp::greedy::dynamic_randomized_greedy;
use mkp::{Instance, Solution, Xoshiro256};
use mkp_tabu::{Strategy, StrategyBounds};

/// The shared policy behind every trajectory mode (see the module table).
pub struct FarmPolicy {
    mode: Mode,
    /// Exchange solutions through the master's ISP.
    cooperate: bool,
    /// Tune strategies with the SGP.
    adaptive: bool,
    /// Fold the whole budget into a single round (SEQ/ITS).
    one_round: bool,
    /// Drive a single worker regardless of `cfg.p` (SEQ).
    solo: bool,
    /// Pipelined report delivery (ATS).
    pipelined: bool,

    // Master data structure, one entry per slave (Fig. 2).
    strategies: Vec<Strategy>,
    initials: Vec<Solution>,
    scores: Vec<Score>,
    isp_states: Vec<IspState>,
    /// Per-slave best-so-far; the SGP scores a round as improving only when
    /// the slave beat its own previous best (scoring against the round's
    /// initial value would award every post-restart round a free point and
    /// the zero-score regeneration would never fire).
    prev_best: Vec<i64>,
}

impl FarmPolicy {
    fn new(mode: Mode) -> Self {
        FarmPolicy {
            mode,
            cooperate: false,
            adaptive: false,
            one_round: false,
            solo: false,
            pipelined: false,
            strategies: Vec::new(),
            initials: Vec::new(),
            scores: Vec::new(),
            isp_states: Vec::new(),
            prev_best: Vec::new(),
        }
    }

    /// SEQ — one worker, one round, the entire budget, randomly drawn
    /// strategy and start (the paper's baseline).
    pub fn sequential() -> Self {
        FarmPolicy {
            solo: true,
            one_round: true,
            ..FarmPolicy::new(Mode::Sequential)
        }
    }

    /// ITS — P independent workers, one fat round, no communication.
    pub fn independent() -> Self {
        FarmPolicy {
            one_round: true,
            ..FarmPolicy::new(Mode::Independent)
        }
    }

    /// CTS1 — cooperation via the ISP, strategies fixed.
    pub fn cooperative() -> Self {
        FarmPolicy {
            cooperate: true,
            ..FarmPolicy::new(Mode::Cooperative)
        }
    }

    /// CTS2 — cooperation plus dynamic strategy tuning (ISP + SGP).
    pub fn cooperative_adaptive() -> Self {
        FarmPolicy {
            cooperate: true,
            adaptive: true,
            ..FarmPolicy::new(Mode::CooperativeAdaptive)
        }
    }

    /// ATS — CTS2's cooperation without the rendezvous: pipelined delivery.
    pub fn asynchronous() -> Self {
        FarmPolicy {
            cooperate: true,
            adaptive: true,
            pipelined: true,
            ..FarmPolicy::new(Mode::Asynchronous)
        }
    }
}

impl CoopPolicy for FarmPolicy {
    fn mode(&self) -> Mode {
        self.mode
    }

    fn active_workers(&self, cfg: &RunConfig) -> usize {
        if self.solo {
            1
        } else {
            cfg.p
        }
    }

    fn rounds(&self, cfg: &RunConfig) -> usize {
        if self.one_round {
            1
        } else {
            cfg.rounds
        }
    }

    fn delivery(&self) -> Delivery {
        if self.pipelined {
            Delivery::Pipelined
        } else {
            Delivery::Synchronous
        }
    }

    fn relink(&self, cfg: &RunConfig) -> bool {
        cfg.relink
    }

    fn prepare(&mut self, inst: &Instance, cfg: &RunConfig, rng: &mut Xoshiro256) -> Vec<Solution> {
        let p = self.active_workers(cfg);
        let bounds = StrategyBounds::for_instance_size(inst.n());
        self.strategies = (0..p).map(|_| bounds.random(rng)).collect();
        self.initials = (0..p)
            .map(|_| dynamic_randomized_greedy(inst, rng, cfg.isp.rcl))
            .collect();
        self.scores = vec![Score::new(); p];
        self.isp_states = (0..p).map(|_| IspState::default()).collect();
        self.prev_best = self.initials.iter().map(|s| s.value()).collect();
        self.initials.clone()
    }

    fn assign(
        &mut self,
        k: usize,
        round: usize,
        _inst: &Instance,
        cfg: &RunConfig,
        _rng: &mut Xoshiro256,
    ) -> AssignMsg {
        let budget = cfg.total_evals / (self.active_workers(cfg) as u64 * self.rounds(cfg) as u64);
        AssignMsg::trajectory(
            self.initials[k].bits().clone(),
            self.strategies[k],
            budget,
            assignment_seed(cfg, round, k),
        )
    }

    fn absorb(
        &mut self,
        k: usize,
        _round: usize,
        report: &ReportMsg,
        slave_best: &Solution,
        global_best: &Solution,
        inst: &Instance,
        cfg: &RunConfig,
        rng: &mut Xoshiro256,
    ) -> u64 {
        let mut regenerations = 0;
        if self.adaptive {
            // SGP: score the strategy, regenerate at zero using the elite
            // dispersion signal.
            let bounds = StrategyBounds::for_instance_size(inst.n());
            let regenerate = self.scores[k].update(report.best_value > self.prev_best[k]);
            regenerations += regenerate as u64;
            let dispersion = elite_dispersion(&report.elite);
            let (next, _) = next_strategy(
                self.strategies[k],
                regenerate,
                dispersion,
                inst.n(),
                &cfg.sgp,
                &bounds,
                rng,
            );
            self.strategies[k] = next;
        }
        self.prev_best[k] = self.prev_best[k].max(report.best_value);

        if self.cooperate {
            // ISP: own best / culled to global best / random restart.
            let (next_init, _) =
                self.isp_states[k].next_initial(&cfg.isp, inst, slave_best, global_best, rng);
            self.initials[k] = next_init;
        } else {
            // Independent threads: continue from own best, nothing else.
            self.initials[k] = slave_best.clone();
        }
        regenerations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_mode;
    use mkp::generate::{gk_instance, GkSpec};

    fn cfg() -> RunConfig {
        RunConfig {
            p: 3,
            rounds: 3,
            ..RunConfig::new(90_000, 17)
        }
    }

    #[test]
    fn switch_matrix_matches_modes() {
        let cfg = cfg();
        let seq = FarmPolicy::sequential();
        assert_eq!(seq.active_workers(&cfg), 1);
        assert_eq!(seq.rounds(&cfg), 1);
        let its = FarmPolicy::independent();
        assert_eq!(its.active_workers(&cfg), 3);
        assert_eq!(its.rounds(&cfg), 1);
        let cts2 = FarmPolicy::cooperative_adaptive();
        assert_eq!(cts2.rounds(&cfg), 3);
        assert_eq!(cts2.delivery(), Delivery::Synchronous);
        assert_eq!(FarmPolicy::asynchronous().delivery(), Delivery::Pipelined);
    }

    #[test]
    fn adaptive_modes_regenerate_eventually() {
        // Over enough rounds the SGP must hit a zero score somewhere.
        let inst = gk_instance(
            "rg",
            GkSpec {
                n: 50,
                m: 5,
                tightness: 0.5,
                seed: 4,
            },
        );
        let cfg = RunConfig {
            p: 3,
            rounds: 12,
            ..RunConfig::new(240_000, 23)
        };
        let r = run_mode(&inst, Mode::CooperativeAdaptive, &cfg);
        assert!(r.regenerations > 0, "SGP never regenerated in 12 rounds");
        let r = run_mode(&inst, Mode::Cooperative, &cfg);
        assert_eq!(r.regenerations, 0, "CTS1 must not touch strategies");
    }
}
