//! The trajectory-mode policies: SEQ, ITS, CTS1, CTS2 and ATS.
//!
//! All five modes share one master data structure (Fig. 2: per slave a
//! strategy, an initial solution, the B best solutions and a score) and one
//! [`FarmPolicy`] implementation; they differ only in which of its switches
//! are on:
//!
//! | mode | workers | rounds | ISP | SGP | delivery |
//! |------|---------|--------|-----|-----|----------|
//! | SEQ  | 1       | 1      |  —  |  —  | synchronous |
//! | ITS  | P       | 1      |  —  |  —  | synchronous |
//! | CTS1 | P       | R      |  ✓  |  —  | synchronous |
//! | CTS2 | P       | R      |  ✓  |  ✓  | synchronous |
//! | ATS  | P       | R      |  ✓  |  ✓  | pipelined |
//!
//! CTS2 is the paper's contribution: cooperation (the master's initial
//! solution procedure, ISP) *plus* dynamic strategy tuning (the strategy
//! generation procedure, SGP). ATS is the §6 future-work extension —
//! the same cooperation without the round rendezvous (see
//! [`Delivery::Pipelined`](crate::engine::Delivery)). The round loop itself
//! lives in [`crate::engine`]; this module only decides what to assign and
//! how to digest reports.

use crate::engine::{assignment_seed, CoopPolicy, Delivery};
use crate::isp::IspState;
use crate::messages::{pack_bits, unpack_bits, AssignMsg, ReportMsg};
use crate::runner::{Mode, RunConfig};
use crate::score::Score;
use crate::sgp::{elite_dispersion, next_strategy};

use mkp::greedy::dynamic_randomized_greedy;
use mkp::{Instance, Solution, Xoshiro256};
use mkp_tabu::{Strategy, StrategyBounds};
use pvm_lite::codec::{CodecError, PackBuffer, UnpackBuffer};

/// The shared policy behind every trajectory mode (see the module table).
pub struct FarmPolicy {
    mode: Mode,
    /// Exchange solutions through the master's ISP.
    cooperate: bool,
    /// Tune strategies with the SGP.
    adaptive: bool,
    /// Fold the whole budget into a single round (SEQ/ITS).
    one_round: bool,
    /// Drive a single worker regardless of `cfg.p` (SEQ).
    solo: bool,
    /// Pipelined report delivery (ATS).
    pipelined: bool,

    // Master data structure, one entry per slave (Fig. 2).
    strategies: Vec<Strategy>,
    initials: Vec<Solution>,
    scores: Vec<Score>,
    isp_states: Vec<IspState>,
    /// Per-slave best-so-far; the SGP scores a round as improving only when
    /// the slave beat its own previous best (scoring against the round's
    /// initial value would award every post-restart round a free point and
    /// the zero-score regeneration would never fire).
    prev_best: Vec<i64>,
}

impl FarmPolicy {
    fn new(mode: Mode) -> Self {
        FarmPolicy {
            mode,
            cooperate: false,
            adaptive: false,
            one_round: false,
            solo: false,
            pipelined: false,
            strategies: Vec::new(),
            initials: Vec::new(),
            scores: Vec::new(),
            isp_states: Vec::new(),
            prev_best: Vec::new(),
        }
    }

    /// SEQ — one worker, one round, the entire budget, randomly drawn
    /// strategy and start (the paper's baseline).
    pub fn sequential() -> Self {
        FarmPolicy {
            solo: true,
            one_round: true,
            ..FarmPolicy::new(Mode::Sequential)
        }
    }

    /// ITS — P independent workers, one fat round, no communication.
    pub fn independent() -> Self {
        FarmPolicy {
            one_round: true,
            ..FarmPolicy::new(Mode::Independent)
        }
    }

    /// CTS1 — cooperation via the ISP, strategies fixed.
    pub fn cooperative() -> Self {
        FarmPolicy {
            cooperate: true,
            ..FarmPolicy::new(Mode::Cooperative)
        }
    }

    /// CTS2 — cooperation plus dynamic strategy tuning (ISP + SGP).
    pub fn cooperative_adaptive() -> Self {
        FarmPolicy {
            cooperate: true,
            adaptive: true,
            ..FarmPolicy::new(Mode::CooperativeAdaptive)
        }
    }

    /// ATS — CTS2's cooperation without the rendezvous: pipelined delivery.
    pub fn asynchronous() -> Self {
        FarmPolicy {
            cooperate: true,
            adaptive: true,
            pipelined: true,
            ..FarmPolicy::new(Mode::Asynchronous)
        }
    }
}

impl CoopPolicy for FarmPolicy {
    fn mode(&self) -> Mode {
        self.mode
    }

    fn active_workers(&self, cfg: &RunConfig) -> usize {
        if self.solo {
            1
        } else {
            cfg.p
        }
    }

    fn rounds(&self, cfg: &RunConfig) -> usize {
        if self.one_round {
            1
        } else {
            cfg.rounds
        }
    }

    fn delivery(&self) -> Delivery {
        if self.pipelined {
            Delivery::Pipelined
        } else {
            Delivery::Synchronous
        }
    }

    fn relink(&self, cfg: &RunConfig) -> bool {
        cfg.relink
    }

    fn prepare(&mut self, inst: &Instance, cfg: &RunConfig, rng: &mut Xoshiro256) -> Vec<Solution> {
        let p = self.active_workers(cfg);
        let bounds = StrategyBounds::for_instance_size(inst.n());
        self.strategies = (0..p).map(|_| bounds.random(rng)).collect();
        self.initials = (0..p)
            .map(|_| dynamic_randomized_greedy(inst, rng, cfg.isp.rcl))
            .collect();
        self.scores = vec![Score::new(); p];
        self.isp_states = (0..p).map(|_| IspState::default()).collect();
        self.prev_best = self.initials.iter().map(|s| s.value()).collect();
        self.initials.clone()
    }

    fn assign(
        &mut self,
        k: usize,
        round: usize,
        _inst: &Instance,
        cfg: &RunConfig,
        _rng: &mut Xoshiro256,
    ) -> AssignMsg {
        let budget = cfg.total_evals / (self.active_workers(cfg) as u64 * self.rounds(cfg) as u64);
        AssignMsg::trajectory(
            self.initials[k].bits().clone(),
            self.strategies[k],
            budget,
            assignment_seed(cfg, round, k),
        )
    }

    fn absorb(
        &mut self,
        k: usize,
        _round: usize,
        report: &ReportMsg,
        slave_best: &Solution,
        global_best: &Solution,
        inst: &Instance,
        cfg: &RunConfig,
        rng: &mut Xoshiro256,
    ) -> u64 {
        let mut regenerations = 0;
        if self.adaptive {
            // SGP: score the strategy, regenerate at zero using the elite
            // dispersion signal.
            let bounds = StrategyBounds::for_instance_size(inst.n());
            let regenerate = self.scores[k].update(report.best_value > self.prev_best[k]);
            regenerations += regenerate as u64;
            let dispersion = elite_dispersion(&report.elite);
            let (next, _) = next_strategy(
                self.strategies[k],
                regenerate,
                dispersion,
                inst.n(),
                &cfg.sgp,
                &bounds,
                rng,
            );
            self.strategies[k] = next;
        }
        self.prev_best[k] = self.prev_best[k].max(report.best_value);

        if self.cooperate {
            // ISP: own best / culled to global best / random restart.
            let (next_init, _) =
                self.isp_states[k].next_initial(&cfg.isp, inst, slave_best, global_best, rng);
            self.initials[k] = next_init;
        } else {
            // Independent threads: continue from own best, nothing else.
            self.initials[k] = slave_best.clone();
        }
        regenerations
    }

    /// Serialize the whole Fig. 2 master data structure — strategies,
    /// initials, scores, ISP states and per-slave bests — for a
    /// checkpoint. The blob is opaque to the engine; only
    /// [`restore`](FarmPolicy::restore) reads it back.
    fn snapshot(&self) -> Option<Vec<u8>> {
        let mut buf = PackBuffer::new();
        buf.put_usize(self.strategies.len());
        for s in &self.strategies {
            buf.put_usize(s.tabu_tenure);
            buf.put_usize(s.nb_drop);
            buf.put_usize(s.nb_local);
        }
        buf.put_usize(self.initials.len());
        for sol in &self.initials {
            pack_bits(sol.bits(), &mut buf);
        }
        buf.put_usize(self.scores.len());
        for score in &self.scores {
            buf.put_u64(score.value() as u64);
        }
        buf.put_usize(self.isp_states.len());
        for state in &self.isp_states {
            let (last_start, stale_rounds) = state.parts();
            match last_start {
                Some(bits) => {
                    buf.put_u8(1);
                    pack_bits(bits, &mut buf);
                }
                None => buf.put_u8(0),
            }
            buf.put_u64(stale_rounds as u64);
        }
        buf.put_i64s(&self.prev_best);
        Some(buf.into_bytes())
    }

    fn restore(&mut self, inst: &Instance, cfg: &RunConfig, blob: &[u8]) -> Result<(), String> {
        let p = self.active_workers(cfg);
        let decode = |e: CodecError| format!("policy blob does not decode: {e:?}");
        let mut buf = UnpackBuffer::new(blob);

        let n = buf.get_usize().map_err(decode)?;
        let mut strategies = Vec::with_capacity(n.min(p));
        for _ in 0..n {
            strategies.push(Strategy {
                tabu_tenure: buf.get_usize().map_err(decode)?,
                nb_drop: buf.get_usize().map_err(decode)?,
                nb_local: buf.get_usize().map_err(decode)?,
            });
        }
        let n = buf.get_usize().map_err(decode)?;
        let mut initials = Vec::with_capacity(n.min(p));
        for _ in 0..n {
            let bits = unpack_bits(&mut buf).map_err(decode)?;
            if bits.len() != inst.n() {
                return Err(format!(
                    "initial solution has {} variables, instance has {}",
                    bits.len(),
                    inst.n()
                ));
            }
            initials.push(Solution::from_bits(inst, bits));
        }
        let n = buf.get_usize().map_err(decode)?;
        let mut scores = Vec::with_capacity(n.min(p));
        for _ in 0..n {
            scores.push(Score::from_value(buf.get_u64().map_err(decode)? as u32));
        }
        let n = buf.get_usize().map_err(decode)?;
        let mut isp_states = Vec::with_capacity(n.min(p));
        for _ in 0..n {
            let last_start = match buf.get_u8().map_err(decode)? {
                0 => None,
                1 => Some(unpack_bits(&mut buf).map_err(decode)?),
                other => return Err(format!("bad ISP last-start flag {other}")),
            };
            let stale_rounds = buf.get_u64().map_err(decode)? as u32;
            isp_states.push(IspState::from_parts(last_start, stale_rounds));
        }
        let prev_best = buf.get_i64s().map_err(decode)?;
        if buf.remaining() != 0 {
            return Err(format!("{} trailing bytes in policy blob", buf.remaining()));
        }

        for (name, len) in [
            ("strategies", strategies.len()),
            ("initials", initials.len()),
            ("scores", scores.len()),
            ("ISP states", isp_states.len()),
            ("per-slave bests", prev_best.len()),
        ] {
            if len != p {
                return Err(format!(
                    "policy blob holds {len} {name}, run configures {p} workers"
                ));
            }
        }
        self.strategies = strategies;
        self.initials = initials;
        self.scores = scores;
        self.isp_states = isp_states;
        self.prev_best = prev_best;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_mode;
    use mkp::generate::{gk_instance, GkSpec};

    fn cfg() -> RunConfig {
        RunConfig {
            p: 3,
            rounds: 3,
            ..RunConfig::new(90_000, 17)
        }
    }

    #[test]
    fn switch_matrix_matches_modes() {
        let cfg = cfg();
        let seq = FarmPolicy::sequential();
        assert_eq!(seq.active_workers(&cfg), 1);
        assert_eq!(seq.rounds(&cfg), 1);
        let its = FarmPolicy::independent();
        assert_eq!(its.active_workers(&cfg), 3);
        assert_eq!(its.rounds(&cfg), 1);
        let cts2 = FarmPolicy::cooperative_adaptive();
        assert_eq!(cts2.rounds(&cfg), 3);
        assert_eq!(cts2.delivery(), Delivery::Synchronous);
        assert_eq!(FarmPolicy::asynchronous().delivery(), Delivery::Pipelined);
    }

    #[test]
    fn adaptive_modes_regenerate_eventually() {
        // Over enough rounds the SGP must hit a zero score somewhere.
        let inst = gk_instance(
            "rg",
            GkSpec {
                n: 50,
                m: 5,
                tightness: 0.5,
                seed: 4,
            },
        );
        let cfg = RunConfig {
            p: 3,
            rounds: 12,
            ..RunConfig::new(240_000, 23)
        };
        let r = run_mode(&inst, Mode::CooperativeAdaptive, &cfg);
        assert!(r.regenerations > 0, "SGP never regenerated in 12 rounds");
        let r = run_mode(&inst, Mode::Cooperative, &cfg);
        assert_eq!(r.regenerations, 0, "CTS1 must not touch strategies");
    }

    #[test]
    fn policy_blob_round_trips_the_master_data_structure() {
        let inst = gk_instance(
            "snap",
            GkSpec {
                n: 30,
                m: 4,
                tightness: 0.5,
                seed: 9,
            },
        );
        let cfg = cfg();
        let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
        let mut policy = FarmPolicy::cooperative_adaptive();
        policy.prepare(&inst, &cfg, &mut rng);
        // Dirty the state so the round trip covers more than the defaults.
        policy.scores[1] = Score::from_value(1);
        policy.prev_best[2] += 17;
        let blob = policy.snapshot().expect("trajectory modes checkpoint");

        let mut back = FarmPolicy::cooperative_adaptive();
        back.restore(&inst, &cfg, &blob).unwrap();
        assert_eq!(back.strategies, policy.strategies);
        assert_eq!(back.prev_best, policy.prev_best);
        for (a, b) in back.initials.iter().zip(&policy.initials) {
            assert_eq!(a.bits(), b.bits());
        }
        for (a, b) in back.scores.iter().zip(&policy.scores) {
            assert_eq!(a.value(), b.value());
        }
        // Same state ⇒ identical re-encoding.
        assert_eq!(back.snapshot(), policy.snapshot());

        // Wrong worker count is caught, not absorbed.
        let mut small = cfg.clone();
        small.p = 2;
        let err = back.restore(&inst, &small, &blob).unwrap_err();
        assert!(err.contains("configures 2 workers"), "{err}");

        // Truncation is a clean error, never a panic.
        for cut in 0..blob.len() {
            assert!(back.restore(&inst, &cfg, &blob[..cut]).is_err());
        }
    }
}
