//! The synchronous master/slave drivers: SEQ, ITS, CTS1 and CTS2.
//!
//! The master (task 0, Fig. 2) broadcasts the problem, then per search
//! iteration sends each slave an initial solution and a strategy, collects
//! the B-best reports, and updates its per-slave data structure (strategy,
//! initial solution, best solutions, score). CTS1 runs the cooperation
//! (ISP) without touching strategies; CTS2 adds the dynamic strategy tuning
//! (SGP) — the paper's contribution. ITS degenerates to one communication-
//! free round per slave, and SEQ to a single thread holding the entire
//! work budget.

use crate::isp::IspState;
use crate::messages::{tags, AssignMsg, ProblemMsg, ReportMsg};
use crate::runner::{Mode, ModeReport, RunConfig};
use crate::score::Score;
use crate::sgp::{elite_dispersion, next_strategy};

use mkp::greedy::dynamic_randomized_greedy;
use mkp::{Instance, Solution, Xoshiro256};
use mkp_tabu::{search, Budget, StrategyBounds, TsConfig};
use pvm_lite::{run_farm, Collectives, TaskCtx};
use std::time::{Duration, Instant};

/// How long the master waits for a slave report before declaring the farm
/// broken (a slave normally answers in milliseconds-to-seconds).
const REPORT_TIMEOUT: Duration = Duration::from_secs(600);

/// Per-task result of the farm.
enum TaskOut {
    Master(Box<ModeReport>),
    Slave,
}

/// Run a synchronous cooperative search (CTS1 when `adaptive` is false,
/// CTS2 when true).
pub fn run_cooperative(inst: &Instance, cfg: &RunConfig, adaptive: bool) -> ModeReport {
    assert!(cfg.p >= 1 && cfg.rounds >= 1);
    let results = run_farm(cfg.p + 1, |ctx| {
        if ctx.tid() == 0 {
            TaskOut::Master(Box::new(master_task(ctx, inst, cfg, adaptive)))
        } else {
            slave_task(ctx);
            TaskOut::Slave
        }
    })
    .expect("farm task panicked");
    for out in results {
        if let TaskOut::Master(report) = out {
            return *report;
        }
    }
    unreachable!("task 0 always returns the master report")
}

/// Run P independent tabu searches (ITS): same farm, one fat round, no
/// cooperation and no adaptation.
pub fn run_independent(inst: &Instance, cfg: &RunConfig) -> ModeReport {
    let one_round = RunConfig {
        rounds: 1,
        ..cfg.clone()
    };
    let mut report = run_cooperative_with_flags(inst, &one_round, false, false);
    report.mode = Mode::Independent;
    report
}

fn master_task(ctx: TaskCtx, inst: &Instance, cfg: &RunConfig, adaptive: bool) -> ModeReport {
    master_task_with_flags(ctx, inst, cfg, adaptive, true)
}

/// Cooperative driver with an extra switch for the ISP (cooperation); used
/// by [`run_independent`] to reuse the farm plumbing with cooperation off.
fn run_cooperative_with_flags(
    inst: &Instance,
    cfg: &RunConfig,
    adaptive: bool,
    cooperate: bool,
) -> ModeReport {
    let results = run_farm(cfg.p + 1, |ctx| {
        if ctx.tid() == 0 {
            TaskOut::Master(Box::new(master_task_with_flags(
                ctx, inst, cfg, adaptive, cooperate,
            )))
        } else {
            slave_task(ctx);
            TaskOut::Slave
        }
    })
    .expect("farm task panicked");
    for out in results {
        if let TaskOut::Master(report) = out {
            return *report;
        }
    }
    unreachable!("task 0 always returns the master report")
}

fn master_task_with_flags(
    ctx: TaskCtx,
    inst: &Instance,
    cfg: &RunConfig,
    adaptive: bool,
    cooperate: bool,
) -> ModeReport {
    let start = Instant::now();
    let p = cfg.p;

    let bounds = StrategyBounds::for_instance_size(inst.n());
    let mut rng = Xoshiro256::seed_from_u64(cfg.seed);

    // "Read and send to slaves problem data" (Fig. 2) — a pvm_mcast.
    let problem = ProblemMsg::from_instance(inst);
    ctx.broadcast(tags::PROBLEM, &problem)
        .expect("slaves alive at start");

    // Master data structure: one entry per slave (Fig. 2: strategy, initial
    // solution, B best solutions, score).
    let mut strategies: Vec<_> = (0..p).map(|_| bounds.random(&mut rng)).collect();
    let mut initials: Vec<Solution> = (0..p)
        .map(|_| dynamic_randomized_greedy(inst, &mut rng, cfg.isp.rcl))
        .collect();
    let mut scores = vec![Score::new(); p];
    let mut isp_states: Vec<IspState> = (0..p).map(|_| IspState::default()).collect();

    // Per-slave best-so-far; the SGP scores a round as improving only when
    // the slave beat its own previous best (scoring against the round's
    // initial value would award every post-restart round a free point and
    // the zero-score regeneration would never fire).
    let mut prev_best: Vec<i64> = initials.iter().map(|s| s.value()).collect();
    let mut global_best = initials
        .iter()
        .max_by_key(|s| s.value())
        .expect("p >= 1")
        .clone();
    let mut round_best = Vec::with_capacity(cfg.rounds);
    let mut total_moves = 0u64;
    let mut total_evals = 0u64;
    let mut regenerations = 0u64;

    let budget_per_assignment = cfg.total_evals / (p as u64 * cfg.rounds as u64);

    for round in 0..cfg.rounds {
        // Launch the P slave searches.
        for slave in 1..=p {
            let k = slave - 1;
            let assign = AssignMsg {
                initial: initials[k].bits().clone(),
                strategy: strategies[k],
                budget_evals: budget_per_assignment,
                seed: cfg.seed
                    ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (slave as u64) << 32,
            };
            ctx.send(slave, tags::ASSIGN, &assign).expect("slave alive");
        }

        // Rendezvous: gather all P reports (slaves finish ≈ simultaneously
        // because the eval budget, not wall-clock, bounds each search). The
        // gather orders reports by slave id, so the master update below is
        // deterministic regardless of message arrival order.
        let slave_ids: Vec<usize> = (1..=p).collect();
        let reports: Vec<ReportMsg> = ctx
            .gather_msgs(tags::REPORT, &slave_ids, REPORT_TIMEOUT)
            .unwrap_or_else(|e| panic!("report rendezvous failed: {e}"));

        // Optional master-side exploitation: relink the two best distinct
        // slave solutions (information neither slave holds alone).
        if cfg.relink {
            let mut tops: Vec<Solution> = reports.iter().map(|r| r.best_solution(inst)).collect();
            tops.sort_by_key(|s| std::cmp::Reverse(s.value()));
            if tops.len() >= 2 && tops[0].bits() != tops[1].bits() {
                let ratios = mkp::eval::Ratios::new(inst);
                let mut stats = mkp_tabu::moves::MoveStats::default();
                let (relinked, _) =
                    mkp_tabu::relink::path_relink(inst, &ratios, &tops[0], &tops[1], &mut stats);
                total_evals += stats.candidate_evals;
                if relinked.value() > global_best.value() {
                    global_best = relinked;
                }
            }
        }

        for (k, report) in reports.into_iter().enumerate() {
            total_moves += report.moves;
            total_evals += report.evals;
            let slave_best = report.best_solution(inst);
            if slave_best.value() > global_best.value() {
                global_best = slave_best.clone();
            }

            if adaptive {
                // SGP: score the strategy, regenerate at zero using the
                // elite dispersion signal.
                let regenerate = scores[k].update(report.best_value > prev_best[k]);
                regenerations += regenerate as u64;
                let dispersion = elite_dispersion(&report.elite);
                let (next, _) = next_strategy(
                    strategies[k],
                    regenerate,
                    dispersion,
                    inst.n(),
                    &cfg.sgp,
                    &bounds,
                    &mut rng,
                );
                strategies[k] = next;
            }
            prev_best[k] = prev_best[k].max(report.best_value);

            if cooperate {
                // ISP: own best / culled to global best / random restart.
                let (next_init, _) =
                    isp_states[k].next_initial(&cfg.isp, inst, &slave_best, &global_best, &mut rng);
                initials[k] = next_init;
            } else {
                // Independent threads: continue from own best, nothing else.
                initials[k] = slave_best;
            }
        }
        round_best.push(global_best.value());
        let _ = round; // (kept for symmetry with the paper's Fig. 2 loop)
    }

    for slave in 1..=p {
        let _ = ctx.send_bytes(slave, tags::STOP, Vec::new());
    }

    debug_assert!(global_best.is_feasible(inst));
    ModeReport {
        mode: if !cooperate {
            Mode::Independent
        } else if adaptive {
            Mode::CooperativeAdaptive
        } else {
            Mode::Cooperative
        },
        best: global_best,
        round_best,
        total_moves,
        total_evals,
        regenerations,
        wall: start.elapsed(),
    }
}

/// The slave loop: receive the problem once, then serve assignments until
/// the stop message (or a dead master) ends the task.
fn slave_task(ctx: TaskCtx) {
    let env = match ctx.recv_timeout(REPORT_TIMEOUT) {
        Ok(env) => env,
        Err(_) => return, // master died before the broadcast
    };
    assert_eq!(env.tag, tags::PROBLEM, "protocol violation");
    let inst = env
        .decode::<ProblemMsg>()
        .expect("well-formed problem")
        .into_instance();
    let ratios = mkp::eval::Ratios::new(&inst);
    // The long-term frequency memory survives across rounds: each round's
    // diversification then targets regions this slave has never visited in
    // the whole session, which is what makes later rounds productive.
    let mut history = mkp_tabu::history::History::new(inst.n());

    loop {
        let env = match ctx.recv_timeout(REPORT_TIMEOUT) {
            Ok(env) => env,
            Err(_) => return, // master gone: shut down quietly
        };
        match env.tag {
            tags::STOP => return,
            tags::ASSIGN => {
                let assign: AssignMsg = env.decode().expect("well-formed assignment");
                let mut rng = Xoshiro256::seed_from_u64(assign.seed);
                let initial = Solution::from_bits(&inst, assign.initial);
                let mut ts = TsConfig::default_for(inst.n());
                ts.strategy = assign.strategy;
                let mut memory =
                    mkp_tabu::tabu_list::Recency::new(inst.n(), assign.strategy.tabu_tenure);
                let report = search::run_with_memory(
                    &inst,
                    &ratios,
                    initial,
                    &ts,
                    Budget::evals(assign.budget_evals),
                    &mut rng,
                    &mut memory,
                    &mut history,
                );
                let msg = ReportMsg {
                    best: report.best.bits().clone(),
                    elite: report.elite.iter().map(|s| s.bits().clone()).collect(),
                    initial_value: report.initial_value,
                    best_value: report.best.value(),
                    moves: report.stats.moves,
                    evals: report.stats.candidate_evals,
                };
                if ctx.send(0, tags::REPORT, &msg).is_err() {
                    return; // master gone
                }
            }
            other => panic!("unexpected tag {other} in slave"),
        }
    }
}
