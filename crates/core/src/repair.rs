//! The REPAIR policy: randomized-greedy restarts with feasibility repair.
//!
//! Martins (arXiv 2405.15569) shows that on very large MKP instances most
//! of a metaheuristic's value comes from a strong randomized constructive
//! phase plus a cheap repair operator, re-run from many seeds. This policy
//! is that regime expressed over the paper's master/slave engine:
//!
//! * each worker holds a *bank* entry — its personal best-so-far — started
//!   from [`mkp::greedy::perturbed_greedy`] (a greedy fill driven by
//!   noise-perturbed pseudo-utilities, a different packing order per seed);
//! * every later round the master *kicks* the bank entry (toggles a random
//!   fraction of its bits, usually leaving it infeasible) and hands the
//!   wreck to [`mkp::greedy::randomized_repair`] — randomized largest-burden
//!   drops to feasibility, then greedy saturation — producing a feasible,
//!   maximal restart point near, but not at, the worker's best;
//! * workers are **independent**: no ISP exchange, no SGP tuning — the only
//!   cross-worker interaction is the engine's generic fold into the global
//!   best. That makes REPAIR the randomized-restart control against which
//!   the cooperative modes are measured on the very-large suite.

use crate::engine::{assignment_seed, CoopPolicy, Delivery};
use crate::messages::{pack_bits, unpack_bits, AssignMsg, ReportMsg};
use crate::runner::{Mode, RunConfig};
use mkp::eval::Ratios;
use mkp::greedy::{perturbed_greedy, randomized_repair};
use mkp::{Instance, Solution, Xoshiro256};
use mkp_tabu::{Strategy, StrategyBounds};
use pvm_lite::codec::{CodecError, PackBuffer, UnpackBuffer};

/// Relative noise on the pseudo-utilities during construction and repair.
pub const PERTURB_STRENGTH: f64 = 0.3;
/// Fraction of the variables toggled by a kick (at least [`KICK_MIN`]).
pub const KICK_FRACTION: usize = 8;
/// Minimum kick size in variables.
pub const KICK_MIN: usize = 2;

/// Randomized greedy construction + repair, independent-restart workers.
pub struct RepairPolicy {
    strategies: Vec<Strategy>,
    /// Per-worker best-so-far; restart points are kicked copies of these.
    bank: Vec<Solution>,
}

impl Default for RepairPolicy {
    fn default() -> Self {
        RepairPolicy::new()
    }
}

impl RepairPolicy {
    /// A fresh REPAIR policy (the bank is built in `prepare`).
    pub fn new() -> Self {
        RepairPolicy {
            strategies: Vec::new(),
            bank: Vec::new(),
        }
    }

    /// Kick worker `k`'s bank entry and repair the wreck into a feasible,
    /// maximal restart point.
    fn restart_point(&self, k: usize, inst: &Instance, rng: &mut Xoshiro256) -> Solution {
        let n = inst.n();
        let mut bits = self.bank[k].bits().clone();
        let kicks = (n / KICK_FRACTION).max(KICK_MIN);
        for _ in 0..kicks {
            let j = rng.range_inclusive(0, (n - 1) as u64) as usize;
            bits.set(j, !bits.get(j));
        }
        let ratios = Ratios::perturbed(inst, rng, PERTURB_STRENGTH);
        randomized_repair(inst, &ratios, rng, bits)
    }
}

impl CoopPolicy for RepairPolicy {
    fn mode(&self) -> Mode {
        Mode::Repair
    }

    fn active_workers(&self, cfg: &RunConfig) -> usize {
        cfg.p
    }

    fn rounds(&self, cfg: &RunConfig) -> usize {
        cfg.rounds
    }

    fn delivery(&self) -> Delivery {
        Delivery::Synchronous
    }

    fn relink(&self, cfg: &RunConfig) -> bool {
        cfg.relink
    }

    fn prepare(&mut self, inst: &Instance, cfg: &RunConfig, rng: &mut Xoshiro256) -> Vec<Solution> {
        let p = cfg.p;
        let bounds = StrategyBounds::for_instance_size(inst.n());
        self.strategies = (0..p).map(|_| bounds.random(rng)).collect();
        self.bank = (0..p)
            .map(|_| perturbed_greedy(inst, rng, PERTURB_STRENGTH))
            .collect();
        self.bank.clone()
    }

    fn assign(
        &mut self,
        k: usize,
        round: usize,
        inst: &Instance,
        cfg: &RunConfig,
        rng: &mut Xoshiro256,
    ) -> AssignMsg {
        let start = if round == 0 {
            self.bank[k].clone()
        } else {
            self.restart_point(k, inst, rng)
        };
        let budget = cfg.total_evals / (cfg.p as u64 * self.rounds(cfg) as u64);
        AssignMsg::trajectory(
            start.bits().clone(),
            self.strategies[k],
            budget,
            assignment_seed(cfg, round, k),
        )
    }

    fn absorb(
        &mut self,
        k: usize,
        _round: usize,
        _report: &ReportMsg,
        slave_best: &Solution,
        _global_best: &Solution,
        _inst: &Instance,
        _cfg: &RunConfig,
        _rng: &mut Xoshiro256,
    ) -> u64 {
        // Independent restarts: each worker only ever learns from itself.
        if slave_best.value() > self.bank[k].value() {
            self.bank[k] = slave_best.clone();
        }
        0
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        let mut buf = PackBuffer::new();
        buf.put_usize(self.strategies.len());
        for s in &self.strategies {
            buf.put_usize(s.tabu_tenure);
            buf.put_usize(s.nb_drop);
            buf.put_usize(s.nb_local);
        }
        buf.put_usize(self.bank.len());
        for sol in &self.bank {
            pack_bits(sol.bits(), &mut buf);
        }
        Some(buf.into_bytes())
    }

    fn restore(&mut self, inst: &Instance, cfg: &RunConfig, blob: &[u8]) -> Result<(), String> {
        let p = cfg.p;
        let decode = |e: CodecError| format!("repair policy blob does not decode: {e:?}");
        let mut buf = UnpackBuffer::new(blob);

        let count = buf.get_usize().map_err(decode)?;
        let mut strategies = Vec::with_capacity(count.min(p));
        for _ in 0..count {
            strategies.push(Strategy {
                tabu_tenure: buf.get_usize().map_err(decode)?,
                nb_drop: buf.get_usize().map_err(decode)?,
                nb_local: buf.get_usize().map_err(decode)?,
            });
        }
        let count = buf.get_usize().map_err(decode)?;
        let mut bank = Vec::with_capacity(count.min(p));
        for _ in 0..count {
            let bits = unpack_bits(&mut buf).map_err(decode)?;
            if bits.len() != inst.n() {
                return Err(format!(
                    "bank solution has {} variables, instance has {}",
                    bits.len(),
                    inst.n()
                ));
            }
            bank.push(Solution::from_bits(inst, bits));
        }
        if buf.remaining() != 0 {
            return Err(format!(
                "{} trailing bytes in repair policy blob",
                buf.remaining()
            ));
        }
        for (name, len) in [
            ("strategies", strategies.len()),
            ("bank entries", bank.len()),
        ] {
            if len != p {
                return Err(format!(
                    "policy blob holds {len} {name}, run configures {p} workers"
                ));
            }
        }
        self.strategies = strategies;
        self.bank = bank;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_mode;
    use mkp::generate::{gk_instance, uncorrelated_instance, GkSpec};

    fn inst() -> Instance {
        gk_instance(
            "repair",
            GkSpec {
                n: 60,
                m: 5,
                tightness: 0.5,
                seed: 21,
            },
        )
    }

    fn cfg(seed: u64) -> RunConfig {
        RunConfig {
            p: 3,
            rounds: 3,
            ..RunConfig::new(90_000, seed)
        }
    }

    #[test]
    fn restart_points_are_feasible_and_differ_from_the_bank() {
        let inst = inst();
        let cfg = cfg(3);
        let mut policy = RepairPolicy::new();
        let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
        policy.prepare(&inst, &cfg, &mut rng);
        let mut moved = false;
        for k in 0..cfg.p {
            let start = policy.restart_point(k, &inst, &mut rng);
            assert!(start.is_feasible(&inst));
            assert!(start.check_consistent(&inst));
            moved |= start.bits() != policy.bank[k].bits();
        }
        assert!(moved, "every kick landed back on its own bank entry");
    }

    #[test]
    fn absorb_keeps_the_better_bank_entry() {
        let inst = inst();
        let cfg = cfg(5);
        let mut policy = RepairPolicy::new();
        let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
        policy.prepare(&inst, &cfg, &mut rng);
        let before = policy.bank[0].clone();
        // A strictly worse "best" must not evict the bank entry.
        let worse = Solution::empty(&inst);
        let report = ReportMsg {
            best: worse.bits().clone(),
            elite: Vec::new(),
            initial_value: 0,
            best_value: worse.value(),
            moves: 0,
            evals: 0,
            epoch: 0,
            history_counts: Vec::new(),
            history_iterations: 0,
        };
        policy.absorb(0, 1, &report, &worse, &before, &inst, &cfg, &mut rng);
        assert_eq!(policy.bank[0].bits(), before.bits());
    }

    #[test]
    fn repair_mode_is_feasible_and_deterministic() {
        let inst = inst();
        let a = run_mode(&inst, Mode::Repair, &cfg(7));
        let b = run_mode(&inst, Mode::Repair, &cfg(7));
        assert!(a.best.is_feasible(&inst));
        assert!(a.best.value() > 0);
        assert_eq!(a.best.bits(), b.best.bits());
        assert_eq!(a.round_best, b.round_best);
        assert_eq!(a.mode, Mode::Repair);
        assert_eq!(a.regenerations, 0, "REPAIR has no SGP to regenerate");
    }

    #[test]
    fn works_on_tiny_instances() {
        let inst = uncorrelated_instance("tiny", 16, 3, 0.5, 4);
        let r = run_mode(&inst, Mode::Repair, &cfg(9));
        assert!(r.best.is_feasible(&inst));
        assert!(r.best.value() > 0);
    }

    #[test]
    fn policy_blob_round_trips_bank_and_strategies() {
        let inst = inst();
        let cfg = cfg(11);
        let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
        let mut policy = RepairPolicy::new();
        policy.prepare(&inst, &cfg, &mut rng);
        let blob = policy.snapshot().expect("repair policy checkpoints");

        let mut back = RepairPolicy::new();
        back.restore(&inst, &cfg, &blob).unwrap();
        assert_eq!(back.strategies, policy.strategies);
        for (a, b) in back.bank.iter().zip(&policy.bank) {
            assert_eq!(a.bits(), b.bits());
            assert_eq!(a.value(), b.value());
        }
        // Same state ⇒ identical re-encoding.
        assert_eq!(back.snapshot(), policy.snapshot());
    }

    #[test]
    fn corrupt_policy_blobs_are_rejected_never_panic() {
        let inst = inst();
        let cfg = cfg(13);
        let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
        let mut policy = RepairPolicy::new();
        policy.prepare(&inst, &cfg, &mut rng);
        let blob = policy.snapshot().unwrap();

        let mut back = RepairPolicy::new();
        for cut in 0..blob.len() {
            assert!(back.restore(&inst, &cfg, &blob[..cut]).is_err());
        }
        let mut small = cfg.clone();
        small.p = 2;
        let err = back.restore(&inst, &small, &blob).unwrap_err();
        assert!(err.contains("configures 2 workers"), "{err}");
        // Trailing garbage is caught, not silently ignored.
        let mut padded = blob.clone();
        padded.extend_from_slice(&[0xAB; 3]);
        let err = back.restore(&inst, &cfg, &padded).unwrap_err();
        assert!(err.contains("trailing"), "{err}");
    }
}
