//! Distributed runs: the same master/slave protocol across process
//! boundaries (DESIGN.md §13).
//!
//! [`run_remote`] is the master side — it binds a [`SocketHub`], waits for
//! `cfg.p` slave processes to connect, and drives the *identical*
//! [`master_loop`] the in-process engine uses, now over the socket
//! transport. [`serve_slave`] is the slave side — a connect-with-backoff
//! loop around the engine's [`slave_loop`], reconnecting when the link
//! drops (which is exactly what the master's resurrection machinery waits
//! for) and exiting cleanly on STOP.
//!
//! What the engine calls a *resurrection* becomes, over sockets, a
//! *reconnect*: [`Transport::respawn`] on the hub fences the dead
//! connection's leftover frames and adopts the slave's fresh connection,
//! after which the master re-sends `ProblemMsg`/`SeedMsg`/`AssignMsg`
//! exactly as for an in-process rebirth. The epoch tags on assignments and
//! reports (PR 4) plus the hub's generation fencing together guarantee a
//! reborn slave's stale reports never reach the round loop.

use crate::engine::{
    master_loop, policy_for, slave_loop, EngineError, MasterCtl, SlaveExit, SliceOutcome,
};
use crate::runner::{Mode, ModeReport, RunConfig};
use crate::telemetry::{Counter, Telemetry};
use mkp::Instance;
use pvm_lite::{Endpoint, SocketError, SocketHub, SocketTransport, Transport};
use std::time::{Duration, Instant};

/// Delay between a remote slave's reconnect attempts. Flat rather than
/// exponential: the master's own resurrection backoff already paces the
/// recovery, and a reconnecting slave that dawdles risks missing the
/// master's respawn patience window.
const RECONNECT_DELAY: Duration = Duration::from_millis(100);

/// Run `mode` as a distributed master: listen on `listen`, wait up to the
/// configured patience for `cfg.p` slave processes, then drive the engine's
/// round loop over the socket transport. Socket transport counters
/// (reconnects, fenced frame drops) are folded into the report's telemetry
/// next to the message/byte totals.
///
/// Fault injection is an in-process pool feature and is rejected here by
/// the CLI; real process death plays its role in distributed runs.
pub fn run_remote(
    inst: &Instance,
    mode: Mode,
    cfg: &RunConfig,
    listen: &Endpoint,
) -> Result<ModeReport, EngineError> {
    if let Err(detail) = cfg.validate() {
        return Err(EngineError::Unsupported { detail });
    }
    let mut policy = policy_for(mode);
    let active = policy.active_workers(cfg);
    let patience = cfg.patience();
    let hub = SocketHub::bind(listen, active, patience).map_err(|e| EngineError::Internal {
        detail: format!("cannot listen on {listen}: {e}"),
    })?;
    let connected = hub.wait_ready(patience);
    if connected < active {
        return Err(EngineError::Unsupported {
            detail: format!(
                "only {connected} of {active} slaves connected to {listen} within {patience:?}; \
                 start the missing `mkp slave --connect {listen}` processes first"
            ),
        });
    }

    // Slot 0 is the master; remote slaves keep their own counters in their
    // own processes, so only the master row is filled here.
    let tel = Telemetry::new(hub.ntasks());
    let result = master_loop(
        &hub,
        inst,
        &mut *policy,
        cfg,
        None,
        &MasterCtl::default(),
        &tel,
    );

    let comm = Transport::comm_stats(&hub);
    tel.add(0, Counter::MsgsSent, comm.sent);
    tel.add(0, Counter::MsgsReceived, comm.received);
    tel.add(0, Counter::BytesSent, comm.bytes_sent);
    tel.add(0, Counter::BytesReceived, comm.bytes_received);
    let hub_stats = hub.hub_stats();
    tel.add(0, Counter::Reconnects, hub_stats.reconnects);
    tel.add(0, Counter::FencedDrops, hub_stats.fenced_drops);

    result.and_then(|outcome| match outcome {
        SliceOutcome::Finished(mut report) => {
            report.telemetry = tel.snapshot();
            Ok(*report)
        }
        SliceOutcome::Parked(_) => Err(EngineError::Internal {
            detail: "unbounded run returned a parked outcome".into(),
        }),
    })
}

/// How a completed [`serve_slave`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// The master said STOP: the run finished.
    Finished,
    /// The link dropped and no reconnect succeeded within `patience`.
    MasterLost,
}

/// Serve as a remote slave: connect to `connect` (retrying with a flat
/// delay for up to `patience`), run the engine's slave loop, and reconnect
/// whenever the link drops mid-run — a dropped link is either a master
/// restart or our own eviction by the master's resurrection, and in both
/// cases the correct move is to come back for a fresh `ProblemMsg`.
/// Returns [`ServeOutcome::Finished`] on a clean STOP.
pub fn serve_slave(connect: &Endpoint, patience: Duration) -> Result<ServeOutcome, String> {
    let mut slot: Option<usize> = None;
    let mut attempt: u64 = 0;
    loop {
        // Connect phase: keep trying for a patience window. A slave that
        // outlives its master must not spin forever.
        let deadline = Instant::now().checked_add(patience);
        let transport = loop {
            match SocketTransport::connect(connect, slot, attempt) {
                Ok(t) => break Some(t),
                Err(SocketError::Rejected) => {
                    return Err(format!(
                        "hub at {connect} has no free slot: too many slaves for this master"
                    ));
                }
                Err(_) if attempt == 0 && slot.is_none() => {
                    // First contact: the master may simply not be up yet.
                    match deadline {
                        Some(d) if Instant::now() >= d => break None,
                        _ => std::thread::sleep(RECONNECT_DELAY),
                    }
                }
                Err(_) => match deadline {
                    Some(d) if Instant::now() >= d => break None,
                    _ => std::thread::sleep(RECONNECT_DELAY),
                },
            }
        };
        let Some(transport) = transport else {
            return if attempt == 0 {
                Err(format!(
                    "no master reachable at {connect} within {patience:?}"
                ))
            } else {
                Ok(ServeOutcome::MasterLost)
            };
        };
        // Remember our identity so a reconnect reclaims the same slot (and
        // with it the master's banked History for this worker).
        slot = Some(transport.tid() - 1);
        attempt += 1;

        let tel = Telemetry::new(transport.ntasks());
        match slave_loop(&transport, patience, &tel) {
            SlaveExit::Stopped => return Ok(ServeOutcome::Finished),
            SlaveExit::Lost => continue, // link dropped: reconnect
        }
    }
}
