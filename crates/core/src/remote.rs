//! Distributed runs: the same master/slave protocol across process
//! boundaries (DESIGN.md §13).
//!
//! [`run_remote`] is the master side — it binds a [`SocketHub`], waits for
//! `cfg.p` slave processes to connect, and drives the *identical*
//! [`master_loop`] the in-process engine uses, now over the socket
//! transport. [`serve_slave`] is the slave side — a connect-with-backoff
//! loop around the engine's [`slave_loop`], reconnecting when the link
//! drops (which is exactly what the master's resurrection machinery waits
//! for) and exiting cleanly on STOP.
//!
//! What the engine calls a *resurrection* becomes, over sockets, a
//! *reconnect*: [`Transport::respawn`] on the hub fences the dead
//! connection's leftover frames and adopts the slave's fresh connection,
//! after which the master re-sends `ProblemMsg`/`SeedMsg`/`AssignMsg`
//! exactly as for an in-process rebirth. The epoch tags on assignments and
//! reports (PR 4) plus the hub's generation fencing together guarantee a
//! reborn slave's stale reports never reach the round loop.

use crate::engine::{
    master_loop, policy_for, slave_loop, EngineError, MasterCtl, SlaveExit, SliceOutcome,
};
use crate::runner::{Mode, ModeReport, RunConfig};
use crate::telemetry::{Counter, Telemetry};
use mkp::Instance;
use pvm_lite::{Endpoint, NetFaultState, SocketError, SocketHub, SocketTransport, Transport};
use std::sync::Arc;
use std::time::Duration;

/// How many consecutive connect-then-hear-nothing cycles a slave rides
/// out before concluding the listener is a zombie. Each cycle already
/// waits the full patience inside the slave loop, so three silent
/// cycles mean 3× patience with zero master traffic — long past any
/// plausible master restart.
const MAX_SILENT_RECONNECTS: u32 = 3;

/// Run `mode` as a distributed master: listen on `listen`, wait up to the
/// configured patience for `cfg.p` slave processes, then drive the engine's
/// round loop over the socket transport. Socket transport counters
/// (reconnects, fenced frame drops) are folded into the report's telemetry
/// next to the message/byte totals.
///
/// Fault injection is an in-process pool feature and is rejected here by
/// the CLI; real process death plays its role in distributed runs.
pub fn run_remote(
    inst: &Instance,
    mode: Mode,
    cfg: &RunConfig,
    listen: &Endpoint,
) -> Result<ModeReport, EngineError> {
    run_remote_with(inst, mode, cfg, listen, None)
}

/// [`run_remote`] with a hub-side [`NetFaultState`] armed on the send
/// path (the CLI's `--net-fault` on `solve --listen`).
pub fn run_remote_with(
    inst: &Instance,
    mode: Mode,
    cfg: &RunConfig,
    listen: &Endpoint,
    fault: Option<Arc<NetFaultState>>,
) -> Result<ModeReport, EngineError> {
    if let Err(detail) = cfg.validate() {
        return Err(EngineError::Unsupported { detail });
    }
    let mut policy = policy_for(mode);
    let active = policy.active_workers(cfg);
    let patience = cfg.patience();
    let hub = SocketHub::bind_with(listen, active, patience, fault).map_err(|e| {
        EngineError::Internal {
            detail: format!("cannot listen on {listen}: {e}"),
        }
    })?;
    let connected = hub.wait_ready(patience);
    if connected < active {
        return Err(EngineError::Unsupported {
            detail: format!(
                "only {connected} of {active} slaves connected to {listen} within {patience:?}; \
                 start the missing `mkp slave --connect {listen}` processes first"
            ),
        });
    }

    // Slot 0 is the master; remote slaves keep their own counters in their
    // own processes, so only the master row is filled here.
    let tel = Telemetry::new(hub.ntasks());
    let result = master_loop(
        &hub,
        inst,
        &mut *policy,
        cfg,
        None,
        &MasterCtl::default(),
        &tel,
    );

    let comm = Transport::comm_stats(&hub);
    tel.add(0, Counter::MsgsSent, comm.sent);
    tel.add(0, Counter::MsgsReceived, comm.received);
    tel.add(0, Counter::BytesSent, comm.bytes_sent);
    tel.add(0, Counter::BytesReceived, comm.bytes_received);
    let hub_stats = hub.hub_stats();
    tel.add(0, Counter::Reconnects, hub_stats.reconnects);
    tel.add(0, Counter::FencedDrops, hub_stats.fenced_drops);
    tel.add(0, Counter::CorruptDrops, hub_stats.corrupt_drops);

    result.and_then(|outcome| match outcome {
        SliceOutcome::Finished(mut report) => {
            report.telemetry = tel.snapshot();
            Ok(*report)
        }
        SliceOutcome::Parked(_) => Err(EngineError::Internal {
            detail: "unbounded run returned a parked outcome".into(),
        }),
    })
}

/// How a completed [`serve_slave`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// The master said STOP: the run finished.
    Finished,
    /// The link dropped and no reconnect succeeded within `patience`.
    MasterLost,
}

/// Serve as a remote slave: connect to `connect` (retrying with jittered
/// backoff under a total deadline of `patience`), run the engine's slave
/// loop, and reconnect whenever the link drops mid-run — a dropped link
/// is either a master restart or our own eviction by the master's
/// resurrection, and in both cases the correct move is to come back for
/// a fresh `ProblemMsg`. Returns [`ServeOutcome::Finished`] on a clean
/// STOP.
///
/// Two bounds keep an orphan from spinning forever: the connect loop
/// itself gives up once `patience` lapses without a listener answering
/// ([`SocketTransport::connect_with_retry`]), and a listener that
/// accepts but never speaks is abandoned after
/// [`MAX_SILENT_RECONNECTS`] consecutive traffic-less cycles. Both end
/// as [`ServeOutcome::MasterLost`] (exit 2 at the CLI) when the master
/// had ever been reached, and as an error (exit 1) when it never was.
pub fn serve_slave(connect: &Endpoint, patience: Duration) -> Result<ServeOutcome, String> {
    serve_slave_with(connect, patience, None)
}

/// [`serve_slave`] with a slave-side [`NetFaultState`] armed on the send
/// path (the CLI's `--net-fault` on `mkp slave`). The state is shared
/// across reconnects, so a one-shot fault stays one-shot.
pub fn serve_slave_with(
    connect: &Endpoint,
    patience: Duration,
    fault: Option<Arc<NetFaultState>>,
) -> Result<ServeOutcome, String> {
    let mut slot: Option<usize> = None;
    let mut attempt: u64 = 0;
    let mut silent_cycles: u32 = 0;
    loop {
        let transport = match SocketTransport::connect_with_retry(
            connect,
            slot,
            attempt,
            patience,
            fault.clone(),
        ) {
            Ok((t, _tries)) => t,
            Err(SocketError::Rejected) => {
                return Err(format!(
                    "hub at {connect} has no free slot: too many slaves for this master"
                ));
            }
            Err(e @ SocketError::Unreachable { .. }) => {
                return if attempt == 0 {
                    // First contact: the master never came up at all.
                    Err(format!("no master reachable: {e}"))
                } else {
                    Ok(ServeOutcome::MasterLost)
                };
            }
            Err(e) => return Err(format!("cannot connect to {connect}: {e}")),
        };
        // Remember our identity so a reconnect reclaims the same slot (and
        // with it the master's banked History for this worker).
        slot = Some(transport.tid() - 1);
        attempt += 1;

        let tel = Telemetry::new(transport.ntasks());
        let heard_before = Transport::comm_stats(&transport).received;
        match slave_loop(&transport, patience, &tel) {
            SlaveExit::Stopped => return Ok(ServeOutcome::Finished),
            SlaveExit::Lost => {
                // Link dropped: reconnect — unless the listener keeps
                // accepting us and then saying nothing, in which case it
                // is a zombie and we are the orphan that must stop.
                if Transport::comm_stats(&transport).received > heard_before {
                    silent_cycles = 0;
                } else {
                    silent_cycles += 1;
                    if silent_cycles >= MAX_SILENT_RECONNECTS {
                        return Ok(ServeOutcome::MasterLost);
                    }
                }
            }
        }
    }
}
