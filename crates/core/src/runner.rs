//! Unified entry point over the six search modes.
//!
//! All modes consume the same *total* work budget (candidate evaluations,
//! summed over every thread), which is the machine-independent stand-in for
//! the paper's "fixed execution time" comparison — see DESIGN.md §4.
//!
//! [`run_mode`] is the one-shot convenience path: it builds a throwaway
//! [`Engine`](crate::engine::Engine) per call. Callers running many
//! searches (the bench tables, a solve service) should hold one `Engine`
//! and call [`Engine::run`](crate::engine::Engine::run) directly so the
//! worker pool stays warm across runs.

use crate::isp::IspConfig;
use crate::sgp::SgpConfig;
use mkp::{Instance, Solution};
use std::time::Duration;

/// The compared search organizations (paper §5, Table 2, plus the §6
/// asynchronous extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// SEQ — one sequential tabu search, random strategy and start.
    Sequential,
    /// ITS — P independent threads, no communication, no adaptation.
    Independent,
    /// CTS1 — P cooperative threads (solution exchange via the master's
    /// ISP), strategies fixed.
    Cooperative,
    /// CTS2 — cooperation plus dynamic strategy tuning (ISP + SGP).
    CooperativeAdaptive,
    /// ATS — rendezvous-free cooperation (the §6 extension): reports are
    /// delivered pipelined, each worker's next assignment leaving as soon
    /// as its report is processed, in a deterministic logical order.
    Asynchronous,
    /// DTS — search-space decomposition over critical variables (the §2
    /// taxonomy's third parallelism source, implemented as an extension).
    Decomposed,
    /// CORE — LP-core fixing: rank variables by |reduced cost|, fix the
    /// confident ones and run CTS2-style cooperation inside the promising
    /// core, re-identifying it periodically from the incumbent
    /// (Xu/Li/Yin, arXiv 2210.03918).
    Core,
    /// REPAIR — randomized greedy construction with perturbed ratios plus
    /// a feasibility-repair operator, run as independent-restart workers
    /// (Martins, arXiv 2405.15569).
    Repair,
}

impl Mode {
    /// The paper's abbreviation for the mode.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Sequential => "SEQ",
            Mode::Independent => "ITS",
            Mode::Cooperative => "CTS1",
            Mode::CooperativeAdaptive => "CTS2",
            Mode::Asynchronous => "ATS",
            Mode::Decomposed => "DTS",
            Mode::Core => "CORE",
            Mode::Repair => "REPAIR",
        }
    }

    /// All modes of Table 2, in the paper's column order.
    pub fn table2() -> [Mode; 4] {
        [
            Mode::Sequential,
            Mode::Independent,
            Mode::Cooperative,
            Mode::CooperativeAdaptive,
        ]
    }

    /// Every mode the engine can drive, Table 2 first, extensions after.
    /// Order is load-bearing: snapshots encode a mode as its position in
    /// this array, so new modes are only ever appended at the end.
    pub fn all() -> [Mode; 8] {
        [
            Mode::Sequential,
            Mode::Independent,
            Mode::Cooperative,
            Mode::CooperativeAdaptive,
            Mode::Asynchronous,
            Mode::Decomposed,
            Mode::Core,
            Mode::Repair,
        ]
    }
}

/// Configuration shared by all modes.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Number of slave threads P (ignored by SEQ).
    pub p: usize,
    /// Search iterations (master rounds). SEQ, ITS and DTS fold everything
    /// into one round.
    pub rounds: usize,
    /// Total candidate-evaluation budget across all threads and rounds.
    pub total_evals: u64,
    /// Master seed; everything deterministic derives from it.
    pub seed: u64,
    /// ISP (cooperation) knobs.
    pub isp: IspConfig,
    /// SGP (adaptation) knobs.
    pub sgp: SgpConfig,
    /// Master-side path relinking between the two best distinct slave
    /// solutions each round (an extension beyond the paper; off by
    /// default).
    pub relink: bool,
    /// How long the master waits for a slave report (and a slave for its
    /// next instruction) before declaring the farm broken; a slave
    /// normally answers in milliseconds-to-seconds.
    pub report_timeout: Duration,
    /// How many times the master may resurrect each lost worker before
    /// falling back to permanent quarantine. 0 (the default) disables
    /// resurrection entirely, reproducing the pure degradation behavior.
    pub max_restarts: usize,
    /// Base delay before a resurrection attempt; doubles on every further
    /// attempt for the same worker (exponential backoff, saturating).
    pub restart_backoff: Duration,
    /// How long a slave waits for its next instruction before concluding
    /// the master is gone and exiting. `None` (the default) derives it
    /// from the report deadline: `4 × report_timeout + 1 s`. When set, it
    /// must be at least `report_timeout` (see [`RunConfig::validate`]).
    pub slave_patience: Option<Duration>,
    /// Periodic checkpointing of the master state; `None` disables it.
    pub checkpoint: Option<CheckpointCfg>,
}

/// Where and how often the master checkpoints its state (see
/// [`crate::snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointCfg {
    /// Snapshot file path (written atomically: tmp + rename).
    pub path: std::path::PathBuf,
    /// Write a snapshot after every `every`-th completed round (the final
    /// round is never checkpointed — the run is over).
    pub every: usize,
}

/// Default [`RunConfig::report_timeout`].
pub const DEFAULT_REPORT_TIMEOUT: Duration = Duration::from_secs(600);

impl RunConfig {
    /// Defaults: P = 4 slaves, 8 rounds.
    pub fn new(total_evals: u64, seed: u64) -> Self {
        RunConfig {
            p: 4,
            rounds: 8,
            total_evals,
            seed,
            isp: IspConfig::default(),
            sgp: SgpConfig::default(),
            relink: false,
            report_timeout: DEFAULT_REPORT_TIMEOUT,
            max_restarts: 0,
            restart_backoff: Duration::from_millis(50),
            slave_patience: None,
            checkpoint: None,
        }
    }

    /// The effective slave patience: the explicit setting, or the derived
    /// default `4 × report_timeout + 1 s` — generous enough that a slave
    /// never gives up on a master still inside its own deadline window.
    pub fn patience(&self) -> Duration {
        self.slave_patience.unwrap_or_else(|| {
            self.report_timeout
                .saturating_mul(4)
                .saturating_add(Duration::from_secs(1))
        })
    }

    /// Check the cross-field invariants the engine relies on. Returns a
    /// human-readable complaint for the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(patience) = self.slave_patience {
            if patience < self.report_timeout {
                return Err(format!(
                    "slave patience ({patience:?}) must be at least the report timeout \
                     ({:?}): a slave that gives up before the master's deadline window \
                     closes turns every straggler into a cascade",
                    self.report_timeout
                ));
            }
        }
        if let Some(cp) = &self.checkpoint {
            if cp.every == 0 {
                return Err("checkpoint interval must be at least 1 round".to_string());
            }
        }
        Ok(())
    }
}

/// Why the master quarantined a worker mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LossCause {
    /// The worker's task panicked (message attached).
    Panicked(String),
    /// The worker missed its report deadline.
    Deadline,
    /// The master could no longer reach the worker's mailbox.
    Unreachable,
}

impl std::fmt::Display for LossCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LossCause::Panicked(msg) => write!(f, "panicked: {msg}"),
            LossCause::Deadline => write!(f, "missed report deadline"),
            LossCause::Unreachable => write!(f, "unreachable"),
        }
    }
}

/// One worker the master lost and quarantined during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerLoss {
    /// Worker index `k` (0-based; its farm task id is `k + 1`).
    pub worker: usize,
    /// Master round in which the loss was detected.
    pub round: usize,
    /// What went wrong.
    pub cause: LossCause,
}

impl std::fmt::Display for WorkerLoss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker {} @ round {}: {}",
            self.worker, self.round, self.cause
        )
    }
}

/// One successful mid-run worker resurrection (see DESIGN.md §10): the
/// master respawned the lost worker's task, re-sent the problem, seeded it
/// from the B-best elite, and received a valid redo report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resurrection {
    /// Worker index `k` (0-based; its farm task id is `k + 1`).
    pub worker: usize,
    /// Master round in which the worker died and was revived.
    pub round: usize,
    /// 1-based attempt number that succeeded (attempt `a` waited
    /// `restart_backoff × 2^(a−1)` before respawning).
    pub attempt: usize,
}

impl std::fmt::Display for Resurrection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker {} @ round {}: revived on attempt {}",
            self.worker, self.round, self.attempt
        )
    }
}

/// Outcome of one mode run.
#[derive(Debug, Clone)]
pub struct ModeReport {
    /// Which mode produced this.
    pub mode: Mode,
    /// Best solution found.
    pub best: Solution,
    /// Global best value after each master round (one entry per round in
    /// every mode; SEQ/ITS/DTS have exactly one).
    pub round_best: Vec<i64>,
    /// Moves executed across all threads.
    pub total_moves: u64,
    /// Candidate evaluations spent across all threads.
    pub total_evals: u64,
    /// Strategy regenerations the SGP performed (0 in non-adaptive modes).
    pub regenerations: u64,
    /// Wall-clock time of the run.
    pub wall: std::time::Duration,
    /// Workers quarantined during the run (empty for a healthy farm). A
    /// non-empty list means the run is *degraded*: the result is still a
    /// feasible best over the surviving workers' reports.
    pub lost_workers: Vec<WorkerLoss>,
    /// Workers that died and were successfully revived mid-run. A revived
    /// worker does *not* appear in `lost_workers` — the run is whole.
    pub resurrections: Vec<Resurrection>,
    /// Per-task telemetry of the run: counters, span timings, and the
    /// merged event trace (see [`crate::telemetry`]). Empty when the
    /// engine's telemetry is disabled.
    pub telemetry: crate::telemetry::TelemetrySnapshot,
}

impl ModeReport {
    /// Whether the run lost any workers along the way (resurrected workers
    /// don't count — they finished the run).
    pub fn is_degraded(&self) -> bool {
        !self.lost_workers.is_empty()
    }
}

/// Run `mode` on `inst` under `cfg` with a throwaway engine (see the
/// module docs for when to hold an [`Engine`](crate::engine::Engine)
/// instead).
///
/// # Panics
/// On an unrecoverable engine failure (every worker lost). This
/// convenience path assumes a healthy in-process farm; callers that
/// inject faults or need the error should use
/// [`Engine::run`](crate::engine::Engine::run) and handle the `Result`.
pub fn run_mode(inst: &Instance, mode: Mode, cfg: &RunConfig) -> ModeReport {
    crate::engine::Engine::new(cfg.p)
        .run(inst, mode, cfg)
        .unwrap_or_else(|e| panic!("engine failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkp::eval::Ratios;
    use mkp::generate::{gk_instance, uncorrelated_instance, GkSpec};
    use mkp::greedy::greedy;

    fn small_cfg(seed: u64) -> RunConfig {
        RunConfig {
            p: 3,
            rounds: 4,
            total_evals: 120_000,
            seed,
            isp: IspConfig::default(),
            sgp: SgpConfig::default(),
            relink: false,
            report_timeout: DEFAULT_REPORT_TIMEOUT,
            max_restarts: 0,
            restart_backoff: Duration::from_millis(50),
            slave_patience: None,
            checkpoint: None,
        }
    }

    #[test]
    fn patience_defaults_to_the_derived_formula() {
        let mut cfg = small_cfg(1);
        cfg.report_timeout = Duration::from_secs(2);
        assert_eq!(cfg.patience(), Duration::from_secs(9));
        cfg.slave_patience = Some(Duration::from_secs(3));
        assert_eq!(cfg.patience(), Duration::from_secs(3));
    }

    #[test]
    fn validate_rejects_patience_below_the_report_deadline() {
        let mut cfg = small_cfg(1);
        assert!(cfg.validate().is_ok());
        cfg.report_timeout = Duration::from_secs(10);
        cfg.slave_patience = Some(Duration::from_secs(5));
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("patience"), "{err}");
        cfg.slave_patience = Some(Duration::from_secs(10));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_checkpoint_interval() {
        let mut cfg = small_cfg(1);
        cfg.checkpoint = Some(CheckpointCfg {
            path: std::path::PathBuf::from("/tmp/x.snap"),
            every: 0,
        });
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn all_modes_produce_feasible_solutions() {
        let inst = gk_instance(
            "m",
            GkSpec {
                n: 60,
                m: 5,
                tightness: 0.5,
                seed: 1,
            },
        );
        for mode in Mode::all() {
            let r = run_mode(&inst, mode, &small_cfg(7));
            assert!(r.best.is_feasible(&inst), "{mode:?} infeasible");
            assert!(r.best.value() > 0);
            assert_eq!(r.mode, mode);
        }
    }

    #[test]
    fn every_mode_is_deterministic() {
        let inst = gk_instance(
            "d",
            GkSpec {
                n: 50,
                m: 5,
                tightness: 0.5,
                seed: 2,
            },
        );
        for mode in Mode::all() {
            let a = run_mode(&inst, mode, &small_cfg(3));
            let b = run_mode(&inst, mode, &small_cfg(3));
            assert_eq!(a.best.value(), b.best.value(), "{mode:?} nondeterministic");
            assert_eq!(a.round_best, b.round_best);
        }
    }

    #[test]
    fn modes_beat_greedy() {
        let inst = gk_instance(
            "g",
            GkSpec {
                n: 80,
                m: 10,
                tightness: 0.5,
                seed: 3,
            },
        );
        let ratios = Ratios::new(&inst);
        let g = greedy(&inst, &ratios).value();
        for mode in Mode::table2() {
            let r = run_mode(&inst, mode, &small_cfg(5));
            assert!(
                r.best.value() >= g,
                "{mode:?}: {} < greedy {g}",
                r.best.value()
            );
        }
    }

    #[test]
    fn round_best_is_monotone() {
        let inst = gk_instance(
            "r",
            GkSpec {
                n: 60,
                m: 5,
                tightness: 0.5,
                seed: 4,
            },
        );
        for mode in [Mode::CooperativeAdaptive, Mode::Asynchronous] {
            let r = run_mode(&inst, mode, &small_cfg(9));
            assert_eq!(r.round_best.len(), 4, "{mode:?}");
            for w in r.round_best.windows(2) {
                assert!(w[1] >= w[0], "{mode:?} global best regressed");
            }
            assert_eq!(*r.round_best.last().unwrap(), r.best.value(), "{mode:?}");
        }
    }

    #[test]
    fn budgets_are_comparable_across_modes() {
        let inst = gk_instance(
            "b",
            GkSpec {
                n: 60,
                m: 5,
                tightness: 0.5,
                seed: 5,
            },
        );
        let cfg = small_cfg(11);
        for mode in Mode::table2() {
            let r = run_mode(&inst, mode, &cfg);
            let lo = cfg.total_evals * 9 / 10;
            let hi = cfg.total_evals * 13 / 10;
            assert!(
                (lo..hi).contains(&r.total_evals),
                "{mode:?} spent {} of {} budget",
                r.total_evals,
                cfg.total_evals
            );
        }
    }

    #[test]
    fn seq_runs_with_p_irrelevant() {
        let inst = uncorrelated_instance("s", 30, 3, 0.5, 6);
        let mut cfg = small_cfg(13);
        cfg.p = 1;
        let a = run_mode(&inst, Mode::Sequential, &cfg);
        cfg.p = 8;
        let b = run_mode(&inst, Mode::Sequential, &cfg);
        assert_eq!(a.best.value(), b.best.value());
    }

    #[test]
    fn mode_labels_match_paper() {
        assert_eq!(Mode::Sequential.label(), "SEQ");
        assert_eq!(Mode::Independent.label(), "ITS");
        assert_eq!(Mode::Cooperative.label(), "CTS1");
        assert_eq!(Mode::CooperativeAdaptive.label(), "CTS2");
        assert_eq!(Mode::Asynchronous.label(), "ATS");
        assert_eq!(Mode::Decomposed.label(), "DTS");
    }

    #[test]
    fn relinking_never_hurts_and_stays_deterministic() {
        let inst = gk_instance(
            "pr",
            GkSpec {
                n: 70,
                m: 5,
                tightness: 0.5,
                seed: 6,
            },
        );
        let plain = run_mode(&inst, Mode::CooperativeAdaptive, &small_cfg(21));
        let mut cfg = small_cfg(21);
        cfg.relink = true;
        let relinked = run_mode(&inst, Mode::CooperativeAdaptive, &cfg);
        assert!(relinked.best.is_feasible(&inst));
        assert!(
            relinked.best.value() >= plain.best.value(),
            "relinking lost quality: {} < {}",
            relinked.best.value(),
            plain.best.value()
        );
        let again = run_mode(&inst, Mode::CooperativeAdaptive, &cfg);
        assert_eq!(relinked.best.value(), again.best.value());
    }

    #[test]
    fn small_instance_all_modes_reach_exact_optimum() {
        let inst = uncorrelated_instance("x", 20, 3, 0.5, 8);
        let exact = mkp_exact::solve(&inst, &mkp_exact::BbConfig::default());
        assert!(exact.proven);
        for mode in Mode::table2() {
            let r = run_mode(&inst, mode, &small_cfg(15));
            if mode == Mode::Sequential {
                // SEQ draws one random strategy for the whole run — the
                // paper's weak baseline; within 1% is all it promises at
                // this budget.
                let floor = (exact.solution.value() as f64 * 0.99) as i64;
                assert!(
                    r.best.value() >= floor,
                    "SEQ {} below 99% of optimum {}",
                    r.best.value(),
                    exact.solution.value()
                );
            } else {
                assert_eq!(
                    r.best.value(),
                    exact.solution.value(),
                    "{mode:?} missed the optimum"
                );
            }
        }
    }
}
