use mkp::greedy::dynamic_randomized_greedy;
use mkp::{Instance, Xoshiro256};
use parallel_tabu::{run_mode, Mode, RunConfig};

fn main() {
    let draws: Vec<(i64, [i64; 4])> = vec![
        (320, [310, 120, 60, 30]),
        (270, [240, 150, 80, 20]),
        (180, [90, 140, 120, 60]),
        (145, [160, 60, 40, 10]),
        (210, [200, 30, 10, 10]),
        (260, [120, 180, 140, 50]),
        (95, [40, 70, 60, 40]),
        (130, [110, 40, 20, 5]),
        (340, [280, 200, 90, 40]),
        (75, [30, 40, 40, 30]),
        (60, [50, 40, 20, 20]),
        (85, [60, 50, 20, 10]),
        (190, [150, 90, 70, 40]),
        (110, [90, 60, 30, 20]),
        (230, [100, 130, 130, 90]),
        (280, [330, 60, 20, 10]),
        (150, [60, 80, 90, 70]),
        (120, [80, 70, 40, 20]),
        (55, [45, 25, 15, 10]),
        (165, [120, 90, 60, 30]),
        (70, [55, 45, 20, 10]),
        (250, [210, 110, 70, 50]),
        (300, [260, 170, 110, 60]),
        (90, [50, 50, 40, 30]),
        (205, [170, 100, 60, 40]),
        (45, [20, 25, 25, 20]),
        (135, [100, 70, 40, 25]),
        (100, [85, 45, 25, 15]),
    ];
    let n = draws.len();
    let profits: Vec<i64> = draws.iter().map(|d| d.0).collect();
    let mut weights = vec![0i64; n * 4];
    for (j, d) in draws.iter().enumerate() {
        for i in 0..4 {
            weights[i * n + j] = d.1[i];
        }
    }
    let inst = Instance::new("cb", n, 4, profits, weights, vec![950, 900, 800, 700]).unwrap();
    let mut rng = Xoshiro256::seed_from_u64(1);
    let mut best_dg = 0;
    for _ in 0..20000 {
        best_dg = best_dg.max(dynamic_randomized_greedy(&inst, &mut rng, 6).value());
    }
    println!("best dynamic_randomized_greedy(20k): {best_dg}");
    for seed in [2024u64, 1, 2] {
        let cfg = RunConfig {
            p: 4,
            rounds: 8,
            ..RunConfig::new(1_000_000, seed)
        };
        let r = run_mode(&inst, Mode::CooperativeAdaptive, &cfg);
        print!("CTS2 s{seed}={} ", r.best.value());
    }
    println!();
}
