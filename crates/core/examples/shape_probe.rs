//! Probe of the Table 2 shape: mean best over seeds, per mode.
use mkp::generate::mk_suite;
use parallel_tabu::{run_mode, Mode, RunConfig};

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000_000);
    let rounds: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let seeds = [42u64, 1337, 2024];
    let modes = [
        Mode::Sequential,
        Mode::Independent,
        Mode::Cooperative,
        Mode::CooperativeAdaptive,
        Mode::Asynchronous,
    ];
    for inst in mk_suite() {
        print!("{}: ", inst.name());
        for mode in modes {
            let mut sum = 0f64;
            let mut regen = 0;
            for &seed in &seeds {
                let cfg = RunConfig {
                    p: 4,
                    rounds,
                    ..RunConfig::new(budget, seed)
                };
                let r = run_mode(&inst, mode, &cfg);
                sum += r.best.value() as f64;
                regen += r.regenerations;
            }
            print!(
                "{}={:.0}(rg{}) ",
                mode.label(),
                sum / seeds.len() as f64,
                regen
            );
        }
        println!();
    }
}
