//! Job-server integration: concurrent jobs time-sliced over one farm
//! must be bit-identical to solo runs, and the protocol's stream order
//! and admission/deadline verdicts must hold (DESIGN.md §14).

use mkp::generate::{gk_instance, GkSpec};
use mkp::Instance;
use parallel_tabu::{
    run_mode, serve, submit_job, Mode, ModeReport, RunConfig, ServeBackend, ServeConfig,
    SubmitEvent, SubmitOutcome, SubmitSpec,
};
use pvm_lite::Endpoint;
use std::time::Duration;

const PATIENCE: Duration = Duration::from_secs(60);

fn instance(seed: u64) -> Instance {
    gk_instance(
        "jobsrv-it",
        GkSpec {
            n: 60,
            m: 5,
            tightness: 0.5,
            seed,
        },
    )
}

fn endpoint(dir: &std::path::Path, name: &str) -> Endpoint {
    Endpoint::Unix(dir.join(name))
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mkp-jobsrv-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Assert the job server's answer matches a solo, uninterrupted run of
/// the same job — the bit-identity the parked-snapshot machinery owes.
fn assert_matches_solo(outcome: &SubmitOutcome, solo: &ModeReport) {
    let SubmitOutcome::Done(report) = outcome else {
        panic!("expected a completed job, got {outcome:?}");
    };
    assert_eq!(report.best_bits, *solo.best.bits());
    assert_eq!(report.best_value, solo.best.value());
    assert_eq!(report.round_best, solo.round_best);
    assert_eq!(report.total_moves, solo.total_moves);
    assert_eq!(report.total_evals, solo.total_evals);
    assert_eq!(report.regenerations, solo.regenerations);
    assert!(!report.degraded);
}

/// The events a client sees must be ordered: ACCEPTED first, then
/// incumbents with strictly increasing rounds.
fn assert_stream_order(events: &[SubmitEvent], rounds: u64) {
    assert!(
        matches!(events.first(), Some(SubmitEvent::Accepted { .. })),
        "first event must be the acceptance: {events:?}"
    );
    let mut last_round = 0;
    for ev in &events[1..] {
        let SubmitEvent::Incumbent { round, .. } = ev else {
            panic!("acceptance may only come first: {events:?}");
        };
        assert!(
            *round > last_round,
            "incumbent rounds must increase: {events:?}"
        );
        last_round = *round;
    }
    assert_eq!(
        last_round, rounds,
        "the final incumbent covers the full run"
    );
}

#[test]
fn interleaved_jobs_are_bit_identical_to_solo_runs() {
    let dir = tmp_dir("interleave");
    let ep = endpoint(&dir, "clients.sock");

    // Two cooperative jobs with different shapes, sliced one round at a
    // time over the same 4-worker pool. A 1-byte park-memory cap forces
    // every parked snapshot through the disk spool as well.
    let jobs = [
        (
            instance(11),
            Mode::CooperativeAdaptive,
            3usize,
            4usize,
            80_000u64,
            7u64,
        ),
        (
            instance(22),
            Mode::Cooperative,
            4usize,
            5usize,
            60_000u64,
            13u64,
        ),
    ];
    let solo: Vec<ModeReport> = jobs
        .iter()
        .map(|(inst, mode, p, rounds, budget, seed)| {
            let cfg = RunConfig {
                p: *p,
                rounds: *rounds,
                ..RunConfig::new(*budget, *seed)
            };
            run_mode(inst, *mode, &cfg)
        })
        .collect();

    let server = {
        let ep = ep.clone();
        let cfg = ServeConfig {
            quantum: 1,
            park_mem_cap: 1,
            spool_dir: dir.join("spool"),
            max_jobs: 2,
            patience: PATIENCE,
            ..ServeConfig::default()
        };
        std::thread::spawn(move || serve(&ep, ServeBackend::InProc { p: 4 }, &cfg))
    };

    let clients: Vec<_> = jobs
        .iter()
        .map(|(inst, mode, p, rounds, budget, seed)| {
            let ep = ep.clone();
            let inst = inst.clone();
            let spec = SubmitSpec {
                mode: *mode,
                p: *p,
                rounds: *rounds,
                budget_evals: *budget,
                seed: *seed,
                deadline: None,
            };
            std::thread::spawn(move || {
                let mut events = Vec::new();
                let outcome =
                    submit_job(&ep, &inst, &spec, PATIENCE, |ev| events.push(ev)).unwrap();
                (outcome, events)
            })
        })
        .collect();

    let results: Vec<_> = clients.into_iter().map(|h| h.join().unwrap()).collect();
    let stats = server.join().unwrap().unwrap();

    for ((outcome, events), (solo, (_, _, _, rounds, _, _))) in
        results.iter().zip(solo.iter().zip(jobs.iter()))
    {
        assert_matches_solo(outcome, solo);
        assert_stream_order(events, *rounds as u64);
    }

    // Each job ran one round per slice: the pool really was time-sliced,
    // and the tiny memory cap pushed parked snapshots through the spool.
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.done, 2);
    assert_eq!(stats.slices, (jobs[0].3 + jobs[1].3) as u64);
    assert!(stats.evictions > 0, "the 1-byte cap must evict: {stats:?}");
    assert_eq!(stats.restores, stats.evictions);
    let leftovers: Vec<_> = std::fs::read_dir(dir.join("spool")).unwrap().collect();
    assert!(leftovers.is_empty(), "spool must be drained: {leftovers:?}");
}

#[test]
fn deadline_and_admission_verdicts_are_reported() {
    let dir = tmp_dir("deadline");
    let ep = endpoint(&dir, "clients.sock");

    let server = {
        let ep = ep.clone();
        let cfg = ServeConfig {
            quantum: 1,
            spool_dir: dir.join("spool"),
            max_jobs: 1,
            patience: PATIENCE,
            ..ServeConfig::default()
        };
        std::thread::spawn(move || serve(&ep, ServeBackend::InProc { p: 2 }, &cfg))
    };

    let inst = instance(33);

    // Admission refusal: asks for more workers than the farm has. Does
    // not count toward max_jobs — the server keeps serving.
    let outcome = submit_job(
        &ep,
        &inst,
        &SubmitSpec {
            mode: Mode::Cooperative,
            p: 99,
            rounds: 4,
            budget_evals: 10_000,
            seed: 1,
            deadline: None,
        },
        PATIENCE,
        |_| {},
    )
    .unwrap();
    match outcome {
        SubmitOutcome::Rejected { reason } => {
            assert!(reason.contains("capacity"), "unexpected reason: {reason}")
        }
        other => panic!("expected an admission rejection, got {other:?}"),
    }

    // Deadline expiry: a multi-round job whose 1 ms deadline lapses
    // during its first slice is terminated at the next quantum boundary.
    let mut events = Vec::new();
    let outcome = submit_job(
        &ep,
        &inst,
        &SubmitSpec {
            mode: Mode::Cooperative,
            p: 2,
            rounds: 8,
            budget_evals: 400_000,
            seed: 2,
            deadline: Some(Duration::from_millis(1)),
        },
        PATIENCE,
        |ev| events.push(ev),
    )
    .unwrap();
    match outcome {
        SubmitOutcome::Rejected { reason } => {
            assert!(reason.contains("deadline"), "unexpected reason: {reason}")
        }
        other => panic!("expected a deadline rejection, got {other:?}"),
    }
    assert!(
        matches!(events.first(), Some(SubmitEvent::Accepted { .. })),
        "the job must be accepted before its deadline can expire: {events:?}"
    );

    let stats = server.join().unwrap().unwrap();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.done, 0);
}
