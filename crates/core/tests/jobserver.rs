//! Job-server integration: concurrent jobs time-sliced over one farm
//! must be bit-identical to solo runs, and the protocol's stream order
//! and admission/deadline verdicts must hold (DESIGN.md §14).

use mkp::generate::{gk_instance, GkSpec};
use mkp::Instance;
use parallel_tabu::{
    attach_job, run_mode, serve, submit_job, Mode, ModeReport, RunConfig, ServeBackend,
    ServeConfig, SubmitEvent, SubmitOutcome, SubmitSpec,
};
use pvm_lite::Endpoint;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const PATIENCE: Duration = Duration::from_secs(60);

fn instance(seed: u64) -> Instance {
    gk_instance(
        "jobsrv-it",
        GkSpec {
            n: 60,
            m: 5,
            tightness: 0.5,
            seed,
        },
    )
}

fn endpoint(dir: &std::path::Path, name: &str) -> Endpoint {
    Endpoint::Unix(dir.join(name))
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mkp-jobsrv-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Assert the job server's answer matches a solo, uninterrupted run of
/// the same job — the bit-identity the parked-snapshot machinery owes.
fn assert_matches_solo(outcome: &SubmitOutcome, solo: &ModeReport) {
    let SubmitOutcome::Done(report) = outcome else {
        panic!("expected a completed job, got {outcome:?}");
    };
    assert_eq!(report.best_bits, *solo.best.bits());
    assert_eq!(report.best_value, solo.best.value());
    assert_eq!(report.round_best, solo.round_best);
    assert_eq!(report.total_moves, solo.total_moves);
    assert_eq!(report.total_evals, solo.total_evals);
    assert_eq!(report.regenerations, solo.regenerations);
    assert!(!report.degraded);
}

/// The events a client sees must be ordered: ACCEPTED first, then
/// incumbents with strictly increasing rounds.
fn assert_stream_order(events: &[SubmitEvent], rounds: u64) {
    assert!(
        matches!(events.first(), Some(SubmitEvent::Accepted { .. })),
        "first event must be the acceptance: {events:?}"
    );
    let mut last_round = 0;
    for ev in &events[1..] {
        let SubmitEvent::Incumbent { round, .. } = ev else {
            panic!("acceptance may only come first: {events:?}");
        };
        assert!(
            *round > last_round,
            "incumbent rounds must increase: {events:?}"
        );
        last_round = *round;
    }
    assert_eq!(
        last_round, rounds,
        "the final incumbent covers the full run"
    );
}

#[test]
fn interleaved_jobs_are_bit_identical_to_solo_runs() {
    let dir = tmp_dir("interleave");
    let ep = endpoint(&dir, "clients.sock");

    // Two cooperative jobs with different shapes, sliced one round at a
    // time over the same 4-worker pool. A 1-byte park-memory cap forces
    // every parked snapshot through the disk spool as well.
    let jobs = [
        (
            instance(11),
            Mode::CooperativeAdaptive,
            3usize,
            4usize,
            80_000u64,
            7u64,
        ),
        (
            instance(22),
            Mode::Cooperative,
            4usize,
            5usize,
            60_000u64,
            13u64,
        ),
    ];
    let solo: Vec<ModeReport> = jobs
        .iter()
        .map(|(inst, mode, p, rounds, budget, seed)| {
            let cfg = RunConfig {
                p: *p,
                rounds: *rounds,
                ..RunConfig::new(*budget, *seed)
            };
            run_mode(inst, *mode, &cfg)
        })
        .collect();

    let server = {
        let ep = ep.clone();
        let cfg = ServeConfig {
            quantum: 1,
            park_mem_cap: 1,
            spool_dir: dir.join("spool"),
            max_jobs: 2,
            patience: PATIENCE,
            ..ServeConfig::default()
        };
        std::thread::spawn(move || serve(&ep, ServeBackend::InProc { p: 4 }, &cfg))
    };

    let clients: Vec<_> = jobs
        .iter()
        .map(|(inst, mode, p, rounds, budget, seed)| {
            let ep = ep.clone();
            let inst = inst.clone();
            let spec = SubmitSpec {
                mode: *mode,
                p: *p,
                rounds: *rounds,
                budget_evals: *budget,
                seed: *seed,
                deadline: None,
            };
            std::thread::spawn(move || {
                let mut events = Vec::new();
                let outcome =
                    submit_job(&ep, &inst, &spec, PATIENCE, |ev| events.push(ev)).unwrap();
                (outcome, events)
            })
        })
        .collect();

    let results: Vec<_> = clients.into_iter().map(|h| h.join().unwrap()).collect();
    let stats = server.join().unwrap().unwrap();

    for ((outcome, events), (solo, (_, _, _, rounds, _, _))) in
        results.iter().zip(solo.iter().zip(jobs.iter()))
    {
        assert_matches_solo(outcome, solo);
        assert_stream_order(events, *rounds as u64);
    }

    // Each job ran one round per slice: the pool really was time-sliced,
    // and the tiny memory cap pushed parked snapshots through the spool.
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.done, 2);
    assert_eq!(stats.slices, (jobs[0].3 + jobs[1].3) as u64);
    assert!(stats.evictions > 0, "the 1-byte cap must evict: {stats:?}");
    assert_eq!(stats.restores, stats.evictions);
    let leftovers: Vec<_> = std::fs::read_dir(dir.join("spool")).unwrap().collect();
    assert!(leftovers.is_empty(), "spool must be drained: {leftovers:?}");
}

#[test]
fn deadline_and_admission_verdicts_are_reported() {
    let dir = tmp_dir("deadline");
    let ep = endpoint(&dir, "clients.sock");

    let server = {
        let ep = ep.clone();
        let cfg = ServeConfig {
            quantum: 1,
            spool_dir: dir.join("spool"),
            max_jobs: 1,
            patience: PATIENCE,
            ..ServeConfig::default()
        };
        std::thread::spawn(move || serve(&ep, ServeBackend::InProc { p: 2 }, &cfg))
    };

    let inst = instance(33);

    // Admission refusal: asks for more workers than the farm has. Does
    // not count toward max_jobs — the server keeps serving.
    let outcome = submit_job(
        &ep,
        &inst,
        &SubmitSpec {
            mode: Mode::Cooperative,
            p: 99,
            rounds: 4,
            budget_evals: 10_000,
            seed: 1,
            deadline: None,
        },
        PATIENCE,
        |_| {},
    )
    .unwrap();
    match outcome {
        SubmitOutcome::Rejected { reason } => {
            assert!(reason.contains("capacity"), "unexpected reason: {reason}")
        }
        other => panic!("expected an admission rejection, got {other:?}"),
    }

    // Deadline expiry: a multi-round job whose 1 ms deadline lapses
    // during its first slice is terminated at the next quantum boundary.
    let mut events = Vec::new();
    let outcome = submit_job(
        &ep,
        &inst,
        &SubmitSpec {
            mode: Mode::Cooperative,
            p: 2,
            rounds: 8,
            budget_evals: 400_000,
            seed: 2,
            deadline: Some(Duration::from_millis(1)),
        },
        PATIENCE,
        |ev| events.push(ev),
    )
    .unwrap();
    match outcome {
        SubmitOutcome::Rejected { reason } => {
            assert!(reason.contains("deadline"), "unexpected reason: {reason}")
        }
        other => panic!("expected a deadline rejection, got {other:?}"),
    }
    assert!(
        matches!(events.first(), Some(SubmitEvent::Accepted { .. })),
        "the job must be accepted before its deadline can expire: {events:?}"
    );

    let stats = server.join().unwrap().unwrap();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.done, 0);
}

/// Tentpole: a drained server leaves its in-flight job parked durably
/// (journal + spool under `state_dir`), a restarted server re-adopts
/// it, and the client — whose idempotent token resubmit rides out the
/// outage — receives a result bit-identical to an uninterrupted solo
/// run. The kill-9 variant of this lives in `scripts/ci.sh`; here the
/// outage is a graceful drain so the test stays in-process.
#[test]
fn drained_server_restarts_and_finishes_the_job_bit_identically() {
    let dir = tmp_dir("drain-restart");
    let ep = endpoint(&dir, "clients.sock");
    let state_dir = dir.join("state");

    let (mode, p, rounds, budget, seed) = (Mode::Cooperative, 2usize, 24usize, 480_000u64, 5u64);
    let solo = run_mode(
        &instance(44),
        mode,
        &RunConfig {
            p,
            rounds,
            ..RunConfig::new(budget, seed)
        },
    );

    let drain = Arc::new(AtomicBool::new(false));
    let server1 = {
        let ep = ep.clone();
        let cfg = ServeConfig {
            quantum: 1,
            state_dir: Some(state_dir.clone()),
            drain: Some(Arc::clone(&drain)),
            patience: PATIENCE,
            ..ServeConfig::default()
        };
        std::thread::spawn(move || serve(&ep, ServeBackend::InProc { p: 2 }, &cfg))
    };

    // The client pulls the plug itself: the first incumbent proves a
    // parked snapshot is on disk, so it flips the drain flag — with 23
    // slices still to go, the server cannot finish before draining.
    let client = {
        let ep = ep.clone();
        let inst = instance(44);
        let drain = Arc::clone(&drain);
        let spec = SubmitSpec {
            mode,
            p,
            rounds,
            budget_evals: budget,
            seed,
            deadline: None,
        };
        std::thread::spawn(move || {
            let mut events = Vec::new();
            let outcome = submit_job(&ep, &inst, &spec, PATIENCE, |ev| {
                if matches!(ev, SubmitEvent::Incumbent { .. }) {
                    drain.store(true, Ordering::Relaxed);
                }
                events.push(ev);
            })
            .unwrap();
            (outcome, events)
        })
    };

    let stats1 = server1.join().unwrap().unwrap();
    assert!(stats1.drained, "server must exit through the drain");
    assert_eq!(stats1.accepted, 1);
    assert_eq!(stats1.done, 0, "the job must still be in flight");
    assert!(
        state_dir.join("spool").join("job-1.snap").exists(),
        "a drained in-flight job leaves its snapshot in the spool"
    );
    assert!(state_dir.join("journal.mkpj").exists());

    // Restart on the same state dir: the journal replays, the spool is
    // re-adopted, and the job runs to completion. The restarted server
    // must outlive the client's re-dial — a recovered job is detached
    // and can finish before its owner reattaches, with the retained
    // DONE frame answering the late resubmit — so it drains only after
    // the client has its result.
    let drain2 = Arc::new(AtomicBool::new(false));
    let server2 = {
        let ep = ep.clone();
        let cfg = ServeConfig {
            quantum: 1,
            state_dir: Some(state_dir.clone()),
            drain: Some(Arc::clone(&drain2)),
            patience: PATIENCE,
            ..ServeConfig::default()
        };
        std::thread::spawn(move || serve(&ep, ServeBackend::InProc { p: 2 }, &cfg))
    };

    let (outcome, events) = client.join().unwrap();
    drain2.store(true, Ordering::Relaxed);
    let stats2 = server2.join().unwrap().unwrap();
    assert_matches_solo(&outcome, &solo);
    assert!(
        matches!(events.first(), Some(SubmitEvent::Accepted { .. })),
        "acceptance still leads the stream: {events:?}"
    );
    assert_eq!(stats2.recovered, 1, "the journal must re-admit the job");
    assert_eq!(stats2.done, 1);
    assert_eq!(stats2.spool_corrupt, 0);
}

/// Satellite: with a 1-slice quantum, a parked job whose deadline
/// lapses while *another* job holds the farm is expired at the
/// scheduler tick — promptly, and without ever getting another slice —
/// not at its own far-away turn.
#[test]
fn parked_job_past_its_deadline_expires_at_the_tick() {
    let dir = tmp_dir("tick-expiry");
    let ep = endpoint(&dir, "clients.sock");

    let server = {
        let ep = ep.clone();
        let cfg = ServeConfig {
            quantum: 1,
            spool_dir: dir.join("spool"),
            max_jobs: 2,
            patience: PATIENCE,
            ..ServeConfig::default()
        };
        std::thread::spawn(move || serve(&ep, ServeBackend::InProc { p: 2 }, &cfg))
    };

    // Job A hogs the farm with ten fat slices.
    let job_a = {
        let ep = ep.clone();
        let inst = instance(55);
        let spec = SubmitSpec {
            mode: Mode::Cooperative,
            p: 2,
            rounds: 10,
            budget_evals: 2_000_000,
            seed: 3,
            deadline: None,
        };
        std::thread::spawn(move || submit_job(&ep, &inst, &spec, PATIENCE, |_| {}).unwrap())
    };
    // Give A's submission a head start in the event queue.
    std::thread::sleep(Duration::from_millis(50));

    // Job B queues behind A and its 1 ms deadline lapses during A's
    // current slice; the tick check must expire it *between* turns.
    let outcome_b = submit_job(
        &ep,
        &instance(66),
        &SubmitSpec {
            mode: Mode::Cooperative,
            p: 2,
            rounds: 4,
            budget_evals: 100_000,
            seed: 4,
            deadline: Some(Duration::from_millis(1)),
        },
        PATIENCE,
        |_| {},
    )
    .unwrap();

    match outcome_b {
        SubmitOutcome::Rejected { reason } => assert!(
            reason.contains("between turns"),
            "expiry must come from the scheduler tick, not job B's own turn: {reason}"
        ),
        other => panic!("expected a deadline rejection, got {other:?}"),
    }
    let outcome_a = job_a.join().unwrap();
    assert!(matches!(outcome_a, SubmitOutcome::Done(_)), "{outcome_a:?}");

    let stats = server.join().unwrap().unwrap();
    assert_eq!(stats.expired, 1);
    assert_eq!(
        stats.slices, 10,
        "the expired job must never have gotten a slice: {stats:?}"
    );
}

/// Satellite: a spooled snapshot that rots on disk is detected by its
/// checksum, surfaced as a specific `SpoolCorrupt` verdict, and counted
/// in telemetry — it costs that job, not the server.
#[test]
fn bit_flipped_spool_file_is_a_spool_corrupt_verdict() {
    let dir = tmp_dir("spool-corrupt");
    let ep = endpoint(&dir, "clients.sock");
    let state_dir = dir.join("state");

    let drain = Arc::new(AtomicBool::new(false));
    let server1 = {
        let ep = ep.clone();
        let cfg = ServeConfig {
            quantum: 1,
            state_dir: Some(state_dir.clone()),
            drain: Some(Arc::clone(&drain)),
            patience: PATIENCE,
            ..ServeConfig::default()
        };
        std::thread::spawn(move || serve(&ep, ServeBackend::InProc { p: 2 }, &cfg))
    };

    let client = {
        let ep = ep.clone();
        let inst = instance(77);
        let drain = Arc::clone(&drain);
        let spec = SubmitSpec {
            mode: Mode::Cooperative,
            p: 2,
            rounds: 24,
            budget_evals: 480_000,
            seed: 6,
            deadline: None,
        };
        std::thread::spawn(move || {
            submit_job(&ep, &inst, &spec, PATIENCE, |ev| {
                if matches!(ev, SubmitEvent::Incumbent { .. }) {
                    drain.store(true, Ordering::Relaxed);
                }
            })
            .unwrap()
        })
    };

    let stats1 = server1.join().unwrap().unwrap();
    assert!(stats1.drained);
    assert_eq!(stats1.done, 0);

    // Rot sets in while the server is down.
    let spool_file = state_dir.join("spool").join("job-1.snap");
    let mut bytes = std::fs::read(&spool_file).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&spool_file, &bytes).unwrap();

    let drain2 = Arc::new(AtomicBool::new(false));
    let server2 = {
        let ep = ep.clone();
        let cfg = ServeConfig {
            quantum: 1,
            state_dir: Some(state_dir.clone()),
            drain: Some(Arc::clone(&drain2)),
            patience: PATIENCE,
            ..ServeConfig::default()
        };
        std::thread::spawn(move || serve(&ep, ServeBackend::InProc { p: 2 }, &cfg))
    };

    let outcome = client.join().unwrap();
    drain2.store(true, Ordering::Relaxed);
    let stats2 = server2.join().unwrap().unwrap();
    match outcome {
        SubmitOutcome::Rejected { reason } => assert!(
            reason.starts_with("SpoolCorrupt:"),
            "corruption must get its specific verdict: {reason}"
        ),
        other => panic!("expected a SpoolCorrupt rejection, got {other:?}"),
    }
    assert_eq!(stats2.recovered, 1);
    assert_eq!(stats2.spool_corrupt, 1, "{stats2:?}");
    assert_eq!(stats2.done, 0);
}

/// An ATTACH for a job this server never admitted is answered with a
/// specific rejection, not silence.
#[test]
fn attach_to_an_unknown_job_id_is_rejected() {
    let dir = tmp_dir("attach-unknown");
    let ep = endpoint(&dir, "clients.sock");

    let drain = Arc::new(AtomicBool::new(false));
    let server = {
        let ep = ep.clone();
        let cfg = ServeConfig {
            spool_dir: dir.join("spool"),
            drain: Some(Arc::clone(&drain)),
            patience: PATIENCE,
            ..ServeConfig::default()
        };
        std::thread::spawn(move || serve(&ep, ServeBackend::InProc { p: 2 }, &cfg))
    };

    let outcome = attach_job(&ep, 4242, PATIENCE, |_| {}).unwrap();
    match outcome {
        SubmitOutcome::Rejected { reason } => assert!(
            reason.contains("unknown job id 4242"),
            "unexpected reason: {reason}"
        ),
        other => panic!("expected an unknown-id rejection, got {other:?}"),
    }

    drain.store(true, Ordering::Relaxed);
    let stats = server.join().unwrap().unwrap();
    assert!(stats.drained);
    assert_eq!(stats.accepted, 0);
}
