//! Criterion microbenches (M1) for the hot kernels: the move operator at
//! several instance sizes, the intensification procedures, the LP solve,
//! the exact proof, the wire codec, and the Hamming kernel the master's
//! SGP leans on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mkp::eval::Ratios;
use mkp::generate::{fp_instance, gk_instance, GkSpec};
use mkp::greedy::greedy;
use mkp::{BitVec, Xoshiro256};
use mkp_tabu::history::History;
use mkp_tabu::intensify::swap_intensification;
use mkp_tabu::moves::{apply_move, MoveStats};
use mkp_tabu::oscillate::strategic_oscillation;
use mkp_tabu::tabu_list::Recency;

fn bench_moves(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply_move");
    for &(n, m) in &[(100usize, 5usize), (250, 10), (500, 25)] {
        let inst = gk_instance("b", GkSpec { n, m, tightness: 0.5, seed: 1 });
        let ratios = Ratios::new(&inst);
        group.bench_function(BenchmarkId::from_parameter(format!("{m}x{n}")), |b| {
            let mut sol = greedy(&inst, &ratios);
            let mut tabu = Recency::new(inst.n(), 15);
            let mut stats = MoveStats::default();
            let mut rng = Xoshiro256::seed_from_u64(2);
            let mut now = 0u64;
            b.iter(|| {
                apply_move(
                    &inst, &ratios, &mut sol, &mut tabu, now, 2, i64::MAX, 0.1, &mut rng,
                    &mut stats,
                );
                now += 1;
                black_box(sol.value())
            });
        });
    }
    group.finish();
}

fn bench_intensification(c: &mut Criterion) {
    let inst = gk_instance("b", GkSpec { n: 250, m: 10, tightness: 0.5, seed: 3 });
    let ratios = Ratios::new(&inst);
    let base = greedy(&inst, &ratios);
    c.bench_function("swap_intensification 10x250", |b| {
        b.iter(|| {
            let mut sol = base.clone();
            swap_intensification(&inst, &mut sol, &mut MoveStats::default());
            black_box(sol.value())
        });
    });
    c.bench_function("strategic_oscillation 10x250 depth6", |b| {
        b.iter(|| {
            let mut sol = base.clone();
            strategic_oscillation(&inst, &ratios, &mut sol, 6, &mut MoveStats::default());
            black_box(sol.value())
        });
    });
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_relaxation");
    for &(n, m) in &[(100usize, 5usize), (250, 25), (500, 25)] {
        let inst = gk_instance("b", GkSpec { n, m, tightness: 0.5, seed: 4 });
        group.bench_function(BenchmarkId::from_parameter(format!("{m}x{n}")), |b| {
            b.iter(|| black_box(mkp_exact::bounds::lp_bound(&inst).unwrap().objective));
        });
    }
    group.finish();
}

fn bench_exact(c: &mut Criterion) {
    let inst = fp_instance(20); // mid-size WEISH-like
    c.bench_function("branch_bound fp21", |b| {
        b.iter(|| {
            let r = mkp_exact::solve(&inst, &mkp_exact::BbConfig::default());
            black_box(r.solution.value())
        });
    });
}

fn bench_codec(c: &mut Criterion) {
    use parallel_tabu::messages::ReportMsg;
    use pvm_lite::Wire;
    let bits = BitVec::from_bools((0..500).map(|j| j % 3 == 0));
    let msg = ReportMsg {
        best: bits.clone(),
        elite: vec![bits.clone(); 8],
        initial_value: 1,
        best_value: 2,
        moves: 3,
        evals: 4,
    };
    c.bench_function("codec report 500-bit x9", |b| {
        b.iter(|| {
            let bytes = msg.to_bytes();
            black_box(ReportMsg::from_bytes(&bytes).unwrap().best_value)
        });
    });
}

fn bench_hamming(c: &mut Criterion) {
    let a = BitVec::from_bools((0..500).map(|j| j % 3 == 0));
    let b_ = BitVec::from_bools((0..500).map(|j| j % 5 == 0));
    c.bench_function("hamming 500 bits", |b| {
        b.iter(|| black_box(a.hamming(&b_)));
    });
}

fn bench_greedy(c: &mut Criterion) {
    let inst = gk_instance("b", GkSpec { n: 500, m: 25, tightness: 0.5, seed: 5 });
    let ratios = Ratios::new(&inst);
    c.bench_function("greedy 25x500", |b| {
        b.iter(|| black_box(greedy(&inst, &ratios).value()));
    });
}

fn bench_history(c: &mut Criterion) {
    let inst = gk_instance("b", GkSpec { n: 500, m: 25, tightness: 0.5, seed: 6 });
    let ratios = Ratios::new(&inst);
    let sol = greedy(&inst, &ratios);
    c.bench_function("history record 25x500", |b| {
        let mut h = History::new(inst.n());
        b.iter(|| {
            h.record(&sol);
            black_box(h.iterations())
        });
    });
}

fn bench_neighborhood(c: &mut Criterion) {
    use mkp_tabu::neighborhood::best_of_k_move;
    let inst = gk_instance("b", GkSpec { n: 250, m: 10, tightness: 0.5, seed: 7 });
    let ratios = Ratios::new(&inst);
    for width in [2usize, 4] {
        c.bench_function(&format!("best_of_{width}_move 10x250"), |b| {
            let mut sol = greedy(&inst, &ratios);
            let mut tabu = Recency::new(inst.n(), 15);
            let mut stats = MoveStats::default();
            let mut rng = Xoshiro256::seed_from_u64(8);
            let mut now = 0u64;
            b.iter(|| {
                best_of_k_move(
                    &inst, &ratios, &mut sol, &mut tabu, now, 2, i64::MAX, 0.1, width,
                    false, &mut rng, &mut stats,
                );
                now += 1;
                black_box(sol.value())
            });
        });
    }
}

fn bench_rem(c: &mut Criterion) {
    use mkp_tabu::rem::ReverseElimination;
    use mkp_tabu::tabu_list::TabuMemory;
    // Cost of the backward RCS walk as the running list grows — the
    // overhead the paper cites for rejecting REM (§4.1).
    for depth in [100usize, 1000] {
        c.bench_function(&format!("rem recompute depth={depth}"), |b| {
            let mut rem = ReverseElimination::new(500, depth);
            // Preload a long history of 3-toggle moves.
            for t in 0..depth as u64 {
                rem.observe_solution(
                    t,
                    &[(t as usize * 7) % 500, (t as usize * 13) % 500, (t as usize * 29) % 500],
                    t,
                );
            }
            let mut t = depth as u64;
            b.iter(|| {
                rem.observe_solution(t, &[(t as usize * 7) % 500], t);
                t += 1;
                black_box(rem.is_tabu(3, t))
            });
        });
    }
}

fn bench_dynamic_greedy(c: &mut Criterion) {
    use mkp::greedy::dynamic_greedy_fill;
    use mkp::Solution;
    let inst = gk_instance("b", GkSpec { n: 250, m: 10, tightness: 0.5, seed: 9 });
    c.bench_function("dynamic_greedy_fill 10x250", |b| {
        b.iter(|| {
            let mut sol = Solution::empty(&inst);
            dynamic_greedy_fill(&inst, &mut sol);
            black_box(sol.value())
        });
    });
}

fn bench_restriction(c: &mut Criterion) {
    use mkp::restrict::Restriction;
    let inst = gk_instance("b", GkSpec { n: 500, m: 25, tightness: 0.5, seed: 10 });
    let ratios = Ratios::new(&inst);
    let split: Vec<usize> = ratios.by_utility_desc()[100..104].to_vec();
    c.bench_function("restriction build+lift 25x500", |b| {
        b.iter(|| {
            let r = Restriction::new(&inst, &split[..2], &split[2..]).unwrap();
            let sub_sol = greedy(r.instance(), &Ratios::new(r.instance()));
            black_box(r.lift(&inst, &sub_sol).value())
        });
    });
}

criterion_group!(
    benches,
    bench_moves,
    bench_intensification,
    bench_lp,
    bench_exact,
    bench_codec,
    bench_hamming,
    bench_greedy,
    bench_history,
    bench_neighborhood,
    bench_rem,
    bench_dynamic_greedy,
    bench_restriction,
);
criterion_main!(benches);
