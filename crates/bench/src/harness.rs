//! In-tree microbenchmark harness (the registry `criterion` replacement).
//!
//! Martins-style statistical benchmarking for the hot kernels without a
//! framework dependency: per benchmark the harness **warms up**, picks a
//! fixed per-sample iteration count so one sample lasts roughly
//! [`Options::target_sample`], then times [`Options::samples`] batches and
//! reports min / mean / **median / p95** per-iteration nanoseconds. Every
//! run also writes a machine-readable JSON report (consumed by
//! `scripts/run_experiments.sh` and the CI bench smoke) to `results/`.
//!
//! ```no_run
//! use mkp_bench::harness::{black_box, Harness};
//!
//! let mut h = Harness::from_args();
//! h.bench("sum 0..1000", || black_box((0u64..1000).sum::<u64>()));
//! h.finish();
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timing options. `--smoke` swaps in [`Options::smoke`], which keeps
/// every benchmark to a handful of iterations so CI can run the full
/// suite in seconds.
#[derive(Debug, Clone)]
pub struct Options {
    /// Minimum wall time spent warming each benchmark before timing.
    pub warmup: Duration,
    /// Number of timed samples (batches).
    pub samples: usize,
    /// Calibration target for one sample's duration.
    pub target_sample: Duration,
    /// Hard cap on iterations per sample (guards degenerate calibration).
    pub max_iters_per_sample: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            warmup: Duration::from_millis(300),
            samples: 30,
            target_sample: Duration::from_millis(20),
            max_iters_per_sample: 1_000_000,
        }
    }
}

impl Options {
    /// Reduced effort for CI smoke runs. Sized so the whole kernels suite
    /// finishes in seconds. A smoke run gains its statistical robustness
    /// from [`Harness::suite_passes`] (several interleaved passes over
    /// the whole suite, samples merged per bench) rather than from many
    /// consecutive samples: on shared hosts the dominant noise is a
    /// slow/fast *regime* lasting ~0.1–1 s, so consecutive samples all
    /// see the same draw while passes separated by the rest of the suite
    /// see independent ones.
    pub fn smoke() -> Self {
        Options {
            warmup: Duration::from_millis(20),
            samples: 5,
            target_sample: Duration::from_millis(3),
            max_iters_per_sample: 100_000,
        }
    }
}

/// One benchmark's timing summary. All figures are per-iteration
/// nanoseconds computed from batch times divided by the batch's
/// iteration count.
#[derive(Debug, Clone)]
pub struct Report {
    /// Benchmark name as registered.
    pub name: String,
    /// Iterations per timed sample (fixed after calibration).
    pub iters_per_sample: u64,
    /// Per-iteration time of each sample, in nanoseconds.
    pub sample_ns: Vec<f64>,
    /// Fastest sample.
    pub min_ns: f64,
    /// Arithmetic mean over samples.
    pub mean_ns: f64,
    /// Median over samples (the headline figure; robust to OS jitter).
    pub median_ns: f64,
    /// 95th percentile over samples.
    pub p95_ns: f64,
}

/// Percentile by linear interpolation on the sorted sample (the common
/// "exclusive" definition is overkill for 30 samples; nearest-rank with
/// interpolation matches what criterion reported closely enough to keep
/// historical numbers comparable).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

fn summarize(name: &str, iters: u64, mut sample_ns: Vec<f64>) -> Report {
    sample_ns.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let min_ns = sample_ns[0];
    let mean_ns = sample_ns.iter().sum::<f64>() / sample_ns.len() as f64;
    let median_ns = percentile(&sample_ns, 0.5);
    let p95_ns = percentile(&sample_ns, 0.95);
    Report {
        name: name.to_string(),
        iters_per_sample: iters,
        sample_ns,
        min_ns,
        mean_ns,
        median_ns,
        p95_ns,
    }
}

/// Benchmark registry + runner. Construct with [`Harness::from_args`] in
/// a binary (parses `--smoke`, `--json <path>`, and name filters) or with
/// [`Harness::new`] for programmatic use, register closures with
/// [`Harness::bench`], then [`Harness::finish`] to print the table and
/// write the JSON report.
pub struct Harness {
    options: Options,
    json_path: Option<String>,
    filters: Vec<String>,
    smoke: bool,
    reports: Vec<Report>,
}

impl Harness {
    /// Harness with explicit options and no JSON output.
    pub fn new(options: Options) -> Self {
        Harness {
            options,
            json_path: None,
            filters: Vec::new(),
            smoke: false,
            reports: Vec::new(),
        }
    }

    /// Parse process arguments:
    ///
    /// * `--smoke` — use [`Options::smoke`];
    /// * `--json <path>` — JSON report destination (default
    ///   `results/kernels.json`);
    /// * any other argument — substring filter on benchmark names
    ///   (multiple filters OR together).
    pub fn from_args() -> Self {
        let mut smoke = false;
        let mut json_path = Some("results/kernels.json".to_string());
        let mut filters = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => smoke = true,
                "--json" => {
                    json_path = Some(args.next().unwrap_or_else(|| {
                        eprintln!("--json requires a path");
                        std::process::exit(2);
                    }));
                }
                // `cargo bench` compatibility: ignore harness flags.
                "--bench" => {}
                other => filters.push(other.to_string()),
            }
        }
        let options = if smoke {
            Options::smoke()
        } else {
            Options::default()
        };
        Harness {
            options,
            json_path,
            filters,
            smoke,
            reports: Vec::new(),
        }
    }

    /// Where the JSON report will be written (`None` disables it).
    pub fn set_json_path(&mut self, path: Option<String>) {
        self.json_path = path;
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f))
    }

    /// How many times a suite binary should run its whole registration
    /// sequence. Smoke mode asks for several passes: re-registering a
    /// name merges the new samples into the existing report, so each
    /// bench's median mixes noise-regime draws separated in time by a
    /// full pass over the suite — what makes the bench-diff gate's
    /// cross-run comparison stable on shared hardware.
    pub fn suite_passes(&self) -> usize {
        if self.smoke {
            3
        } else {
            1
        }
    }

    /// Register and immediately run one benchmark. Re-registering the
    /// same name (a later suite pass) appends the new samples to the
    /// existing report instead of creating a duplicate entry.
    pub fn bench<R, F: FnMut() -> R>(&mut self, name: &str, mut f: F) {
        if !self.selected(name) {
            return;
        }
        // Warmup: run until the warmup window has elapsed (≥ 1 iteration),
        // remembering the throughput for calibration.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_iters == 0 || warmup_start.elapsed() < self.options.warmup {
            black_box(f());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

        // Fixed-iteration calibration: one sample ≈ target_sample.
        let iters = ((self.options.target_sample.as_secs_f64() / per_iter.max(1e-9)) as u64)
            .clamp(1, self.options.max_iters_per_sample);

        let mut sample_ns = Vec::with_capacity(self.options.samples);
        for _ in 0..self.options.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            sample_ns.push(elapsed.as_nanos() as f64 / iters as f64);
        }
        // Per-iteration sample times are comparable across passes even if
        // recalibration picked a different iteration count, so merging is
        // a plain concatenation followed by a re-summarize.
        if let Some(prev) = self.reports.iter_mut().find(|r| r.name == name) {
            let mut merged = prev.sample_ns.clone();
            merged.extend_from_slice(&sample_ns);
            *prev = summarize(name, prev.iters_per_sample.max(iters), merged);
            return;
        }
        let report = summarize(name, iters, sample_ns);
        eprintln!(
            "{:<44} median {:>12}  p95 {:>12}  ({} iters/sample × {} samples)",
            report.name,
            fmt_ns(report.median_ns),
            fmt_ns(report.p95_ns),
            report.iters_per_sample,
            report.sample_ns.len(),
        );
        self.reports.push(report);
    }

    /// All completed reports, in registration order.
    pub fn reports(&self) -> &[Report] {
        &self.reports
    }

    /// Render the summary table, write the JSON report, and return the
    /// reports. Exits the process with an error only on JSON I/O failure.
    pub fn finish(self) -> Vec<Report> {
        println!("{}", render_table(&self.reports));
        if let Some(path) = &self.json_path {
            if let Some(dir) = std::path::Path::new(path).parent() {
                if !dir.as_os_str().is_empty() {
                    if let Err(e) = std::fs::create_dir_all(dir) {
                        eprintln!("cannot create {}: {e}", dir.display());
                        std::process::exit(1);
                    }
                }
            }
            let json = to_json(&self.reports, self.smoke);
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("json report: {path}");
        }
        self.reports
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn render_table(reports: &[Report]) -> String {
    let mut t = crate::TextTable::new(vec![
        "benchmark",
        "median",
        "p95",
        "mean",
        "min",
        "iters/sample",
    ]);
    for r in reports {
        t.row(vec![
            r.name.clone(),
            fmt_ns(r.median_ns),
            fmt_ns(r.p95_ns),
            fmt_ns(r.mean_ns),
            fmt_ns(r.min_ns),
            r.iters_per_sample.to_string(),
        ]);
    }
    t.render()
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize reports as a stable, dependency-free JSON document.
fn to_json(reports: &[Report], smoke: bool) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"mkp-bench/kernels/v1\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    out.push_str("  \"benches\": [\n");
    for (k, r) in reports.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"iters_per_sample\": {}, \"samples\": {}, \
             \"min_ns\": {:.1}, \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"p95_ns\": {:.1}, \
             \"sample_ns\": [{}]}}",
            json_escape(&r.name),
            r.iters_per_sample,
            r.sample_ns.len(),
            r.min_ns,
            r.mean_ns,
            r.median_ns,
            r.p95_ns,
            r.sample_ns
                .iter()
                .map(|x| format!("{x:.1}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str(if k + 1 < reports.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert_eq!(percentile(&xs, 0.5), 2.5);
        assert_eq!(percentile(&[7.0], 0.95), 7.0);
    }

    #[test]
    fn summarize_orders_and_aggregates() {
        let r = summarize("x", 10, vec![30.0, 10.0, 20.0]);
        assert_eq!(r.min_ns, 10.0);
        assert_eq!(r.median_ns, 20.0);
        assert!((r.mean_ns - 20.0).abs() < 1e-12);
        assert!(r.p95_ns <= 30.0 && r.p95_ns >= 20.0);
        assert_eq!(r.sample_ns, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn bench_runs_and_reports() {
        let mut h = Harness::new(Options {
            warmup: Duration::from_millis(1),
            samples: 3,
            target_sample: Duration::from_micros(200),
            max_iters_per_sample: 100,
        });
        let mut calls = 0u64;
        h.bench("count", || {
            calls += 1;
            black_box(calls)
        });
        assert_eq!(h.reports().len(), 1);
        let r = &h.reports()[0];
        assert!(r.iters_per_sample >= 1 && r.iters_per_sample <= 100);
        assert_eq!(r.sample_ns.len(), 3);
        assert!(r.median_ns > 0.0);
        assert!(calls >= 3, "benchmark closure never ran");
    }

    #[test]
    fn filters_select_by_substring() {
        let mut h = Harness::new(Options::smoke());
        h.filters = vec!["lp".to_string()];
        h.bench("apply_move 5x100", || black_box(1));
        h.bench("lp_relaxation 5x100", || black_box(1));
        assert_eq!(h.reports().len(), 1);
        assert_eq!(h.reports()[0].name, "lp_relaxation 5x100");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let reports = vec![summarize("a \"quoted\" name", 2, vec![1.5, 2.5])];
        let json = to_json(&reports, true);
        assert!(json.contains("\"schema\": \"mkp-bench/kernels/v1\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"smoke\": true"));
        // Balanced braces/brackets (cheap structural sanity).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escape_controls() {
        assert_eq!(json_escape("a\nb"), "a\\nb");
        assert_eq!(json_escape("t\tq\"s\\"), "t\\tq\\\"s\\\\");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
