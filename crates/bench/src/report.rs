//! Reading and diffing kernel bench reports (`mkp-bench/kernels/v1`).
//!
//! The CI bench-regression gate (`bench_diff`) compares a freshly
//! produced `results/kernels-smoke.json` against the committed
//! `results/kernels-baseline.json`. Both files are written by
//! [`crate::harness::Harness::finish`]; this module holds the reader for
//! that format (a purpose-built parser — the build is registry-free, so
//! no serde) and the median-ratio comparison the gate enforces.

use std::fmt::Write as _;

/// One benchmark entry as read back from a kernels JSON report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Benchmark name as registered with the harness.
    pub name: String,
    /// Median per-iteration nanoseconds (reported for context).
    pub median_ns: f64,
    /// Fastest per-iteration nanoseconds (the gate\'s comparison figure:
    /// noise on a shared host only ever slows a deterministic kernel
    /// down, so the minimum over samples spanning several suite passes
    /// is the most reproducible estimate of true cost).
    pub min_ns: f64,
}

/// A parsed kernels report: the harness mode plus all entries in file
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Whether the report was produced with `--smoke` timing options.
    pub smoke: bool,
    /// All benchmark entries, in registration order.
    pub benches: Vec<BenchEntry>,
}

impl BenchReport {
    /// The named benchmark\'s entry, if present.
    pub fn get(&self, name: &str) -> Option<&BenchEntry> {
        self.benches.iter().find(|b| b.name == name)
    }
}

/// Parse a kernels JSON report produced by the harness.
///
/// Accepts exactly the `mkp-bench/kernels/v1` shape: a top-level object
/// with a `benches` array of flat objects. Unknown keys are skipped, so
/// additive schema growth doesn't break older readers.
pub fn parse_report(text: &str) -> Result<BenchReport, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let root = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    let Json::Object(fields) = root else {
        return Err("top level is not an object".into());
    };
    let schema = match fields.iter().find(|(k, _)| k == "schema") {
        Some((_, Json::String(s))) => s.clone(),
        _ => return Err("missing \"schema\" string".into()),
    };
    if schema != "mkp-bench/kernels/v1" {
        return Err(format!("unsupported schema {schema:?}"));
    }
    let smoke = matches!(
        fields.iter().find(|(k, _)| k == "smoke"),
        Some((_, Json::Bool(true)))
    );
    let Some((_, Json::Array(raw))) = fields.iter().find(|(k, _)| k == "benches") else {
        return Err("missing \"benches\" array".into());
    };
    let mut benches = Vec::with_capacity(raw.len());
    for (i, item) in raw.iter().enumerate() {
        let Json::Object(obj) = item else {
            return Err(format!("benches[{i}] is not an object"));
        };
        let name = match obj.iter().find(|(k, _)| k == "name") {
            Some((_, Json::String(s))) => s.clone(),
            _ => return Err(format!("benches[{i}] missing \"name\"")),
        };
        let number = |key: &str| match obj.iter().find(|(k, _)| k == key) {
            Some((_, Json::Number(x))) if x.is_finite() && *x > 0.0 => Ok(*x),
            _ => Err(format!("benches[{i}] ({name}) missing positive \"{key}\"")),
        };
        let median_ns = number("median_ns")?;
        let min_ns = number("min_ns")?;
        benches.push(BenchEntry {
            name,
            median_ns,
            min_ns,
        });
    }
    Ok(BenchReport { smoke, benches })
}

/// Minimal JSON value — just enough structure for the report format.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            self.pos += 4;
                            // Surrogates can't appear in the harness's own
                            // output; map them to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are guaranteed well-formed).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Verdict for one benchmark compared between baseline and fresh run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance of the baseline.
    Ok,
    /// Slower than baseline beyond tolerance — fails the gate.
    Regressed,
    /// Faster than baseline beyond tolerance — passes, but the baseline
    /// understates current performance and deserves a re-bless.
    Improved,
    /// Present in the baseline but absent from the fresh run — fails the
    /// gate (coverage silently lost).
    Missing,
    /// Present in the fresh run but not in the baseline — passes (a new
    /// benchmark is gated from its first bless onward).
    New,
}

/// One row of the gate's comparison.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Benchmark name.
    pub name: String,
    /// Baseline `min_ns`, if the baseline has this benchmark.
    pub baseline_ns: Option<f64>,
    /// Fresh `min_ns`, if the fresh run has this benchmark.
    pub fresh_ns: Option<f64>,
    /// fresh / baseline when both sides exist (raw, before machine-factor
    /// normalization).
    pub ratio: Option<f64>,
    /// Gate verdict for this row (on the normalized ratio).
    pub verdict: Verdict,
}

/// The gate's full comparison: per-bench rows plus the common-mode
/// machine factor the verdicts were normalized by.
#[derive(Debug, Clone)]
pub struct Diff {
    /// Per-benchmark rows, baseline order first, then fresh-only rows.
    pub rows: Vec<DiffRow>,
    /// Median fresh/baseline `min_ns` ratio over the paired benches — the
    /// common-mode speed difference between the two runs' hosts/loads.
    /// 1.0 when fewer than [`MIN_PAIRS_FOR_FACTOR`] pairs exist.
    pub machine_factor: f64,
}

/// Below this many paired benches the median ratio estimates the machine
/// factor too poorly to divide by; the gate falls back to raw ratios.
pub const MIN_PAIRS_FOR_FACTOR: usize = 8;

/// The machine factor is trusted only as a *noise* correction; beyond
/// this range the two runs are considered incomparable and the factor is
/// clamped so a genuinely slower build cannot normalize itself away.
const MAX_MACHINE_FACTOR: f64 = 2.0;

/// Compare a fresh report against the committed baseline with a
/// **paired-median tolerance** (`tolerance = 0.15` means ±15%).
///
/// The compared statistic is each bench's `min_ns`: kernels here are
/// deterministic, so host noise (scheduler preemption, frequency dips,
/// page-mapping luck per suite pass) only ever inflates a sample — the
/// minimum over samples spanning several suite passes is the most
/// reproducible estimate of true cost, where medians were observed to
/// flip 20–70% with the host's regime. A genuine regression inflates
/// every sample, minimum included, so nothing real can hide there.
///
/// On top of that, runs still drift *globally* (a uniformly loaded
/// host). The gate estimates that common mode as the median of the
/// per-bench fresh/baseline ratios and flags only benches deviating
/// from it beyond the tolerance — the same common-mode cancellation the
/// paired A/B estimator uses. A single kernel regression stands out
/// against the other ~30 paired benches; a uniform whole-suite slowdown
/// larger than [`MAX_MACHINE_FACTOR`] is treated as incomparable
/// hardware rather than silently absorbed.
pub fn diff_reports(baseline: &BenchReport, fresh: &BenchReport, tolerance: f64) -> Diff {
    let mut ratios: Vec<f64> = baseline
        .benches
        .iter()
        .filter_map(|b| fresh.get(&b.name).map(|f| f.min_ns / b.min_ns))
        .collect();
    let machine_factor = if ratios.len() >= MIN_PAIRS_FOR_FACTOR {
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("medians are finite"));
        let mid = ratios.len() / 2;
        let median = if ratios.len().is_multiple_of(2) {
            (ratios[mid - 1] + ratios[mid]) / 2.0
        } else {
            ratios[mid]
        };
        median.clamp(1.0 / MAX_MACHINE_FACTOR, MAX_MACHINE_FACTOR)
    } else {
        1.0
    };

    let mut rows = Vec::with_capacity(baseline.benches.len());
    for b in &baseline.benches {
        let fresh_entry = fresh.get(&b.name);
        let (ratio, verdict) = match fresh_entry {
            None => (None, Verdict::Missing),
            Some(f) => {
                let r = f.min_ns / b.min_ns;
                let rel = r / machine_factor;
                let v = if rel > 1.0 + tolerance {
                    Verdict::Regressed
                } else if rel < 1.0 - tolerance {
                    Verdict::Improved
                } else {
                    Verdict::Ok
                };
                (Some(r), v)
            }
        };
        rows.push(DiffRow {
            name: b.name.clone(),
            baseline_ns: Some(b.min_ns),
            fresh_ns: fresh_entry.map(|f| f.min_ns),
            ratio,
            verdict,
        });
    }
    for f in &fresh.benches {
        if baseline.get(&f.name).is_none() {
            rows.push(DiffRow {
                name: f.name.clone(),
                baseline_ns: None,
                fresh_ns: Some(f.min_ns),
                ratio: None,
                verdict: Verdict::New,
            });
        }
    }
    Diff {
        rows,
        machine_factor,
    }
}

/// Does this set of rows pass the gate? (No regressions, no missing
/// benchmarks.)
pub fn gate_passes(rows: &[DiffRow]) -> bool {
    rows.iter()
        .all(|r| !matches!(r.verdict, Verdict::Regressed | Verdict::Missing))
}

/// Render the comparison as the aligned table `bench_diff` prints. The
/// `baseline`/`fresh` columns are each bench's fastest sample (`min_ns`);
/// the `normalized` column (raw ratio ÷ machine factor) is what the
/// verdict was judged on.
pub fn render_diff(diff: &Diff) -> String {
    let mut t = crate::TextTable::new(vec![
        "benchmark",
        "baseline",
        "fresh",
        "ratio",
        "normalized",
        "verdict",
    ]);
    let fmt = |ns: Option<f64>| ns.map_or("-".to_string(), |x| format!("{x:.1} ns"));
    for r in &diff.rows {
        t.row(vec![
            r.name.clone(),
            fmt(r.baseline_ns),
            fmt(r.fresh_ns),
            r.ratio.map_or("-".to_string(), |x| format!("{x:.2}x")),
            r.ratio.map_or("-".to_string(), |x| {
                format!("{:.2}x", x / diff.machine_factor)
            }),
            format!("{:?}", r.verdict).to_lowercase(),
        ]);
    }
    let mut out = t.render();
    let rows = &diff.rows;
    let regressed = rows
        .iter()
        .filter(|r| r.verdict == Verdict::Regressed)
        .count();
    let missing = rows
        .iter()
        .filter(|r| r.verdict == Verdict::Missing)
        .count();
    let improved = rows
        .iter()
        .filter(|r| r.verdict == Verdict::Improved)
        .count();
    let _ = write!(
        out,
        "\nmachine factor {:.2}x (common-mode median ratio, divided out before gating)\n\
         {} benches: {} regressed, {} missing, {} improved",
        diff.machine_factor,
        rows.len(),
        regressed,
        missing,
        improved
    );
    if improved > 0 {
        out.push_str("\nnote: improvements beyond tolerance suggest re-blessing the baseline");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(entries: &[(&str, f64)]) -> BenchReport {
        BenchReport {
            smoke: true,
            benches: entries
                .iter()
                .map(|&(n, m)| BenchEntry {
                    name: n.to_string(),
                    // The gate compares minima; medians ride along for
                    // display. Deriving both from one figure keeps the
                    // expected ratios in these tests obvious.
                    median_ns: m * 1.25,
                    min_ns: m,
                })
                .collect(),
        }
    }

    #[test]
    fn parses_harness_output_roundtrip() {
        // Produce a real report through the harness serializer.
        let mut h = crate::harness::Harness::new(crate::harness::Options::smoke());
        h.bench("roundtrip \"quoted\"", || std::hint::black_box(1u64));
        let reports = h.reports().to_vec();
        let json = {
            // finish() writes to disk; serialize via a temp file instead.
            let dir = std::env::temp_dir().join(format!("bench-report-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("r.json");
            let mut h2 = crate::harness::Harness::new(crate::harness::Options::smoke());
            h2.set_json_path(Some(path.to_string_lossy().into_owned()));
            h2.bench("roundtrip \"quoted\"", || std::hint::black_box(1u64));
            h2.finish();
            let text = std::fs::read_to_string(&path).unwrap();
            std::fs::remove_dir_all(&dir).ok();
            text
        };
        let parsed = parse_report(&json).unwrap();
        assert_eq!(parsed.benches.len(), 1);
        assert_eq!(parsed.benches[0].name, "roundtrip \"quoted\"");
        assert!(parsed.benches[0].median_ns > 0.0);
        assert!(parsed.benches[0].min_ns > 0.0);
        assert!(parsed.benches[0].min_ns <= parsed.benches[0].median_ns);
        drop(reports);
    }

    #[test]
    fn parses_minimal_document() {
        let json = r#"{
          "schema": "mkp-bench/kernels/v1",
          "smoke": true,
          "benches": [
            {"name": "a", "median_ns": 12.5, "min_ns": 11, "extra": [1, 2]},
            {"name": "b", "median_ns": 100, "min_ns": 90.5}
          ]
        }"#;
        let r = parse_report(json).unwrap();
        assert!(r.smoke);
        assert_eq!(r.benches.len(), 2);
        assert_eq!(
            r.get("a").map(|e| (e.median_ns, e.min_ns)),
            Some((12.5, 11.0))
        );
        assert_eq!(
            r.get("b").map(|e| (e.median_ns, e.min_ns)),
            Some((100.0, 90.5))
        );
        assert!(r.get("c").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_report("").is_err());
        assert!(parse_report("[]").is_err());
        assert!(parse_report(r#"{"schema": "other/v9", "benches": []}"#).is_err());
        assert!(parse_report(r#"{"schema": "mkp-bench/kernels/v1"}"#).is_err());
        // Non-positive figures are meaningless as gate denominators, and a
        // bench without `min_ns` cannot be gated at all.
        assert!(parse_report(
            r#"{"schema": "mkp-bench/kernels/v1", "benches": [{"name": "x", "median_ns": 0, "min_ns": 1}]}"#
        )
        .is_err());
        assert!(parse_report(
            r#"{"schema": "mkp-bench/kernels/v1", "benches": [{"name": "x", "median_ns": 5}]}"#
        )
        .is_err());
        // Trailing garbage.
        assert!(
            parse_report(r#"{"schema": "mkp-bench/kernels/v1", "benches": []} trailing"#).is_err()
        );
    }

    #[test]
    fn diff_flags_regressions_within_and_beyond_tolerance() {
        // Three pairs: under MIN_PAIRS_FOR_FACTOR, so raw ratios gate.
        let base = report(&[("k1", 100.0), ("k2", 100.0), ("k3", 100.0)]);
        let fresh = report(&[("k1", 114.0), ("k2", 116.0), ("k3", 80.0)]);
        let d = diff_reports(&base, &fresh, 0.15);
        assert_eq!(d.machine_factor, 1.0);
        assert_eq!(d.rows[0].verdict, Verdict::Ok); // +14% within ±15%
        assert_eq!(d.rows[1].verdict, Verdict::Regressed); // +16%
        assert_eq!(d.rows[2].verdict, Verdict::Improved); // −20%
        assert!(!gate_passes(&d.rows));
        let loose = diff_reports(&base, &fresh, 0.20);
        assert!(gate_passes(&loose.rows));
    }

    #[test]
    fn diff_handles_missing_and_new_benches() {
        let base = report(&[("gone", 50.0), ("kept", 10.0)]);
        let fresh = report(&[("kept", 10.0), ("added", 5.0)]);
        let d = diff_reports(&base, &fresh, 0.15);
        assert_eq!(d.rows.len(), 3);
        assert_eq!(d.rows[0].verdict, Verdict::Missing);
        assert_eq!(d.rows[1].verdict, Verdict::Ok);
        assert_eq!(d.rows[2].verdict, Verdict::New);
        assert!(!gate_passes(&d.rows), "missing coverage must fail the gate");
        let fresh_only_new = diff_reports(&report(&[]), &fresh, 0.15);
        assert!(gate_passes(&fresh_only_new.rows), "new benches alone pass");
    }

    #[test]
    fn machine_factor_cancels_common_mode_drift() {
        // Ten benches all 1.3x slower (host drift) except one genuinely
        // regressed on top of the drift: only that one must trip.
        let names: Vec<String> = (0..10).map(|i| format!("k{i}")).collect();
        let base = report(
            &names
                .iter()
                .map(|n| (n.as_str(), 100.0))
                .collect::<Vec<_>>(),
        );
        let fresh = report(
            &names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.as_str(), if i == 3 { 100.0 * 1.3 * 1.4 } else { 130.0 }))
                .collect::<Vec<_>>(),
        );
        let d = diff_reports(&base, &fresh, 0.15);
        assert!((d.machine_factor - 1.3).abs() < 1e-9);
        for (i, r) in d.rows.iter().enumerate() {
            let want = if i == 3 {
                Verdict::Regressed
            } else {
                Verdict::Ok
            };
            assert_eq!(r.verdict, want, "bench {i}");
        }
        assert!(!gate_passes(&d.rows));
    }

    #[test]
    fn machine_factor_is_clamped_for_incomparable_runs() {
        // A uniform 3x slowdown exceeds MAX_MACHINE_FACTOR: the factor is
        // clamped to 2.0 and every bench still trips — a whole-suite
        // regression cannot normalize itself away.
        let names: Vec<String> = (0..10).map(|i| format!("k{i}")).collect();
        let base = report(
            &names
                .iter()
                .map(|n| (n.as_str(), 100.0))
                .collect::<Vec<_>>(),
        );
        let fresh = report(
            &names
                .iter()
                .map(|n| (n.as_str(), 300.0))
                .collect::<Vec<_>>(),
        );
        let d = diff_reports(&base, &fresh, 0.15);
        assert_eq!(d.machine_factor, 2.0);
        assert!(d.rows.iter().all(|r| r.verdict == Verdict::Regressed));
    }

    #[test]
    fn render_mentions_counts_and_factor() {
        let base = report(&[("k", 100.0)]);
        let fresh = report(&[("k", 200.0)]);
        let d = diff_reports(&base, &fresh, 0.15);
        let text = render_diff(&d);
        assert!(text.contains("1 regressed"));
        assert!(text.contains("2.00x"));
        assert!(text.contains("machine factor 1.00x"));
    }
}
