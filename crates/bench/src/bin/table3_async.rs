//! E4 — the extensions beyond Table 2: the paper's §6 future work
//! (rendezvous-free asynchronous cooperation, ATS) and the §2 taxonomy's
//! third parallelism source (search-space decomposition, DTS), both
//! measured against CTS2 on the Table 2 instances at the same total budget.

use mkp::generate::mk_suite;
use mkp_bench::{mean, stddev, TextTable};
use parallel_tabu::{Engine, Mode, RunConfig};

const SEEDS: [u64; 5] = [42, 1337, 2024, 7, 99];
const BUDGET: u64 = 40_000_000;
const ROUNDS: usize = 16;
const P: usize = 4;

fn main() {
    println!("E4: CTS2 (synchronous master/slave) vs ATS (pipelined, rendezvous-free)");
    println!(
        "(equal total budget {BUDGET}, {} seeds per mode)\n",
        SEEDS.len()
    );

    let mut table = TextTable::new(vec![
        "Prob",
        "CTS2 mean",
        "sd",
        "ATS mean",
        "sd",
        "DTS mean",
        "sd",
        "winner",
    ]);
    let mut engine = Engine::new(P); // one warm pool for all modes x seeds
    for inst in mk_suite() {
        let mut run_all = |mode: Mode| -> Vec<f64> {
            SEEDS
                .iter()
                .map(|&seed| {
                    let cfg = RunConfig {
                        p: P,
                        rounds: ROUNDS,
                        ..RunConfig::new(BUDGET, seed)
                    };
                    engine
                        .run(&inst, mode, &cfg)
                        .expect("bench farm healthy")
                        .best
                        .value() as f64
                })
                .collect()
        };
        let cts2 = run_all(Mode::CooperativeAdaptive);
        let ats = run_all(Mode::Asynchronous);
        let dts = run_all(Mode::Decomposed);
        let (mc, ma, md) = (mean(&cts2), mean(&ats), mean(&dts));
        let winner = if mc >= ma && mc >= md {
            "CTS2"
        } else if ma >= md {
            "ATS"
        } else {
            "DTS"
        };
        table.row(vec![
            inst.name().to_string(),
            format!("{mc:.0}"),
            format!("{:.0}", stddev(&cts2)),
            format!("{ma:.0}"),
            format!("{:.0}", stddev(&ats)),
            format!("{md:.0}"),
            format!("{:.0}", stddev(&dts)),
            winner.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("paper conjecture (§6): removing the round rendezvous should not hurt —");
    println!("comparable ATS means support it. DTS shows disjoint-region decomposition");
    println!("(§2's third source) trades cooperative focus for guaranteed coverage.");
}
