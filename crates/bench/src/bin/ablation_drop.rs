//! A2 — move width (`nb_drop`) vs solution distance (§4.1).
//!
//! The paper: "when the number of consecutive drops done in a move is small
//! (less than 3), the objective function changes less rapidly and the
//! visited solutions are close ones another. When the value of nb_drop
//! becomes high, the variations in the objective function are more
//! important and the visited solution are distant ones another." We measure
//! both statistics directly: mean Hamming distance between consecutive
//! solutions and mean |Δobjective| per move, as a function of `nb_drop`.

use mkp::eval::Ratios;
use mkp::generate::{gk_instance, GkSpec};
use mkp::greedy::greedy;
use mkp::Xoshiro256;
use mkp_bench::{mean, TextTable};
use mkp_tabu::moves::{apply_move, MoveStats};
use mkp_tabu::tabu_list::Recency;

const MOVES: u64 = 3_000;

fn main() {
    println!("A2: nb_drop vs distance between consecutive solutions ({MOVES} moves)\n");
    let inst = gk_instance(
        "GK_A2_10x250",
        GkSpec {
            n: 250,
            m: 10,
            tightness: 0.5,
            seed: 0xA2,
        },
    );
    let ratios = Ratios::new(&inst);

    let mut table = TextTable::new(vec![
        "nb_drop",
        "mean hamming/move",
        "mean |dF|/move",
        "final best",
    ]);
    for nb_drop in 1..=6usize {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut sol = greedy(&inst, &ratios);
        let mut tabu = Recency::new(inst.n(), 15);
        let mut stats = MoveStats::default();
        let mut best = sol.value();
        let mut hammings = Vec::with_capacity(MOVES as usize);
        let mut deltas = Vec::with_capacity(MOVES as usize);
        for now in 0..MOVES {
            let before = sol.clone();
            apply_move(
                &inst, &ratios, &mut sol, &mut tabu, now, nb_drop, best, 0.1, &mut rng, &mut stats,
            );
            hammings.push(sol.hamming(&before) as f64);
            deltas.push((sol.value() - before.value()).abs() as f64);
            best = best.max(sol.value());
        }
        table.row(vec![
            nb_drop.to_string(),
            format!("{:.2}", mean(&hammings)),
            format!("{:.1}", mean(&deltas)),
            best.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("expected shape: both distance columns increase with nb_drop (paper §4.1).");
}
