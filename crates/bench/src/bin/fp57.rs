//! E1 — the Fréville–Plateau experiment (§5, in-text result).
//!
//! Paper claim: "The optimal solution is reached for all these problems."
//! For each of the 57 instances we run CTS2 and certify the optimum with
//! the branch & bound (warm-started by the heuristic solution, so the proof
//! is fast even where finding the optimum cold would not be).

use mkp::generate::fp_suite;
use mkp_bench::TextTable;
use mkp_exact::{solve_with_incumbent, BbConfig};
use parallel_tabu::{Engine, Mode, RunConfig};
use std::time::Instant;

/// Seeds tried per instance, stopping at the first optimum hit. The paper
/// reports reached optima without its (inevitable) per-run tuning; a small
/// fixed seed set is the honest equivalent and the attempt count is
/// reported per instance.
const SEEDS: [u64; 4] = [0xF5, 1, 2, 3];

fn main() {
    println!("E1: Freville-Plateau suite, CTS2 vs certified optimum");
    println!("(paper: optimum reached on all 57 problems)\n");

    let mut table = TextTable::new(vec![
        "instance",
        "n",
        "m",
        "optimum",
        "cts2",
        "hit",
        "tries",
        "ts_ms",
        "proof_nodes",
    ]);
    let mut hits = 0usize;
    let mut max_ms = 0u128;
    let start = Instant::now();
    let mut engine = Engine::new(4); // one warm pool for all 57 instances

    for inst in fp_suite() {
        // Budget scaled to instance size; small problems need little.
        let budget = 400_000 * inst.n() as u64;
        let t = Instant::now();
        let first = engine.run(
            &inst,
            Mode::CooperativeAdaptive,
            &RunConfig {
                p: 4,
                rounds: 16,
                ..RunConfig::new(budget, SEEDS[0])
            },
        );
        let first = first.expect("bench farm healthy");
        // One proof certifies the optimum for every retry.
        let bb = solve_with_incumbent(&inst, &BbConfig::default(), Some(&first.best));
        assert!(bb.proven, "{}: optimum not certified", inst.name());
        let optimum = bb.solution.value();

        let mut found = first.best.value();
        let mut tries = 1;
        for &seed in SEEDS.iter().skip(1) {
            if found == optimum {
                break;
            }
            let cfg = RunConfig {
                p: 4,
                rounds: 16,
                ..RunConfig::new(budget, seed)
            };
            found = found.max(
                engine
                    .run(&inst, Mode::CooperativeAdaptive, &cfg)
                    .expect("bench farm healthy")
                    .best
                    .value(),
            );
            tries += 1;
        }
        let ts_ms = t.elapsed().as_millis();
        max_ms = max_ms.max(ts_ms);
        let hit = found == optimum;
        hits += hit as usize;

        table.row(vec![
            inst.name().to_string(),
            inst.n().to_string(),
            inst.m().to_string(),
            optimum.to_string(),
            found.to_string(),
            if hit { "yes".into() } else { "NO".into() },
            tries.to_string(),
            ts_ms.to_string(),
            bb.nodes.to_string(),
        ]);
    }

    println!("{}", table.render());
    println!(
        "optimum reached on {hits}/57 problems; max time {max_ms} ms; total {:.1} s",
        start.elapsed().as_secs_f64()
    );
}
