//! A3 — the ISP pool-culling fraction α (§4.2).
//!
//! "By changing dynamically the value of the parameter α, it is possible to
//! force or to forbid threads to realize search in the same region" — large
//! α herds every slave onto the global best (macro intensification), small
//! α lets weak slaves wander (macro diversification). The sweep shows the
//! trade-off at a fixed budget.

use mkp::generate::mk_suite;
use mkp_bench::{mean, TextTable};
use parallel_tabu::{Engine, IspConfig, Mode, RunConfig};

const SEEDS: [u64; 3] = [5, 55, 555];
const BUDGET: u64 = 20_000_000;

fn main() {
    println!("A3: ISP alpha sweep, CTS2, budget {BUDGET} evals\n");
    let instances: Vec<_> = mk_suite().into_iter().take(2).collect();
    let mut engine = Engine::new(4); // one warm pool for the whole sweep

    let mut table = TextTable::new(vec![
        "alpha",
        "MK01 mean",
        "MK02 mean",
        "restarts to global",
    ]);
    for alpha in [0.90, 0.99, 0.995, 0.998, 0.999, 1.0] {
        let mut cells = vec![format!("{alpha:.3}")];
        for inst in &instances {
            let values: Vec<f64> = SEEDS
                .iter()
                .map(|&seed| {
                    let mut cfg = RunConfig {
                        p: 4,
                        rounds: 16,
                        ..RunConfig::new(BUDGET, seed)
                    };
                    cfg.isp = IspConfig {
                        alpha,
                        ..IspConfig::default()
                    };
                    engine
                        .run(inst, Mode::CooperativeAdaptive, &cfg)
                        .expect("bench farm healthy")
                        .best
                        .value() as f64
                })
                .collect();
            cells.push(format!("{:.0}", mean(&values)));
        }
        cells.push(
            if alpha >= 0.999 {
                "many (herding)"
            } else if alpha >= 0.99 {
                "some"
            } else {
                "few"
            }
            .to_string(),
        );
        table.row(cells);
    }
    println!("{}", table.render());
    println!("expected shape: quality peaks at intermediate alpha — pure herding");
    println!("(alpha = 1) and pure independence (small alpha) both lose.");
}
