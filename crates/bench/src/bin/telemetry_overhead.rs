//! A/B measurement of the telemetry layer's end-to-end cost (M1 hygiene
//! for PRs that touch the engine's hot path): the same seeded CTS1 run is
//! timed with telemetry enabled and disabled, and the median overhead is
//! reported and written to `results/telemetry-overhead.json`.
//!
//! ```text
//! cargo run --release -p mkp-bench --bin telemetry_overhead [-- --smoke] [--json PATH]
//! ```
//!
//! The alternating on/off schedule keeps slow drift (thermal, scheduler)
//! from biasing one arm; medians over the repetitions absorb outliers.

use mkp::generate::{gk_instance, GkSpec};
use parallel_tabu::{Engine, Mode, RunConfig};
use std::hint::black_box;

/// Process CPU seconds (all threads). Preemption by other processes does
/// not advance this clock, so on oversubscribed machines — a CI
/// container time-slicing one core — it resolves sub-percent A/B
/// differences that wall clock buries in scheduler noise.
#[cfg(unix)]
fn cpu_now() -> f64 {
    #[repr(C)]
    struct Timespec {
        sec: i64,
        nsec: i64,
    }
    extern "C" {
        fn clock_gettime(id: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_PROCESS_CPUTIME_ID: i32 = 2;
    let mut ts = Timespec { sec: 0, nsec: 0 };
    let rc = unsafe { clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &mut ts) };
    assert_eq!(rc, 0, "clock_gettime(CLOCK_PROCESS_CPUTIME_ID) failed");
    ts.sec as f64 + ts.nsec as f64 * 1e-9
}

/// Wall-clock fallback where the POSIX CPU clock is unavailable.
#[cfg(not(unix))]
fn cpu_now() -> f64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn main() {
    let mut smoke = false;
    let mut json_path = "results/telemetry-overhead.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--json" => {
                json_path = args.next().unwrap_or_else(|| {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    // The full run must be long enough (hundreds of ms) that the timer
    // resolves sub-percent differences, and the repetitions numerous
    // enough that each arm catches several quiet scheduler windows — the
    // floor over the reps is the figure of merit. The smoke arm only
    // proves the binary runs.
    let (budget, reps) = if smoke {
        (150_000u64, 3usize)
    } else {
        (20_000_000, 25)
    };
    let inst = gk_instance(
        "overhead",
        GkSpec {
            n: 250,
            m: 10,
            tightness: 0.5,
            seed: 11,
        },
    );
    // p = 1 on purpose: the master sleeps in recv while the lone slave
    // computes, so the farm runs essentially contention-free and the A/B
    // difference isolates the telemetry cost instead of the scheduler's
    // mood (wider farms on small machines time-slice a single core and
    // drown a percent-level signal in multi-percent run-to-run noise).
    let cfg = RunConfig {
        p: 1,
        rounds: 4,
        ..RunConfig::new(budget, 42)
    };

    // One persistent engine per arm: pool spawn/teardown stays outside
    // the timed region (that is the Engine's deployment model anyway),
    // and an untimed warmup run per arm absorbs first-touch costs.
    let mut on_engine = Engine::new(cfg.p);
    on_engine.set_telemetry(true);
    let mut off_engine = Engine::new(cfg.p);
    off_engine.set_telemetry(false);
    for engine in [&mut on_engine, &mut off_engine] {
        let warm = engine
            .run(&inst, Mode::Cooperative, &cfg)
            .expect("warmup run failed");
        black_box(warm.best.value());
    }

    let mut with_tel = Vec::with_capacity(reps);
    let mut without_tel = Vec::with_capacity(reps);
    for rep in 0..reps {
        for enabled in [true, false] {
            let engine = if enabled {
                &mut on_engine
            } else {
                &mut off_engine
            };
            let t0 = cpu_now();
            let report = engine
                .run(&inst, Mode::Cooperative, &cfg)
                .expect("overhead run failed");
            let secs = cpu_now() - t0;
            black_box(report.best.value());
            if enabled {
                with_tel.push(secs);
            } else {
                without_tel.push(secs);
            }
            eprintln!(
                "rep {rep} telemetry={enabled:<5} {:>9.1} cpu-ms",
                secs * 1e3
            );
        }
    }

    // The headline figure is the median of the *paired* per-rep
    // differences: each on-run is compared against the off-run adjacent
    // to it in time, so slowly varying ambient load (a shared CI host)
    // cancels out of every pair, and the median discards the pairs a
    // load spike split. Floors and medians are reported alongside as the
    // honest noise indicators.
    let mut diffs: Vec<f64> = with_tel
        .iter()
        .zip(&without_tel)
        .map(|(on, off)| on - off)
        .collect();
    let on_min_ms = with_tel.iter().copied().fold(f64::MAX, f64::min) * 1e3;
    let off_min_ms = without_tel.iter().copied().fold(f64::MAX, f64::min) * 1e3;
    let on_med_ms = median(&mut with_tel) * 1e3;
    let off_med_ms = median(&mut without_tel) * 1e3;
    let overhead_pct = 100.0 * median(&mut diffs) * 1e3 / off_med_ms;
    println!("telemetry on  (min / median): {on_min_ms:.1} / {on_med_ms:.1} cpu-ms");
    println!("telemetry off (min / median): {off_min_ms:.1} / {off_med_ms:.1} cpu-ms");
    println!("overhead (paired median)    : {overhead_pct:+.2}%");

    let clock = if cfg!(unix) { "process_cpu" } else { "wall" };
    let json = format!(
        "{{\n  \"schema\": \"mkp-telemetry/overhead/v1\",\n  \"smoke\": {smoke},\n  \
         \"mode\": \"CTS1\",\n  \"p\": {},\n  \"rounds\": {},\n  \"budget_evals\": {budget},\n  \
         \"reps\": {reps},\n  \"clock\": \"{clock}\",\n  \"telemetry_on_min_ms\": {on_min_ms:.3},\n  \
         \"telemetry_off_min_ms\": {off_min_ms:.3},\n  \
         \"telemetry_on_median_ms\": {on_med_ms:.3},\n  \
         \"telemetry_off_median_ms\": {off_med_ms:.3},\n  \
         \"overhead_pct\": {overhead_pct:.3}\n}}\n",
        cfg.p, cfg.rounds,
    );
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = std::fs::write(&json_path, json) {
        eprintln!("cannot write {json_path}: {e}");
        std::process::exit(1);
    }
    println!("json report: {json_path}");
}
