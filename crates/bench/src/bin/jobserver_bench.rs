//! Open-loop load test of the job server (DESIGN.md §14): an in-process
//! server is offered a fixed arrival schedule of jobs — arrivals do
//! *not* wait for completions, so queueing shows up as latency instead
//! of hiding in a closed loop — and the run reports throughput
//! (jobs/sec) and the p95 *time-to-target*: how long after submission a
//! client saw the first incumbent equal to its job's final best value.
//!
//! ```text
//! cargo run --release -p mkp-bench --bin jobserver_bench [-- --smoke] [--json PATH]
//! ```

use mkp::generate::{gk_instance, GkSpec};
use parallel_tabu::{
    serve, submit_job, Mode, ServeBackend, ServeConfig, SubmitEvent, SubmitOutcome, SubmitSpec,
};
use pvm_lite::Endpoint;
use std::time::{Duration, Instant};

struct JobResult {
    done_at: Instant,
    time_to_target: Duration,
}

fn percentile(sorted_ms: &[f64], pct: f64) -> f64 {
    assert!(!sorted_ms.is_empty());
    let rank = (pct / 100.0 * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

fn main() {
    let mut smoke = false;
    let mut json_path = "results/jobserver-bench.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--json" => {
                json_path = args.next().unwrap_or_else(|| {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    // Offered load: enough jobs that the queue develops real depth, with
    // arrivals faster than the farm drains them so time-slicing (not
    // admission idling) is what the latency numbers measure.
    let (njobs, budget, interarrival) = if smoke {
        (6usize, 30_000u64, Duration::from_millis(20))
    } else {
        (32, 400_000, Duration::from_millis(100))
    };
    let rounds = 4usize;
    let p = 2usize;
    let patience = Duration::from_secs(300);

    let dir = std::env::temp_dir().join(format!("mkp-jobsrv-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let ep = Endpoint::Unix(dir.join("clients.sock"));

    let server = {
        let ep = ep.clone();
        let cfg = ServeConfig {
            quantum: 1,
            max_queue: njobs.max(16),
            max_inflight: 4,
            spool_dir: dir.join("spool"),
            max_jobs: njobs as u64,
            patience,
            ..ServeConfig::default()
        };
        std::thread::spawn(move || serve(&ep, ServeBackend::InProc { p: 4 }, &cfg))
    };

    // One thread per job, each sleeping until its scheduled arrival —
    // the open-loop schedule is fixed up front, independent of progress.
    let t0 = Instant::now();
    let clients: Vec<_> = (0..njobs)
        .map(|k| {
            let ep = ep.clone();
            std::thread::spawn(move || {
                let inst = gk_instance(
                    "jobsrv-bench",
                    GkSpec {
                        n: 100,
                        m: 5,
                        tightness: 0.5,
                        seed: 1000 + k as u64,
                    },
                );
                let spec = SubmitSpec {
                    mode: Mode::CooperativeAdaptive,
                    p,
                    rounds,
                    budget_evals: budget,
                    seed: k as u64,
                    deadline: None,
                };
                let arrival = t0 + interarrival * k as u32;
                if let Some(wait) = arrival.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                let submitted = Instant::now();
                let mut incumbents: Vec<(Instant, i64)> = Vec::new();
                let outcome = submit_job(&ep, &inst, &spec, patience, |ev| {
                    if let SubmitEvent::Incumbent { value, .. } = ev {
                        incumbents.push((Instant::now(), value));
                    }
                })
                .expect("submission failed");
                let done_at = Instant::now();
                let SubmitOutcome::Done(report) = outcome else {
                    panic!("job {k} did not complete: {outcome:?}");
                };
                let (hit, _) = incumbents
                    .iter()
                    .find(|(_, v)| *v == report.best_value)
                    .expect("the final value must appear in the incumbent stream");
                JobResult {
                    done_at,
                    time_to_target: hit.duration_since(submitted),
                }
            })
        })
        .collect();

    let results: Vec<JobResult> = clients.into_iter().map(|h| h.join().unwrap()).collect();
    let stats = server.join().unwrap().expect("server failed");
    assert_eq!(stats.done as usize, njobs, "every job must complete");

    let last_done = results.iter().map(|r| r.done_at).max().unwrap();
    let span = last_done.duration_since(t0).as_secs_f64();
    let jobs_per_sec = njobs as f64 / span;
    let mut ttt_ms: Vec<f64> = results
        .iter()
        .map(|r| r.time_to_target.as_secs_f64() * 1e3)
        .collect();
    ttt_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let p50 = percentile(&ttt_ms, 50.0);
    let p95 = percentile(&ttt_ms, 95.0);

    println!("jobs           : {njobs} ({} slices served)", stats.slices);
    println!("throughput     : {jobs_per_sec:.2} jobs/sec over {span:.2} s");
    println!("time-to-target : p50 {p50:.1} ms, p95 {p95:.1} ms");

    let json = format!(
        "{{\n  \"schema\": \"mkp-jobserver/bench/v1\",\n  \"smoke\": {smoke},\n  \
         \"jobs\": {njobs},\n  \"mode\": \"CTS2\",\n  \"p\": {p},\n  \"rounds\": {rounds},\n  \
         \"budget_evals\": {budget},\n  \"interarrival_ms\": {},\n  \"quantum\": 1,\n  \
         \"slices\": {},\n  \"jobs_per_sec\": {jobs_per_sec:.3},\n  \
         \"time_to_target_p50_ms\": {p50:.3},\n  \"time_to_target_p95_ms\": {p95:.3}\n}}\n",
        interarrival.as_millis(),
        stats.slices,
    );
    if let Some(parent) = std::path::Path::new(&json_path).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("cannot create {}: {e}", parent.display());
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = std::fs::write(&json_path, json) {
        eprintln!("cannot write {json_path}: {e}");
        std::process::exit(1);
    }
    println!("json report: {json_path}");
    let _ = std::fs::remove_dir_all(&dir);
}
