//! E3 — Table 2: SEQ vs ITS vs CTS1 vs CTS2 at a fixed work budget.
//!
//! The paper fixes wall-clock time on a 16-Alpha farm; the machine-
//! independent equivalent here is a fixed *total candidate-evaluation
//! budget* shared by every mode (DESIGN.md §4). Reported per instance:
//! the mean best cost over several seeds per mode (and the per-seed values,
//! since single-seed comparisons of metaheuristics are noise).

use mkp::generate::mk_suite;
use mkp_bench::{mean, stddev, TextTable};
use parallel_tabu::{Engine, Mode, RunConfig};
use std::time::Instant;

const SEEDS: [u64; 5] = [42, 1337, 2024, 7, 99];
const BUDGET: u64 = 40_000_000;
const ROUNDS: usize = 16;
const P: usize = 4;

fn main() {
    println!("E3: Table 2 — best cost per mode at equal total budget");
    println!(
        "(P = {P}, rounds = {ROUNDS}, budget = {BUDGET} candidate evals, {} seeds)\n",
        SEEDS.len()
    );

    let mut table = TextTable::new(vec!["Prob", "SEQ", "ITS", "CTS1", "CTS2", "Exec evals"]);
    let mut detail = TextTable::new(vec!["Prob", "mode", "mean", "sd", "per-seed"]);
    let mut mode_means: Vec<(Mode, Vec<f64>)> =
        Mode::table2().iter().map(|&m| (m, Vec::new())).collect();

    let start = Instant::now();
    let mut engine = Engine::new(P); // one warm pool for all modes x seeds
    for inst in mk_suite() {
        let mut cells = vec![inst.name().to_string()];
        for mode in Mode::table2() {
            let values: Vec<f64> = SEEDS
                .iter()
                .map(|&seed| {
                    let cfg = RunConfig {
                        p: P,
                        rounds: ROUNDS,
                        ..RunConfig::new(BUDGET, seed)
                    };
                    engine
                        .run(&inst, mode, &cfg)
                        .expect("bench farm healthy")
                        .best
                        .value() as f64
                })
                .collect();
            cells.push(format!("{:.0}", mean(&values)));
            detail.row(vec![
                inst.name().to_string(),
                mode.label().to_string(),
                format!("{:.0}", mean(&values)),
                format!("{:.0}", stddev(&values)),
                format!("{values:?}"),
            ]);
            mode_means
                .iter_mut()
                .find(|(m, _)| *m == mode)
                .expect("mode present")
                .1
                .push(mean(&values));
        }
        cells.push(BUDGET.to_string());
        table.row(cells);
    }

    println!(
        "Table 2 (paper layout, mean over seeds):\n{}",
        table.render()
    );
    println!("Per-seed detail:\n{}", detail.render());

    // Cross-instance summary: mean gap of each mode to the per-instance
    // best mode (0 = always the winner).
    let instances = mode_means[0].1.len();
    let mut summary = TextTable::new(vec!["mode", "mean gap to best mode (%)"]);
    for k in 0..instances {
        let best = mode_means
            .iter()
            .map(|(_, v)| v[k])
            .fold(f64::NEG_INFINITY, f64::max);
        for (_, v) in mode_means.iter_mut() {
            v[k] = 100.0 * (best - v[k]) / best;
        }
    }
    for (mode, gaps) in &mode_means {
        summary.row(vec![mode.label().to_string(), format!("{:.4}", mean(gaps))]);
    }
    println!("Summary:\n{}", summary.render());
    println!("total {:.1} s", start.elapsed().as_secs_f64());
}
