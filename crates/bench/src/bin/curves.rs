//! F1 — quality-over-rounds curves for the cooperative modes.
//!
//! The paper reports only end-of-run values; the round-by-round global-best
//! curve is the natural "figure" showing *when* cooperation and adaptation
//! pay: CTS1 and CTS2 coincide while every slave still improves on its own,
//! and separate once the SGP starts regenerating stalled strategies (score
//! exhaustion takes ~6 rounds, so the gap opens in the second half). Output
//! is both a table and `results/curves.csv` for plotting.

use mkp::generate::mk_suite;
use mkp_bench::{mean, TextTable};
use parallel_tabu::{Engine, Mode, RunConfig};
use std::fmt::Write as _;

const SEEDS: [u64; 3] = [42, 1337, 2024];
const BUDGET: u64 = 40_000_000;
const ROUNDS: usize = 24;

fn main() {
    println!(
        "F1: global best per master round, CTS1 vs CTS2 (mean over {} seeds)\n",
        SEEDS.len()
    );
    let instances: Vec<_> = mk_suite().into_iter().take(2).collect();
    let mut csv = String::from("instance,mode,round,mean_best\n");
    let mut engine = Engine::new(4); // one warm pool for both modes

    for inst in &instances {
        let mut table = TextTable::new(vec!["round", "CTS1 mean", "CTS2 mean", "gap"]);
        let mut curve = |mode: Mode| -> Vec<Vec<f64>> {
            SEEDS
                .iter()
                .map(|&seed| {
                    let cfg = RunConfig {
                        p: 4,
                        rounds: ROUNDS,
                        ..RunConfig::new(BUDGET, seed)
                    };
                    engine
                        .run(inst, mode, &cfg)
                        .expect("bench farm healthy")
                        .round_best
                        .iter()
                        .map(|&v| v as f64)
                        .collect()
                })
                .collect()
        };
        let cts1 = curve(Mode::Cooperative);
        let cts2 = curve(Mode::CooperativeAdaptive);
        for round in 0..ROUNDS {
            let m1 = mean(&cts1.iter().map(|c| c[round]).collect::<Vec<_>>());
            let m2 = mean(&cts2.iter().map(|c| c[round]).collect::<Vec<_>>());
            table.row(vec![
                (round + 1).to_string(),
                format!("{m1:.0}"),
                format!("{m2:.0}"),
                format!("{:+.0}", m2 - m1),
            ]);
            let _ = writeln!(csv, "{},CTS1,{},{m1:.1}", inst.name(), round + 1);
            let _ = writeln!(csv, "{},CTS2,{},{m2:.1}", inst.name(), round + 1);
        }
        println!("{}:\n{}", inst.name(), table.render());
    }

    std::fs::create_dir_all("results").ok();
    match std::fs::write("results/curves.csv", &csv) {
        Ok(()) => println!("wrote results/curves.csv"),
        Err(e) => eprintln!("could not write results/curves.csv: {e}"),
    }
}
