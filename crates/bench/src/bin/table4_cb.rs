//! E5 (extension) — the Chu–Beasley class: the OR-Library suite that
//! superseded the paper's benchmarks one year later.
//!
//! Runs CTS2 over the 9-instance `mknapcb`-shaped grid (n ∈ {100, 250, 500}
//! × tightness ∈ {0.25, 0.5, 0.75}, m = 10) and reports Dev.% against the
//! LP bound, the standard presentation for this class. Shows the reproduced
//! 1997 algorithm holds up on the harder successor suite, and records the
//! well-known tightness effect (loose instances are relatively easier).

use mkp::generate::cb_suite;
use mkp::stats::instance_stats;
use mkp_bench::{deviation_pct, TextTable};
use mkp_exact::bounds::lp_bound;
use parallel_tabu::{Engine, Mode, RunConfig};
use std::time::Instant;

fn main() {
    println!("E5 (extension): Chu-Beasley-style suite, CTS2, Dev.% vs LP bound\n");
    let mut table = TextTable::new(vec![
        "instance",
        "class stats",
        "lp_bound",
        "cts2",
        "dev_%",
        "time_s",
    ]);
    let start = Instant::now();
    let mut engine = Engine::new(4); // one warm pool for the whole grid
    for (idx, inst) in cb_suite(0xCB).iter().enumerate() {
        let lp = lp_bound(inst).expect("LP solvable").objective;
        let budget = 60_000 * inst.n() as u64;
        let cfg = RunConfig {
            p: 4,
            rounds: 16,
            ..RunConfig::new(budget, 0xCB + idx as u64)
        };
        let t = Instant::now();
        let r = engine
            .run(inst, Mode::CooperativeAdaptive, &cfg)
            .expect("bench farm healthy");
        table.row(vec![
            inst.name().to_string(),
            instance_stats(inst).to_string(),
            format!("{lp:.1}"),
            r.best.value().to_string(),
            format!("{:.3}", deviation_pct(r.best.value(), lp)),
            format!("{:.2}", t.elapsed().as_secs_f64()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "total {:.1} s — expected shape: Dev.% largest at tightness 0.25 and\n\
         shrinking as instances loosen; the 1997 algorithm stays within ~1-2%\n\
         of the LP bound on the successor class.",
        start.elapsed().as_secs_f64()
    );
}
