//! E2 — Table 1: the Glover–Kochenberger suite.
//!
//! Paper columns: problem numbers, m×n group, maximum execution time and
//! deviation in %. We reproduce the same grouped rows; Dev.% is measured
//! against the LP relaxation bound (the standard reference when the integer
//! optimum is unknown), so the paper's qualitative shape — small deviations
//! that grow with m and n, execution cost growing with size — is directly
//! comparable.

use mkp::generate::table1_suite;
use mkp_bench::{deviation_pct, mean, TextTable};
use mkp_exact::bounds::lp_bound;
use parallel_tabu::{Engine, Mode, RunConfig};
use std::time::Instant;

struct Group {
    label: &'static str,
    size: &'static str,
    times: Vec<f64>,
    devs: Vec<f64>,
}

fn main() {
    println!("E2: Table 1 — Glover-Kochenberger suite, CTS2, Dev.% vs LP bound\n");

    // The grouped presentation of the paper: probs 1-4, 5-8, 9-14, 15-17,
    // 18-22, 23, 24.
    let mut groups = [
        Group {
            label: "1 to 4",
            size: "3x100",
            times: vec![],
            devs: vec![],
        },
        Group {
            label: "5 to 8",
            size: "5x100",
            times: vec![],
            devs: vec![],
        },
        Group {
            label: "9 to 14",
            size: "10x100",
            times: vec![],
            devs: vec![],
        },
        Group {
            label: "15 to 17",
            size: "15x100",
            times: vec![],
            devs: vec![],
        },
        Group {
            label: "18 to 22",
            size: "25x100",
            times: vec![],
            devs: vec![],
        },
        Group {
            label: "23",
            size: "25x250",
            times: vec![],
            devs: vec![],
        },
        Group {
            label: "24",
            size: "25x500",
            times: vec![],
            devs: vec![],
        },
    ];
    const GROUP_OF: [usize; 24] = [
        0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 3, 3, 3, 4, 4, 4, 4, 4, 5, 6,
    ];

    let suite = table1_suite();
    let mut engine = Engine::new(4); // one warm pool for the whole suite
    let mut per_instance = TextTable::new(vec![
        "prob", "instance", "lp_bound", "cts2", "dev_%", "time_s",
    ]);
    for (idx, inst) in suite.iter().enumerate() {
        let lp = lp_bound(inst).expect("LP solvable").objective;
        let budget = 60_000 * inst.n() as u64;
        let cfg = RunConfig {
            p: 4,
            rounds: 16,
            ..RunConfig::new(budget, 0x6B + idx as u64)
        };
        let t = Instant::now();
        let r = engine
            .run(inst, Mode::CooperativeAdaptive, &cfg)
            .expect("bench farm healthy");
        let secs = t.elapsed().as_secs_f64();
        let dev = deviation_pct(r.best.value(), lp);
        per_instance.row(vec![
            (idx + 1).to_string(),
            inst.name().to_string(),
            format!("{lp:.1}"),
            r.best.value().to_string(),
            format!("{dev:.3}"),
            format!("{secs:.2}"),
        ]);
        let g = GROUP_OF[idx];
        groups[g].times.push(secs);
        groups[g].devs.push(dev);
    }
    println!("{}", per_instance.render());

    let mut table = TextTable::new(vec!["Prob nbr", "m*n", "Max.Exec.Time (s)", "Dev. in %"]);
    for g in &groups {
        let max_t = g.times.iter().cloned().fold(0.0f64, f64::max);
        table.row(vec![
            g.label.to_string(),
            g.size.to_string(),
            format!("{max_t:.2}"),
            format!("{:.3}", mean(&g.devs)),
        ]);
    }
    println!("Table 1 (paper layout):\n{}", table.render());
    println!("note: Dev.% is vs the LP upper bound; the integer optimum lies");
    println!("below it, so true deviations are smaller than printed.");
}
