//! A4 — move selection: constructive vs width-K neighborhood examination.
//!
//! The paper's §2 taxonomy lists "parallelism in neighborhood examination
//! and evaluation" as a *low-level* source of parallelism, suited to
//! specialized hardware rather than a PVM farm. This ablation quantifies
//! the trade-off at equal candidate-evaluation budget: wider examination
//! makes each move better but K× more expensive — whether that wins depends
//! on the budget accounting, which is exactly why the paper built its
//! parallelism at the search-thread level instead.

use mkp::eval::Ratios;
use mkp::generate::{gk_instance, GkSpec};
use mkp::greedy::dynamic_randomized_greedy;
use mkp::Xoshiro256;
use mkp_bench::{mean, TextTable};
use mkp_tabu::search::{run, Budget, TsConfig};
use mkp_tabu::MoveSelection;
use std::time::Instant;

const SEEDS: [u64; 3] = [3, 33, 333];
const BUDGET: u64 = 10_000_000;

fn main() {
    println!("A4: constructive vs best-of-K neighborhood at equal budget ({BUDGET} evals)\n");
    let inst = gk_instance(
        "GK_A4_10x150",
        GkSpec {
            n: 150,
            m: 10,
            tightness: 0.5,
            seed: 0xA4,
        },
    );
    let ratios = Ratios::new(&inst);

    let mut table = TextTable::new(vec!["selection", "mean best", "mean moves", "mean time_s"]);
    let selections = [
        ("constructive", MoveSelection::Constructive),
        (
            "best-of-2",
            MoveSelection::BestOfK {
                width: 2,
                parallel: false,
            },
        ),
        (
            "best-of-4",
            MoveSelection::BestOfK {
                width: 4,
                parallel: false,
            },
        ),
        (
            "best-of-8",
            MoveSelection::BestOfK {
                width: 8,
                parallel: false,
            },
        ),
        (
            "best-of-4 (threads)",
            MoveSelection::BestOfK {
                width: 4,
                parallel: true,
            },
        ),
    ];
    for (label, selection) in selections {
        let mut values = Vec::new();
        let mut moves = Vec::new();
        let mut times = Vec::new();
        for &seed in &SEEDS {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            let init = dynamic_randomized_greedy(&inst, &mut rng, 4);
            let mut cfg = TsConfig::default_for(inst.n());
            cfg.move_selection = selection;
            let t = Instant::now();
            let report = run(&inst, &ratios, init, &cfg, Budget::evals(BUDGET), &mut rng);
            times.push(t.elapsed().as_secs_f64());
            values.push(report.best.value() as f64);
            moves.push(report.stats.moves as f64);
        }
        table.row(vec![
            label.to_string(),
            format!("{:.0}", mean(&values)),
            format!("{:.0}", mean(&moves)),
            format!("{:.2}", mean(&times)),
        ]);
    }
    println!("{}", table.render());
    println!("expected shape: per *move* best-of-K is stronger, but at equal budget");
    println!("the K-fold cost eats the gain — the granularity argument of §2. The");
    println!("threaded row shows why thread-per-move parallelism loses on a farm:");
    println!("identical results, pure spawn overhead.");
}
