//! CI bench-regression gate: compare a fresh smoke run of the `kernels`
//! harness against the committed baseline and fail on slowdowns.
//!
//! ```text
//! cargo run --release -p mkp-bench --bin bench_diff -- \
//!     [--fresh results/kernels-smoke.json] \
//!     [--baseline results/kernels-baseline.json] \
//!     [--tolerance 0.15] [--bless]
//! ```
//!
//! Without `--bless`, reads both reports, compares each benchmark's
//! fastest sample (`min_ns` — the robust statistic for deterministic
//! kernels on a noisy host; see [`mkp_bench::report::diff_reports`]),
//! prints the table, and exits 1 if any benchmark is slower than
//! baseline beyond the tolerance or has vanished from the fresh run.
//! The default ±15% is sized for smoke-mode sampling on shared CI
//! hardware — wide enough that scheduler jitter doesn't flake the gate,
//! narrow enough that a real kernel regression (the ISSUE-6 kernels
//! moved 3–6×) cannot hide.
//!
//! With `--bless`, copies the fresh report over the baseline (after
//! validating it parses) so the next gate run compares against it.
//! Re-bless whenever a deliberate perf change lands.

use std::process::ExitCode;

use mkp_bench::report::{diff_reports, gate_passes, parse_report, render_diff};

struct Args {
    fresh: String,
    baseline: String,
    tolerance: f64,
    bless: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_diff [--fresh PATH] [--baseline PATH] [--tolerance FRACTION] [--bless]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        fresh: "results/kernels-smoke.json".to_string(),
        baseline: "results/kernels-baseline.json".to_string(),
        tolerance: 0.15,
        bless: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fresh" => args.fresh = it.next().unwrap_or_else(|| usage()),
            "--baseline" => args.baseline = it.next().unwrap_or_else(|| usage()),
            "--tolerance" => {
                let raw = it.next().unwrap_or_else(|| usage());
                match raw.parse::<f64>() {
                    Ok(t) if t.is_finite() && t > 0.0 && t < 10.0 => args.tolerance = t,
                    _ => {
                        eprintln!("bench_diff: --tolerance wants a fraction like 0.15, got {raw}");
                        std::process::exit(2);
                    }
                }
            }
            "--bless" => args.bless = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("bench_diff: unknown argument {other}");
                usage();
            }
        }
    }
    args
}

fn read_report(path: &str) -> Result<mkp_bench::report::BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_report(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args = parse_args();

    let fresh = match read_report(&args.fresh) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            eprintln!("hint: produce it with `cargo run --release -p mkp-bench --bin kernels -- --smoke --json {}`", args.fresh);
            return ExitCode::from(2);
        }
    };

    if args.bless {
        // Validated above; the baseline becomes a byte copy of the fresh
        // report so the provenance (sample arrays and all) is preserved.
        if let Err(e) = std::fs::copy(&args.fresh, &args.baseline) {
            eprintln!("bench_diff: cannot bless {}: {e}", args.baseline);
            return ExitCode::from(2);
        }
        println!(
            "blessed: {} -> {} ({} benches)",
            args.fresh,
            args.baseline,
            fresh.benches.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match read_report(&args.baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            eprintln!("hint: create the baseline with `bench_diff --bless` on a known-good tree");
            return ExitCode::from(2);
        }
    };
    if !baseline.smoke || !fresh.smoke {
        // Full-mode and smoke-mode figures differ systematically (sample
        // counts, warmup, suite passes); comparing across modes would
        // mis-gate.
        eprintln!(
            "bench_diff: both reports must be --smoke runs (baseline smoke={}, fresh smoke={})",
            baseline.smoke, fresh.smoke
        );
        return ExitCode::from(2);
    }

    let diff = diff_reports(&baseline, &fresh, args.tolerance);
    println!(
        "bench gate: {} vs {} (tolerance +/-{:.0}% after common-mode normalization)",
        args.fresh,
        args.baseline,
        args.tolerance * 100.0
    );
    println!("{}", render_diff(&diff));
    if gate_passes(&diff.rows) {
        println!("bench gate: PASS");
        ExitCode::SUCCESS
    } else {
        println!("bench gate: FAIL (re-bless with --bless only for deliberate perf changes)");
        ExitCode::FAILURE
    }
}
