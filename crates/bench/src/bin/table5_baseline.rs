//! E6 (baseline comparison) — the paper vs. the method it cites.
//!
//! §5: "The execution times for these two benchmarks are very short
//! comparing to those given in [7]" — the Glover–Kochenberger /
//! Hanafi–Fréville line of critical-event, oscillation-centred tabu
//! searches. Machine times across 30 years are incomparable; the fair
//! modern form of the claim is quality at an equal work budget:
//! CTS2 (P cooperative threads) vs CETS (one oscillating search holding
//! the same total budget), both implemented in this workspace with the
//! identical evaluation accounting.

use mkp::eval::Ratios;
use mkp::generate::mk_suite;
use mkp::greedy::dynamic_randomized_greedy;
use mkp::Xoshiro256;
use mkp_bench::{mean, stddev, TextTable};
use mkp_tabu::cets::{run_cets, CetsConfig};
use parallel_tabu::{Engine, Mode, RunConfig};

const SEEDS: [u64; 5] = [42, 1337, 2024, 7, 99];
const BUDGET: u64 = 40_000_000;

fn main() {
    println!("E6: CTS2 (the paper) vs CETS (the cited baseline) at equal budget\n");
    let mut table = TextTable::new(vec!["Prob", "CETS mean", "sd", "CTS2 mean", "sd", "winner"]);
    let mut engine = Engine::new(4); // one warm pool across the suite
    for inst in mk_suite() {
        let ratios = Ratios::new(&inst);
        let cets: Vec<f64> = SEEDS
            .iter()
            .map(|&seed| {
                let mut rng = Xoshiro256::seed_from_u64(seed);
                let init = dynamic_randomized_greedy(&inst, &mut rng, 4);
                run_cets(
                    &inst,
                    &ratios,
                    init,
                    &CetsConfig::default_for(inst.n()),
                    BUDGET,
                    &mut rng,
                )
                .best
                .value() as f64
            })
            .collect();
        let cts2: Vec<f64> = SEEDS
            .iter()
            .map(|&seed| {
                let cfg = RunConfig {
                    p: 4,
                    rounds: 16,
                    ..RunConfig::new(BUDGET, seed)
                };
                engine
                    .run(&inst, Mode::CooperativeAdaptive, &cfg)
                    .expect("bench farm healthy")
                    .best
                    .value() as f64
            })
            .collect();
        let (me, mc) = (mean(&cets), mean(&cts2));
        table.row(vec![
            inst.name().to_string(),
            format!("{me:.0}"),
            format!("{:.0}", stddev(&cets)),
            format!("{mc:.0}"),
            format!("{:.0}", stddev(&cts2)),
            if mc >= me { "CTS2" } else { "CETS" }.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("expected shape: the paper's cooperative adaptive search at least matches");
    println!("the single-thread critical-event baseline at equal total work.");
}
