//! A1 — tabu-tenure sensitivity, and the self-tuning alternatives of §4.1.
//!
//! The paper's motivation for master-side dynamic tuning is that the tenure
//! (`Lt_length`) is instance-sensitive and the literature's self-tuning
//! schemes (Reverse Elimination Method, Reactive TS) carry their own
//! overheads. This ablation runs the identical engine with
//!
//! * static recency tenures across a sweep,
//! * the REM memory (exact cycle prevention, bounded trace-back),
//! * the reactive memory (revisit-adaptive tenure), and
//! * CTS2 (the paper's answer: let the master tune the tenure),
//!
//! all at the same candidate-evaluation budget, and reports quality plus
//! the wall-clock cost of each memory.

use mkp::eval::Ratios;
use mkp::generate::{gk_instance, GkSpec};
use mkp::greedy::randomized_greedy;
use mkp::Xoshiro256;
use mkp_bench::{mean, TextTable};
use mkp_tabu::history::History;
use mkp_tabu::reactive::{ReactiveParams, ReactiveTabu};
use mkp_tabu::rem::ReverseElimination;
use mkp_tabu::search::{run_with_memory, Budget, TsConfig};
use mkp_tabu::tabu_list::Recency;
use mkp_tabu::Strategy;
use parallel_tabu::{Engine, Mode, RunConfig};
use std::time::Instant;

const SEEDS: [u64; 3] = [11, 22, 33];
const BUDGET: u64 = 10_000_000;

fn main() {
    println!("A1: tabu-memory ablation at equal budget ({BUDGET} evals)\n");
    let inst = gk_instance(
        "GK_A1_10x100",
        GkSpec {
            n: 100,
            m: 10,
            tightness: 0.5,
            seed: 0xA1,
        },
    );
    let ratios = Ratios::new(&inst);

    let mut table = TextTable::new(vec!["memory", "mean best", "per-seed", "mean time_s"]);

    let mut run_seeded = |label: String, mut f: Box<dyn FnMut(u64) -> i64>| {
        let mut values = Vec::new();
        let mut times = Vec::new();
        for &seed in &SEEDS {
            let t = Instant::now();
            values.push(f(seed) as f64);
            times.push(t.elapsed().as_secs_f64());
        }
        table.row(vec![
            label,
            format!("{:.0}", mean(&values)),
            format!("{values:?}"),
            format!("{:.2}", mean(&times)),
        ]);
    };

    // Static recency tenures.
    for tenure in [2usize, 4, 8, 16, 32, 64] {
        let inst = &inst;
        let ratios = &ratios;
        run_seeded(
            format!("recency t={tenure}"),
            Box::new(move |seed| {
                let mut rng = Xoshiro256::seed_from_u64(seed);
                let init = randomized_greedy(inst, ratios, &mut rng, 4);
                let mut cfg = TsConfig::default_for(inst.n());
                cfg.strategy = Strategy {
                    tabu_tenure: tenure,
                    ..cfg.strategy
                };
                let mut memory = Recency::new(inst.n(), tenure);
                let mut history = History::new(inst.n());
                run_with_memory(
                    inst,
                    ratios,
                    init,
                    &cfg,
                    Budget::evals(BUDGET),
                    &mut rng,
                    &mut memory,
                    &mut history,
                )
                .best
                .value()
            }),
        );
    }

    // Reverse Elimination Method (bounded trace-back; the paper rejects it
    // for cost growing with iterations — the time column shows why).
    {
        let inst = &inst;
        let ratios = &ratios;
        run_seeded(
            "REM depth=400".to_string(),
            Box::new(move |seed| {
                let mut rng = Xoshiro256::seed_from_u64(seed);
                let init = randomized_greedy(inst, ratios, &mut rng, 4);
                let cfg = TsConfig::default_for(inst.n());
                let mut memory = ReverseElimination::new(inst.n(), 400);
                let mut history = History::new(inst.n());
                run_with_memory(
                    inst,
                    ratios,
                    init,
                    &cfg,
                    Budget::evals(BUDGET),
                    &mut rng,
                    &mut memory,
                    &mut history,
                )
                .best
                .value()
            }),
        );
    }

    // Reactive tabu search.
    {
        let inst = &inst;
        let ratios = &ratios;
        run_seeded(
            "reactive".to_string(),
            Box::new(move |seed| {
                let mut rng = Xoshiro256::seed_from_u64(seed);
                let init = randomized_greedy(inst, ratios, &mut rng, 4);
                let cfg = TsConfig::default_for(inst.n());
                let mut memory = ReactiveTabu::new(inst.n(), 10, ReactiveParams::default());
                let mut history = History::new(inst.n());
                run_with_memory(
                    inst,
                    ratios,
                    init,
                    &cfg,
                    Budget::evals(BUDGET),
                    &mut rng,
                    &mut memory,
                    &mut history,
                )
                .best
                .value()
            }),
        );
    }

    // CTS2: the paper's answer — master-tuned tenure.
    {
        let inst = &inst;
        let mut engine = Engine::new(4); // warm pool across the seeds
        run_seeded(
            "CTS2 (master-tuned)".to_string(),
            Box::new(move |seed| {
                let cfg = RunConfig {
                    p: 4,
                    rounds: 16,
                    ..RunConfig::new(BUDGET, seed)
                };
                engine
                    .run(inst, Mode::CooperativeAdaptive, &cfg)
                    .expect("bench farm healthy")
                    .best
                    .value()
            }),
        );
    }

    println!("{}", table.render());
    println!("expected shape: static quality varies with tenure; adaptive schemes");
    println!("flatten the curve; REM pays visible wall-clock overhead per eval.");
}
