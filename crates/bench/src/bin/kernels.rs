//! Microbenchmarks (M1) for the hot kernels: the move operator at several
//! instance sizes, the intensification procedures, the LP solve, the exact
//! proof, the wire codec, and the Hamming kernel the master's SGP leans on.
//!
//! Runs on the in-tree harness (`mkp_bench::harness`) — no registry
//! dependency. Usage:
//!
//! ```text
//! cargo run --release -p mkp-bench --bin kernels [-- --smoke] [--json PATH] [FILTER..]
//! ```
//!
//! Default JSON report: `results/kernels.json`.

use mkp::eval::Ratios;
use mkp::generate::{fp_instance, gk_instance, GkSpec};
use mkp::greedy::greedy;
use mkp::{BitVec, Xoshiro256};
use mkp_bench::harness::{black_box, Harness};
use mkp_tabu::history::History;
use mkp_tabu::intensify::swap_intensification;
use mkp_tabu::moves::{apply_move, MoveStats};
use mkp_tabu::oscillate::strategic_oscillation;
use mkp_tabu::tabu_list::Recency;

fn bench_moves(h: &mut Harness) {
    for &(n, m) in &[(100usize, 5usize), (250, 10), (500, 25)] {
        let inst = gk_instance(
            "b",
            GkSpec {
                n,
                m,
                tightness: 0.5,
                seed: 1,
            },
        );
        let ratios = Ratios::new(&inst);
        let mut sol = greedy(&inst, &ratios);
        let mut tabu = Recency::new(inst.n(), 15);
        let mut stats = MoveStats::default();
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut now = 0u64;
        h.bench(&format!("apply_move {m}x{n}"), || {
            apply_move(
                &inst,
                &ratios,
                &mut sol,
                &mut tabu,
                now,
                2,
                i64::MAX,
                0.1,
                &mut rng,
                &mut stats,
            );
            now += 1;
            black_box(sol.value())
        });
    }
}

fn bench_intensification(h: &mut Harness) {
    let inst = gk_instance(
        "b",
        GkSpec {
            n: 250,
            m: 10,
            tightness: 0.5,
            seed: 3,
        },
    );
    let ratios = Ratios::new(&inst);
    let base = greedy(&inst, &ratios);
    h.bench("swap_intensification 10x250", || {
        let mut sol = base.clone();
        swap_intensification(&inst, &ratios, &mut sol, &mut MoveStats::default());
        black_box(sol.value())
    });
    h.bench("strategic_oscillation 10x250 depth6", || {
        let mut sol = base.clone();
        strategic_oscillation(&inst, &ratios, &mut sol, 6, &mut MoveStats::default());
        black_box(sol.value())
    });
}

fn bench_lp(h: &mut Harness) {
    for &(n, m) in &[(100usize, 5usize), (250, 25), (500, 25)] {
        let inst = gk_instance(
            "b",
            GkSpec {
                n,
                m,
                tightness: 0.5,
                seed: 4,
            },
        );
        h.bench(&format!("lp_relaxation {m}x{n}"), || {
            black_box(mkp_exact::bounds::lp_bound(&inst).unwrap().objective)
        });
    }
}

fn bench_exact(h: &mut Harness) {
    let inst = fp_instance(20); // mid-size WEISH-like
    h.bench("branch_bound fp21", || {
        let r = mkp_exact::solve(&inst, &mkp_exact::BbConfig::default());
        black_box(r.solution.value())
    });
}

fn bench_codec(h: &mut Harness) {
    use parallel_tabu::messages::ReportMsg;
    use pvm_lite::Wire;
    let bits = BitVec::from_bools((0..500).map(|j| j % 3 == 0));
    let msg = ReportMsg {
        best: bits.clone(),
        elite: vec![bits.clone(); 8],
        initial_value: 1,
        best_value: 2,
        moves: 3,
        evals: 4,
        epoch: 0,
        history_counts: vec![7; 500],
        history_iterations: 1000,
    };
    h.bench("codec report 500-bit x9", || {
        let bytes = msg.to_bytes();
        black_box(ReportMsg::from_bytes(&bytes).unwrap().best_value)
    });
}

fn bench_hamming(h: &mut Harness) {
    let a = BitVec::from_bools((0..500).map(|j| j % 3 == 0));
    let b = BitVec::from_bools((0..500).map(|j| j % 5 == 0));
    h.bench("hamming 500 bits", || black_box(a.hamming(&b)));
}

fn bench_greedy(h: &mut Harness) {
    let inst = gk_instance(
        "b",
        GkSpec {
            n: 500,
            m: 25,
            tightness: 0.5,
            seed: 5,
        },
    );
    let ratios = Ratios::new(&inst);
    h.bench("greedy 25x500", || {
        black_box(greedy(&inst, &ratios).value())
    });
}

fn bench_history(h: &mut Harness) {
    let inst = gk_instance(
        "b",
        GkSpec {
            n: 500,
            m: 25,
            tightness: 0.5,
            seed: 6,
        },
    );
    let ratios = Ratios::new(&inst);
    let sol = greedy(&inst, &ratios);
    let mut hist = History::new(inst.n());
    h.bench("history record 25x500", || {
        hist.record(&sol);
        black_box(hist.iterations())
    });
}

fn bench_soa(h: &mut Harness) {
    use mkp::soa::ResidualLanes;
    use mkp::Solution;
    use mkp_tabu::moves::select_drop;
    for &(n, m) in &[(100usize, 5usize), (250, 10), (500, 25)] {
        let inst = gk_instance(
            "b",
            GkSpec {
                n,
                m,
                tightness: 0.5,
                seed: 1,
            },
        );
        let ratios = Ratios::new(&inst);
        let sol = greedy(&inst, &ratios);
        let view = ratios.view();
        let mut lanes = ResidualLanes::new();
        lanes.sync(view, &inst, &sol);
        // Throughput of the SWAR fits predicate across every item (the
        // scalar equivalent is Solution::fits in a loop).
        h.bench(&format!("lane_fits_scan {m}x{n}"), || {
            let mut hits = 0usize;
            for j in 0..inst.n() {
                hits += lanes.fits(view, j) as usize;
            }
            black_box(hits)
        });
        h.bench(&format!("scalar_fits_scan {m}x{n}"), || {
            let mut hits = 0usize;
            for j in 0..inst.n() {
                hits += sol.fits(&inst, j) as usize;
            }
            black_box(hits)
        });
        let mut tabu = Recency::new(inst.n(), 15);
        let mut rng = Xoshiro256::seed_from_u64(3);
        h.bench(&format!("select_drop {m}x{n}"), || {
            let mut stats = MoveStats::default();
            black_box(select_drop(
                &inst, &ratios, &sol, &mut tabu, 0, 0, 0.1, &mut rng, &mut stats,
            ))
        });
        let mut add_sol = Solution::empty(&inst);
        let mut add_tabu = Recency::new(inst.n(), 15);
        let mut add_rng = Xoshiro256::seed_from_u64(4);
        let mut add_stats = MoveStats::default();
        let mut now = 0u64;
        // nb_drop = 0 isolates the Add phase (plus fingerprint/observe).
        h.bench(&format!("add_phase {m}x{n}"), || {
            apply_move(
                &inst,
                &ratios,
                &mut add_sol,
                &mut add_tabu,
                now,
                0,
                i64::MAX,
                0.1,
                &mut add_rng,
                &mut add_stats,
            );
            now += 1;
            black_box(add_sol.value())
        });
    }
}

fn bench_neighborhood(h: &mut Harness) {
    use mkp_tabu::neighborhood::best_of_k_move;
    let inst = gk_instance(
        "b",
        GkSpec {
            n: 250,
            m: 10,
            tightness: 0.5,
            seed: 7,
        },
    );
    let ratios = Ratios::new(&inst);
    for width in [2usize, 4] {
        let mut sol = greedy(&inst, &ratios);
        let mut tabu = Recency::new(inst.n(), 15);
        let mut stats = MoveStats::default();
        let mut rng = Xoshiro256::seed_from_u64(8);
        let mut now = 0u64;
        h.bench(&format!("best_of_{width}_move 10x250"), || {
            best_of_k_move(
                &inst,
                &ratios,
                &mut sol,
                &mut tabu,
                now,
                2,
                i64::MAX,
                0.1,
                width,
                false,
                &mut rng,
                &mut stats,
            );
            now += 1;
            black_box(sol.value())
        });
    }
}

fn bench_rem(h: &mut Harness) {
    use mkp_tabu::rem::ReverseElimination;
    use mkp_tabu::tabu_list::TabuMemory;
    // Cost of the backward RCS walk as the running list grows — the
    // overhead the paper cites for rejecting REM (§4.1).
    for depth in [100usize, 1000] {
        let mut rem = ReverseElimination::new(500, depth);
        // Preload a long history of 3-toggle moves.
        for t in 0..depth as u64 {
            rem.observe_solution(
                t,
                &[
                    (t as usize * 7) % 500,
                    (t as usize * 13) % 500,
                    (t as usize * 29) % 500,
                ],
                t,
            );
        }
        let mut t = depth as u64;
        h.bench(&format!("rem recompute depth={depth}"), || {
            rem.observe_solution(t, &[(t as usize * 7) % 500], t);
            t += 1;
            black_box(rem.is_tabu(3, t))
        });
    }
}

fn bench_dynamic_greedy(h: &mut Harness) {
    use mkp::greedy::dynamic_greedy_fill;
    use mkp::Solution;
    let inst = gk_instance(
        "b",
        GkSpec {
            n: 250,
            m: 10,
            tightness: 0.5,
            seed: 9,
        },
    );
    h.bench("dynamic_greedy_fill 10x250", || {
        let mut sol = Solution::empty(&inst);
        dynamic_greedy_fill(&inst, &mut sol);
        black_box(sol.value())
    });
}

fn bench_restriction(h: &mut Harness) {
    use mkp::restrict::Restriction;
    let inst = gk_instance(
        "b",
        GkSpec {
            n: 500,
            m: 25,
            tightness: 0.5,
            seed: 10,
        },
    );
    let ratios = Ratios::new(&inst);
    let split: Vec<usize> = ratios.by_utility_desc()[100..104].to_vec();
    h.bench("restriction build+lift 25x500", || {
        let r = Restriction::new(&inst, &split[..2], &split[2..]).unwrap();
        let sub_sol = greedy(r.instance(), &Ratios::new(r.instance()));
        black_box(r.lift(&inst, &sub_sol).value())
    });
}

fn bench_telemetry(h: &mut Harness) {
    use parallel_tabu::{Counter, EventKind, SpanKind, Telemetry};
    // The three telemetry hot paths as seen by a slave's inner loop: a
    // counter bump, a timed span open/close, and an event-ring push. Their
    // cost bounds the per-iteration overhead the engine can possibly add.
    let tel = Telemetry::new(4);
    h.bench("telemetry counter add", || {
        tel.add(1, Counter::MovesExecuted, 1);
        black_box(tel.counter(1, Counter::MovesExecuted))
    });
    h.bench("telemetry span open/close", || {
        black_box(tel.span(1, SpanKind::TsInner));
        0u64
    });
    h.bench("telemetry event push", || {
        tel.event(1, EventKind::NewIncumbent, 0, 1);
        0u64
    });
}

fn bench_transport(h: &mut Harness) {
    use pvm_lite::{read_frame, write_frame};
    use std::io::{Cursor, Read, Write};
    use std::os::unix::net::UnixStream;

    // Frame codec alone: one mid-sized report-like payload through the
    // length-prefixed framer and back, no socket underneath.
    let payload: Vec<u8> = (0..4096u32).map(|i| i as u8).collect();
    let mut wire = Vec::with_capacity(payload.len() + 64);
    h.bench("frame encode+decode 4KiB", || {
        wire.clear();
        write_frame(&mut wire, 3, 7, &payload).unwrap();
        let env = read_frame(&mut Cursor::new(&wire)).unwrap().unwrap();
        black_box(env.data.len())
    });

    // Loopback round-trip: a framed ping over a Unix socketpair against an
    // echo thread — the floor for a master↔slave exchange on one box.
    let (mut ours, mut theirs) = UnixStream::pair().expect("socketpair");
    let echo = std::thread::spawn(move || {
        let mut buf = [0u8; 256];
        loop {
            match theirs.read(&mut buf) {
                Ok(0) | Err(_) => return,
                Ok(n) => {
                    if theirs.write_all(&buf[..n]).is_err() {
                        return;
                    }
                }
            }
        }
    });
    let ping: Vec<u8> = (0..64u8).collect();
    let mut buf = vec![0u8; ping.len()];
    h.bench("socket loopback round-trip 64B", || {
        ours.write_all(&ping).unwrap();
        ours.read_exact(&mut buf).unwrap();
        black_box(buf[0])
    });
    drop(ours);
    let _ = echo.join();
}

fn main() {
    let mut h = Harness::from_args();
    // Smoke mode runs the whole suite several times, merging samples per
    // bench (see Harness::suite_passes) so the bench-diff gate compares
    // medians that mix independent noise-regime draws.
    for _ in 0..h.suite_passes() {
        bench_moves(&mut h);
        bench_soa(&mut h);
        bench_intensification(&mut h);
        bench_lp(&mut h);
        bench_exact(&mut h);
        bench_codec(&mut h);
        bench_hamming(&mut h);
        bench_greedy(&mut h);
        bench_history(&mut h);
        bench_neighborhood(&mut h);
        bench_rem(&mut h);
        bench_dynamic_greedy(&mut h);
        bench_restriction(&mut h);
        bench_telemetry(&mut h);
        bench_transport(&mut h);
    }
    h.finish();
}
