//! # mkp-bench — experiment harness
//!
//! One binary per table of the paper plus the ablations indexed in
//! DESIGN.md §2:
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `fp57` | E1 — §5 in-text result on the Fréville–Plateau suite |
//! | `table1` | E2 — Table 1 (Glover–Kochenberger suite) |
//! | `table2` | E3 — Table 2 (SEQ / ITS / CTS1 / CTS2 at equal budget) |
//! | `table3_async` | E4 — §6 asynchronous extension vs CTS2 |
//! | `ablation_tenure` | A1 — tenure sensitivity & tabu-memory variants |
//! | `ablation_drop` | A2 — `nb_drop` vs solution distance |
//! | `ablation_alpha` | A3 — ISP α sweep (macro intensify/diversify) |
//!
//! Microbenches for the hot kernels live in the `kernels` binary
//! (`src/bin/kernels.rs`), built on the in-tree [`harness`] module —
//! warmup, fixed-iteration timing, median/p95, JSON output to `results/`.
//! This library otherwise only holds the small shared reporting utilities.

#![warn(missing_docs)]

pub mod harness;
pub mod report;

use std::fmt::Write as _;

/// A plain-text table with aligned columns (the harness prints the same
/// rows the paper's tables report).
#[derive(Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (k, cell) in row.iter().enumerate() {
                widths[k] = widths[k].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for k in 0..cols {
                let _ = write!(out, "{:<width$}", cells[k], width = widths[k] + 2);
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        let rule: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (0 for fewer than two points).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Percentage deviation of `found` below the reference `bound`
/// (`100 · (bound − found) / bound`).
pub fn deviation_pct(found: i64, bound: f64) -> f64 {
    if bound <= 0.0 {
        return 0.0;
    }
    100.0 * (bound - found as f64) / bound
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name") && lines[0].contains("value"));
        assert!(lines[2].starts_with('a'));
        // All rows have the same rendered width.
        assert!(lines[2].trim_end().len() < lines[1].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn statistics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn deviation() {
        assert!((deviation_pct(99, 100.0) - 1.0).abs() < 1e-12);
        assert_eq!(deviation_pct(5, 0.0), 0.0);
        assert!(deviation_pct(100, 100.0).abs() < 1e-12);
    }
}
