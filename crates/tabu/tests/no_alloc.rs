//! Regression gate: the best-of-K neighborhood scan must not touch the
//! heap once its scratch buffers are warm. A counting global allocator
//! watches a long steady-state run of [`best_of_k_move_in`]; any
//! allocation (or reallocation) on the hot path fails the test.
//!
//! This lives in its own integration-test binary because a
//! `#[global_allocator]` is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use mkp::eval::Ratios;
use mkp::generate::{gk_instance, GkSpec};
use mkp::greedy::greedy;
use mkp::Xoshiro256;
use mkp_tabu::moves::MoveStats;
use mkp_tabu::neighborhood::{best_of_k_move_in, NeighborhoodScratch};
use mkp_tabu::tabu_list::Recency;

/// Pass-through allocator that counts heap traffic while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn apply_move_steady_state_is_allocation_free() {
    use mkp_tabu::moves::apply_move;
    let inst = gk_instance(
        "na2",
        GkSpec {
            n: 250,
            m: 10,
            tightness: 0.5,
            seed: 7,
        },
    );
    let ratios = Ratios::new(&inst);
    let mut sol = greedy(&inst, &ratios);
    let mut tabu = Recency::new(inst.n(), 15);
    let mut stats = MoveStats::default();
    let mut rng = Xoshiro256::seed_from_u64(8);
    let mut now = 0u64;
    for _ in 0..5_000 {
        apply_move(
            &inst,
            &ratios,
            &mut sol,
            &mut tabu,
            now,
            2,
            i64::MAX,
            0.1,
            &mut rng,
            &mut stats,
        );
        now += 1;
    }
    let before = ALLOCS.load(Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..10_000 {
        apply_move(
            &inst,
            &ratios,
            &mut sol,
            &mut tabu,
            now,
            2,
            i64::MAX,
            0.1,
            &mut rng,
            &mut stats,
        );
        now += 1;
    }
    ARMED.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(
        allocs, 0,
        "apply_move allocated {allocs} time(s) over 10k steady-state moves"
    );
}

#[test]
fn best_of_k_steady_state_is_allocation_free() {
    let inst = gk_instance(
        "na",
        GkSpec {
            n: 250,
            m: 10,
            tightness: 0.5,
            seed: 7,
        },
    );
    let ratios = Ratios::new(&inst);
    let mut sol = greedy(&inst, &ratios);
    let mut tabu = Recency::new(inst.n(), 15);
    let mut stats = MoveStats::default();
    let mut rng = Xoshiro256::seed_from_u64(8);
    let mut scratch = NeighborhoodScratch::new();
    let mut now = 0u64;

    // Warm-up: let every lazily-grown buffer (neighborhood slots, the
    // move workspace, tabu census queue, stats) reach its steady size.
    for _ in 0..5_000 {
        best_of_k_move_in(
            &inst,
            &ratios,
            &mut sol,
            &mut tabu,
            now,
            2,
            i64::MAX,
            0.1,
            4,
            false,
            &mut rng,
            &mut stats,
            &mut scratch,
        );
        now += 1;
    }

    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..10_000 {
        best_of_k_move_in(
            &inst,
            &ratios,
            &mut sol,
            &mut tabu,
            now,
            2,
            i64::MAX,
            0.1,
            4,
            false,
            &mut rng,
            &mut stats,
            &mut scratch,
        );
        now += 1;
    }
    ARMED.store(false, Ordering::SeqCst);

    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "best_of_k_move_in allocated {allocs} time(s) over 10k steady-state moves"
    );
}
