//! Diversification via the long-term frequency memory (paper §3.3).
//!
//! A new starting solution `X_div` is built from the `History` residency
//! frequencies rather than at random: components that were almost always
//! packed are forced *out*, components that were almost never packed are
//! forced *in* (when they fit), and both are made tabu for a window so the
//! subsequent local search is pinned inside the neglected region.

use crate::history::History;
use crate::tabu_list::TabuMemory;
use mkp::eval::Ratios;
use mkp::{Instance, Solution};

/// Thresholds steering the diversification restart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiversifyParams {
    /// Components with residency frequency above this are forced to 0.
    pub hi_threshold: f64,
    /// Components with residency frequency below this are forced to 1.
    pub lo_threshold: f64,
    /// Tabu window applied to the forced components.
    pub pin_tenure: usize,
}

impl Default for DiversifyParams {
    fn default() -> Self {
        DiversifyParams {
            hi_threshold: 0.85,
            lo_threshold: 0.10,
            pin_tenure: 40,
        }
    }
}

/// Build the diversified restart solution from the frequency memory.
///
/// Returns the new (feasible) solution and the list of components that were
/// forced and pinned tabu.
pub fn diversify<M: TabuMemory>(
    inst: &Instance,
    ratios: &Ratios,
    history: &History,
    current: &Solution,
    params: &DiversifyParams,
    tabu: &mut M,
    now: u64,
) -> (Solution, Vec<usize>) {
    assert!(params.lo_threshold <= params.hi_threshold);
    let mut next = Solution::empty(inst);
    let mut forced = Vec::new();
    let mut forced_out = vec![false; inst.n()];

    // Pass 1: force under-used components in, most attractive first, as long
    // as they fit; over-used components are locked out for the whole build.
    for &j in ratios.by_utility_desc() {
        if history.frequency(j) > params.hi_threshold {
            forced_out[j] = true;
            forced.push(j);
        } else if history.frequency(j) < params.lo_threshold && next.fits(inst, j) {
            next.add(inst, j);
            forced.push(j);
        }
    }

    // Pass 2: keep the current solution's remaining components (the locked-
    // out ones stay out and become tabu-to-add).
    for j in current.bits().iter_ones() {
        if !next.contains(j) && !forced_out[j] && next.fits(inst, j) {
            next.add(inst, j);
        }
    }

    // Fill any slack greedily — skipping locked-out components — and pin
    // every forced component.
    for &j in ratios.by_utility_desc() {
        if !forced_out[j] && !next.contains(j) && next.fits(inst, j) {
            next.add(inst, j);
        }
    }
    let old_tenure = tabu.tenure();
    tabu.set_tenure(params.pin_tenure);
    for &j in &forced {
        tabu.forbid(j, now);
    }
    tabu.set_tenure(old_tenure);

    debug_assert!(next.is_feasible(inst));
    (next, forced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tabu_list::Recency;
    use mkp::generate::uncorrelated_instance;
    use mkp::greedy::greedy;

    fn setup(seed: u64) -> (mkp::Instance, Ratios) {
        let inst = uncorrelated_instance("d", 30, 3, 0.5, seed);
        let ratios = Ratios::new(&inst);
        (inst, ratios)
    }

    #[test]
    fn result_is_feasible() {
        let (inst, ratios) = setup(1);
        let sol = greedy(&inst, &ratios);
        let mut history = History::new(inst.n());
        for _ in 0..100 {
            history.record(&sol);
        }
        let mut tabu = Recency::new(inst.n(), 5);
        let (next, _) = diversify(
            &inst,
            &ratios,
            &history,
            &sol,
            &DiversifyParams::default(),
            &mut tabu,
            100,
        );
        assert!(next.is_feasible(&inst));
        assert!(next.check_consistent(&inst));
    }

    #[test]
    fn over_used_components_are_evicted_and_pinned() {
        let (inst, ratios) = setup(2);
        let sol = greedy(&inst, &ratios);
        let mut history = History::new(inst.n());
        for _ in 0..100 {
            history.record(&sol); // every packed item has frequency 1.0
        }
        let mut tabu = Recency::new(inst.n(), 5);
        let params = DiversifyParams {
            hi_threshold: 0.9,
            lo_threshold: 0.0,
            pin_tenure: 30,
        };
        let (next, forced) = diversify(&inst, &ratios, &history, &sol, &params, &mut tabu, 100);
        // Every previously packed component is over-used → forced out.
        for j in sol.bits().iter_ones() {
            assert!(!next.contains(j), "over-used {j} still packed");
            assert!(forced.contains(&j));
            assert!(tabu.is_tabu(j, 100));
            assert!(!tabu.is_tabu(j, 131), "pin respects pin_tenure");
        }
    }

    #[test]
    fn under_used_components_are_forced_in() {
        let (inst, ratios) = setup(3);
        let empty = Solution::empty(&inst);
        let mut history = History::new(inst.n());
        for _ in 0..50 {
            history.record(&empty); // all frequencies 0 → everything under-used
        }
        let mut tabu = Recency::new(inst.n(), 5);
        let (next, forced) = diversify(
            &inst,
            &ratios,
            &history,
            &empty,
            &DiversifyParams::default(),
            &mut tabu,
            50,
        );
        assert!(next.cardinality() > 0, "nothing forced in");
        assert!(!forced.is_empty());
    }

    #[test]
    fn pin_restores_original_tenure() {
        let (inst, ratios) = setup(4);
        let sol = greedy(&inst, &ratios);
        let history = History::new(inst.n());
        let mut tabu = Recency::new(inst.n(), 7);
        diversify(
            &inst,
            &ratios,
            &history,
            &sol,
            &DiversifyParams::default(),
            &mut tabu,
            0,
        );
        assert_eq!(tabu.tenure(), 7);
    }

    #[test]
    #[should_panic(expected = "lo_threshold <= params.hi_threshold")]
    fn rejects_inverted_thresholds() {
        let (inst, ratios) = setup(5);
        let sol = Solution::empty(&inst);
        let history = History::new(inst.n());
        let mut tabu = Recency::new(inst.n(), 5);
        let params = DiversifyParams {
            hi_threshold: 0.1,
            lo_threshold: 0.9,
            pin_tenure: 10,
        };
        diversify(&inst, &ratios, &history, &sol, &params, &mut tabu, 0);
    }
}
