//! The Drop/Add move operator (paper §3.1, Fig. 1 step 5).
//!
//! One move is `nb_drop` Drop steps followed by a saturating Add phase:
//!
//! * **Drop** — find the most saturated constraint
//!   `i* = argmin_i (b_i − Σ_j a_ij x_j)` and remove the packed item
//!   maximizing `a_{i*j} / c_j` (highest pressure per unit profit). The
//!   dropped item becomes tabu-to-add.
//! * **Add** — repeatedly insert the best-pseudo-utility item that fits and
//!   is not tabu, where the aspiration criterion overrides tabu status for
//!   an item whose insertion beats the best value found so far.
//!
//! Both selections carry a small amount of *noise*: with probability
//! `noise` the choice falls uniformly on one of the top [`RCL_WIDTH`]
//! candidates instead of the single best. This is what decorrelates
//! parallel search threads that restart from the same solution — without
//! it, a deterministic engine retraces the identical path and cooperation
//! degenerates to replication (the failure mode §2 ascribes to naive
//! independent-thread parallelism).
//!
//! # Word-parallel hot path
//!
//! The scans below are the innermost loops of every experiment, so they
//! run on the structure-of-arrays view (DESIGN.md §12): drop scores come
//! from the precomputed table in [`mkp::soa::SoaView`], feasibility tests
//! use the u64-lane SWAR kernel of [`mkp::soa::ResidualLanes`] (scalar
//! fallback when the encoding does not apply), and all per-move scratch
//! lives in a thread-local [`MoveWorkspace`] so the steady-state path
//! never touches the allocator. The selected moves, every stats counter
//! and every RNG draw are bit-identical to the scalar reference — the
//! equivalence is property-tested in `mkp::soa` and pinned by the
//! workspace determinism tests.

use crate::tabu_list::TabuMemory;
use mkp::eval::Ratios;
use mkp::soa::ResidualLanes;
use mkp::{Instance, Solution, Xoshiro256};
use std::cell::RefCell;

/// Number of top candidates eligible when a noisy pick fires.
pub const RCL_WIDTH: usize = 3;

/// Work counters, the machine-independent budget unit of all experiments
/// (see DESIGN.md §4 on substituting wall-clock time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoveStats {
    /// Completed drop/add moves.
    pub moves: u64,
    /// Candidate items examined across drop and add scans.
    pub candidate_evals: u64,
    /// Items removed by Drop steps.
    pub drops: u64,
    /// Items inserted by Add phases.
    pub adds: u64,
    /// Tabu candidates admitted by the aspiration criterion.
    pub aspiration_hits: u64,
    /// Candidates rejected for being tabu (and not aspired).
    pub tabu_rejections: u64,
    /// Deepest infeasible excursion strategic oscillation reached (a
    /// high-water gauge, not a running sum).
    pub oscillation_max_depth: u64,
}

/// Items held inline before an [`ItemList`] spills to the heap. A move
/// drops `nb_drop` (≤ 3 in every experiment) and adds a handful, so the
/// inline capacity covers the steady state.
const INLINE_ITEMS: usize = 8;

/// Small-vector list of item indices: inline storage for the common case,
/// a heap spill (holding *all* elements, so the slice view stays
/// contiguous) beyond [`INLINE_ITEMS`]. Dereferences to `&[usize]`.
#[derive(Debug)]
pub struct ItemList {
    inline: [usize; INLINE_ITEMS],
    spill: Vec<usize>,
    len: usize,
}

impl ItemList {
    /// An empty list (no allocation).
    pub fn new() -> Self {
        ItemList {
            inline: [0; INLINE_ITEMS],
            spill: Vec::new(),
            len: 0,
        }
    }

    /// Remove all items, keeping any spill capacity.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// Append an item.
    pub fn push(&mut self, item: usize) {
        if self.len < INLINE_ITEMS {
            self.inline[self.len] = item;
        } else {
            if self.len == INLINE_ITEMS {
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(item);
        }
        self.len += 1;
    }

    /// Insert an item at the front (O(len); lists stay tiny).
    pub fn insert_front(&mut self, item: usize) {
        if self.len < INLINE_ITEMS {
            self.inline.copy_within(0..self.len, 1);
            self.inline[0] = item;
        } else {
            if self.len == INLINE_ITEMS {
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.insert(0, item);
        }
        self.len += 1;
    }

    /// The items as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        if self.len <= INLINE_ITEMS {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }
}

impl Default for ItemList {
    fn default() -> Self {
        ItemList::new()
    }
}

// Manual `Clone` so `clone_from` into scratch space reuses the spill
// buffer instead of reallocating (best-of-K clones outcomes every move).
impl Clone for ItemList {
    fn clone(&self) -> Self {
        ItemList {
            inline: self.inline,
            spill: self.spill.clone(),
            len: self.len,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.inline = source.inline;
        self.spill.clone_from(&source.spill);
        self.len = source.len;
    }
}

impl std::ops::Deref for ItemList {
    type Target = [usize];

    #[inline]
    fn deref(&self) -> &[usize] {
        self.as_slice()
    }
}

impl PartialEq for ItemList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for ItemList {}

impl<'a> IntoIterator for &'a ItemList {
    type Item = &'a usize;
    type IntoIter = std::slice::Iter<'a, usize>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<usize> for ItemList {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut list = ItemList::new();
        for item in iter {
            list.push(item);
        }
        list
    }
}

/// Result of applying one move.
#[derive(Debug, PartialEq, Eq)]
pub struct MoveOutcome {
    /// Items removed by the Drop steps.
    pub dropped: ItemList,
    /// Items inserted by the Add phase.
    pub added: ItemList,
    /// An aspiration override fired during the Add phase.
    pub aspired: bool,
}

// Manual `Clone` for an allocation-free `clone_from` (scratch reuse).
impl Clone for MoveOutcome {
    fn clone(&self) -> Self {
        MoveOutcome {
            dropped: self.dropped.clone(),
            added: self.added.clone(),
            aspired: self.aspired,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.dropped.clone_from(&source.dropped);
        self.added.clone_from(&source.added);
        self.aspired = source.aspired;
    }
}

impl MoveOutcome {
    /// An empty outcome (no allocation); scratch slots start here.
    pub fn empty() -> Self {
        MoveOutcome {
            dropped: ItemList::new(),
            added: ItemList::new(),
            aspired: false,
        }
    }
}

/// Per-thread scratch for the Add phase: the lane-packed residual cache
/// and the transient candidate lists. Thread-local so `apply_move` keeps
/// its signature while the steady-state path stays allocation-free.
struct MoveWorkspace {
    lanes: ResidualLanes,
    /// Fitting-but-tabu-rejected items from the first Add pass, in scan
    /// order, with their relaxation keys — the only possible candidates of
    /// the relaxed saturation loop.
    relaxed: Vec<(usize, u64)>,
    /// Noise-skipped admissible items awaiting their second chance.
    skipped: Vec<usize>,
    /// Packed-set mirror of the last mirrored solution in *scan order*:
    /// bit `k` ⇔ `order[k]` packed, tail bits past `n` set (never visited).
    /// Valid only while (`mirror_view`, `sol_words`) match the live view id
    /// and the solution's raw bit words — an exact witness, so a stale
    /// mirror is impossible; on mismatch the Add scan rebuilds it in O(n).
    mirror: Vec<u64>,
    /// Raw bit words of the mirrored solution (validity witness).
    sol_words: Vec<u64>,
    /// [`mkp::soa::SoaView::id`] the mirror was built against (0 = none).
    mirror_view: u64,
}

thread_local! {
    static WORKSPACE: RefCell<MoveWorkspace> = RefCell::new(MoveWorkspace {
        lanes: ResidualLanes::new(),
        relaxed: Vec::new(),
        skipped: Vec::new(),
        mirror: Vec::new(),
        sol_words: Vec::new(),
        mirror_view: 0,
    });
}

/// Select the packed item to drop against constraint `i_star`.
///
/// Non-tabu items are preferred; when every packed item is tabu the tabu
/// status is ignored (the move must make progress) — the standard deadlock
/// escape. Returns `None` only for an empty knapsack.
///
/// The selection walks the precomputed score ranking of
/// [`mkp::soa::SoaView::drop_order_row`] — descending [`mkp::eval::drop_score`],
/// ties to the lowest index, exactly the order in which the scalar
/// max-scan's strict `>` crowns winners — so only a cheap tabu census
/// touches every packed item and no score is compared at move time. Stats
/// counters and RNG consumption replicate the scalar scan bit for bit.
#[allow(clippy::too_many_arguments)] // mirrors apply_move's knob set
pub fn select_drop<M: TabuMemory>(
    inst: &Instance,
    ratios: &Ratios,
    sol: &Solution,
    tabu: &mut M,
    now: u64,
    i_star: usize,
    noise: f64,
    rng: &mut Xoshiro256,
    stats: &mut MoveStats,
) -> Option<usize> {
    let order = ratios.view().drop_order_row(i_star);
    debug_assert_eq!(order.len(), inst.n());
    // Census pass: the scalar scan examined every packed item and counted
    // each tabu one as a rejection.
    let card = sol.cardinality();
    stats.candidate_evals += card as u64;
    let tabu_count = tabu.count_tabu(sol.bits(), now);
    stats.tabu_rejections += tabu_count as u64;
    let non_tabu = card - tabu_count;
    if non_tabu == 0 {
        // Every packed item tabu (or knapsack empty): ignore tabu status,
        // best scorer wins — no RNG draw, matching the empty-TopK path.
        return order.iter().copied().find(|&j| sol.contains(j));
    }
    // The first min(RCL_WIDTH, non_tabu) packed non-tabu items in ranking
    // order are precisely the TopK buffer's contents.
    let len = non_tabu.min(RCL_WIDTH);
    let k = if len > 1 && noise > 0.0 && rng.chance(noise) {
        rng.index(len)
    } else {
        0
    };
    let mut seen = 0usize;
    for &j in order {
        if sol.contains(j) && !tabu.is_tabu(j, now) {
            if seen == k {
                return Some(j);
            }
            seen += 1;
        }
    }
    debug_assert!(false, "non_tabu > 0 guarantees a ranked pick");
    None
}

/// Select the next item for the Add phase: highest pseudo-utility among
/// unpacked items that fit, honoring tabu status unless the aspiration
/// criterion (beating `best_value`) fires.
///
/// When *every* fitting item is tabu, the knapsack would otherwise drain
/// move after move (on small instances `nb_drop · tenure` can cover almost
/// all items). A relaxed pass then re-admits the fitting tabu item closest
/// to expiry — except items in `exclude` (those dropped by the move in
/// progress), so a move can never undo itself into a no-op.
#[allow(clippy::too_many_arguments)] // mirrors apply_move's knob set
pub fn select_add<M: TabuMemory>(
    inst: &Instance,
    ratios: &Ratios,
    sol: &Solution,
    tabu: &M,
    now: u64,
    best_value: i64,
    noise: f64,
    exclude: &[usize],
    rng: &mut Xoshiro256,
    stats: &mut MoveStats,
) -> Option<(usize, bool)> {
    // Walk the precomputed utility order; collect the first few admissible
    // items (they are the top candidates by construction).
    let mut found: [(usize, bool); RCL_WIDTH] = [(usize::MAX, false); RCL_WIDTH];
    let mut count = 0;
    let want = if noise > 0.0 { RCL_WIDTH } else { 1 };
    for &j in ratios.by_utility_desc() {
        if sol.contains(j) {
            continue;
        }
        stats.candidate_evals += 1;
        if !sol.fits(inst, j) {
            continue;
        }
        if !tabu.is_tabu(j, now) {
            found[count] = (j, false);
            count += 1;
        } else if sol.value() + inst.profit(j) > best_value {
            // Aspiration: the tabu barrier falls for a strictly improving add.
            stats.aspiration_hits += 1;
            found[count] = (j, true);
            count += 1;
        } else {
            stats.tabu_rejections += 1;
        }
        if count == want {
            break;
        }
    }
    if count == 0 {
        // Relaxed pass: re-admit the fitting tabu item closest to expiry.
        let mut relaxed: Option<(usize, u64)> = None;
        for &j in ratios.by_utility_desc() {
            if sol.contains(j) || exclude.contains(&j) {
                continue;
            }
            stats.candidate_evals += 1;
            if !sol.fits(inst, j) {
                continue;
            }
            let key = tabu.relaxation_key(j);
            if relaxed.is_none_or(|(_, k)| key < k) {
                relaxed = Some((j, key));
            }
        }
        return relaxed.map(|(j, _)| (j, false));
    }
    let k = if count > 1 && rng.chance(noise) {
        rng.index(count)
    } else {
        0
    };
    Some(found[k])
}

/// Apply one full Drop/Add move in place. `best_value` is the incumbent used
/// by the aspiration criterion. The dropped items are marked tabu.
#[allow(clippy::too_many_arguments)] // the move IS this tuple of knobs
pub fn apply_move<M: TabuMemory>(
    inst: &Instance,
    ratios: &Ratios,
    sol: &mut Solution,
    tabu: &mut M,
    now: u64,
    nb_drop: usize,
    best_value: i64,
    noise: f64,
    rng: &mut Xoshiro256,
    stats: &mut MoveStats,
) -> MoveOutcome {
    // Whether the workspace mirror matches `sol` before this move's drops;
    // if so it is kept current through them (an exact incremental update),
    // saving the Add phase its O(n) rebuild.
    let mirror_live = WORKSPACE.with(|cell| {
        let ws = cell.borrow();
        ws.mirror_view == ratios.view().id() && ws.sol_words.as_slice() == sol.bits().words()
    });
    let mut dropped = ItemList::new();
    for _ in 0..nb_drop {
        if sol.cardinality() == 0 {
            break;
        }
        let i_star = sol.most_saturated_constraint(inst);
        if let Some(j) = select_drop(inst, ratios, sol, tabu, now, i_star, noise, rng, stats) {
            sol.drop(inst, j);
            tabu.forbid(j, now);
            dropped.push(j);
        }
    }
    if mirror_live && !dropped.is_empty() {
        WORKSPACE.with(|cell| {
            let ws = &mut *cell.borrow_mut();
            let rank = ratios.view().scan_rank();
            for &j in dropped.iter() {
                let k = rank[j] as usize;
                ws.mirror[k / 64] &= !(1u64 << (k % 64));
            }
            ws.sol_words.clear();
            ws.sol_words.extend_from_slice(sol.bits().words());
        });
    }

    let (added, aspired) = add_phase(
        inst, ratios, sol, tabu, now, best_value, noise, &dropped, rng, stats,
    );

    stats.drops += dropped.len() as u64;
    stats.adds += added.len() as u64;
    stats.moves += 1;
    tabu.observe_solution(sol.bits().fingerprint(), &dropped, now);
    MoveOutcome {
        dropped,
        added,
        aspired,
    }
}

/// The saturating Add phase in O(n) + O(relaxed admissions · candidates):
///
/// 1. one forward pass over the utility order packs every admissible
///    fitting item (non-tabu, or tabu with aspiration), where noise makes a
///    candidate be skipped with probability `noise` (skipped items get a
///    second chance at the end);
/// 2. as long as fitting items remain (necessarily tabu now), the relaxed
///    rule admits the one closest to expiry — excluding `exclude` (this
///    move's drops) — so every move ends on a maximal solution and the
///    knapsack can never drain.
///
/// Feasibility tests run on the lane-packed residual cache when the
/// encoding applies (scalar fallback otherwise). The relaxed loop scans
/// only the recorded first-pass rejections — the sole possible candidates,
/// since loads grow monotonically through the phase — while
/// `candidate_evals` advances exactly as if each round rescanned the full
/// utility order, keeping the budget accounting bit-identical to the
/// reference implementation.
#[allow(clippy::too_many_arguments)]
fn add_phase<M: TabuMemory>(
    inst: &Instance,
    ratios: &Ratios,
    sol: &mut Solution,
    tabu: &M,
    now: u64,
    best_value: i64,
    noise: f64,
    exclude: &[usize],
    rng: &mut Xoshiro256,
    stats: &mut MoveStats,
) -> (ItemList, bool) {
    WORKSPACE.with(|cell| {
        let ws = &mut *cell.borrow_mut();
        let MoveWorkspace {
            lanes,
            relaxed,
            skipped,
            mirror,
            sol_words,
            mirror_view,
        } = ws;
        let view = ratios.view();
        let mut added = ItemList::new();
        let mut aspired = false;
        relaxed.clear();
        skipped.clear();

        lanes.sync(view, inst, sol);
        let mut lanes_live = lanes.usable(view);
        // The scalar reference pass examines every unpacked item exactly
        // once, and an add mid-pass can only affect the item being visited
        // — so the pass's eval count is the unpacked count at entry,
        // bookable in bulk.
        stats.candidate_evals += (inst.n() - sol.cardinality()) as u64;
        // Word-parallel first pass. The packed-set mirror exposes the
        // unpacked scan positions as set bits, so the scan jumps between
        // real candidates with `trailing_zeros` instead of testing a ~50/50
        // `contains` branch per position; the pre-filter row (most-saturated
        // constraint, stored in scan order) rejects most visits with one
        // sequential load, and its suffix minima end the scan outright once
        // no later position can pass — rejection on one constraint is
        // exact, so the skipped tail could neither add nor record anything.
        // Adds keep the solution feasible, so the lane cache cannot become
        // unusable mid-pass; the filter is refreshed after each re-sync
        // because the most-saturated constraint moves.
        let order = ratios.by_utility_desc();
        let scan_row = view.scan_weight_row(lanes.filter_constraint());
        let mirror_scan = lanes_live && scan_row.len() == view.n();
        if mirror_scan {
            let mut frow = scan_row;
            let mut suffix = view.scan_suffix_min_row(lanes.filter_constraint());
            let mut fr = lanes.filter_residual();
            if *mirror_view != view.id() || sol_words.as_slice() != sol.bits().words() {
                // Rebuild the mirror for this (view, solution) pair.
                sol_words.clear();
                sol_words.extend_from_slice(sol.bits().words());
                mirror.clear();
                mirror.resize(sol_words.len(), 0);
                for (k, &j) in order.iter().enumerate() {
                    if sol.contains(j) {
                        mirror[k / 64] |= 1u64 << (k % 64);
                    }
                }
                for k in order.len()..mirror.len() * 64 {
                    mirror[k / 64] |= 1u64 << (k % 64);
                }
                *mirror_view = view.id();
            }
            'scan: for (wi, &mword) in mirror.iter().enumerate() {
                let mut unpacked = !mword;
                while unpacked != 0 {
                    let k = wi * 64 + unpacked.trailing_zeros() as usize;
                    unpacked &= unpacked - 1;
                    if suffix[k] > fr {
                        // No remaining position can pass the pre-filter.
                        break 'scan;
                    }
                    if frow[k] > fr {
                        continue;
                    }
                    let j = order[k];
                    if !lanes.fits_unfiltered(view, j) {
                        continue;
                    }
                    let admissible = if !tabu.is_tabu(j, now) {
                        true
                    } else if sol.value() + inst.profit(j) > best_value {
                        stats.aspiration_hits += 1;
                        aspired = true;
                        true
                    } else {
                        stats.tabu_rejections += 1;
                        if !exclude.contains(&j) {
                            relaxed.push((j, tabu.relaxation_key(j)));
                        }
                        false
                    };
                    if admissible {
                        if noise > 0.0 && rng.chance(noise) {
                            skipped.push(j);
                        } else {
                            sol.add(inst, j);
                            added.push(j);
                            lanes.sync(view, inst, sol);
                            lanes_live = lanes.usable(view);
                            debug_assert!(lanes_live, "a fitting add kept the solution feasible");
                            let i = lanes.filter_constraint();
                            frow = view.scan_weight_row(i);
                            suffix = view.scan_suffix_min_row(i);
                            fr = lanes.filter_residual();
                        }
                    }
                }
            }
        } else {
            // Scalar reference pass (tiny/over-wide instances or an
            // unusable lane cache).
            for &j in order.iter() {
                if sol.contains(j) {
                    continue;
                }
                let fits = if lanes_live {
                    lanes.fits(view, j)
                } else {
                    sol.fits(inst, j)
                };
                if !fits {
                    continue;
                }
                let admissible = if !tabu.is_tabu(j, now) {
                    true
                } else if sol.value() + inst.profit(j) > best_value {
                    stats.aspiration_hits += 1;
                    aspired = true;
                    true
                } else {
                    stats.tabu_rejections += 1;
                    if !exclude.contains(&j) {
                        relaxed.push((j, tabu.relaxation_key(j)));
                    }
                    false
                };
                if admissible {
                    if noise > 0.0 && rng.chance(noise) {
                        skipped.push(j);
                    } else {
                        sol.add(inst, j);
                        added.push(j);
                        if lanes_live {
                            lanes.sync(view, inst, sol);
                            lanes_live = lanes.usable(view);
                        }
                    }
                }
            }
        }
        // Second chance for noisily skipped candidates that still fit.
        for &j in skipped.iter() {
            stats.candidate_evals += 1;
            let fits = if lanes_live {
                lanes.fits(view, j)
            } else {
                sol.fits(inst, j)
            };
            if fits {
                sol.add(inst, j);
                added.push(j);
                if lanes_live {
                    lanes.sync(view, inst, sol);
                    lanes_live = lanes.usable(view);
                }
            }
        }

        // Relaxed saturation: admit expiring tabu items while anything
        // fits. Only the recorded rejections can fit now; the counter
        // advances by the full-rescan cost each round regardless.
        let n = inst.n() as u64;
        let mut card = sol.cardinality() as u64;
        let excl_unpacked = exclude.iter().filter(|&&j| !sol.contains(j)).count() as u64;
        loop {
            stats.candidate_evals += n - card - excl_unpacked;
            let mut winner: Option<(usize, u64)> = None;
            for &(j, key) in relaxed.iter() {
                if sol.contains(j) {
                    continue;
                }
                let fits = if lanes_live {
                    lanes.fits(view, j)
                } else {
                    sol.fits(inst, j)
                };
                if fits && winner.is_none_or(|(_, k)| key < k) {
                    winner = Some((j, key));
                }
            }
            match winner {
                Some((j, _)) => {
                    sol.add(inst, j);
                    added.push(j);
                    card += 1;
                    if lanes_live {
                        lanes.sync(view, inst, sol);
                        lanes_live = lanes.usable(view);
                    }
                }
                None => break,
            }
        }
        // Fold this phase's adds back into the packed-set mirror so the
        // next move's scan skips the rebuild.
        if mirror_scan {
            let rank = view.scan_rank();
            for &j in added.iter() {
                let k = rank[j] as usize;
                mirror[k / 64] |= 1u64 << (k % 64);
            }
            sol_words.clear();
            sol_words.extend_from_slice(sol.bits().words());
        }
        (added, aspired)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tabu_list::Recency;
    use mkp::generate::uncorrelated_instance;
    use mkp::greedy::greedy;
    use mkp::Instance;

    fn inst() -> Instance {
        Instance::new(
            "mv",
            5,
            2,
            vec![10, 8, 6, 4, 2],
            vec![
                4, 3, 2, 5, 1, //
                2, 4, 1, 1, 3,
            ],
            vec![7, 6],
        )
        .unwrap()
    }

    fn rng() -> Xoshiro256 {
        Xoshiro256::seed_from_u64(1)
    }

    #[test]
    fn drop_picks_highest_pressure_item() {
        let i = inst();
        let ratios = Ratios::new(&i);
        let mut sol = Solution::empty(&i);
        sol.add(&i, 0); // weights c0: 4, c1: 2
        sol.add(&i, 2); // weights c0: 2, c1: 1
                        // loads [6,3], slacks [1,3] → i* = 0.
                        // scores: item0 4/10=0.4, item2 2/6=0.33 → drop item 0.
        let mut tabu = Recency::new(5, 3);
        let mut stats = MoveStats::default();
        let j = select_drop(
            &i,
            &ratios,
            &sol,
            &mut tabu,
            0,
            0,
            0.0,
            &mut rng(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(j, 0);
        assert_eq!(stats.candidate_evals, 2);
    }

    #[test]
    fn drop_skips_tabu_item() {
        let i = inst();
        let ratios = Ratios::new(&i);
        let mut sol = Solution::empty(&i);
        sol.add(&i, 0);
        sol.add(&i, 2);
        let mut tabu = Recency::new(5, 10);
        tabu.forbid(0, 0);
        let mut stats = MoveStats::default();
        let j = select_drop(
            &i,
            &ratios,
            &sol,
            &mut tabu,
            1,
            0,
            0.0,
            &mut rng(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(j, 2, "tabu item 0 must be skipped");
    }

    #[test]
    fn drop_falls_back_when_all_tabu() {
        let i = inst();
        let ratios = Ratios::new(&i);
        let mut sol = Solution::empty(&i);
        sol.add(&i, 0);
        sol.add(&i, 2);
        let mut tabu = Recency::new(5, 100);
        tabu.forbid(0, 0);
        tabu.forbid(2, 0);
        let mut stats = MoveStats::default();
        // All packed items tabu → tabu ignored, best scorer dropped.
        let j = select_drop(
            &i,
            &ratios,
            &sol,
            &mut tabu,
            1,
            0,
            0.0,
            &mut rng(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(j, 0);
    }

    #[test]
    fn drop_on_empty_returns_none() {
        let i = inst();
        let ratios = Ratios::new(&i);
        let sol = Solution::empty(&i);
        let mut tabu = Recency::new(5, 3);
        let mut stats = MoveStats::default();
        assert!(select_drop(
            &i,
            &ratios,
            &sol,
            &mut tabu,
            0,
            0,
            0.0,
            &mut rng(),
            &mut stats
        )
        .is_none());
    }

    #[test]
    fn add_respects_tabu_without_aspiration() {
        let i = inst();
        let ratios = Ratios::new(&i);
        let sol = Solution::empty(&i);
        let mut tabu = Recency::new(5, 10);
        let mut r = rng();
        // Make the best item tabu with an unreachable incumbent: it must be
        // skipped and the second-best chosen.
        let mut stats = MoveStats::default();
        let (first, _) = select_add(
            &i,
            &ratios,
            &sol,
            &tabu,
            0,
            i64::MAX,
            0.0,
            &[],
            &mut r,
            &mut stats,
        )
        .unwrap();
        tabu.forbid(first, 0);
        let (second, asp) = select_add(
            &i,
            &ratios,
            &sol,
            &tabu,
            0,
            i64::MAX,
            0.0,
            &[],
            &mut r,
            &mut stats,
        )
        .unwrap();
        assert_ne!(second, first);
        assert!(!asp);
    }

    #[test]
    fn aspiration_overrides_tabu() {
        let i = inst();
        let ratios = Ratios::new(&i);
        let sol = Solution::empty(&i);
        let mut tabu = Recency::new(5, 10);
        for j in 0..5 {
            tabu.forbid(j, 0);
        }
        // With incumbent 0, adding any profitable item improves → aspiration.
        let mut stats = MoveStats::default();
        let (j, asp) = select_add(
            &i,
            &ratios,
            &sol,
            &tabu,
            0,
            0,
            0.0,
            &[],
            &mut rng(),
            &mut stats,
        )
        .unwrap();
        assert!(asp);
        assert!(i.profit(j) > 0);
    }

    #[test]
    fn add_returns_none_when_nothing_fits() {
        let i = Instance::new("full", 2, 1, vec![5, 5], vec![3, 3], vec![3]).unwrap();
        let ratios = Ratios::new(&i);
        let mut sol = Solution::empty(&i);
        sol.add(&i, 0); // load 3 = cap
        let tabu = Recency::new(2, 3);
        let mut stats = MoveStats::default();
        assert!(select_add(
            &i,
            &ratios,
            &sol,
            &tabu,
            0,
            0,
            0.0,
            &[],
            &mut rng(),
            &mut stats
        )
        .is_none());
    }

    #[test]
    fn noise_zero_is_deterministic() {
        let i = uncorrelated_instance("det", 40, 3, 0.5, 2);
        let ratios = Ratios::new(&i);
        let run = |seed: u64| {
            let mut sol = greedy(&i, &ratios);
            let mut tabu = Recency::new(i.n(), 5);
            let mut stats = MoveStats::default();
            let mut r = Xoshiro256::seed_from_u64(seed);
            for now in 0..100 {
                apply_move(
                    &i, &ratios, &mut sol, &mut tabu, now, 2, 0, 0.0, &mut r, &mut stats,
                );
            }
            sol.bits().clone()
        };
        assert_eq!(run(1), run(999), "noise 0 must ignore the rng");
    }

    #[test]
    fn noise_decorrelates_seeds() {
        let i = uncorrelated_instance("noise", 40, 3, 0.5, 2);
        let ratios = Ratios::new(&i);
        let run = |seed: u64| {
            let mut sol = greedy(&i, &ratios);
            let mut tabu = Recency::new(i.n(), 5);
            let mut stats = MoveStats::default();
            let mut r = Xoshiro256::seed_from_u64(seed);
            let mut trail = Vec::new();
            for now in 0..100 {
                apply_move(
                    &i, &ratios, &mut sol, &mut tabu, now, 2, 0, 0.3, &mut r, &mut stats,
                );
                trail.push(sol.value());
            }
            trail
        };
        assert_ne!(run(1), run(2), "different seeds must diverge under noise");
        assert_eq!(run(3), run(3), "same seed stays reproducible");
    }

    #[test]
    fn item_list_inline_and_spill() {
        let mut list = ItemList::new();
        assert!(list.is_empty());
        for v in 0..20 {
            list.push(v);
        }
        assert_eq!(list.len(), 20);
        assert_eq!(list.as_slice(), (0..20).collect::<Vec<_>>().as_slice());
        list.insert_front(99);
        assert_eq!(list[0], 99);
        assert_eq!(list.len(), 21);
        let copy = list.clone();
        assert_eq!(copy, list);
        list.clear();
        assert!(list.is_empty());
        // Front insertion within the inline prefix.
        list.push(1);
        list.push(2);
        list.insert_front(0);
        assert_eq!(list.as_slice(), &[0, 1, 2]);
    }

    #[test]
    fn item_list_clone_from_reuses_capacity() {
        let big: ItemList = (0..30).collect();
        let mut dst = ItemList::new();
        dst.clone_from(&big);
        assert_eq!(dst, big);
        let small: ItemList = (0..3).collect();
        dst.clone_from(&small);
        assert_eq!(dst.as_slice(), &[0, 1, 2]);
    }

    #[test]
    fn full_move_keeps_feasibility_and_consistency() {
        let i = inst();
        let ratios = Ratios::new(&i);
        let mut sol = greedy(&i, &ratios);
        let mut tabu = Recency::new(5, 2);
        let mut stats = MoveStats::default();
        let mut r = rng();
        let best = sol.value();
        for now in 0..50u64 {
            let outcome = apply_move(
                &i, &ratios, &mut sol, &mut tabu, now, 2, best, 0.1, &mut r, &mut stats,
            );
            assert!(sol.is_feasible(&i));
            assert!(sol.check_consistent(&i));
            // Dropped items were marked tabu.
            for &d in &outcome.dropped {
                assert!(tabu.is_tabu(d, now));
            }
        }
        assert_eq!(stats.moves, 50);
        assert!(stats.candidate_evals > 0);
    }

    #[test]
    fn move_makes_progress_on_random_instances() {
        // Running a few hundred moves from a random start must reach at
        // least the greedy value on easy instances (sanity of the operator).
        for seed in 0..5 {
            let i = uncorrelated_instance("p", 30, 3, 0.5, seed);
            let ratios = Ratios::new(&i);
            let mut sol = Solution::empty(&i);
            let mut tabu = Recency::new(i.n(), 7);
            let mut stats = MoveStats::default();
            let mut r = Xoshiro256::seed_from_u64(seed);
            let mut best = 0i64;
            for now in 0..300u64 {
                apply_move(
                    &i, &ratios, &mut sol, &mut tabu, now, 1, best, 0.1, &mut r, &mut stats,
                );
                best = best.max(sol.value());
            }
            let g = greedy(&i, &ratios);
            assert!(
                best >= g.value(),
                "seed {seed}: TS moves best {best} < greedy {}",
                g.value()
            );
        }
    }

    /// The add phase on the SoA fast path must replay the scalar reference
    /// exactly: same items, same stats, same RNG consumption. The scalar
    /// reference here is `select_add` applied greedily (noise 0, no tabu),
    /// which performs the identical admission policy one item at a time.
    #[test]
    fn add_phase_matches_select_add_reference() {
        for seed in 0..8 {
            let i = uncorrelated_instance("ref", 35, 4, 0.5, seed);
            let ratios = Ratios::new(&i);
            let tabu = Recency::new(i.n(), 0);
            // Fast path: one apply_move with nb_drop 0 saturates via add_phase.
            let mut fast = Solution::empty(&i);
            let mut fast_tabu = Recency::new(i.n(), 0);
            let mut stats = MoveStats::default();
            apply_move(
                &i,
                &ratios,
                &mut fast,
                &mut fast_tabu,
                0,
                0,
                i64::MAX,
                0.0,
                &mut rng(),
                &mut stats,
            );
            // Reference: repeated single selections.
            let mut slow = Solution::empty(&i);
            let mut sstats = MoveStats::default();
            while let Some((j, _)) = select_add(
                &i,
                &ratios,
                &slow,
                &tabu,
                0,
                i64::MAX,
                0.0,
                &[],
                &mut rng(),
                &mut sstats,
            ) {
                slow.add(&i, j);
            }
            assert_eq!(fast.bits(), slow.bits(), "seed {seed}");
        }
    }
}
