//! The Drop/Add move operator (paper §3.1, Fig. 1 step 5).
//!
//! One move is `nb_drop` Drop steps followed by a saturating Add phase:
//!
//! * **Drop** — find the most saturated constraint
//!   `i* = argmin_i (b_i − Σ_j a_ij x_j)` and remove the packed item
//!   maximizing `a_{i*j} / c_j` (highest pressure per unit profit). The
//!   dropped item becomes tabu-to-add.
//! * **Add** — repeatedly insert the best-pseudo-utility item that fits and
//!   is not tabu, where the aspiration criterion overrides tabu status for
//!   an item whose insertion beats the best value found so far.
//!
//! Both selections carry a small amount of *noise*: with probability
//! `noise` the choice falls uniformly on one of the top [`RCL_WIDTH`]
//! candidates instead of the single best. This is what decorrelates
//! parallel search threads that restart from the same solution — without
//! it, a deterministic engine retraces the identical path and cooperation
//! degenerates to replication (the failure mode §2 ascribes to naive
//! independent-thread parallelism).

use crate::tabu_list::TabuMemory;
use mkp::eval::{drop_score, Ratios};
use mkp::{Instance, Solution, Xoshiro256};

/// Number of top candidates eligible when a noisy pick fires.
pub const RCL_WIDTH: usize = 3;

/// Work counters, the machine-independent budget unit of all experiments
/// (see DESIGN.md §4 on substituting wall-clock time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoveStats {
    /// Completed drop/add moves.
    pub moves: u64,
    /// Candidate items examined across drop and add scans.
    pub candidate_evals: u64,
    /// Items removed by Drop steps.
    pub drops: u64,
    /// Items inserted by Add phases.
    pub adds: u64,
    /// Tabu candidates admitted by the aspiration criterion.
    pub aspiration_hits: u64,
    /// Candidates rejected for being tabu (and not aspired).
    pub tabu_rejections: u64,
    /// Deepest infeasible excursion strategic oscillation reached (a
    /// high-water gauge, not a running sum).
    pub oscillation_max_depth: u64,
}

/// Result of applying one move.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveOutcome {
    /// Items removed by the Drop steps.
    pub dropped: Vec<usize>,
    /// Items inserted by the Add phase.
    pub added: Vec<usize>,
    /// An aspiration override fired during the Add phase.
    pub aspired: bool,
}

/// Fixed-capacity buffer of the best-scored candidates seen so far
/// (descending score).
struct TopK {
    items: [(usize, f64); RCL_WIDTH],
    len: usize,
}

impl TopK {
    fn new() -> Self {
        TopK {
            items: [(usize::MAX, f64::NEG_INFINITY); RCL_WIDTH],
            len: 0,
        }
    }

    #[inline]
    fn push(&mut self, item: usize, score: f64) {
        if self.len == RCL_WIDTH && score <= self.items[self.len - 1].1 {
            return;
        }
        let mut k = self.len.min(RCL_WIDTH - 1);
        if self.len < RCL_WIDTH {
            self.len += 1;
        }
        while k > 0 && self.items[k - 1].1 < score {
            self.items[k] = self.items[k - 1];
            k -= 1;
        }
        self.items[k] = (item, score);
    }

    /// Deterministic best, or (with probability `noise`) a uniform pick
    /// among the buffered top candidates.
    #[inline]
    fn pick(&self, rng: &mut Xoshiro256, noise: f64) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let k = if self.len > 1 && noise > 0.0 && rng.chance(noise) {
            rng.index(self.len)
        } else {
            0
        };
        Some(self.items[k].0)
    }
}

/// Select the packed item to drop against constraint `i_star`.
///
/// Non-tabu items are preferred; when every packed item is tabu the tabu
/// status is ignored (the move must make progress) — the standard deadlock
/// escape. Returns `None` only for an empty knapsack.
#[allow(clippy::too_many_arguments)] // mirrors apply_move's knob set
pub fn select_drop<M: TabuMemory>(
    inst: &Instance,
    sol: &Solution,
    tabu: &M,
    now: u64,
    i_star: usize,
    noise: f64,
    rng: &mut Xoshiro256,
    stats: &mut MoveStats,
) -> Option<usize> {
    let mut top = TopK::new();
    let mut best_any: Option<(usize, f64)> = None;
    for j in sol.bits().iter_ones() {
        stats.candidate_evals += 1;
        let score = drop_score(inst, i_star, j);
        if best_any.as_ref().is_none_or(|&(_, s)| score > s) {
            best_any = Some((j, score));
        }
        if !tabu.is_tabu(j, now) {
            top.push(j, score);
        } else {
            stats.tabu_rejections += 1;
        }
    }
    top.pick(rng, noise).or(best_any.map(|(j, _)| j))
}

/// Select the next item for the Add phase: highest pseudo-utility among
/// unpacked items that fit, honoring tabu status unless the aspiration
/// criterion (beating `best_value`) fires.
///
/// When *every* fitting item is tabu, the knapsack would otherwise drain
/// move after move (on small instances `nb_drop · tenure` can cover almost
/// all items). A relaxed pass then re-admits the fitting tabu item closest
/// to expiry — except items in `exclude` (those dropped by the move in
/// progress), so a move can never undo itself into a no-op.
#[allow(clippy::too_many_arguments)] // mirrors apply_move's knob set
pub fn select_add<M: TabuMemory>(
    inst: &Instance,
    ratios: &Ratios,
    sol: &Solution,
    tabu: &M,
    now: u64,
    best_value: i64,
    noise: f64,
    exclude: &[usize],
    rng: &mut Xoshiro256,
    stats: &mut MoveStats,
) -> Option<(usize, bool)> {
    // Walk the precomputed utility order; collect the first few admissible
    // items (they are the top candidates by construction).
    let mut found: [(usize, bool); RCL_WIDTH] = [(usize::MAX, false); RCL_WIDTH];
    let mut count = 0;
    let want = if noise > 0.0 { RCL_WIDTH } else { 1 };
    for &j in ratios.by_utility_desc() {
        if sol.contains(j) {
            continue;
        }
        stats.candidate_evals += 1;
        if !sol.fits(inst, j) {
            continue;
        }
        if !tabu.is_tabu(j, now) {
            found[count] = (j, false);
            count += 1;
        } else if sol.value() + inst.profit(j) > best_value {
            // Aspiration: the tabu barrier falls for a strictly improving add.
            stats.aspiration_hits += 1;
            found[count] = (j, true);
            count += 1;
        } else {
            stats.tabu_rejections += 1;
        }
        if count == want {
            break;
        }
    }
    if count == 0 {
        // Relaxed pass: re-admit the fitting tabu item closest to expiry.
        let mut relaxed: Option<(usize, u64)> = None;
        for &j in ratios.by_utility_desc() {
            if sol.contains(j) || exclude.contains(&j) {
                continue;
            }
            stats.candidate_evals += 1;
            if !sol.fits(inst, j) {
                continue;
            }
            let key = tabu.relaxation_key(j);
            if relaxed.is_none_or(|(_, k)| key < k) {
                relaxed = Some((j, key));
            }
        }
        return relaxed.map(|(j, _)| (j, false));
    }
    let k = if count > 1 && rng.chance(noise) {
        rng.index(count)
    } else {
        0
    };
    Some(found[k])
}

/// Apply one full Drop/Add move in place. `best_value` is the incumbent used
/// by the aspiration criterion. The dropped items are marked tabu.
#[allow(clippy::too_many_arguments)] // the move IS this tuple of knobs
pub fn apply_move<M: TabuMemory>(
    inst: &Instance,
    ratios: &Ratios,
    sol: &mut Solution,
    tabu: &mut M,
    now: u64,
    nb_drop: usize,
    best_value: i64,
    noise: f64,
    rng: &mut Xoshiro256,
    stats: &mut MoveStats,
) -> MoveOutcome {
    let mut dropped = Vec::with_capacity(nb_drop);
    for _ in 0..nb_drop {
        if sol.cardinality() == 0 {
            break;
        }
        let i_star = sol.most_saturated_constraint(inst);
        if let Some(j) = select_drop(inst, sol, tabu, now, i_star, noise, rng, stats) {
            sol.drop(inst, j);
            tabu.forbid(j, now);
            dropped.push(j);
        }
    }

    let (added, aspired) = add_phase(
        inst, ratios, sol, tabu, now, best_value, noise, &dropped, rng, stats,
    );

    stats.drops += dropped.len() as u64;
    stats.adds += added.len() as u64;
    stats.moves += 1;
    tabu.observe_solution(sol.bits().fingerprint(), &dropped, now);
    MoveOutcome {
        dropped,
        added,
        aspired,
    }
}

/// The saturating Add phase in O(n) + O(n · relaxed admissions):
///
/// 1. one forward pass over the utility order packs every admissible
///    fitting item (non-tabu, or tabu with aspiration), where noise makes a
///    candidate be skipped with probability `noise` (skipped items get a
///    second chance at the end);
/// 2. as long as fitting items remain (necessarily tabu now), the relaxed
///    rule admits the one closest to expiry — excluding `exclude` (this
///    move's drops) — so every move ends on a maximal solution and the
///    knapsack can never drain.
#[allow(clippy::too_many_arguments)]
fn add_phase<M: TabuMemory>(
    inst: &Instance,
    ratios: &Ratios,
    sol: &mut Solution,
    tabu: &M,
    now: u64,
    best_value: i64,
    noise: f64,
    exclude: &[usize],
    rng: &mut Xoshiro256,
    stats: &mut MoveStats,
) -> (Vec<usize>, bool) {
    let mut added = Vec::new();
    let mut aspired = false;
    let mut skipped: Vec<usize> = Vec::new();

    for &j in ratios.by_utility_desc() {
        if sol.contains(j) {
            continue;
        }
        stats.candidate_evals += 1;
        if !sol.fits(inst, j) {
            continue;
        }
        let admissible = if !tabu.is_tabu(j, now) {
            true
        } else if sol.value() + inst.profit(j) > best_value {
            stats.aspiration_hits += 1;
            aspired = true;
            true
        } else {
            stats.tabu_rejections += 1;
            false
        };
        if !admissible {
            continue;
        }
        if noise > 0.0 && rng.chance(noise) {
            skipped.push(j);
            continue;
        }
        sol.add(inst, j);
        added.push(j);
    }
    // Second chance for noisily skipped candidates that still fit.
    for j in skipped {
        stats.candidate_evals += 1;
        if sol.fits(inst, j) {
            sol.add(inst, j);
            added.push(j);
        }
    }

    // Relaxed saturation: admit expiring tabu items while anything fits.
    loop {
        let mut relaxed: Option<(usize, u64)> = None;
        for &j in ratios.by_utility_desc() {
            if sol.contains(j) || exclude.contains(&j) {
                continue;
            }
            stats.candidate_evals += 1;
            if !sol.fits(inst, j) {
                continue;
            }
            let key = tabu.relaxation_key(j);
            if relaxed.is_none_or(|(_, k)| key < k) {
                relaxed = Some((j, key));
            }
        }
        match relaxed {
            Some((j, _)) => {
                sol.add(inst, j);
                added.push(j);
            }
            None => break,
        }
    }
    (added, aspired)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tabu_list::Recency;
    use mkp::generate::uncorrelated_instance;
    use mkp::greedy::greedy;
    use mkp::Instance;

    fn inst() -> Instance {
        Instance::new(
            "mv",
            5,
            2,
            vec![10, 8, 6, 4, 2],
            vec![
                4, 3, 2, 5, 1, //
                2, 4, 1, 1, 3,
            ],
            vec![7, 6],
        )
        .unwrap()
    }

    fn rng() -> Xoshiro256 {
        Xoshiro256::seed_from_u64(1)
    }

    #[test]
    fn drop_picks_highest_pressure_item() {
        let i = inst();
        let mut sol = Solution::empty(&i);
        sol.add(&i, 0); // weights c0: 4, c1: 2
        sol.add(&i, 2); // weights c0: 2, c1: 1
                        // loads [6,3], slacks [1,3] → i* = 0.
                        // scores: item0 4/10=0.4, item2 2/6=0.33 → drop item 0.
        let tabu = Recency::new(5, 3);
        let mut stats = MoveStats::default();
        let j = select_drop(&i, &sol, &tabu, 0, 0, 0.0, &mut rng(), &mut stats).unwrap();
        assert_eq!(j, 0);
        assert_eq!(stats.candidate_evals, 2);
    }

    #[test]
    fn drop_skips_tabu_item() {
        let i = inst();
        let mut sol = Solution::empty(&i);
        sol.add(&i, 0);
        sol.add(&i, 2);
        let mut tabu = Recency::new(5, 10);
        tabu.forbid(0, 0);
        let mut stats = MoveStats::default();
        let j = select_drop(&i, &sol, &tabu, 1, 0, 0.0, &mut rng(), &mut stats).unwrap();
        assert_eq!(j, 2, "tabu item 0 must be skipped");
    }

    #[test]
    fn drop_falls_back_when_all_tabu() {
        let i = inst();
        let mut sol = Solution::empty(&i);
        sol.add(&i, 0);
        sol.add(&i, 2);
        let mut tabu = Recency::new(5, 100);
        tabu.forbid(0, 0);
        tabu.forbid(2, 0);
        let mut stats = MoveStats::default();
        // All packed items tabu → tabu ignored, best scorer dropped.
        let j = select_drop(&i, &sol, &tabu, 1, 0, 0.0, &mut rng(), &mut stats).unwrap();
        assert_eq!(j, 0);
    }

    #[test]
    fn drop_on_empty_returns_none() {
        let i = inst();
        let sol = Solution::empty(&i);
        let tabu = Recency::new(5, 3);
        let mut stats = MoveStats::default();
        assert!(select_drop(&i, &sol, &tabu, 0, 0, 0.0, &mut rng(), &mut stats).is_none());
    }

    #[test]
    fn add_respects_tabu_without_aspiration() {
        let i = inst();
        let ratios = Ratios::new(&i);
        let sol = Solution::empty(&i);
        let mut tabu = Recency::new(5, 10);
        let mut r = rng();
        // Make the best item tabu with an unreachable incumbent: it must be
        // skipped and the second-best chosen.
        let mut stats = MoveStats::default();
        let (first, _) = select_add(
            &i,
            &ratios,
            &sol,
            &tabu,
            0,
            i64::MAX,
            0.0,
            &[],
            &mut r,
            &mut stats,
        )
        .unwrap();
        tabu.forbid(first, 0);
        let (second, asp) = select_add(
            &i,
            &ratios,
            &sol,
            &tabu,
            0,
            i64::MAX,
            0.0,
            &[],
            &mut r,
            &mut stats,
        )
        .unwrap();
        assert_ne!(second, first);
        assert!(!asp);
    }

    #[test]
    fn aspiration_overrides_tabu() {
        let i = inst();
        let ratios = Ratios::new(&i);
        let sol = Solution::empty(&i);
        let mut tabu = Recency::new(5, 10);
        for j in 0..5 {
            tabu.forbid(j, 0);
        }
        // With incumbent 0, adding any profitable item improves → aspiration.
        let mut stats = MoveStats::default();
        let (j, asp) = select_add(
            &i,
            &ratios,
            &sol,
            &tabu,
            0,
            0,
            0.0,
            &[],
            &mut rng(),
            &mut stats,
        )
        .unwrap();
        assert!(asp);
        assert!(i.profit(j) > 0);
    }

    #[test]
    fn add_returns_none_when_nothing_fits() {
        let i = Instance::new("full", 2, 1, vec![5, 5], vec![3, 3], vec![3]).unwrap();
        let ratios = Ratios::new(&i);
        let mut sol = Solution::empty(&i);
        sol.add(&i, 0); // load 3 = cap
        let tabu = Recency::new(2, 3);
        let mut stats = MoveStats::default();
        assert!(select_add(
            &i,
            &ratios,
            &sol,
            &tabu,
            0,
            0,
            0.0,
            &[],
            &mut rng(),
            &mut stats
        )
        .is_none());
    }

    #[test]
    fn noise_zero_is_deterministic() {
        let i = uncorrelated_instance("det", 40, 3, 0.5, 2);
        let ratios = Ratios::new(&i);
        let run = |seed: u64| {
            let mut sol = greedy(&i, &ratios);
            let mut tabu = Recency::new(i.n(), 5);
            let mut stats = MoveStats::default();
            let mut r = Xoshiro256::seed_from_u64(seed);
            for now in 0..100 {
                apply_move(
                    &i, &ratios, &mut sol, &mut tabu, now, 2, 0, 0.0, &mut r, &mut stats,
                );
            }
            sol.bits().clone()
        };
        assert_eq!(run(1), run(999), "noise 0 must ignore the rng");
    }

    #[test]
    fn noise_decorrelates_seeds() {
        let i = uncorrelated_instance("noise", 40, 3, 0.5, 2);
        let ratios = Ratios::new(&i);
        let run = |seed: u64| {
            let mut sol = greedy(&i, &ratios);
            let mut tabu = Recency::new(i.n(), 5);
            let mut stats = MoveStats::default();
            let mut r = Xoshiro256::seed_from_u64(seed);
            let mut trail = Vec::new();
            for now in 0..100 {
                apply_move(
                    &i, &ratios, &mut sol, &mut tabu, now, 2, 0, 0.3, &mut r, &mut stats,
                );
                trail.push(sol.value());
            }
            trail
        };
        assert_ne!(run(1), run(2), "different seeds must diverge under noise");
        assert_eq!(run(3), run(3), "same seed stays reproducible");
    }

    #[test]
    fn topk_buffer_orders_and_caps() {
        let mut t = TopK::new();
        t.push(1, 0.5);
        t.push(2, 0.9);
        t.push(3, 0.1);
        t.push(4, 0.7);
        assert_eq!(t.len, RCL_WIDTH);
        assert_eq!(t.items[0].0, 2);
        assert_eq!(t.items[1].0, 4);
        assert_eq!(t.items[2].0, 1);
        let mut r = rng();
        assert_eq!(t.pick(&mut r, 0.0), Some(2));
    }

    #[test]
    fn full_move_keeps_feasibility_and_consistency() {
        let i = inst();
        let ratios = Ratios::new(&i);
        let mut sol = greedy(&i, &ratios);
        let mut tabu = Recency::new(5, 2);
        let mut stats = MoveStats::default();
        let mut r = rng();
        let best = sol.value();
        for now in 0..50u64 {
            let outcome = apply_move(
                &i, &ratios, &mut sol, &mut tabu, now, 2, best, 0.1, &mut r, &mut stats,
            );
            assert!(sol.is_feasible(&i));
            assert!(sol.check_consistent(&i));
            // Dropped items were marked tabu.
            for &d in &outcome.dropped {
                assert!(tabu.is_tabu(d, now));
            }
        }
        assert_eq!(stats.moves, 50);
        assert!(stats.candidate_evals > 0);
    }

    #[test]
    fn move_makes_progress_on_random_instances() {
        // Running a few hundred moves from a random start must reach at
        // least the greedy value on easy instances (sanity of the operator).
        for seed in 0..5 {
            let i = uncorrelated_instance("p", 30, 3, 0.5, seed);
            let ratios = Ratios::new(&i);
            let mut sol = Solution::empty(&i);
            let mut tabu = Recency::new(i.n(), 7);
            let mut stats = MoveStats::default();
            let mut r = Xoshiro256::seed_from_u64(seed);
            let mut best = 0i64;
            for now in 0..300u64 {
                apply_move(
                    &i, &ratios, &mut sol, &mut tabu, now, 1, best, 0.1, &mut r, &mut stats,
                );
                best = best.max(sol.value());
            }
            let g = greedy(&i, &ratios);
            assert!(
                best >= g.value(),
                "seed {seed}: TS moves best {best} < greedy {}",
                g.value()
            );
        }
    }
}
