//! Reactive tabu search memory (Battiti & Tecchiolli), the second
//! self-tuning alternative the paper discusses in §4.1: the tenure reacts to
//! detected solution revisits instead of being tuned externally. The paper
//! worries about the hash table's collision overhead on large MKPs; ablation
//! A1 measures the behaviour next to the master-tuned recency list.

use crate::tabu_list::TabuMemory;
use std::collections::HashMap;

/// Reactive tenure parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReactiveParams {
    /// Multiplicative tenure increase on a detected revisit.
    pub increase: f64,
    /// Multiplicative tenure decay when no revisit happened for a window.
    pub decrease: f64,
    /// Moves without revisit before the tenure decays.
    pub smooth_window: u64,
    /// Tenure ceiling.
    pub max_tenure: usize,
}

impl Default for ReactiveParams {
    fn default() -> Self {
        ReactiveParams {
            increase: 1.2,
            decrease: 0.9,
            smooth_window: 100,
            max_tenure: 400,
        }
    }
}

/// Recency memory whose tenure adapts to solution revisits.
#[derive(Debug, Clone)]
pub struct ReactiveTabu {
    expiry: Vec<u64>,
    tenure: f64,
    params: ReactiveParams,
    /// Fingerprint → (last time seen, visit count).
    visits: HashMap<u64, (u64, u32)>,
    last_reaction: u64,
    /// Revisits detected (exposed for the ablation report).
    pub repetitions: u64,
}

impl ReactiveTabu {
    /// Memory for `n` items with an initial tenure.
    pub fn new(n: usize, initial_tenure: usize, params: ReactiveParams) -> Self {
        ReactiveTabu {
            expiry: vec![0; n],
            tenure: initial_tenure.max(1) as f64,
            params,
            visits: HashMap::new(),
            last_reaction: 0,
            repetitions: 0,
        }
    }

    /// Current (adapted) tenure, rounded.
    pub fn current_tenure(&self) -> usize {
        self.tenure.round() as usize
    }

    /// Number of distinct solutions fingerprinted so far.
    pub fn distinct_solutions(&self) -> usize {
        self.visits.len()
    }
}

impl TabuMemory for ReactiveTabu {
    #[inline]
    fn forbid(&mut self, item: usize, now: u64) {
        self.expiry[item] = now + self.current_tenure() as u64;
    }

    #[inline]
    fn is_tabu(&self, item: usize, now: u64) -> bool {
        self.expiry[item] > now
    }

    fn observe_solution(&mut self, fingerprint: u64, _toggled: &[usize], now: u64) {
        let entry = self.visits.entry(fingerprint).or_insert((now, 0));
        let revisit = entry.1 > 0;
        entry.0 = now;
        entry.1 += 1;
        if revisit {
            // React: the search is cycling, lengthen the memory.
            self.repetitions += 1;
            self.tenure =
                (self.tenure * self.params.increase + 1.0).min(self.params.max_tenure as f64);
            self.last_reaction = now;
        } else if now.saturating_sub(self.last_reaction) > self.params.smooth_window {
            // Long quiet stretch: relax the memory towards intensification.
            self.tenure = (self.tenure * self.params.decrease).max(1.0);
            self.last_reaction = now;
        }
    }

    fn set_tenure(&mut self, tenure: usize) {
        self.tenure = tenure.max(1) as f64;
    }

    fn tenure(&self) -> usize {
        self.current_tenure()
    }

    fn reset(&mut self) {
        self.expiry.iter_mut().for_each(|e| *e = 0);
        self.visits.clear();
        self.repetitions = 0;
        self.last_reaction = 0;
    }

    fn relaxation_key(&self, item: usize) -> u64 {
        self.expiry[item]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_recency_without_revisits() {
        let mut mem = ReactiveTabu::new(5, 3, ReactiveParams::default());
        mem.forbid(2, 10);
        assert!(mem.is_tabu(2, 12));
        assert!(!mem.is_tabu(2, 13));
    }

    #[test]
    fn revisit_increases_tenure() {
        let mut mem = ReactiveTabu::new(5, 10, ReactiveParams::default());
        mem.observe_solution(0xAB, &[], 0);
        assert_eq!(mem.current_tenure(), 10);
        mem.observe_solution(0xAB, &[], 5);
        assert!(mem.current_tenure() > 10, "revisit must lengthen tenure");
        assert_eq!(mem.repetitions, 1);
    }

    #[test]
    fn quiet_stretch_decays_tenure() {
        let params = ReactiveParams {
            smooth_window: 10,
            ..ReactiveParams::default()
        };
        let mut mem = ReactiveTabu::new(5, 100, params);
        mem.observe_solution(1, &[], 0);
        mem.observe_solution(2, &[], 50); // > window since last reaction
        assert!(mem.current_tenure() < 100);
    }

    #[test]
    fn tenure_ceiling_respected() {
        let params = ReactiveParams {
            max_tenure: 30,
            ..ReactiveParams::default()
        };
        let mut mem = ReactiveTabu::new(5, 25, params);
        for t in 0..50 {
            mem.observe_solution(0xCD, &[], t);
        }
        assert!(mem.current_tenure() <= 30);
    }

    #[test]
    fn tenure_floor_is_one() {
        let params = ReactiveParams {
            smooth_window: 1,
            ..ReactiveParams::default()
        };
        let mut mem = ReactiveTabu::new(5, 2, params);
        for t in 0..500u64 {
            mem.observe_solution(t.wrapping_mul(0x9E3779B9) | 1, &[], t * 10);
        }
        assert!(mem.current_tenure() >= 1);
    }

    #[test]
    fn distinct_solution_count() {
        let mut mem = ReactiveTabu::new(5, 5, ReactiveParams::default());
        mem.observe_solution(1, &[], 0);
        mem.observe_solution(2, &[], 1);
        mem.observe_solution(1, &[], 2);
        assert_eq!(mem.distinct_solutions(), 2);
    }

    #[test]
    fn reset_clears_adaptive_state() {
        let mut mem = ReactiveTabu::new(5, 5, ReactiveParams::default());
        mem.observe_solution(1, &[], 0);
        mem.observe_solution(1, &[], 1);
        mem.forbid(0, 2);
        mem.reset();
        assert_eq!(mem.repetitions, 0);
        assert_eq!(mem.distinct_solutions(), 0);
        assert!(!mem.is_tabu(0, 3));
    }
}
