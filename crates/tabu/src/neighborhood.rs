//! Neighborhood examination — the paper's §2 *second* source of parallelism
//! ("parallelism in neighborhood examination and evaluation"), and the
//! literal reading of Fig. 1 step "a neighborhood N(X) of the current
//! solution X is examined in order to select the best solution X'".
//!
//! A neighborhood of width K is built from the K best non-tabu Drop
//! candidates against the most saturated constraint; each candidate move is
//! completed independently (remaining drops + saturating Add phase) and the
//! best-valued completion wins. Candidates are independent, so they can be
//! evaluated concurrently — the low-level parallelism the paper classifies
//! as suited to "a specialized parallel computer" rather than a
//! message-passing farm. On this host the parallel path exists for
//! architectural completeness and is tested to produce *bit-identical*
//! results to the sequential path (each candidate gets its own
//! deterministically derived RNG stream); thread-per-move overhead makes it
//! slower on one core, which is exactly the paper's point about granularity
//! (§2: coarse-grain thread parallelism minimizes communication overhead).
//!
//! # Hot path
//!
//! The sequential scan is allocation-free at steady state: the K-best drop
//! candidates go through a bounded stable insert into reusable scratch
//! (no sort, no temporary `Vec`), candidate completions are evaluated into
//! per-slot scratch solutions restored with `clone_from`, and drop scores
//! stream from the SoA view's precomputed row for the saturated constraint
//! (one contiguous table walk per scan). Callers that loop — the engine —
//! hold a [`NeighborhoodScratch`] and use [`best_of_k_move_in`];
//! [`best_of_k_move`] wraps it with fresh scratch for one-shot use.

use crate::moves::{apply_move, MoveOutcome, MoveStats};
use crate::tabu_list::TabuMemory;
use mkp::eval::Ratios;
use mkp::{Instance, Solution, Xoshiro256};

/// How the engine picks each move.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MoveSelection {
    /// One constructive Drop/Add move (the default, O(n) per move).
    Constructive,
    /// Examine a width-K neighborhood of alternative first drops and commit
    /// the best completion (O(K·n) per move).
    BestOfK {
        /// Neighborhood width (number of alternative first drops).
        width: usize,
        /// Evaluate candidates on parallel threads (result-identical).
        parallel: bool,
    },
}

/// One evaluated neighbor: the resulting solution and the move that built it.
struct Candidate {
    solution: Solution,
    outcome: MoveOutcome,
    stats: MoveStats,
}

/// Reusable per-engine scratch for [`best_of_k_move_in`]: the bounded
/// K-best drop buffer and one evaluation slot per candidate, restored with
/// `clone_from` so the steady-state sequential path never allocates.
pub struct NeighborhoodScratch<M> {
    /// K best (item, drop-score) candidates, descending score, stable.
    top: Vec<(usize, f64)>,
    slots: Vec<Slot<M>>,
}

struct Slot<M> {
    sol: Solution,
    mem: M,
    outcome: MoveOutcome,
    stats: MoveStats,
}

impl<M: TabuMemory + Clone> NeighborhoodScratch<M> {
    /// Empty scratch; buffers grow to the first move's width and are
    /// reused thereafter.
    pub fn new() -> Self {
        NeighborhoodScratch {
            top: Vec::new(),
            slots: Vec::new(),
        }
    }

    /// Make sure `k` evaluation slots exist (cloning the live state only
    /// when a slot is first created).
    fn ensure_slots(&mut self, k: usize, base: &Solution, tabu: &M) {
        while self.slots.len() < k {
            self.slots.push(Slot {
                sol: base.clone(),
                mem: tabu.clone(),
                outcome: MoveOutcome::empty(),
                stats: MoveStats::default(),
            });
        }
    }
}

impl<M: TabuMemory + Clone> Default for NeighborhoodScratch<M> {
    fn default() -> Self {
        NeighborhoodScratch::new()
    }
}

/// Evaluate one candidate: force `first_drop`, then complete the move with
/// the standard machinery under an independent RNG stream. Used by the
/// parallel path, which clones per thread.
#[allow(clippy::too_many_arguments)] // mirrors apply_move's knob set
fn evaluate_candidate<M: TabuMemory + Clone>(
    inst: &Instance,
    ratios: &Ratios,
    base: &Solution,
    tabu: &M,
    now: u64,
    nb_drop: usize,
    best_value: i64,
    noise: f64,
    first_drop: usize,
    seed: u64,
) -> Candidate {
    let mut sol = base.clone();
    let mut mem = tabu.clone();
    let mut stats = MoveStats::default();
    let mut rng = Xoshiro256::seed_from_u64(seed);

    // Forced first drop, then the standard move completes the remaining
    // drops and the add phase.
    sol.drop(inst, first_drop);
    mem.forbid(first_drop, now);
    let mut outcome = apply_move(
        inst,
        ratios,
        &mut sol,
        &mut mem,
        now,
        nb_drop.saturating_sub(1),
        best_value,
        noise,
        &mut rng,
        &mut stats,
    );
    outcome.dropped.insert_front(first_drop);
    Candidate {
        solution: sol,
        outcome,
        stats,
    }
}

/// Evaluate one candidate into a reusable slot (sequential hot path):
/// identical computation to [`evaluate_candidate`], zero allocations once
/// the slot's buffers have grown.
#[allow(clippy::too_many_arguments)] // mirrors apply_move's knob set
fn evaluate_candidate_into<M: TabuMemory + Clone>(
    inst: &Instance,
    ratios: &Ratios,
    base: &Solution,
    tabu: &M,
    now: u64,
    nb_drop: usize,
    best_value: i64,
    noise: f64,
    first_drop: usize,
    seed: u64,
    slot: &mut Slot<M>,
) {
    slot.sol.clone_from(base);
    slot.mem.clone_from(tabu);
    slot.stats = MoveStats::default();
    let mut rng = Xoshiro256::seed_from_u64(seed);

    slot.sol.drop(inst, first_drop);
    slot.mem.forbid(first_drop, now);
    let outcome = apply_move(
        inst,
        ratios,
        &mut slot.sol,
        &mut slot.mem,
        now,
        nb_drop.saturating_sub(1),
        best_value,
        noise,
        &mut rng,
        &mut slot.stats,
    );
    slot.outcome = outcome;
    slot.outcome.dropped.insert_front(first_drop);
}

/// Examine the width-K neighborhood and commit the best completion,
/// reusing `scratch` across calls (the engine's steady-state path).
///
/// Falls back to the constructive move when the knapsack is empty or no
/// non-tabu drop candidate exists. Returns the committed move outcome.
#[allow(clippy::too_many_arguments)] // mirrors apply_move's knob set
pub fn best_of_k_move_in<M: TabuMemory + Clone + Sync>(
    inst: &Instance,
    ratios: &Ratios,
    sol: &mut Solution,
    tabu: &mut M,
    now: u64,
    nb_drop: usize,
    best_value: i64,
    noise: f64,
    width: usize,
    parallel: bool,
    rng: &mut Xoshiro256,
    stats: &mut MoveStats,
    scratch: &mut NeighborhoodScratch<M>,
) -> MoveOutcome {
    assert!(width >= 1, "neighborhood width must be positive");
    if sol.cardinality() == 0 {
        return apply_move(
            inst, ratios, sol, tabu, now, nb_drop, best_value, noise, rng, stats,
        );
    }

    // The K best non-tabu drop candidates against the most saturated
    // constraint: a bounded stable insert over the set bits, reading the
    // precomputed score row (equal scores keep scan order, so the result
    // is exactly "stable sort descending, truncate to width").
    let i_star = sol.most_saturated_constraint(inst);
    let row = ratios.view().drop_score_row(i_star);
    let top = &mut scratch.top;
    top.clear();
    top.reserve(width);
    for j in sol.bits().iter_ones() {
        stats.candidate_evals += 1;
        if tabu.is_tabu(j, now) {
            continue;
        }
        let score = row[j];
        if top.len() == width && score <= top[width - 1].1 {
            continue;
        }
        let pos = top.partition_point(|&(_, s)| s >= score);
        if top.len() == width {
            top.pop();
        }
        top.insert(pos, (j, score));
    }
    if top.is_empty() {
        return apply_move(
            inst, ratios, sol, tabu, now, nb_drop, best_value, noise, rng, stats,
        );
    }

    // Independent per-candidate RNG streams derived once, so parallel and
    // sequential evaluation are bit-identical.
    let base_seed = rng.next_u64();
    let seed_of = |idx: usize| base_seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let k = top.len();

    if parallel && k > 1 {
        // Parallel path: clone-per-thread, as before (exists for
        // architectural completeness; granularity makes it slower here).
        let candidates: Vec<Candidate> = std::thread::scope(|scope| {
            let handles: Vec<_> = top
                .iter()
                .enumerate()
                .map(|(idx, &(first_drop, _))| {
                    let sol = &*sol;
                    let tabu = &*tabu;
                    scope.spawn(move || {
                        evaluate_candidate(
                            inst,
                            ratios,
                            sol,
                            tabu,
                            now,
                            nb_drop,
                            best_value,
                            noise,
                            first_drop,
                            seed_of(idx),
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("candidate evaluation panicked"))
                .collect()
        });
        // Best completion wins; ties break toward the better drop score
        // (earlier candidate) for determinism.
        let mut best_idx = 0;
        for idx in 1..k {
            if candidates[idx].solution.value() > candidates[best_idx].solution.value() {
                best_idx = idx;
            }
        }
        for c in &candidates {
            stats.candidate_evals += c.stats.candidate_evals;
        }
        stats.moves += 1;
        let winner = &candidates[best_idx];
        sol.clone_from(&winner.solution);
        for &d in &winner.outcome.dropped {
            tabu.forbid(d, now);
        }
        tabu.observe_solution(sol.bits().fingerprint(), &winner.outcome.dropped, now);
        return winner.outcome.clone();
    }

    // Sequential path: evaluate into reusable slots.
    scratch.ensure_slots(k, sol, tabu);
    for (idx, slot) in scratch.slots[..k].iter_mut().enumerate() {
        let first_drop = scratch.top[idx].0;
        evaluate_candidate_into(
            inst,
            ratios,
            sol,
            tabu,
            now,
            nb_drop,
            best_value,
            noise,
            first_drop,
            seed_of(idx),
            slot,
        );
    }
    let mut best_idx = 0;
    for idx in 1..k {
        if scratch.slots[idx].sol.value() > scratch.slots[best_idx].sol.value() {
            best_idx = idx;
        }
    }
    for slot in &scratch.slots[..k] {
        stats.candidate_evals += slot.stats.candidate_evals;
    }
    stats.moves += 1;
    let winner = &scratch.slots[best_idx];
    sol.clone_from(&winner.sol);
    for &d in &winner.outcome.dropped {
        tabu.forbid(d, now);
    }
    tabu.observe_solution(sol.bits().fingerprint(), &winner.outcome.dropped, now);
    winner.outcome.clone()
}

/// Examine the width-K neighborhood and commit the best completion
/// (one-shot wrapper over [`best_of_k_move_in`] with fresh scratch).
#[allow(clippy::too_many_arguments)] // mirrors apply_move's knob set
pub fn best_of_k_move<M: TabuMemory + Clone + Sync>(
    inst: &Instance,
    ratios: &Ratios,
    sol: &mut Solution,
    tabu: &mut M,
    now: u64,
    nb_drop: usize,
    best_value: i64,
    noise: f64,
    width: usize,
    parallel: bool,
    rng: &mut Xoshiro256,
    stats: &mut MoveStats,
) -> MoveOutcome {
    let mut scratch = NeighborhoodScratch::new();
    best_of_k_move_in(
        inst,
        ratios,
        sol,
        tabu,
        now,
        nb_drop,
        best_value,
        noise,
        width,
        parallel,
        rng,
        stats,
        &mut scratch,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tabu_list::Recency;
    use mkp::eval::drop_score;
    use mkp::generate::{gk_instance, uncorrelated_instance, GkSpec};
    use mkp::greedy::greedy;

    fn setup(seed: u64) -> (mkp::Instance, Ratios) {
        let inst = uncorrelated_instance("nb", 30, 3, 0.5, seed);
        let ratios = Ratios::new(&inst);
        (inst, ratios)
    }

    #[test]
    fn keeps_feasibility_and_consistency() {
        let (inst, ratios) = setup(1);
        let mut sol = greedy(&inst, &ratios);
        let mut tabu = Recency::new(inst.n(), 5);
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut stats = MoveStats::default();
        for now in 0..100 {
            best_of_k_move(
                &inst,
                &ratios,
                &mut sol,
                &mut tabu,
                now,
                2,
                i64::MAX,
                0.1,
                4,
                false,
                &mut rng,
                &mut stats,
            );
            assert!(sol.is_feasible(&inst));
            assert!(sol.check_consistent(&inst));
        }
        assert_eq!(stats.moves, 100);
    }

    #[test]
    fn parallel_and_sequential_are_bit_identical() {
        let (inst, ratios) = setup(2);
        let run = |parallel: bool| {
            let mut sol = greedy(&inst, &ratios);
            let mut tabu = Recency::new(inst.n(), 5);
            let mut rng = Xoshiro256::seed_from_u64(7);
            let mut stats = MoveStats::default();
            let mut trail = Vec::new();
            for now in 0..60 {
                best_of_k_move(
                    &inst,
                    &ratios,
                    &mut sol,
                    &mut tabu,
                    now,
                    2,
                    i64::MAX,
                    0.1,
                    4,
                    parallel,
                    &mut rng,
                    &mut stats,
                );
                trail.push(sol.value());
            }
            (trail, sol.bits().clone())
        };
        let (seq_trail, seq_bits) = run(false);
        let (par_trail, par_bits) = run(true);
        assert_eq!(seq_trail, par_trail, "value trails diverged");
        assert_eq!(seq_bits, par_bits, "final assignments diverged");
    }

    #[test]
    fn scratch_reuse_matches_one_shot() {
        // The engine's scratch-reusing entry point must replay the
        // one-shot wrapper exactly, move for move.
        let (inst, ratios) = setup(7);
        let run_fresh = || {
            let mut sol = greedy(&inst, &ratios);
            let mut tabu = Recency::new(inst.n(), 5);
            let mut rng = Xoshiro256::seed_from_u64(21);
            let mut stats = MoveStats::default();
            let mut trail = Vec::new();
            for now in 0..80 {
                best_of_k_move(
                    &inst,
                    &ratios,
                    &mut sol,
                    &mut tabu,
                    now,
                    2,
                    i64::MAX,
                    0.1,
                    3,
                    false,
                    &mut rng,
                    &mut stats,
                );
                trail.push(sol.value());
            }
            (trail, sol.bits().clone(), stats)
        };
        let run_reused = || {
            let mut sol = greedy(&inst, &ratios);
            let mut tabu = Recency::new(inst.n(), 5);
            let mut rng = Xoshiro256::seed_from_u64(21);
            let mut stats = MoveStats::default();
            let mut scratch = NeighborhoodScratch::new();
            let mut trail = Vec::new();
            for now in 0..80 {
                best_of_k_move_in(
                    &inst,
                    &ratios,
                    &mut sol,
                    &mut tabu,
                    now,
                    2,
                    i64::MAX,
                    0.1,
                    3,
                    false,
                    &mut rng,
                    &mut stats,
                    &mut scratch,
                );
                trail.push(sol.value());
            }
            (trail, sol.bits().clone(), stats)
        };
        let (ft, fb, fs) = run_fresh();
        let (rt, rb, rs) = run_reused();
        assert_eq!(ft, rt, "value trails diverged");
        assert_eq!(fb, rb, "final assignments diverged");
        assert_eq!(fs, rs, "stats diverged");
    }

    #[test]
    fn width_one_matches_single_best_drop() {
        // With width 1 the neighborhood is exactly "best non-tabu drop";
        // the committed solution must equal that candidate's completion.
        let (inst, ratios) = setup(3);
        let mut sol = greedy(&inst, &ratios);
        let base = sol.clone();
        let mut tabu = Recency::new(inst.n(), 5);
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut stats = MoveStats::default();
        let outcome = best_of_k_move(
            &inst,
            &ratios,
            &mut sol,
            &mut tabu,
            0,
            1,
            i64::MAX,
            0.0,
            1,
            false,
            &mut rng,
            &mut stats,
        );
        // The forced first drop is the best non-tabu drop-scored item.
        let i_star = base.most_saturated_constraint(&inst);
        let expected = base
            .bits()
            .iter_ones()
            .max_by(|&a, &b| {
                drop_score(&inst, i_star, a)
                    .partial_cmp(&drop_score(&inst, i_star, b))
                    .unwrap()
            })
            .unwrap();
        assert_eq!(outcome.dropped[0], expected);
    }

    #[test]
    fn wider_neighborhood_never_commits_worse_than_width_one() {
        // At the very first move from the same state, the best of K ≥ 1
        // candidates is at least as good as the single candidate.
        let (inst, ratios) = setup(4);
        let base = greedy(&inst, &ratios);
        let value_after = |width: usize| {
            let mut sol = base.clone();
            let mut tabu = Recency::new(inst.n(), 5);
            let mut rng = Xoshiro256::seed_from_u64(11);
            let mut stats = MoveStats::default();
            best_of_k_move(
                &inst,
                &ratios,
                &mut sol,
                &mut tabu,
                0,
                2,
                i64::MAX,
                0.0,
                width,
                false,
                &mut rng,
                &mut stats,
            );
            sol.value()
        };
        assert!(value_after(6) >= value_after(1));
    }

    #[test]
    fn empty_solution_falls_back_to_constructive() {
        let (inst, ratios) = setup(5);
        let mut sol = mkp::Solution::empty(&inst);
        let mut tabu = Recency::new(inst.n(), 5);
        let mut rng = Xoshiro256::seed_from_u64(13);
        let mut stats = MoveStats::default();
        let outcome = best_of_k_move(
            &inst,
            &ratios,
            &mut sol,
            &mut tabu,
            0,
            2,
            i64::MAX,
            0.1,
            4,
            false,
            &mut rng,
            &mut stats,
        );
        assert!(outcome.dropped.is_empty());
        assert!(
            !outcome.added.is_empty(),
            "fallback move must fill the knapsack"
        );
    }

    #[test]
    fn improves_quality_on_correlated_instance() {
        // Same move count, wider examination: best-of-K should not lose.
        let inst = gk_instance(
            "q",
            GkSpec {
                n: 80,
                m: 5,
                tightness: 0.5,
                seed: 6,
            },
        );
        let ratios = Ratios::new(&inst);
        let run = |width: usize| {
            let mut sol = greedy(&inst, &ratios);
            let mut best = sol.value();
            let mut tabu = Recency::new(inst.n(), 8);
            let mut rng = Xoshiro256::seed_from_u64(3);
            let mut stats = MoveStats::default();
            for now in 0..400 {
                best_of_k_move(
                    &inst, &ratios, &mut sol, &mut tabu, now, 2, best, 0.1, width, false, &mut rng,
                    &mut stats,
                );
                best = best.max(sol.value());
            }
            best
        };
        assert!(run(5) >= run(1), "wider neighborhood lost quality per move");
    }
}
