//! Neighborhood examination — the paper's §2 *second* source of parallelism
//! ("parallelism in neighborhood examination and evaluation"), and the
//! literal reading of Fig. 1 step "a neighborhood N(X) of the current
//! solution X is examined in order to select the best solution X'".
//!
//! A neighborhood of width K is built from the K best non-tabu Drop
//! candidates against the most saturated constraint; each candidate move is
//! completed independently (remaining drops + saturating Add phase) and the
//! best-valued completion wins. Candidates are independent, so they can be
//! evaluated concurrently — the low-level parallelism the paper classifies
//! as suited to "a specialized parallel computer" rather than a
//! message-passing farm. On this host the parallel path exists for
//! architectural completeness and is tested to produce *bit-identical*
//! results to the sequential path (each candidate gets its own
//! deterministically derived RNG stream); thread-per-move overhead makes it
//! slower on one core, which is exactly the paper's point about granularity
//! (§2: coarse-grain thread parallelism minimizes communication overhead).

use crate::moves::{apply_move, MoveOutcome, MoveStats};
use crate::tabu_list::TabuMemory;
use mkp::eval::{drop_score, Ratios};
use mkp::{Instance, Solution, Xoshiro256};

/// How the engine picks each move.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MoveSelection {
    /// One constructive Drop/Add move (the default, O(n) per move).
    Constructive,
    /// Examine a width-K neighborhood of alternative first drops and commit
    /// the best completion (O(K·n) per move).
    BestOfK {
        /// Neighborhood width (number of alternative first drops).
        width: usize,
        /// Evaluate candidates on parallel threads (result-identical).
        parallel: bool,
    },
}

/// One evaluated neighbor: the resulting solution and the move that built it.
struct Candidate {
    solution: Solution,
    outcome: MoveOutcome,
    stats: MoveStats,
}

/// Evaluate one candidate: force `first_drop`, then complete the move with
/// the standard machinery under an independent RNG stream.
#[allow(clippy::too_many_arguments)] // mirrors apply_move's knob set
fn evaluate_candidate<M: TabuMemory + Clone>(
    inst: &Instance,
    ratios: &Ratios,
    base: &Solution,
    tabu: &M,
    now: u64,
    nb_drop: usize,
    best_value: i64,
    noise: f64,
    first_drop: usize,
    seed: u64,
) -> Candidate {
    let mut sol = base.clone();
    let mut mem = tabu.clone();
    let mut stats = MoveStats::default();
    let mut rng = Xoshiro256::seed_from_u64(seed);

    // Forced first drop, then the standard move completes the remaining
    // drops and the add phase.
    sol.drop(inst, first_drop);
    mem.forbid(first_drop, now);
    let mut outcome = apply_move(
        inst,
        ratios,
        &mut sol,
        &mut mem,
        now,
        nb_drop.saturating_sub(1),
        best_value,
        noise,
        &mut rng,
        &mut stats,
    );
    outcome.dropped.insert(0, first_drop);
    Candidate {
        solution: sol,
        outcome,
        stats,
    }
}

/// Examine the width-K neighborhood and commit the best completion.
///
/// Falls back to the constructive move when the knapsack is empty or no
/// non-tabu drop candidate exists. Returns the committed move outcome.
#[allow(clippy::too_many_arguments)] // mirrors apply_move's knob set
pub fn best_of_k_move<M: TabuMemory + Clone + Sync>(
    inst: &Instance,
    ratios: &Ratios,
    sol: &mut Solution,
    tabu: &mut M,
    now: u64,
    nb_drop: usize,
    best_value: i64,
    noise: f64,
    width: usize,
    parallel: bool,
    rng: &mut Xoshiro256,
    stats: &mut MoveStats,
) -> MoveOutcome {
    assert!(width >= 1, "neighborhood width must be positive");
    if sol.cardinality() == 0 {
        return apply_move(
            inst, ratios, sol, tabu, now, nb_drop, best_value, noise, rng, stats,
        );
    }

    // The K best non-tabu drop candidates against the most saturated
    // constraint (ties by index for determinism).
    let i_star = sol.most_saturated_constraint(inst);
    let mut scored: Vec<(usize, f64)> = Vec::new();
    for j in sol.bits().iter_ones() {
        stats.candidate_evals += 1;
        if !tabu.is_tabu(j, now) {
            scored.push((j, drop_score(inst, i_star, j)));
        }
    }
    if scored.is_empty() {
        return apply_move(
            inst, ratios, sol, tabu, now, nb_drop, best_value, noise, rng, stats,
        );
    }
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.truncate(width);

    // Independent per-candidate RNG streams derived once, so parallel and
    // sequential evaluation are bit-identical.
    let base_seed = rng.next_u64();
    let eval = |(idx, &(first_drop, _)): (usize, &(usize, f64))| {
        evaluate_candidate(
            inst,
            ratios,
            sol,
            tabu,
            now,
            nb_drop,
            best_value,
            noise,
            first_drop,
            base_seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    };

    let candidates: Vec<Candidate> = if parallel && scored.len() > 1 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = scored
                .iter()
                .enumerate()
                .map(|pair| scope.spawn(move || eval(pair)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("candidate evaluation panicked"))
                .collect()
        })
    } else {
        scored.iter().enumerate().map(eval).collect()
    };

    // Best completion wins; ties break toward the better drop score
    // (earlier candidate) for determinism.
    let best_idx = candidates
        .iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| {
            a.solution.value().cmp(&b.solution.value()).then(ib.cmp(ia)) // prefer the lower index on ties
        })
        .map(|(i, _)| i)
        .expect("at least one candidate");

    let winner = &candidates[best_idx];
    for c in &candidates {
        stats.candidate_evals += c.stats.candidate_evals;
    }
    stats.moves += 1;

    *sol = winner.solution.clone();
    for &d in &winner.outcome.dropped {
        tabu.forbid(d, now);
    }
    tabu.observe_solution(sol.bits().fingerprint(), &winner.outcome.dropped, now);
    winner.outcome.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tabu_list::Recency;
    use mkp::generate::{gk_instance, uncorrelated_instance, GkSpec};
    use mkp::greedy::greedy;

    fn setup(seed: u64) -> (mkp::Instance, Ratios) {
        let inst = uncorrelated_instance("nb", 30, 3, 0.5, seed);
        let ratios = Ratios::new(&inst);
        (inst, ratios)
    }

    #[test]
    fn keeps_feasibility_and_consistency() {
        let (inst, ratios) = setup(1);
        let mut sol = greedy(&inst, &ratios);
        let mut tabu = Recency::new(inst.n(), 5);
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut stats = MoveStats::default();
        for now in 0..100 {
            best_of_k_move(
                &inst,
                &ratios,
                &mut sol,
                &mut tabu,
                now,
                2,
                i64::MAX,
                0.1,
                4,
                false,
                &mut rng,
                &mut stats,
            );
            assert!(sol.is_feasible(&inst));
            assert!(sol.check_consistent(&inst));
        }
        assert_eq!(stats.moves, 100);
    }

    #[test]
    fn parallel_and_sequential_are_bit_identical() {
        let (inst, ratios) = setup(2);
        let run = |parallel: bool| {
            let mut sol = greedy(&inst, &ratios);
            let mut tabu = Recency::new(inst.n(), 5);
            let mut rng = Xoshiro256::seed_from_u64(7);
            let mut stats = MoveStats::default();
            let mut trail = Vec::new();
            for now in 0..60 {
                best_of_k_move(
                    &inst,
                    &ratios,
                    &mut sol,
                    &mut tabu,
                    now,
                    2,
                    i64::MAX,
                    0.1,
                    4,
                    parallel,
                    &mut rng,
                    &mut stats,
                );
                trail.push(sol.value());
            }
            (trail, sol.bits().clone())
        };
        let (seq_trail, seq_bits) = run(false);
        let (par_trail, par_bits) = run(true);
        assert_eq!(seq_trail, par_trail, "value trails diverged");
        assert_eq!(seq_bits, par_bits, "final assignments diverged");
    }

    #[test]
    fn width_one_matches_single_best_drop() {
        // With width 1 the neighborhood is exactly "best non-tabu drop";
        // the committed solution must equal that candidate's completion.
        let (inst, ratios) = setup(3);
        let mut sol = greedy(&inst, &ratios);
        let base = sol.clone();
        let mut tabu = Recency::new(inst.n(), 5);
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut stats = MoveStats::default();
        let outcome = best_of_k_move(
            &inst,
            &ratios,
            &mut sol,
            &mut tabu,
            0,
            1,
            i64::MAX,
            0.0,
            1,
            false,
            &mut rng,
            &mut stats,
        );
        // The forced first drop is the best non-tabu drop-scored item.
        let i_star = base.most_saturated_constraint(&inst);
        let expected = base
            .bits()
            .iter_ones()
            .max_by(|&a, &b| {
                drop_score(&inst, i_star, a)
                    .partial_cmp(&drop_score(&inst, i_star, b))
                    .unwrap()
            })
            .unwrap();
        assert_eq!(outcome.dropped[0], expected);
    }

    #[test]
    fn wider_neighborhood_never_commits_worse_than_width_one() {
        // At the very first move from the same state, the best of K ≥ 1
        // candidates is at least as good as the single candidate.
        let (inst, ratios) = setup(4);
        let base = greedy(&inst, &ratios);
        let value_after = |width: usize| {
            let mut sol = base.clone();
            let mut tabu = Recency::new(inst.n(), 5);
            let mut rng = Xoshiro256::seed_from_u64(11);
            let mut stats = MoveStats::default();
            best_of_k_move(
                &inst,
                &ratios,
                &mut sol,
                &mut tabu,
                0,
                2,
                i64::MAX,
                0.0,
                width,
                false,
                &mut rng,
                &mut stats,
            );
            sol.value()
        };
        assert!(value_after(6) >= value_after(1));
    }

    #[test]
    fn empty_solution_falls_back_to_constructive() {
        let (inst, ratios) = setup(5);
        let mut sol = mkp::Solution::empty(&inst);
        let mut tabu = Recency::new(inst.n(), 5);
        let mut rng = Xoshiro256::seed_from_u64(13);
        let mut stats = MoveStats::default();
        let outcome = best_of_k_move(
            &inst,
            &ratios,
            &mut sol,
            &mut tabu,
            0,
            2,
            i64::MAX,
            0.1,
            4,
            false,
            &mut rng,
            &mut stats,
        );
        assert!(outcome.dropped.is_empty());
        assert!(
            !outcome.added.is_empty(),
            "fallback move must fill the knapsack"
        );
    }

    #[test]
    fn improves_quality_on_correlated_instance() {
        // Same move count, wider examination: best-of-K should not lose.
        let inst = gk_instance(
            "q",
            GkSpec {
                n: 80,
                m: 5,
                tightness: 0.5,
                seed: 6,
            },
        );
        let ratios = Ratios::new(&inst);
        let run = |width: usize| {
            let mut sol = greedy(&inst, &ratios);
            let mut best = sol.value();
            let mut tabu = Recency::new(inst.n(), 8);
            let mut rng = Xoshiro256::seed_from_u64(3);
            let mut stats = MoveStats::default();
            for now in 0..400 {
                best_of_k_move(
                    &inst, &ratios, &mut sol, &mut tabu, now, 2, best, 0.1, width, false, &mut rng,
                    &mut stats,
                );
                best = best.max(sol.value());
            }
            best
        };
        assert!(run(5) >= run(1), "wider neighborhood lost quality per move");
    }
}
