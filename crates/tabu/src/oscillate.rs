//! Intensification by strategic oscillation (paper §3.2, second procedure).
//!
//! The search deliberately crosses the feasibility boundary: for a bounded
//! number of steps it keeps adding the most attractive items *ignoring*
//! capacity, then projects the infeasible point back onto the feasible
//! domain by expelling the items with the largest `Σ_i a_ij / c_j` burden,
//! and finally refills greedily. Bounding the infeasible excursion depth is
//! the paper's own fix for the method's running-time drawback (§3.2: "we
//! have limited the number of explored infeasible solutions by limiting the
//! depth of the search path in the infeasible domain").

use crate::moves::MoveStats;
use mkp::eval::Ratios;
use mkp::greedy::{dynamic_greedy_fill_view, project_feasible};
use mkp::{Instance, Solution};

/// One strategic oscillation episode from `sol`.
///
/// Pushes up to `depth` items past the boundary (best pseudo-utility first),
/// projects back to feasibility, refills greedily, and keeps the result only
/// when it beats the starting value. Returns `true` on improvement.
pub fn strategic_oscillation(
    inst: &Instance,
    ratios: &Ratios,
    sol: &mut Solution,
    depth: usize,
    stats: &mut MoveStats,
) -> bool {
    let start_value = sol.value();
    let mut trial = sol.clone();

    // Phase 1: cross the boundary — add the `depth` best unpacked items
    // regardless of capacity.
    let mut pushed = 0;
    for &j in ratios.by_utility_desc() {
        if pushed == depth {
            break;
        }
        if !trial.contains(j) {
            stats.candidate_evals += 1;
            trial.add(inst, j);
            pushed += 1;
        }
    }
    if pushed == 0 {
        return false; // knapsack already holds every item
    }
    stats.oscillation_max_depth = stats.oscillation_max_depth.max(pushed as u64);

    // Phase 2: project back onto the feasible domain.
    let dropped = project_feasible(inst, ratios, &mut trial);
    stats.candidate_evals += dropped as u64;

    // Phase 3: the projection may have opened room for cheap items;
    // refill with slack-aware scores (word-parallel fits pruning).
    dynamic_greedy_fill_view(inst, ratios, &mut trial);
    stats.moves += 1;

    debug_assert!(trial.is_feasible(inst));
    if trial.value() > start_value {
        *sol = trial;
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkp::generate::{gk_instance, uncorrelated_instance, GkSpec};
    use mkp::greedy::{greedy, random_feasible};
    use mkp::Xoshiro256;

    #[test]
    fn result_is_always_feasible() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        for seed in 0..10 {
            let inst = uncorrelated_instance("o", 40, 4, 0.5, seed);
            let ratios = Ratios::new(&inst);
            let mut sol = random_feasible(&inst, &mut rng);
            for depth in [1, 3, 8] {
                strategic_oscillation(&inst, &ratios, &mut sol, depth, &mut MoveStats::default());
                assert!(sol.is_feasible(&inst));
                assert!(sol.check_consistent(&inst));
            }
        }
    }

    #[test]
    fn never_decreases_value() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        for seed in 0..10 {
            let inst = gk_instance(
                "g",
                GkSpec {
                    n: 60,
                    m: 5,
                    tightness: 0.5,
                    seed,
                },
            );
            let ratios = Ratios::new(&inst);
            let mut sol = random_feasible(&inst, &mut rng);
            let before = sol.value();
            let improved =
                strategic_oscillation(&inst, &ratios, &mut sol, 5, &mut MoveStats::default());
            assert!(sol.value() >= before);
            assert_eq!(improved, sol.value() > before);
        }
    }

    #[test]
    fn improves_weak_starts_often() {
        // From a random start, oscillation should find an improvement on a
        // clear majority of correlated instances.
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut improvements = 0;
        for seed in 0..20 {
            let inst = gk_instance(
                "g",
                GkSpec {
                    n: 80,
                    m: 5,
                    tightness: 0.5,
                    seed,
                },
            );
            let ratios = Ratios::new(&inst);
            let mut sol = random_feasible(&inst, &mut rng);
            if strategic_oscillation(&inst, &ratios, &mut sol, 6, &mut MoveStats::default()) {
                improvements += 1;
            }
        }
        assert!(improvements >= 12, "only {improvements}/20 improved");
    }

    #[test]
    fn noop_when_all_items_packed() {
        let inst = mkp::Instance::new("a", 2, 1, vec![3, 4], vec![1, 1], vec![5]).unwrap();
        let ratios = Ratios::new(&inst);
        let mut sol = greedy(&inst, &ratios); // packs everything
        assert_eq!(sol.cardinality(), 2);
        let improved =
            strategic_oscillation(&inst, &ratios, &mut sol, 3, &mut MoveStats::default());
        assert!(!improved);
    }

    #[test]
    fn depth_zero_is_noop() {
        let inst = uncorrelated_instance("z", 20, 2, 0.5, 1);
        let ratios = Ratios::new(&inst);
        let mut sol = greedy(&inst, &ratios);
        let v = sol.value();
        assert!(!strategic_oscillation(
            &inst,
            &ratios,
            &mut sol,
            0,
            &mut MoveStats::default()
        ));
        assert_eq!(sol.value(), v);
    }
}
