//! Intensification by component swapping (paper §3.2, first procedure).
//!
//! Starting from the best solution of the last local-search loop, exchange a
//! packed component `i` against an unpacked component `j` with `c_j > c_i`
//! whenever the exchange keeps the knapsack feasible. Each profitable
//! feasible couple is applied, strictly increasing the objective.

use crate::moves::MoveStats;
use mkp::eval::Ratios;
use mkp::soa::ResidualLanes;
use mkp::{Instance, Solution};

/// Apply all profitable feasible 1-1 swaps to `sol`, repeating until a full
/// pass finds none. Returns the number of swaps applied.
///
/// Every swap strictly increases the objective, so termination is bounded by
/// the profit sum; in practice a couple of passes suffice.
///
/// The entrant scan walks the precomputed profit-descending order and stops
/// at the first fitting item — identical winner to the full scan (max profit,
/// ties to the lowest index) at a fraction of the candidate checks. The
/// legacy full-scan evaluation count is preserved in `stats` so budget
/// accounting is bit-identical to the scalar implementation.
pub fn swap_intensification(
    inst: &Instance,
    ratios: &Ratios,
    sol: &mut Solution,
    stats: &mut MoveStats,
) -> usize {
    let view = ratios.view();
    let mut lanes = ResidualLanes::new();
    let mut swaps = 0;
    loop {
        let mut improved = false;
        // Snapshot the packed set: the inner loops mutate `sol`.
        let packed = sol.bits().ones();
        for &out in &packed {
            if !sol.contains(out) {
                continue; // already swapped away in this pass
            }
            let c_out = inst.profit(out);
            // Tentatively remove, then look for the best profitable entrant.
            sol.drop(inst, out);
            // The full scan evaluated every unpacked item except `out`.
            stats.candidate_evals += (inst.n() - sol.cardinality() - 1) as u64;
            lanes.sync(view, inst, sol);
            let lanes_live = lanes.usable(view);
            let mut entrant: Option<usize> = None;
            for &j in view.by_profit_desc() {
                if inst.profit(j) <= c_out {
                    break; // profits only descend from here: no entrant left
                }
                if sol.contains(j) || j == out {
                    continue;
                }
                let fits = if lanes_live {
                    lanes.fits(view, j)
                } else {
                    sol.fits(inst, j)
                };
                if fits {
                    entrant = Some(j);
                    break;
                }
            }
            match entrant {
                Some(j) => {
                    sol.add(inst, j);
                    swaps += 1;
                    improved = true;
                }
                None => sol.add(inst, out), // undo the tentative drop
            }
        }
        if !improved {
            break;
        }
    }
    swaps
}

/// Lateral swap pass: exchange a packed item against an unpacked one of
/// **equal profit but strictly smaller total weight**, then refill greedily.
///
/// A lateral swap never changes the objective by itself — it frees capacity,
/// and the refill converts that capacity into value. This is the move that
/// cracks "last unit of capacity" situations where every profitable 1-1
/// swap is exhausted but the optimum differs by one additional small item.
/// The total-load potential strictly decreases per swap, so the pass
/// terminates. Returns `true` when the refill improved the objective.
pub fn lateral_swap_fill(
    inst: &Instance,
    ratios: &Ratios,
    sol: &mut Solution,
    stats: &mut MoveStats,
) -> bool {
    let view = ratios.view();
    let mut lanes = ResidualLanes::new();
    let before = sol.value();
    loop {
        let mut swapped = false;
        let packed = sol.bits().ones();
        for &out in &packed {
            if !sol.contains(out) {
                continue;
            }
            let c_out = inst.profit(out);
            let w_out = inst.item_weight_sum(out);
            sol.drop(inst, out);
            // Bulk-count the full scan's per-candidate evaluations, then
            // filter on the (rare) profit tie before touching the weights.
            stats.candidate_evals += (inst.n() - sol.cardinality() - 1) as u64;
            lanes.sync(view, inst, sol);
            let lanes_live = lanes.usable(view);
            let mut best_in: Option<(usize, i64)> = None;
            for j in 0..inst.n() {
                if sol.contains(j) || j == out || inst.profit(j) != c_out {
                    continue;
                }
                let fits = if lanes_live {
                    lanes.fits(view, j)
                } else {
                    sol.fits(inst, j)
                };
                if fits {
                    let w_in = inst.item_weight_sum(j);
                    if w_in < w_out && best_in.is_none_or(|(_, w)| w_in < w) {
                        best_in = Some((j, w_in));
                    }
                }
            }
            match best_in {
                Some((j, _)) => {
                    sol.add(inst, j);
                    swapped = true;
                }
                None => sol.add(inst, out),
            }
        }
        if !swapped {
            break;
        }
    }
    mkp::greedy::dynamic_greedy_fill_view(inst, ratios, sol);
    debug_assert!(sol.is_feasible(inst));
    sol.value() > before
}

/// Drop-and-refill pass: for each packed item, tentatively expel it and
/// rebuild greedily; keep the rebuild when it strictly beats the original.
///
/// This explores all 1-to-many exchanges reachable by the greedy fill —
/// the "one big item vs several small ones" trades that neither profitable
/// nor lateral 1-1 swaps can see. O(cardinality · n) per pass.
pub fn drop_refill_intensification(
    inst: &Instance,
    ratios: &Ratios,
    sol: &mut Solution,
    stats: &mut MoveStats,
) -> usize {
    let view = ratios.view();
    let mut lanes = ResidualLanes::new();
    let mut trial = sol.clone();
    let mut improvements = 0;
    loop {
        let mut improved = false;
        for out in sol.bits().ones() {
            if !sol.contains(out) {
                continue;
            }
            trial.clone_from(sol);
            trial.drop(inst, out);
            // Refill everything except the expelled item itself (otherwise
            // the fill just restores the status quo), choosing by dynamic
            // slack-aware utility.
            loop {
                lanes.sync(view, inst, &trial);
                let lanes_live = lanes.usable(view);
                let mut best: Option<(usize, f64)> = None;
                for j in 0..inst.n() {
                    if j == out || trial.contains(j) {
                        continue;
                    }
                    stats.candidate_evals += 1;
                    let fits = if lanes_live {
                        lanes.fits(view, j)
                    } else {
                        trial.fits(inst, j)
                    };
                    if !fits {
                        continue;
                    }
                    let u = mkp::greedy::dynamic_utility(inst, &trial, j);
                    if best.is_none_or(|(_, bu)| u > bu) {
                        best = Some((j, u));
                    }
                }
                match best {
                    Some((j, _)) => trial.add(inst, j),
                    None => break,
                }
            }
            if trial.value() > sol.value() {
                sol.clone_from(&trial);
                improvements += 1;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    debug_assert!(sol.is_feasible(inst));
    improvements
}

/// Bounded ejection-chain pass (Glover): for each unpacked item that does
/// not fit, eject up to `max_eject` packed items that press hardest on its
/// violated constraints, insert it, refill dynamically, and keep the result
/// when it strictly improves. Explores many-for-one trades that
/// [`drop_refill_intensification`] (one-for-many) cannot reach.
pub fn ejection_chain_intensification(
    inst: &Instance,
    sol: &mut Solution,
    stats: &mut MoveStats,
    max_eject: usize,
) -> usize {
    let mut improvements = 0;
    loop {
        let mut improved = false;
        for j in 0..inst.n() {
            if sol.contains(j) || sol.fits(inst, j) {
                continue; // fitting items are the greedy fill's business
            }
            let mut trial = sol.clone();
            let mut ejected = 0;
            while !trial.fits(inst, j) && ejected < max_eject {
                // Eject the packed item pressing hardest (weight per unit
                // profit) on the constraints item j currently violates.
                let mut victim: Option<(usize, f64)> = None;
                for k in trial.bits().iter_ones() {
                    stats.candidate_evals += 1;
                    let mut pressure = 0.0f64;
                    for (i, &aj) in inst.item_weights(j).iter().enumerate() {
                        if trial.load(i) + aj > inst.capacity(i) {
                            pressure += inst.weight(i, k) as f64;
                        }
                    }
                    let score = pressure / inst.profit(k).max(1) as f64;
                    if score > 0.0 && victim.is_none_or(|(_, s)| score > s) {
                        victim = Some((k, score));
                    }
                }
                match victim {
                    Some((k, _)) => {
                        trial.drop(inst, k);
                        ejected += 1;
                    }
                    None => break, // violation not caused by packed items
                }
            }
            if !trial.fits(inst, j) {
                continue;
            }
            trial.add(inst, j);
            mkp::greedy::dynamic_greedy_fill(inst, &mut trial);
            if trial.value() > sol.value() {
                *sol = trial;
                improvements += 1;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    debug_assert!(sol.is_feasible(inst));
    improvements
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkp::eval::Ratios;
    use mkp::generate::uncorrelated_instance;
    use mkp::greedy::random_feasible;
    use mkp::{BitVec, Instance, Xoshiro256};

    #[test]
    fn swap_improves_suboptimal_solution() {
        // Items: profit 1 (light) packed, profit 10 (same weight) outside.
        let inst = Instance::new("s", 2, 1, vec![1, 10], vec![3, 3], vec![3]).unwrap();
        let ratios = Ratios::new(&inst);
        let mut sol = Solution::from_bits(&inst, BitVec::from_bools([true, false]));
        let mut stats = MoveStats::default();
        let swaps = swap_intensification(&inst, &ratios, &mut sol, &mut stats);
        assert_eq!(swaps, 1);
        assert_eq!(sol.value(), 10);
        assert!(sol.contains(1) && !sol.contains(0));
    }

    #[test]
    fn no_swap_when_already_best() {
        let inst = Instance::new("b", 2, 1, vec![10, 1], vec![3, 3], vec![3]).unwrap();
        let ratios = Ratios::new(&inst);
        let mut sol = Solution::from_bits(&inst, BitVec::from_bools([true, false]));
        let v = sol.value();
        assert_eq!(
            swap_intensification(&inst, &ratios, &mut sol, &mut MoveStats::default()),
            0
        );
        assert_eq!(sol.value(), v);
    }

    #[test]
    fn respects_feasibility() {
        // Higher-profit item is too heavy to swap in.
        let inst = Instance::new("f", 2, 1, vec![5, 50], vec![2, 10], vec![4]).unwrap();
        let ratios = Ratios::new(&inst);
        let mut sol = Solution::from_bits(&inst, BitVec::from_bools([true, false]));
        assert_eq!(
            swap_intensification(&inst, &ratios, &mut sol, &mut MoveStats::default()),
            0
        );
        assert!(sol.contains(0));
    }

    #[test]
    fn never_decreases_value_and_stays_feasible() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        for seed in 0..10 {
            let inst = uncorrelated_instance("r", 30, 3, 0.5, seed);
            let ratios = Ratios::new(&inst);
            let mut sol = random_feasible(&inst, &mut rng);
            let before = sol.value();
            swap_intensification(&inst, &ratios, &mut sol, &mut MoveStats::default());
            assert!(sol.value() >= before);
            assert!(sol.is_feasible(&inst));
            assert!(sol.check_consistent(&inst));
        }
    }

    #[test]
    fn multi_pass_chains_swaps() {
        // Swapping 0→1 frees weight that lets a later pass swap 2→3.
        let inst = Instance::new("c", 4, 1, vec![2, 6, 3, 7], vec![4, 2, 4, 6], vec![8]).unwrap();
        let ratios = Ratios::new(&inst);
        let mut sol = Solution::from_bits(&inst, BitVec::from_bools([true, false, true, false]));
        let mut stats = MoveStats::default();
        let swaps = swap_intensification(&inst, &ratios, &mut sol, &mut stats);
        assert!(swaps >= 2, "expected chained swaps, got {swaps}");
        assert_eq!(sol.value(), 13); // items 1 and 3
    }

    #[test]
    fn lateral_swap_frees_capacity_for_refill() {
        // Items: 0 (profit 5, weight 4, packed) and 1 (profit 5, weight 2).
        // Swapping 0→1 frees 2 units, letting item 2 (profit 1, weight 2) in.
        let inst = Instance::new("lat", 3, 1, vec![5, 5, 1], vec![4, 2, 2], vec![4]).unwrap();
        let ratios = Ratios::new(&inst);
        let mut sol = Solution::from_bits(&inst, BitVec::from_bools([true, false, false]));
        let improved = lateral_swap_fill(&inst, &ratios, &mut sol, &mut MoveStats::default());
        assert!(improved);
        assert_eq!(sol.value(), 6);
        assert!(sol.contains(1) && sol.contains(2) && !sol.contains(0));
    }

    #[test]
    fn lateral_swap_noop_without_equal_profits() {
        let inst = Instance::new("ne", 2, 1, vec![5, 4], vec![4, 2], vec![4]).unwrap();
        let ratios = Ratios::new(&inst);
        let mut sol = Solution::from_bits(&inst, BitVec::from_bools([true, false]));
        let improved = lateral_swap_fill(&inst, &ratios, &mut sol, &mut MoveStats::default());
        assert!(!improved);
        assert!(sol.contains(0));
    }

    #[test]
    fn lateral_swap_never_decreases_value() {
        let mut rng = Xoshiro256::seed_from_u64(17);
        for seed in 0..10 {
            let inst = uncorrelated_instance("l", 40, 3, 0.5, seed);
            let ratios = Ratios::new(&inst);
            let mut sol = random_feasible(&inst, &mut rng);
            let before = sol.value();
            lateral_swap_fill(&inst, &ratios, &mut sol, &mut MoveStats::default());
            assert!(sol.value() >= before);
            assert!(sol.is_feasible(&inst));
            assert!(sol.check_consistent(&inst));
        }
    }

    #[test]
    fn drop_refill_finds_one_for_two_trade() {
        // Item 0 (profit 6, weight 4) blocks items 1+2 (profit 4+3, weight 2+2).
        let inst = Instance::new("dr", 3, 1, vec![6, 4, 3], vec![4, 2, 2], vec![4]).unwrap();
        let ratios = Ratios::new(&inst);
        let mut sol = Solution::from_bits(&inst, BitVec::from_bools([true, false, false]));
        let improvements =
            drop_refill_intensification(&inst, &ratios, &mut sol, &mut MoveStats::default());
        assert_eq!(improvements, 1);
        assert_eq!(sol.value(), 7);
        assert!(!sol.contains(0));
    }

    #[test]
    fn drop_refill_never_decreases_and_stays_feasible() {
        let mut rng = Xoshiro256::seed_from_u64(19);
        for seed in 0..10 {
            let inst = uncorrelated_instance("d", 40, 4, 0.5, seed);
            let ratios = Ratios::new(&inst);
            let mut sol = random_feasible(&inst, &mut rng);
            let before = sol.value();
            drop_refill_intensification(&inst, &ratios, &mut sol, &mut MoveStats::default());
            assert!(sol.value() >= before);
            assert!(sol.is_feasible(&inst));
            assert!(sol.check_consistent(&inst));
        }
    }

    #[test]
    fn drop_refill_noop_on_optimal_packing() {
        let inst = Instance::new("opt", 2, 1, vec![10, 1], vec![3, 3], vec![3]).unwrap();
        let ratios = Ratios::new(&inst);
        let mut sol = Solution::from_bits(&inst, BitVec::from_bools([true, false]));
        assert_eq!(
            drop_refill_intensification(&inst, &ratios, &mut sol, &mut MoveStats::default()),
            0
        );
        assert_eq!(sol.value(), 10);
    }

    #[test]
    fn ejection_chain_finds_two_for_one_trade() {
        // Item 2 (profit 12, weight 6) needs BOTH packed items (profit 5+5,
        // weights 3+3) ejected; no 1-1 swap or drop-refill sees the trade.
        let inst = Instance::new("ej", 3, 1, vec![5, 5, 12], vec![3, 3, 6], vec![6]).unwrap();
        let mut sol = Solution::from_bits(&inst, BitVec::from_bools([true, true, false]));
        let improvements =
            ejection_chain_intensification(&inst, &mut sol, &mut MoveStats::default(), 3);
        assert_eq!(improvements, 1);
        assert_eq!(sol.value(), 12);
        assert!(sol.contains(2));
    }

    #[test]
    fn ejection_chain_respects_eject_bound() {
        // Getting item 3 in needs all three packed items out; with
        // max_eject = 2 the chain must give up and leave the solution alone.
        let inst = Instance::new("eb", 4, 1, vec![4, 4, 4, 20], vec![2, 2, 2, 6], vec![6]).unwrap();
        let mut sol = Solution::from_bits(&inst, BitVec::from_bools([true, true, true, false]));
        let improvements =
            ejection_chain_intensification(&inst, &mut sol, &mut MoveStats::default(), 2);
        assert_eq!(improvements, 0);
        assert_eq!(sol.value(), 12);
        // With the bound raised, the trade becomes reachable.
        let improvements =
            ejection_chain_intensification(&inst, &mut sol, &mut MoveStats::default(), 3);
        assert_eq!(improvements, 1);
        assert_eq!(sol.value(), 20);
    }

    #[test]
    fn ejection_chain_never_decreases_and_stays_feasible() {
        let mut rng = Xoshiro256::seed_from_u64(23);
        for seed in 0..10 {
            let inst = uncorrelated_instance("ec", 40, 4, 0.5, seed);
            let mut sol = random_feasible(&inst, &mut rng);
            let before = sol.value();
            ejection_chain_intensification(&inst, &mut sol, &mut MoveStats::default(), 3);
            assert!(sol.value() >= before);
            assert!(sol.is_feasible(&inst));
            assert!(sol.check_consistent(&inst));
        }
    }

    #[test]
    fn counts_candidate_evaluations() {
        let inst = uncorrelated_instance("e", 20, 2, 0.5, 1);
        let ratios = Ratios::new(&inst);
        let mut sol = mkp::greedy::greedy(&inst, &ratios);
        let mut stats = MoveStats::default();
        swap_intensification(&inst, &ratios, &mut sol, &mut stats);
        assert!(stats.candidate_evals > 0);
    }
}
