//! # mkp-tabu — the sequential tabu-search engine (paper Fig. 1)
//!
//! The slave-side procedure of Niar & Fréville's parallel tabu search:
//! Drop/Add moves against the most saturated constraint, a recency tabu list
//! with aspiration, swap and strategic-oscillation intensification, and
//! frequency-memory diversification. The engine is generic over its
//! [`tabu_list::TabuMemory`], so the two self-tuning alternatives discussed
//! in the paper's §4.1 — the Reverse Elimination Method ([`rem`]) and
//! Reactive Tabu Search ([`reactive`]) — run in the identical harness for
//! the ablation experiments. The cited critical-event baseline ([`cets`]),
//! width-K neighborhood examination ([`neighborhood`]) and elite path
//! relinking ([`relink`]) complete the era's toolbox.
//!
//! ```
//! use mkp::generate::{gk_instance, GkSpec};
//! use mkp::eval::Ratios;
//! use mkp::greedy::greedy;
//! use mkp::Xoshiro256;
//! use mkp_tabu::search::{run, Budget, TsConfig};
//!
//! let inst = gk_instance("demo", GkSpec { n: 60, m: 5, tightness: 0.5, seed: 1 });
//! let ratios = Ratios::new(&inst);
//! let init = greedy(&inst, &ratios);
//! let mut rng = Xoshiro256::seed_from_u64(42);
//! let report = run(&inst, &ratios, init.clone(),
//!                  &TsConfig::default_for(inst.n()), Budget::evals(50_000), &mut rng);
//! assert!(report.best.value() >= init.value());
//! ```

#![warn(missing_docs)]

pub mod cets;
pub mod diversify;
pub mod elite;
pub mod history;
pub mod intensify;
pub mod moves;
pub mod neighborhood;
pub mod oscillate;
pub mod reactive;
pub mod relink;
pub mod rem;
pub mod search;
pub mod strategy;
pub mod tabu_list;

pub use neighborhood::MoveSelection;
pub use search::{run, run_with_memory, Budget, SearchReport, TsConfig};
pub use strategy::{Strategy, StrategyBounds};
