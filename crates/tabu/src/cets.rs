//! Critical-event tabu search (CETS) — the Glover–Kochenberger baseline the
//! paper measures itself against ([6]; [7] is the Hanafi–Fréville
//! refinement: "The execution times for these two benchmarks are very short
//! comparing to those given in [7]").
//!
//! Where the paper's engine moves along the feasibility boundary
//! (drop-then-saturate), CETS *oscillates across it*: a constructive phase
//! adds items until the solution sits `span` additions beyond the boundary,
//! a destructive phase drops items until it sits `span` drops inside, and
//! the **critical events** — the last feasible solution before each crossing
//! — are recorded as the search's products. The oscillation amplitude
//! shrinks over time (broad exploration first, boundary-hugging later), and
//! a frequency memory diversifies when the amplitude bottoms out.
//!
//! Implemented as an independent engine with the same work accounting as
//! [`crate::search`], so the baseline comparison runs at a genuinely equal
//! budget.

use crate::elite::ElitePool;
use crate::moves::MoveStats;
use crate::search::SearchReport;
use crate::tabu_list::{Recency, TabuMemory};
use mkp::eval::Ratios;
use mkp::greedy::{dynamic_utility, greedy_fill, project_feasible};
use mkp::{Instance, Solution, Xoshiro256};

/// CETS parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CetsConfig {
    /// Initial oscillation amplitude (items beyond/inside the boundary).
    pub span_init: usize,
    /// Minimum amplitude; reaching it triggers the next decay cycle.
    pub span_min: usize,
    /// Tabu tenure applied to moved items (add-tabu-to-drop and vice versa).
    pub tenure: usize,
    /// Full oscillation cycles between amplitude decrements.
    pub cycles_per_span: u32,
    /// Elite pool size.
    pub b_best: usize,
    /// Candidate-selection noise, as in the main engine.
    pub noise: f64,
}

impl CetsConfig {
    /// Defaults scaled to instance size `n`.
    pub fn default_for(n: usize) -> Self {
        CetsConfig {
            span_init: (n / 20).clamp(3, 20),
            span_min: 1,
            tenure: (n / 10).clamp(5, 50),
            cycles_per_span: 12,
            b_best: 8,
            noise: 0.1,
        }
    }
}

/// Run CETS until the budget is exhausted. Reports through the same
/// [`SearchReport`] as the primary engine.
pub fn run_cets(
    inst: &Instance,
    ratios: &Ratios,
    initial: Solution,
    config: &CetsConfig,
    max_evals: u64,
    rng: &mut Xoshiro256,
) -> SearchReport {
    let mut x = initial;
    project_feasible(inst, ratios, &mut x);
    greedy_fill(inst, ratios, &mut x);
    let initial_value = x.value();

    let mut best = x.clone();
    let mut elite = ElitePool::new(config.b_best);
    elite.offer(&best);
    let mut stats = MoveStats::default();
    let mut tabu = Recency::new(inst.n(), config.tenure);
    // Residency frequency for the bottom-of-decay diversification.
    let mut freq = vec![0u64; inst.n()];
    let mut freq_ticks = 0u64;

    let mut span = config.span_init.max(config.span_min);
    let mut cycles_at_span = 0u32;
    let mut now = 0u64;

    while stats.candidate_evals < max_evals {
        // --- Constructive sweep: add to `span` items beyond the boundary.
        let mut beyond = 0usize;
        while beyond < span {
            let Some(j) = pick_add(inst, &x, &tabu, now, config.noise, rng, &mut stats) else {
                break; // every item packed
            };
            x.add(inst, j);
            tabu.forbid(j, now);
            now += 1;
            stats.moves += 1;
            if !x.is_feasible(inst) {
                beyond += 1;
            } else if x.value() > best.value() {
                best = x.clone();
            }
            if x.is_feasible(inst) {
                elite.offer(&x);
            }
            if stats.candidate_evals >= max_evals {
                break;
            }
        }

        // --- Destructive sweep: drop until `span` items inside the domain.
        let mut inside = 0usize;
        while inside < span && x.cardinality() > 0 {
            let Some(j) = pick_drop(inst, &x, &tabu, now, config.noise, rng, &mut stats) else {
                break;
            };
            let was_infeasible = !x.is_feasible(inst);
            x.drop(inst, j);
            tabu.forbid(j, now);
            now += 1;
            stats.moves += 1;
            if x.is_feasible(inst) {
                if was_infeasible {
                    // Critical event: first feasible solution of the sweep.
                    elite.offer(&x);
                    if x.value() > best.value() {
                        best = x.clone();
                    }
                }
                inside += 1;
            }
            if stats.candidate_evals >= max_evals {
                break;
            }
        }

        // Record residency at each cycle's feasible end.
        if x.is_feasible(inst) {
            for j in x.bits().iter_ones() {
                freq[j] += 1;
            }
            freq_ticks += 1;
        }

        // --- Amplitude schedule.
        cycles_at_span += 1;
        if cycles_at_span >= config.cycles_per_span {
            cycles_at_span = 0;
            if span > config.span_min {
                span -= 1;
            } else {
                // Bottomed out: diversify against the frequency memory and
                // restart the decay.
                diversify_by_frequency(inst, &mut x, &freq, freq_ticks, &mut tabu, now);
                span = config.span_init.max(config.span_min);
            }
        }
    }

    // Leave from a feasible point.
    project_feasible(inst, ratios, &mut x);
    greedy_fill(inst, ratios, &mut x);
    if x.value() > best.value() {
        best = x.clone();
    }
    elite.offer(&x);

    debug_assert!(best.is_feasible(inst));
    SearchReport {
        best,
        elite: elite.solutions().to_vec(),
        stats,
        initial_value,
        budget_exhausted: true,
    }
}

/// Best non-tabu add candidate by slack-aware utility (noisy top-2).
fn pick_add(
    inst: &Instance,
    x: &Solution,
    tabu: &Recency,
    now: u64,
    noise: f64,
    rng: &mut Xoshiro256,
    stats: &mut MoveStats,
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    let mut second: Option<(usize, f64)> = None;
    for j in 0..inst.n() {
        if x.contains(j) || tabu.is_tabu(j, now) {
            continue;
        }
        stats.candidate_evals += 1;
        let u = dynamic_utility(inst, x, j);
        if best.is_none_or(|(_, b)| u > b) {
            second = best;
            best = Some((j, u));
        } else if second.is_none_or(|(_, s)| u > s) {
            second = Some((j, u));
        }
    }
    match (best, second) {
        (Some((b, _)), Some((s, _))) if noise > 0.0 && rng.chance(noise) => {
            Some(if rng.chance(0.5) { b } else { s })
        }
        (Some((b, _)), _) => Some(b),
        _ => None,
    }
}

/// Worst non-tabu packed item (max weight per profit), noisy top-2.
fn pick_drop(
    inst: &Instance,
    x: &Solution,
    tabu: &Recency,
    now: u64,
    noise: f64,
    rng: &mut Xoshiro256,
    stats: &mut MoveStats,
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    let mut second: Option<(usize, f64)> = None;
    let mut fallback: Option<(usize, f64)> = None;
    for j in x.bits().iter_ones() {
        stats.candidate_evals += 1;
        let burden = inst.item_weight_sum(j) as f64 / inst.profit(j).max(1) as f64;
        if fallback.is_none_or(|(_, b)| burden > b) {
            fallback = Some((j, burden));
        }
        if tabu.is_tabu(j, now) {
            continue;
        }
        if best.is_none_or(|(_, b)| burden > b) {
            second = best;
            best = Some((j, burden));
        } else if second.is_none_or(|(_, s)| burden > s) {
            second = Some((j, burden));
        }
    }
    match (best, second) {
        (Some((b, _)), Some((s, _))) if noise > 0.0 && rng.chance(noise) => {
            Some(if rng.chance(0.5) { b } else { s })
        }
        (Some((b, _)), _) => Some(b),
        // Everything tabu: the sweep must still progress.
        (None, _) => fallback.map(|(j, _)| j),
    }
}

/// Flip the most over-represented items out (pinning them tabu) so the next
/// decay cycle explores elsewhere.
fn diversify_by_frequency(
    inst: &Instance,
    x: &mut Solution,
    freq: &[u64],
    ticks: u64,
    tabu: &mut Recency,
    now: u64,
) {
    if ticks == 0 {
        return;
    }
    let mut over: Vec<usize> = x
        .bits()
        .iter_ones()
        .filter(|&j| freq[j] as f64 / ticks as f64 > 0.9)
        .collect();
    over.sort_by_key(|&j| std::cmp::Reverse(freq[j]));
    for j in over.into_iter().take(inst.n() / 10 + 1) {
        x.drop(inst, j);
        tabu.forbid(j, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkp::generate::{gk_instance, uncorrelated_instance, GkSpec};
    use mkp::greedy::{greedy, random_feasible};

    fn run_default(inst: &Instance, seed: u64, evals: u64) -> SearchReport {
        let ratios = Ratios::new(inst);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let init = random_feasible(inst, &mut rng);
        run_cets(
            inst,
            &ratios,
            init,
            &CetsConfig::default_for(inst.n()),
            evals,
            &mut rng,
        )
    }

    #[test]
    fn best_is_feasible_and_consistent() {
        for seed in 0..5 {
            let inst = uncorrelated_instance("c", 40, 4, 0.5, seed);
            let r = run_default(&inst, seed, 50_000);
            assert!(r.best.is_feasible(&inst));
            assert!(r.best.check_consistent(&inst));
        }
    }

    #[test]
    fn beats_or_matches_greedy() {
        for seed in 0..5 {
            let inst = gk_instance(
                "g",
                GkSpec {
                    n: 80,
                    m: 5,
                    tightness: 0.5,
                    seed,
                },
            );
            let ratios = Ratios::new(&inst);
            let g = greedy(&inst, &ratios);
            let r = run_default(&inst, seed, 300_000);
            assert!(
                r.best.value() >= g.value(),
                "seed {seed}: CETS {} < greedy {}",
                r.best.value(),
                g.value()
            );
        }
    }

    #[test]
    fn respects_budget() {
        let inst = gk_instance(
            "b",
            GkSpec {
                n: 100,
                m: 5,
                tightness: 0.5,
                seed: 1,
            },
        );
        let r = run_default(&inst, 1, 20_000);
        assert!(r.stats.candidate_evals < 20_000 + 2 * inst.n() as u64 + 64);
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = gk_instance(
            "d",
            GkSpec {
                n: 60,
                m: 5,
                tightness: 0.5,
                seed: 2,
            },
        );
        let a = run_default(&inst, 7, 40_000);
        let b = run_default(&inst, 7, 40_000);
        assert_eq!(a.best.bits(), b.best.bits());
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn elite_records_critical_events() {
        let inst = gk_instance(
            "e",
            GkSpec {
                n: 60,
                m: 5,
                tightness: 0.5,
                seed: 3,
            },
        );
        let r = run_default(&inst, 3, 100_000);
        assert!(!r.elite.is_empty());
        for sol in &r.elite {
            assert!(sol.is_feasible(&inst), "critical event recorded infeasible");
        }
    }

    #[test]
    fn finds_optimum_on_small_instances() {
        for seed in 0..3 {
            let inst = uncorrelated_instance("o", 12, 3, 0.5, seed);
            let mut brute = 0i64;
            for mask in 0u32..(1 << inst.n()) {
                let ok = (0..inst.m()).all(|i| {
                    (0..inst.n())
                        .filter(|&j| (mask >> j) & 1 == 1)
                        .map(|j| inst.weight(i, j))
                        .sum::<i64>()
                        <= inst.capacity(i)
                });
                if ok {
                    brute = brute.max(
                        (0..inst.n())
                            .filter(|&j| (mask >> j) & 1 == 1)
                            .map(|j| inst.profit(j))
                            .sum(),
                    );
                }
            }
            let r = run_default(&inst, seed, 150_000);
            assert_eq!(r.best.value(), brute, "seed {seed}");
        }
    }
}
