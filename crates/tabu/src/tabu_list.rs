//! Tabu memories.
//!
//! The paper's slaves use a plain recency list of fixed tenure ([`Recency`]),
//! with the tenure dynamically retuned by the master. §4.1 discusses two
//! alternatives from the literature — the Reverse Elimination Method and
//! Reactive Tabu Search — which are implemented in [`crate::rem`] and
//! [`crate::reactive`] behind the same [`TabuMemory`] interface so ablation
//! A1 can compare all of them inside the identical search engine.

/// Item-attribute tabu memory consulted by the move operator.
///
/// `now` is the search's move counter; implementations may ignore it (REM
/// derives tabu status from the move history instead of an expiry clock).
pub trait TabuMemory {
    /// Record that `item` was moved (dropped) at move `now`; the item
    /// becomes tabu-to-add.
    fn forbid(&mut self, item: usize, now: u64);

    /// Is adding `item` currently forbidden?
    fn is_tabu(&self, item: usize, now: u64) -> bool;

    /// Notify the memory of the solution reached at `now` (fingerprint of
    /// the assignment bits). Recency ignores this; REM appends to its
    /// running list; Reactive detects revisits and adapts its tenure.
    fn observe_solution(&mut self, fingerprint: u64, toggled: &[usize], now: u64);

    /// Change the tenure (no-op where tenure has no meaning).
    fn set_tenure(&mut self, tenure: usize);

    /// Current tenure (0 where tenure has no meaning).
    fn tenure(&self) -> usize;

    /// Forget everything (used when a slave restarts from a new solution).
    fn reset(&mut self);

    /// Ordering hint for *relaxed re-admission*: when every fitting item is
    /// tabu the move operator re-admits the item with the smallest key
    /// (e.g. the one closest to expiry) rather than letting the knapsack
    /// drain. Memories without a time notion may return a constant.
    fn relaxation_key(&self, item: usize) -> u64 {
        let _ = item;
        0
    }
}

/// Fixed-tenure recency memory: item `j` is tabu until `forbid`-time +
/// tenure. O(1) everything; the memory the paper's slaves run.
#[derive(Debug, Clone)]
pub struct Recency {
    expiry: Vec<u64>,
    tenure: usize,
}

impl Recency {
    /// Memory for `n` items with the given tenure.
    pub fn new(n: usize, tenure: usize) -> Self {
        Recency {
            expiry: vec![0; n],
            tenure,
        }
    }
}

impl TabuMemory for Recency {
    #[inline]
    fn forbid(&mut self, item: usize, now: u64) {
        self.expiry[item] = now + self.tenure as u64;
    }

    #[inline]
    fn is_tabu(&self, item: usize, now: u64) -> bool {
        self.expiry[item] > now
    }

    fn observe_solution(&mut self, _fingerprint: u64, _toggled: &[usize], _now: u64) {}

    fn set_tenure(&mut self, tenure: usize) {
        self.tenure = tenure;
    }

    fn tenure(&self) -> usize {
        self.tenure
    }

    fn reset(&mut self) {
        self.expiry.iter_mut().for_each(|e| *e = 0);
    }

    fn relaxation_key(&self, item: usize) -> u64 {
        self.expiry[item]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_memory_is_clear() {
        let mem = Recency::new(10, 5);
        for j in 0..10 {
            assert!(!mem.is_tabu(j, 0));
        }
    }

    #[test]
    fn forbid_lasts_exactly_tenure_moves() {
        let mut mem = Recency::new(4, 3);
        mem.forbid(2, 10);
        assert!(mem.is_tabu(2, 10));
        assert!(mem.is_tabu(2, 12));
        assert!(!mem.is_tabu(2, 13));
        assert!(!mem.is_tabu(1, 10));
    }

    #[test]
    fn re_forbid_extends() {
        let mut mem = Recency::new(4, 3);
        mem.forbid(0, 0);
        mem.forbid(0, 2);
        assert!(mem.is_tabu(0, 4));
        assert!(!mem.is_tabu(0, 5));
    }

    #[test]
    fn tenure_change_applies_to_new_forbids() {
        let mut mem = Recency::new(4, 2);
        mem.forbid(0, 0);
        mem.set_tenure(10);
        assert_eq!(mem.tenure(), 10);
        assert!(!mem.is_tabu(0, 3), "old forbid keeps old tenure");
        mem.forbid(1, 3);
        assert!(mem.is_tabu(1, 12));
    }

    #[test]
    fn zero_tenure_means_no_tabu() {
        let mut mem = Recency::new(2, 0);
        mem.forbid(0, 5);
        assert!(!mem.is_tabu(0, 5));
    }

    #[test]
    fn reset_clears() {
        let mut mem = Recency::new(3, 100);
        mem.forbid(1, 0);
        mem.reset();
        assert!(!mem.is_tabu(1, 1));
    }
}
