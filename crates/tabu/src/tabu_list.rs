//! Tabu memories.
//!
//! The paper's slaves use a plain recency list of fixed tenure ([`Recency`]),
//! with the tenure dynamically retuned by the master. §4.1 discusses two
//! alternatives from the literature — the Reverse Elimination Method and
//! Reactive Tabu Search — which are implemented in [`crate::rem`] and
//! [`crate::reactive`] behind the same [`TabuMemory`] interface so ablation
//! A1 can compare all of them inside the identical search engine.

/// Item-attribute tabu memory consulted by the move operator.
///
/// `now` is the search's move counter; implementations may ignore it (REM
/// derives tabu status from the move history instead of an expiry clock).
pub trait TabuMemory {
    /// Record that `item` was moved (dropped) at move `now`; the item
    /// becomes tabu-to-add.
    fn forbid(&mut self, item: usize, now: u64);

    /// Is adding `item` currently forbidden?
    fn is_tabu(&self, item: usize, now: u64) -> bool;

    /// Notify the memory of the solution reached at `now` (fingerprint of
    /// the assignment bits). Recency ignores this; REM appends to its
    /// running list; Reactive detects revisits and adapts its tenure.
    fn observe_solution(&mut self, fingerprint: u64, toggled: &[usize], now: u64);

    /// Change the tenure (no-op where tenure has no meaning).
    fn set_tenure(&mut self, tenure: usize);

    /// Current tenure (0 where tenure has no meaning).
    fn tenure(&self) -> usize;

    /// Forget everything (used when a slave restarts from a new solution).
    fn reset(&mut self);

    /// Ordering hint for *relaxed re-admission*: when every fitting item is
    /// tabu the move operator re-admits the item with the smallest key
    /// (e.g. the one closest to expiry) rather than letting the knapsack
    /// drain. Memories without a time notion may return a constant.
    fn relaxation_key(&self, item: usize) -> u64 {
        let _ = item;
        0
    }

    /// How many set bits of `bits` are currently tabu — the census the Drop
    /// selection takes before ranking its candidates. Must equal iterating
    /// [`TabuMemory::is_tabu`] over the set bits; implementations may
    /// override with a word-parallel version (`&mut self` admits lazily
    /// maintained caches).
    fn count_tabu(&mut self, bits: &mkp::BitVec, now: u64) -> usize {
        bits.iter_ones().filter(|&j| self.is_tabu(j, now)).count()
    }
}

/// Fixed-tenure recency memory: item `j` is tabu until `forbid`-time +
/// tenure. O(1) everything; the memory the paper's slaves run.
///
/// Beside the expiry array (the source of truth for [`Recency::is_tabu`])
/// it keeps a packed tabu bitmask plus a FIFO of pending expiries, so the
/// Drop census is an AND-and-popcount over `u64` words instead of a gather
/// per packed item. The mask is cleaned lazily at census time; entries whose
/// item was re-forbidden in the meantime are recognised by an expiry
/// mismatch and skipped.
#[derive(Debug)]
pub struct Recency {
    expiry: Vec<u64>,
    tenure: usize,
    /// Packed tabu bits; exact for clock `t` once cleaned to `t`.
    mask: Vec<u64>,
    /// Pending `(expiry, item)` pairs, non-decreasing by expiry unless a
    /// tenure retune broke monotonicity (then `sorted` is false and the
    /// next census re-sorts).
    queue: std::collections::VecDeque<(u64, u32)>,
    sorted: bool,
    /// Clock the queue was last cleaned to; a census probing an earlier
    /// clock falls back to the exact per-item scan.
    cleaned_to: u64,
}

// Manual `Clone` so `clone_from` reuses the buffers when best-of-K restores
// a trial memory from scratch space (allocation-free steady state).
impl Clone for Recency {
    fn clone(&self) -> Self {
        Recency {
            expiry: self.expiry.clone(),
            tenure: self.tenure,
            mask: self.mask.clone(),
            queue: self.queue.clone(),
            sorted: self.sorted,
            cleaned_to: self.cleaned_to,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.expiry.clone_from(&source.expiry);
        self.tenure = source.tenure;
        self.mask.clone_from(&source.mask);
        self.queue.clone_from(&source.queue);
        self.sorted = source.sorted;
        self.cleaned_to = source.cleaned_to;
    }
}

impl Recency {
    /// Memory for `n` items with the given tenure.
    pub fn new(n: usize, tenure: usize) -> Self {
        Recency {
            expiry: vec![0; n],
            tenure,
            mask: vec![0; n.div_ceil(64)],
            queue: std::collections::VecDeque::new(),
            sorted: true,
            cleaned_to: 0,
        }
    }
}

impl TabuMemory for Recency {
    #[inline]
    fn forbid(&mut self, item: usize, now: u64) {
        let exp = now + self.tenure as u64;
        self.expiry[item] = exp;
        self.mask[item / 64] |= 1u64 << (item % 64);
        if self.queue.back().is_some_and(|&(back, _)| exp < back) {
            self.sorted = false;
        }
        self.queue.push_back((exp, item as u32));
        // Opportunistically drain expired entries so the queue stays
        // bounded even when no census ever runs (the best-of-K path calls
        // the census only on its scratch clones). Same cleaning rule as
        // `count_tabu`; amortized O(1) — each entry is popped once.
        if self.sorted && now >= self.cleaned_to {
            while let Some(&(e, it)) = self.queue.front() {
                if e > now {
                    break;
                }
                self.queue.pop_front();
                let j = it as usize;
                if self.expiry[j] == e {
                    self.mask[j / 64] &= !(1u64 << (j % 64));
                }
            }
            self.cleaned_to = now;
        }
    }

    #[inline]
    fn is_tabu(&self, item: usize, now: u64) -> bool {
        self.expiry[item] > now
    }

    fn observe_solution(&mut self, _fingerprint: u64, _toggled: &[usize], _now: u64) {}

    fn set_tenure(&mut self, tenure: usize) {
        self.tenure = tenure;
    }

    fn tenure(&self) -> usize {
        self.tenure
    }

    fn reset(&mut self) {
        self.expiry.iter_mut().for_each(|e| *e = 0);
        self.mask.iter_mut().for_each(|w| *w = 0);
        self.queue.clear();
        self.sorted = true;
        self.cleaned_to = 0;
    }

    fn relaxation_key(&self, item: usize) -> u64 {
        self.expiry[item]
    }

    // Word-parallel census: clean the pending queue up to `now` (amortized
    // O(1) — each forbid is popped once), then AND the tabu mask with the
    // solution words and popcount. No per-item gather.
    fn count_tabu(&mut self, bits: &mkp::BitVec, now: u64) -> usize {
        debug_assert_eq!(bits.len(), self.expiry.len());
        if now < self.cleaned_to {
            // The mask already reflects a later clock; serve the probe
            // from the exact expiry array instead.
            return bits.iter_ones().filter(|&j| self.is_tabu(j, now)).count();
        }
        if !self.sorted {
            self.queue.make_contiguous().sort_unstable();
            self.sorted = true;
        }
        while let Some(&(exp, item)) = self.queue.front() {
            if exp > now {
                break;
            }
            self.queue.pop_front();
            let j = item as usize;
            // A mismatch means the item was re-forbidden after this entry
            // was queued; its newer entry will clear the bit on time.
            if self.expiry[j] == exp {
                self.mask[j / 64] &= !(1u64 << (j % 64));
            }
        }
        self.cleaned_to = now;
        self.mask
            .iter()
            .zip(bits.words())
            .map(|(&m, &w)| (m & w).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_memory_is_clear() {
        let mem = Recency::new(10, 5);
        for j in 0..10 {
            assert!(!mem.is_tabu(j, 0));
        }
    }

    #[test]
    fn forbid_lasts_exactly_tenure_moves() {
        let mut mem = Recency::new(4, 3);
        mem.forbid(2, 10);
        assert!(mem.is_tabu(2, 10));
        assert!(mem.is_tabu(2, 12));
        assert!(!mem.is_tabu(2, 13));
        assert!(!mem.is_tabu(1, 10));
    }

    #[test]
    fn re_forbid_extends() {
        let mut mem = Recency::new(4, 3);
        mem.forbid(0, 0);
        mem.forbid(0, 2);
        assert!(mem.is_tabu(0, 4));
        assert!(!mem.is_tabu(0, 5));
    }

    #[test]
    fn tenure_change_applies_to_new_forbids() {
        let mut mem = Recency::new(4, 2);
        mem.forbid(0, 0);
        mem.set_tenure(10);
        assert_eq!(mem.tenure(), 10);
        assert!(!mem.is_tabu(0, 3), "old forbid keeps old tenure");
        mem.forbid(1, 3);
        assert!(mem.is_tabu(1, 12));
    }

    #[test]
    fn zero_tenure_means_no_tabu() {
        let mut mem = Recency::new(2, 0);
        mem.forbid(0, 5);
        assert!(!mem.is_tabu(0, 5));
    }

    #[test]
    fn reset_clears() {
        let mut mem = Recency::new(3, 100);
        mem.forbid(1, 0);
        mem.reset();
        assert!(!mem.is_tabu(1, 1));
    }

    #[test]
    fn count_tabu_matches_per_item_scan() {
        // n crosses a word boundary; forbids and packed bits interleave.
        let n = 130;
        let mut mem = Recency::new(n, 7);
        for j in (0..n).step_by(3) {
            mem.forbid(j, j as u64); // staggered expiries
        }
        let bits = mkp::BitVec::from_bools((0..n).map(|j| j % 2 == 0));
        for now in [0u64, 5, 60, 129, 140] {
            let naive = bits.iter_ones().filter(|&j| mem.is_tabu(j, now)).count();
            assert_eq!(mem.count_tabu(&bits, now), naive, "now={now}");
        }
    }

    #[test]
    fn count_tabu_survives_retunes_reforbids_and_clock_rewind() {
        let n = 70;
        let mut mem = Recency::new(n, 10);
        let bits = mkp::BitVec::from_bools((0..n).map(|j| j % 3 != 1));
        let naive =
            |mem: &Recency, now: u64| bits.iter_ones().filter(|&j| mem.is_tabu(j, now)).count();
        mem.forbid(0, 0); // expiry 10
        mem.forbid(3, 2); // expiry 12
        assert_eq!(mem.count_tabu(&bits, 5), naive(&mem, 5));
        // Tenure shrink breaks queue monotonicity (expiry 7 < 12).
        mem.set_tenure(3);
        mem.forbid(6, 4); // expiry 7
        mem.forbid(3, 5); // re-forbid: expiry drops from 12 to 8
        for now in [6u64, 7, 8, 9, 11, 13] {
            assert_eq!(mem.count_tabu(&bits, now), naive(&mem, now), "now={now}");
        }
        // A rewound probe (best-of-K style) must still be exact.
        assert_eq!(mem.count_tabu(&bits, 6), naive(&mem, 6));
        mem.reset();
        assert_eq!(mem.count_tabu(&bits, 0), 0);
    }
}
