//! Path relinking between elite solutions (Glover's companion technique to
//! tabu search, contemporaneous with the paper).
//!
//! Starting from solution `a`, walk toward solution `b` one attribute at a
//! time: at each step commit the symmetric-difference move (add a `b`-only
//! item when it fits after the repair drop, else drop an `a`-only item)
//! that loses the least value. Every intermediate point is repaired to
//! feasibility and saturated; the best point on the path is returned. Used
//! by the master as an optional exploitation step between elite solutions
//! of *different slaves* — information neither slave holds alone.

use crate::moves::MoveStats;
use mkp::eval::Ratios;
use mkp::greedy::{dynamic_greedy_fill_view, project_feasible};
use mkp::{Instance, Solution};

/// Walk from `a` toward `b`; return the best intermediate solution (which
/// may be `a` itself) and the number of path steps taken.
pub fn path_relink(
    inst: &Instance,
    ratios: &Ratios,
    a: &Solution,
    b: &Solution,
    stats: &mut MoveStats,
) -> (Solution, usize) {
    assert_eq!(a.bits().len(), inst.n());
    assert_eq!(b.bits().len(), inst.n());
    let mut current = a.clone();
    let mut best = a.clone();
    let mut steps = 0;

    loop {
        // Remaining symmetric difference.
        let to_add: Vec<usize> = b
            .bits()
            .iter_ones()
            .filter(|&j| !current.contains(j))
            .collect();
        let to_drop: Vec<usize> = current
            .bits()
            .iter_ones()
            .filter(|&j| !b.contains(j))
            .collect();
        if to_add.is_empty() && to_drop.is_empty() {
            break;
        }

        // Candidate steps: add a b-only item (repairing afterwards by
        // dropping a-only items first), or drop an a-only item. Pick the
        // candidate with the highest resulting value.
        let mut best_step: Option<(Solution, usize)> = None; // (state, progress)
        for &j in &to_add {
            stats.candidate_evals += 1;
            let mut trial = current.clone();
            trial.add(inst, j);
            // Repair priority: expel a-only items before anything else so
            // the walk keeps moving toward b.
            let mut dropped_guide = 0;
            while !trial.is_feasible(inst) {
                let victim = to_drop.iter().copied().find(|&k| trial.contains(k));
                match victim {
                    Some(k) => {
                        trial.drop(inst, k);
                        dropped_guide += 1;
                    }
                    None => break,
                }
            }
            if !trial.is_feasible(inst) {
                project_feasible(inst, ratios, &mut trial);
            }
            let progress = 1 + dropped_guide;
            if best_step
                .as_ref()
                .is_none_or(|(s, _)| trial.value() > s.value())
            {
                best_step = Some((trial, progress));
            }
        }
        if best_step.is_none() {
            // Only drops remain.
            for &j in &to_drop {
                stats.candidate_evals += 1;
                let mut trial = current.clone();
                trial.drop(inst, j);
                if best_step
                    .as_ref()
                    .is_none_or(|(s, _)| trial.value() > s.value())
                {
                    best_step = Some((trial, 1));
                }
            }
        }
        let Some((next, progress)) = best_step else {
            break;
        };
        // Guard against non-progress (projection may restore dropped items).
        if next.bits() == current.bits() {
            break;
        }
        current = next;
        steps += progress;
        // Evaluate the saturated version of the intermediate point.
        let mut filled = current.clone();
        dynamic_greedy_fill_view(inst, ratios, &mut filled);
        if filled.value() > best.value() {
            best = filled;
        }
        if steps > 2 * inst.n() {
            break; // safety net; cannot happen with monotone progress
        }
    }

    stats.moves += 1;
    debug_assert!(best.is_feasible(inst));
    (best, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkp::generate::{gk_instance, uncorrelated_instance, GkSpec};
    use mkp::greedy::{dynamic_randomized_greedy, greedy};
    use mkp::Xoshiro256;

    fn endpoints(seed: u64) -> (Instance, Ratios, Solution, Solution) {
        let inst = gk_instance(
            "pr",
            GkSpec {
                n: 60,
                m: 5,
                tightness: 0.5,
                seed,
            },
        );
        let ratios = Ratios::new(&inst);
        let a = greedy(&inst, &ratios);
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xABCD);
        let b = dynamic_randomized_greedy(&inst, &mut rng, 6);
        (inst, ratios, a, b)
    }

    #[test]
    fn result_is_feasible_and_at_least_endpoint_a() {
        for seed in 0..8 {
            let (inst, ratios, a, b) = endpoints(seed);
            let (best, _) = path_relink(&inst, &ratios, &a, &b, &mut MoveStats::default());
            assert!(best.is_feasible(&inst));
            assert!(best.check_consistent(&inst));
            assert!(
                best.value() >= a.value(),
                "seed {seed} lost the start point"
            );
        }
    }

    #[test]
    fn identical_endpoints_are_a_noop() {
        let (inst, ratios, a, _) = endpoints(1);
        let (best, steps) = path_relink(&inst, &ratios, &a, &a, &mut MoveStats::default());
        assert_eq!(steps, 0);
        assert_eq!(best.bits(), a.bits());
    }

    #[test]
    fn walk_makes_progress_toward_target() {
        let (inst, ratios, a, b) = endpoints(2);
        let before = a.hamming(&b);
        assert!(before > 0, "endpoints coincide; pick another seed");
        let (_, steps) = path_relink(&inst, &ratios, &a, &b, &mut MoveStats::default());
        assert!(steps > 0, "no steps taken despite differing endpoints");
    }

    #[test]
    fn finds_intermediate_better_than_both_endpoints_sometimes() {
        // Across several seeds, relinking should at least once beat both
        // endpoints — that is its entire purpose.
        let mut wins = 0;
        for seed in 0..20 {
            let inst = uncorrelated_instance("w", 40, 4, 0.5, seed);
            let ratios = Ratios::new(&inst);
            let mut rng = Xoshiro256::seed_from_u64(seed);
            let a = dynamic_randomized_greedy(&inst, &mut rng, 5);
            let b = dynamic_randomized_greedy(&inst, &mut rng, 5);
            let (best, _) = path_relink(&inst, &ratios, &a, &b, &mut MoveStats::default());
            if best.value() > a.value().max(b.value()) {
                wins += 1;
            }
        }
        assert!(wins >= 3, "relinking never beat its endpoints ({wins}/20)");
    }

    #[test]
    fn counts_work() {
        let (inst, ratios, a, b) = endpoints(3);
        let mut stats = MoveStats::default();
        path_relink(&inst, &ratios, &a, &b, &mut stats);
        assert!(stats.candidate_evals > 0);
        assert_eq!(stats.moves, 1);
    }
}
