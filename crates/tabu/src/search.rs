//! The sequential tabu-search engine (paper Fig. 1).
//!
//! One run is the slave-side procedure: nested diversification ×
//! intensification rounds around a stagnation-bounded local-search loop of
//! Drop/Add moves. Work is accounted in *candidate evaluations*
//! ([`MoveStats::candidate_evals`]), the machine-independent budget unit all
//! experiments share (DESIGN.md §4).

use crate::diversify::{diversify, DiversifyParams};
use crate::elite::ElitePool;
use crate::history::History;
use crate::intensify::{
    drop_refill_intensification, ejection_chain_intensification, lateral_swap_fill,
    swap_intensification,
};
use crate::moves::{apply_move, MoveStats};
use crate::neighborhood::{best_of_k_move_in, MoveSelection, NeighborhoodScratch};
use crate::oscillate::strategic_oscillation;
use crate::strategy::Strategy;
use crate::tabu_list::{Recency, TabuMemory};
use mkp::eval::Ratios;
use mkp::greedy::{greedy_fill, project_feasible};
use mkp::{Instance, Solution, Xoshiro256};

/// Which intensification procedure(s) the engine runs after each
/// local-search loop (paper §3.2 describes both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intensification {
    /// Component swapping only.
    Swap,
    /// Strategic oscillation only.
    Oscillation,
    /// Swap, then strategic oscillation.
    Both,
}

/// Full configuration of one tabu-search run.
#[derive(Debug, Clone)]
pub struct TsConfig {
    /// The tunable triple (tenure, nb_drop, nb_local).
    pub strategy: Strategy,
    /// Outer diversification rounds (`Nb_div`).
    pub nb_div: usize,
    /// Intensification rounds per diversification (`Nb_int`).
    pub nb_int: usize,
    /// Elite pool size (`B`).
    pub b_best: usize,
    /// Strategic-oscillation excursion depth.
    pub osc_depth: usize,
    /// Intensification procedure selection.
    pub intensification: Intensification,
    /// Diversification thresholds.
    pub diversify: DiversifyParams,
    /// Probability that a move's candidate choice falls on one of the top
    /// [`crate::moves::RCL_WIDTH`] candidates instead of the single best.
    /// Zero makes the engine fully deterministic; a small value decorrelates
    /// parallel threads restarting from shared solutions.
    pub noise: f64,
    /// Constructive single move (default) or width-K neighborhood
    /// examination (paper §2 parallelism source 2; see
    /// [`crate::neighborhood`]).
    pub move_selection: MoveSelection,
}

impl TsConfig {
    /// Defaults scaled to an instance with `n` items.
    pub fn default_for(n: usize) -> Self {
        TsConfig {
            strategy: Strategy::default_for(n),
            nb_div: 1_000_000, // effectively "until budget"
            nb_int: 4,
            b_best: 8,
            osc_depth: (n / 40).max(3),
            intensification: Intensification::Both,
            diversify: DiversifyParams::default(),
            noise: 0.1,
            move_selection: MoveSelection::Constructive,
        }
    }
}

/// Work budget: the run stops once this many candidate evaluations are
/// spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Candidate-evaluation cap.
    pub max_evals: u64,
}

impl Budget {
    /// Budget of `max_evals` candidate evaluations.
    pub fn evals(max_evals: u64) -> Self {
        Budget { max_evals }
    }
}

/// Outcome of one run.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// Best solution found.
    pub best: Solution,
    /// The B best distinct solutions, best first.
    pub elite: Vec<Solution>,
    /// Work counters.
    pub stats: MoveStats,
    /// Objective value of the (repaired) initial solution.
    pub initial_value: i64,
    /// True when the run ended because the budget ran out (as opposed to
    /// completing all `nb_div` rounds).
    pub budget_exhausted: bool,
}

impl SearchReport {
    /// Did the run improve on its starting solution? (The master's SGP
    /// scores slaves by exactly this predicate.)
    pub fn improved(&self) -> bool {
        self.best.value() > self.initial_value
    }
}

/// Run the tabu search with the paper's recency memory and a fresh
/// long-term memory.
pub fn run(
    inst: &Instance,
    ratios: &Ratios,
    initial: Solution,
    config: &TsConfig,
    budget: Budget,
    rng: &mut Xoshiro256,
) -> SearchReport {
    let mut memory = Recency::new(inst.n(), config.strategy.tabu_tenure);
    let mut history = History::new(inst.n());
    run_with_memory(
        inst,
        ratios,
        initial,
        config,
        budget,
        rng,
        &mut memory,
        &mut history,
    )
}

/// Run the tabu search with caller-supplied memories.
///
/// The tabu memory is generic so ablation A1 can swap in REM / reactive
/// variants; the long-term `history` is external so a slave serving many
/// master rounds *accumulates* residency counts across them — its
/// diversification then targets regions unvisited in the whole session, not
/// just the current round (a fresh history every round makes rounds retrace
/// each other and the cooperative curves go flat).
#[allow(clippy::too_many_arguments)]
pub fn run_with_memory<M: TabuMemory + Clone + Sync>(
    inst: &Instance,
    ratios: &Ratios,
    initial: Solution,
    config: &TsConfig,
    budget: Budget,
    rng: &mut Xoshiro256,
    memory: &mut M,
    history: &mut History,
) -> SearchReport {
    assert_eq!(
        history.len(),
        inst.n(),
        "history sized for another instance"
    );
    memory.set_tenure(config.strategy.tabu_tenure);

    // Repair + saturate the start so the search begins on the boundary.
    let mut x = initial;
    project_feasible(inst, ratios, &mut x);
    greedy_fill(inst, ratios, &mut x);
    let initial_value = x.value();

    let mut best = x.clone();
    let mut elite = ElitePool::new(config.b_best);
    elite.offer(&best);
    let mut stats = MoveStats::default();
    let mut now: u64 = 0;
    let mut exhausted = false;
    // Engine-lifetime scratch for the best-of-K scan: slot solutions,
    // memories, and the drop-score top list live across moves so the
    // steady-state path never allocates.
    let mut scratch: NeighborhoodScratch<M> = NeighborhoodScratch::new();

    'outer: for _div in 0..config.nb_div {
        for _int in 0..config.nb_int {
            // --- Local search loop (Fig. 1 steps 4–10) ---
            let mut x_local = x.clone();
            let mut since_improve = 0usize;
            while since_improve < config.strategy.nb_local {
                match config.move_selection {
                    MoveSelection::Constructive => {
                        apply_move(
                            inst,
                            ratios,
                            &mut x,
                            memory,
                            now,
                            config.strategy.nb_drop,
                            best.value(),
                            config.noise,
                            rng,
                            &mut stats,
                        );
                    }
                    MoveSelection::BestOfK { width, parallel } => {
                        best_of_k_move_in(
                            inst,
                            ratios,
                            &mut x,
                            memory,
                            now,
                            config.strategy.nb_drop,
                            best.value(),
                            config.noise,
                            width,
                            parallel,
                            rng,
                            &mut stats,
                            &mut scratch,
                        );
                    }
                }
                now += 1;
                history.record(&x);
                if x.value() > best.value() {
                    best = x.clone();
                    since_improve = 0;
                } else {
                    since_improve += 1;
                }
                if x.value() > x_local.value() {
                    x_local = x.clone();
                }
                elite.offer(&x);
                if stats.candidate_evals >= budget.max_evals {
                    exhausted = true;
                    break 'outer;
                }
            }

            // --- Intensification (Fig. 1 step 11) ---
            match config.intensification {
                Intensification::Swap => {
                    swap_intensification(inst, ratios, &mut x_local, &mut stats);
                }
                Intensification::Oscillation => {
                    strategic_oscillation(inst, ratios, &mut x_local, config.osc_depth, &mut stats);
                }
                Intensification::Both => {
                    swap_intensification(inst, ratios, &mut x_local, &mut stats);
                    lateral_swap_fill(inst, ratios, &mut x_local, &mut stats);
                    drop_refill_intensification(inst, ratios, &mut x_local, &mut stats);
                    ejection_chain_intensification(inst, &mut x_local, &mut stats, 3);
                    strategic_oscillation(inst, ratios, &mut x_local, config.osc_depth, &mut stats);
                }
            }
            if x_local.value() > best.value() {
                best = x_local.clone();
            }
            elite.offer(&x_local);
            x = x_local; // continue from the intensified point
            if stats.candidate_evals >= budget.max_evals {
                exhausted = true;
                break 'outer;
            }
        }

        // --- Diversification (Fig. 1 step 12) ---
        let (next, _forced) = diversify(inst, ratios, history, &x, &config.diversify, memory, now);
        x = next;
        elite.offer(&x);
        if x.value() > best.value() {
            best = x.clone();
        }
    }

    debug_assert!(best.is_feasible(inst));
    SearchReport {
        best,
        elite: elite.solutions().to_vec(),
        stats,
        initial_value,
        budget_exhausted: exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkp::generate::{fp_instance, gk_instance, uncorrelated_instance, GkSpec};
    use mkp::greedy::{greedy, random_feasible};

    fn run_default(inst: &Instance, seed: u64, evals: u64) -> SearchReport {
        let ratios = Ratios::new(inst);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let init = random_feasible(inst, &mut rng);
        run(
            inst,
            &ratios,
            init,
            &TsConfig::default_for(inst.n()),
            Budget::evals(evals),
            &mut rng,
        )
    }

    #[test]
    fn best_is_feasible_and_consistent() {
        for seed in 0..5 {
            let inst = uncorrelated_instance("t", 40, 4, 0.5, seed);
            let report = run_default(&inst, seed, 50_000);
            assert!(report.best.is_feasible(&inst));
            assert!(report.best.check_consistent(&inst));
        }
    }

    #[test]
    fn beats_or_matches_greedy() {
        for seed in 0..5 {
            let inst = gk_instance(
                "g",
                GkSpec {
                    n: 80,
                    m: 5,
                    tightness: 0.5,
                    seed,
                },
            );
            let ratios = Ratios::new(&inst);
            let g = greedy(&inst, &ratios);
            let report = run_default(&inst, seed, 200_000);
            assert!(
                report.best.value() >= g.value(),
                "seed {seed}: TS {} < greedy {}",
                report.best.value(),
                g.value()
            );
        }
    }

    #[test]
    fn respects_budget() {
        let inst = gk_instance(
            "b",
            GkSpec {
                n: 100,
                m: 5,
                tightness: 0.5,
                seed: 1,
            },
        );
        let report = run_default(&inst, 1, 10_000);
        assert!(report.budget_exhausted);
        // Budget may overshoot by at most one move's worth of evaluations.
        assert!(report.stats.candidate_evals < 10_000 + 2 * inst.n() as u64 + 64);
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = gk_instance(
            "d",
            GkSpec {
                n: 60,
                m: 5,
                tightness: 0.5,
                seed: 2,
            },
        );
        let a = run_default(&inst, 7, 30_000);
        let b = run_default(&inst, 7, 30_000);
        assert_eq!(a.best.bits(), b.best.bits());
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn elite_pool_is_sorted_and_bounded() {
        let inst = gk_instance(
            "e",
            GkSpec {
                n: 60,
                m: 5,
                tightness: 0.5,
                seed: 3,
            },
        );
        let report = run_default(&inst, 3, 100_000);
        assert!(!report.elite.is_empty());
        assert!(report.elite.len() <= TsConfig::default_for(inst.n()).b_best);
        for w in report.elite.windows(2) {
            assert!(w[0].value() >= w[1].value());
        }
        assert_eq!(report.elite[0].value(), report.best.value());
    }

    #[test]
    fn external_history_accumulates_across_runs() {
        let inst = uncorrelated_instance("h", 30, 3, 0.5, 4);
        let ratios = Ratios::new(&inst);
        let mut rng = Xoshiro256::seed_from_u64(4);
        let mut memory = crate::tabu_list::Recency::new(inst.n(), 5);
        let mut history = History::new(inst.n());
        let config = TsConfig::default_for(inst.n());
        let mut total_moves = 0;
        for _round in 0..3 {
            let init = random_feasible(&inst, &mut rng);
            let report = run_with_memory(
                &inst,
                &ratios,
                init,
                &config,
                Budget::evals(10_000),
                &mut rng,
                &mut memory,
                &mut history,
            );
            total_moves += report.stats.moves;
            // Every local-search move records history; oscillation episodes
            // count as moves without a history record, hence ≤.
            assert!(history.iterations() <= total_moves);
        }
        assert!(history.iterations() > 0, "history never recorded");
    }

    #[test]
    fn improved_flag_matches_values() {
        let inst = gk_instance(
            "i",
            GkSpec {
                n: 80,
                m: 10,
                tightness: 0.5,
                seed: 5,
            },
        );
        let report = run_default(&inst, 5, 100_000);
        assert_eq!(
            report.improved(),
            report.best.value() > report.initial_value
        );
    }

    #[test]
    fn infeasible_initial_solution_is_repaired() {
        let inst = uncorrelated_instance("r", 20, 2, 0.5, 6);
        let ratios = Ratios::new(&inst);
        // Pack everything: infeasible.
        let all = mkp::BitVec::from_bools(vec![true; inst.n()]);
        let bad = Solution::from_bits(&inst, all);
        assert!(!bad.is_feasible(&inst));
        let mut rng = Xoshiro256::seed_from_u64(6);
        let report = run(
            &inst,
            &ratios,
            bad,
            &TsConfig::default_for(inst.n()),
            Budget::evals(10_000),
            &mut rng,
        );
        assert!(report.best.is_feasible(&inst));
    }

    #[test]
    fn finds_optimum_on_small_instances() {
        // Compare against brute force on tiny instances: a real tabu search
        // should nail n=12 with a modest budget.
        for seed in 0..5 {
            let inst = uncorrelated_instance("o", 12, 3, 0.5, seed);
            let mut best = 0i64;
            for mask in 0u32..(1 << inst.n()) {
                let ok = (0..inst.m()).all(|i| {
                    (0..inst.n())
                        .filter(|&j| (mask >> j) & 1 == 1)
                        .map(|j| inst.weight(i, j))
                        .sum::<i64>()
                        <= inst.capacity(i)
                });
                if ok {
                    best = best.max(
                        (0..inst.n())
                            .filter(|&j| (mask >> j) & 1 == 1)
                            .map(|j| inst.profit(j))
                            .sum(),
                    );
                }
            }
            let report = run_default(&inst, seed, 100_000);
            assert_eq!(report.best.value(), best, "seed {seed}");
        }
    }

    #[test]
    fn nb_div_bounds_run_without_budget_pressure() {
        let inst = uncorrelated_instance("n", 25, 3, 0.5, 8);
        let ratios = Ratios::new(&inst);
        let mut rng = Xoshiro256::seed_from_u64(8);
        let init = greedy(&inst, &ratios);
        let config = TsConfig {
            nb_div: 2,
            nb_int: 2,
            ..TsConfig::default_for(inst.n())
        };
        let report = run(
            &inst,
            &ratios,
            init,
            &config,
            Budget::evals(u64::MAX),
            &mut rng,
        );
        assert!(!report.budget_exhausted);
        assert!(report.stats.moves > 0);
    }

    #[test]
    fn solves_an_fp_instance_to_optimality() {
        // FP01 is tiny; the engine must reach the certified optimum.
        let inst = fp_instance(0);
        let report = run_default(&inst, 9, 200_000);
        let exact = mkp_exact::solve(&inst, &mkp_exact::BbConfig::default());
        assert!(exact.proven);
        assert_eq!(report.best.value(), exact.solution.value());
    }

    mod properties {
        use super::*;
        use mkp::prop_check;
        use mkp::testkit::gen;

        /// The engine never returns an infeasible or cache-inconsistent
        /// solution, for arbitrary instances, strategies and budgets.
        #[test]
        fn prop_engine_invariants() {
            prop_check!(
                cases = 12,
                |rng| {
                    (
                        rng.next_u64(),
                        gen::usize_in(rng, 5, 40),
                        gen::usize_in(rng, 1, 5),
                        gen::usize_in(rng, 1, 30),
                        gen::usize_in(rng, 1, 4),
                        rng.range_inclusive(2_000, 40_000),
                    )
                },
                |input| {
                    let (seed, n, m, tenure, nb_drop, budget) = *input;
                    if n < 2 || m < 1 || tenure < 1 || nb_drop < 1 || budget < 1 {
                        return; // shrinking may leave the engine's domain
                    }
                    let inst = uncorrelated_instance("prop", n, m, 0.5, seed);
                    let ratios = Ratios::new(&inst);
                    let mut rng = Xoshiro256::seed_from_u64(seed);
                    let init = random_feasible(&inst, &mut rng);
                    let mut cfg = TsConfig::default_for(inst.n());
                    cfg.strategy = crate::Strategy {
                        tabu_tenure: tenure,
                        nb_drop,
                        nb_local: 20,
                    };
                    let report = run(&inst, &ratios, init, &cfg, Budget::evals(budget), &mut rng);
                    assert!(report.best.is_feasible(&inst));
                    assert!(report.best.check_consistent(&inst));
                    assert!(report.best.value() >= report.initial_value);
                    for w in report.elite.windows(2) {
                        assert!(w[0].value() >= w[1].value());
                    }
                }
            );
        }
    }
}
