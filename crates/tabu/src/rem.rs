//! Reverse Elimination Method (Dammeyer & Voss), the exact dynamic tabu-list
//! manager the paper discusses in §4.1 as an alternative to parameter
//! tuning — and rejects for its per-iteration cost growing with the number
//! of executed iterations. Implemented here (with the customary bounded
//! trace-back) so ablation A1 can quantify that trade-off.
//!
//! REM derives tabu status *exactly*: walking the running list of attribute
//! toggles backwards while maintaining the residual cancellation set (RCS),
//! any point where the RCS shrinks to a single attribute `j` means toggling
//! `j` now would recreate a previously visited solution — so `j` is tabu.

use crate::tabu_list::TabuMemory;
use mkp::BitVec;

/// Reverse-elimination tabu memory.
#[derive(Debug, Clone)]
pub struct ReverseElimination {
    n: usize,
    /// Toggled attribute lists, one entry per observed move.
    history: Vec<Vec<usize>>,
    /// Tabu status derived at the last `observe_solution`.
    tabu_now: Vec<bool>,
    /// Bounded trace-back depth (full REM when `usize::MAX`); the classic
    /// mitigation for the linear-in-iterations cost the paper criticises.
    max_depth: usize,
}

impl ReverseElimination {
    /// Memory for `n` attributes with bounded trace-back `max_depth`.
    pub fn new(n: usize, max_depth: usize) -> Self {
        ReverseElimination {
            n,
            history: Vec::new(),
            tabu_now: vec![false; n],
            max_depth,
        }
    }

    /// Number of recorded moves.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Recompute the tabu set by the backward RCS walk.
    fn recompute(&mut self) {
        self.tabu_now.iter_mut().for_each(|t| *t = false);
        let mut rcs = BitVec::zeros(self.n);
        let mut count = 0usize;
        let start = self.history.len();
        let stop = start.saturating_sub(self.max_depth);
        for step in (stop..start).rev() {
            for &item in &self.history[step] {
                if rcs.toggle(item) {
                    count += 1;
                } else {
                    count -= 1;
                }
            }
            if count == 1 {
                // Exactly one residual attribute: toggling it would recreate
                // the solution visited just before `step`.
                let item = rcs.iter_ones().next().expect("count == 1");
                self.tabu_now[item] = true;
            }
        }
    }
}

impl TabuMemory for ReverseElimination {
    fn forbid(&mut self, item: usize, _now: u64) {
        // A just-dropped item: re-adding it alone would recreate the
        // pre-drop solution, which is exactly what REM forbids.
        self.tabu_now[item] = true;
    }

    fn is_tabu(&self, item: usize, _now: u64) -> bool {
        self.tabu_now[item]
    }

    fn observe_solution(&mut self, _fingerprint: u64, toggled: &[usize], _now: u64) {
        self.history.push(toggled.to_vec());
        self.recompute();
    }

    fn set_tenure(&mut self, _tenure: usize) {}

    fn tenure(&self) -> usize {
        0
    }

    fn reset(&mut self) {
        self.history.clear();
        self.tabu_now.iter_mut().for_each(|t| *t = false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_toggle_becomes_tabu() {
        let mut rem = ReverseElimination::new(5, usize::MAX);
        // Move toggled only item 2: toggling 2 again recreates the start.
        rem.observe_solution(0, &[2], 0);
        assert!(rem.is_tabu(2, 1));
        assert!(!rem.is_tabu(1, 1));
    }

    #[test]
    fn cancelling_toggles_reopen_attribute() {
        let mut rem = ReverseElimination::new(5, usize::MAX);
        rem.observe_solution(0, &[2], 0);
        // Second move toggles 2 back and 3: RCS after last move = {2,3}
        // (two attrs, no tabu from that step); walking further back,
        // combined = {3} → 3 is tabu (toggling 3 recreates the original).
        rem.observe_solution(0, &[2, 3], 1);
        assert!(rem.is_tabu(3, 2));
        assert!(!rem.is_tabu(2, 2));
    }

    #[test]
    fn pair_moves_do_not_forbid_singletons() {
        let mut rem = ReverseElimination::new(6, usize::MAX);
        rem.observe_solution(0, &[0, 1], 0);
        rem.observe_solution(0, &[2, 3], 1);
        for j in 0..6 {
            assert!(!rem.is_tabu(j, 2), "item {j} wrongly tabu");
        }
    }

    #[test]
    fn bounded_depth_forgets_old_moves() {
        let mut rem = ReverseElimination::new(5, 1);
        rem.observe_solution(0, &[2], 0);
        assert!(rem.is_tabu(2, 1));
        // Depth 1: after the next observation only the last move is seen.
        rem.observe_solution(0, &[3, 4], 1);
        assert!(!rem.is_tabu(2, 2), "out-of-window move must be forgotten");
    }

    #[test]
    fn forbid_marks_until_next_observation() {
        let mut rem = ReverseElimination::new(4, usize::MAX);
        rem.forbid(1, 0);
        assert!(rem.is_tabu(1, 0));
        rem.observe_solution(0, &[0, 2], 0);
        assert!(!rem.is_tabu(1, 1), "forbid cleared by recompute");
    }

    #[test]
    fn reset_clears_everything() {
        let mut rem = ReverseElimination::new(4, usize::MAX);
        rem.observe_solution(0, &[1], 0);
        rem.reset();
        assert!(!rem.is_tabu(1, 1));
        assert_eq!(rem.history_len(), 0);
    }

    #[test]
    fn exact_cycle_prevention_on_walk() {
        // Simulated walk A →(t0) B →(t1) C where C = A ⊕ {1}: REM must
        // forbid exactly the toggle returning to B (singleton RCS of the
        // last move) and the toggle returning to A.
        let mut rem = ReverseElimination::new(8, usize::MAX);
        rem.observe_solution(0, &[0, 1], 0); // A→B toggles {0,1}
        rem.observe_solution(0, &[0], 1); // B→C toggles {0}; C = A ⊕ {1}
                                          // RCS walk: last move {0} → 0 tabu (returns to B);
                                          // combined {0}⊕{0,1} = {1} → 1 tabu (returns to A).
        assert!(rem.is_tabu(0, 2));
        assert!(rem.is_tabu(1, 2));
        assert!(!rem.is_tabu(2, 2));
    }
}
