//! Search strategies — the parameter sets the master process tunes.
//!
//! The paper (§2, §4.2) defines a *strategy* as the parameter triple that
//! governs one slave's tabu search:
//!
//! * `tabu_tenure` (`Lt_length`) — recency-memory length;
//! * `nb_drop` — consecutive Drop steps per move (move "width": small keeps
//!   successive solutions close, large jumps far — measured by ablation A2);
//! * `nb_local` — stagnation patience of the local-search loop before an
//!   intensification is triggered.

use mkp::Xoshiro256;

/// The tunable parameter triple of one tabu-search thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Strategy {
    /// Tabu tenure (`Lt_length`): iterations a dropped item stays tabu.
    pub tabu_tenure: usize,
    /// Number of consecutive Drop steps in one move (`Nb_drop`).
    pub nb_drop: usize,
    /// Local-search iterations without global improvement before breaking
    /// into the intensification phase (`Nb_local`).
    pub nb_local: usize,
}

/// Inclusive parameter ranges for random strategy generation; the master's
/// SGP also clamps its adaptive updates to these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrategyBounds {
    /// Tenure range.
    pub tenure: (usize, usize),
    /// Drop-count range.
    pub nb_drop: (usize, usize),
    /// Patience range.
    pub nb_local: (usize, usize),
}

impl StrategyBounds {
    /// Default ranges scaled to the instance size `n`, following the usual
    /// `tenure ≈ O(√n)…O(n/3)` guidance.
    pub fn for_instance_size(n: usize) -> Self {
        let hi_tenure = (n / 3).max(8);
        StrategyBounds {
            tenure: (3, hi_tenure),
            nb_drop: (1, 5),
            nb_local: (20, 200),
        }
    }

    /// Draw a uniformly random strategy within the bounds.
    pub fn random(&self, rng: &mut Xoshiro256) -> Strategy {
        Strategy {
            tabu_tenure: rng.range_inclusive(self.tenure.0 as u64, self.tenure.1 as u64) as usize,
            nb_drop: rng.range_inclusive(self.nb_drop.0 as u64, self.nb_drop.1 as u64) as usize,
            nb_local: rng.range_inclusive(self.nb_local.0 as u64, self.nb_local.1 as u64) as usize,
        }
    }

    /// Clamp a strategy into the bounds.
    pub fn clamp(&self, s: Strategy) -> Strategy {
        Strategy {
            tabu_tenure: s.tabu_tenure.clamp(self.tenure.0, self.tenure.1),
            nb_drop: s.nb_drop.clamp(self.nb_drop.0, self.nb_drop.1),
            nb_local: s.nb_local.clamp(self.nb_local.0, self.nb_local.1),
        }
    }
}

impl Strategy {
    /// A sensible default for an instance with `n` items.
    pub fn default_for(n: usize) -> Self {
        Strategy {
            tabu_tenure: (n / 10).clamp(5, 50),
            nb_drop: 2,
            nb_local: 60,
        }
    }

    /// Nudge the strategy towards *diversification*: wider moves, longer
    /// memory (paper §4.2: applied when a slave's B best solutions cluster).
    pub fn diversify_step(self, bounds: &StrategyBounds) -> Strategy {
        bounds.clamp(Strategy {
            tabu_tenure: self.tabu_tenure + self.tabu_tenure / 2 + 1,
            nb_drop: self.nb_drop + 1,
            nb_local: self.nb_local.saturating_sub(self.nb_local / 4).max(1),
        })
    }

    /// Nudge towards *intensification*: narrower moves, shorter memory,
    /// more patience (applied when the B best solutions are dispersed).
    pub fn intensify_step(self, bounds: &StrategyBounds) -> Strategy {
        bounds.clamp(Strategy {
            tabu_tenure: (self.tabu_tenure - self.tabu_tenure / 3).max(1),
            nb_drop: self.nb_drop.saturating_sub(1).max(1),
            nb_local: self.nb_local + self.nb_local / 4 + 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_scale_with_n() {
        let small = StrategyBounds::for_instance_size(30);
        let large = StrategyBounds::for_instance_size(500);
        assert!(large.tenure.1 > small.tenure.1);
        assert!(small.tenure.1 >= small.tenure.0);
    }

    #[test]
    fn random_respects_bounds() {
        let bounds = StrategyBounds::for_instance_size(100);
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..200 {
            let s = bounds.random(&mut rng);
            assert!((bounds.tenure.0..=bounds.tenure.1).contains(&s.tabu_tenure));
            assert!((bounds.nb_drop.0..=bounds.nb_drop.1).contains(&s.nb_drop));
            assert!((bounds.nb_local.0..=bounds.nb_local.1).contains(&s.nb_local));
        }
    }

    #[test]
    fn clamp_restores_bounds() {
        let bounds = StrategyBounds {
            tenure: (5, 10),
            nb_drop: (1, 3),
            nb_local: (10, 20),
        };
        let wild = Strategy {
            tabu_tenure: 100,
            nb_drop: 0,
            nb_local: 5,
        };
        let c = bounds.clamp(wild);
        assert_eq!(c.tabu_tenure, 10);
        assert_eq!(c.nb_drop, 1);
        assert_eq!(c.nb_local, 10);
    }

    #[test]
    fn diversify_widens_and_lengthens() {
        let bounds = StrategyBounds::for_instance_size(300);
        let s = Strategy {
            tabu_tenure: 10,
            nb_drop: 2,
            nb_local: 100,
        };
        let d = s.diversify_step(&bounds);
        assert!(d.tabu_tenure > s.tabu_tenure);
        assert!(d.nb_drop > s.nb_drop);
        assert!(d.nb_local < s.nb_local);
    }

    #[test]
    fn intensify_narrows_and_shortens() {
        let bounds = StrategyBounds::for_instance_size(300);
        let s = Strategy {
            tabu_tenure: 30,
            nb_drop: 3,
            nb_local: 60,
        };
        let i = s.intensify_step(&bounds);
        assert!(i.tabu_tenure < s.tabu_tenure);
        assert!(i.nb_drop < s.nb_drop);
        assert!(i.nb_local > s.nb_local);
    }

    #[test]
    fn steps_stay_in_bounds_under_iteration() {
        let bounds = StrategyBounds::for_instance_size(100);
        let mut s = Strategy::default_for(100);
        for _ in 0..50 {
            s = s.diversify_step(&bounds);
        }
        assert!(s.tabu_tenure <= bounds.tenure.1);
        assert!(s.nb_drop <= bounds.nb_drop.1);
        let mut s = Strategy::default_for(100);
        for _ in 0..50 {
            s = s.intensify_step(&bounds);
        }
        assert!(s.tabu_tenure >= bounds.tenure.0);
        assert!(s.nb_drop >= bounds.nb_drop.0);
    }
}
