//! Long-term frequency memory (paper §3.3).
//!
//! `History[j]` counts the iterations during which component `j` was set to
//! 1 since the start of the search. The diversification phase reads the
//! normalized frequencies to force the search into neglected regions.

use mkp::Solution;

/// Long-term memory of component residencies.
#[derive(Debug, Clone)]
pub struct History {
    counts: Vec<u64>,
    iterations: u64,
}

impl History {
    /// Fresh memory for `n` components.
    pub fn new(n: usize) -> Self {
        History {
            counts: vec![0; n],
            iterations: 0,
        }
    }

    /// Record the current solution (call once per accepted move).
    pub fn record(&mut self, sol: &Solution) {
        for j in sol.bits().iter_ones() {
            self.counts[j] += 1;
        }
        self.iterations += 1;
    }

    /// Number of recorded iterations.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// The raw residency counts, for transport and checkpointing.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rebuild a memory from transported parts (the inverse of
    /// [`counts`](History::counts) + [`iterations`](History::iterations)).
    pub fn from_parts(counts: Vec<u64>, iterations: u64) -> Self {
        History { counts, iterations }
    }

    /// Raw residency count of component `j`.
    pub fn count(&self, j: usize) -> u64 {
        self.counts[j]
    }

    /// Residency frequency of component `j` in `[0, 1]` (0 before any
    /// recording).
    pub fn frequency(&self, j: usize) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.counts[j] as f64 / self.iterations as f64
        }
    }

    /// Number of components tracked.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when no components are tracked.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Merge another history into this one (the master aggregates slave
    /// histories between search iterations).
    pub fn merge(&mut self, other: &History) {
        assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.iterations += other.iterations;
    }

    /// Forget everything.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.iterations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkp::{BitVec, Instance};

    fn inst() -> Instance {
        Instance::new("h", 3, 1, vec![1, 2, 3], vec![1, 1, 1], vec![3]).unwrap()
    }

    fn sol(bits: [bool; 3]) -> Solution {
        Solution::from_bits(&inst(), BitVec::from_bools(bits))
    }

    #[test]
    fn fresh_history_is_zero() {
        let h = History::new(3);
        assert_eq!(h.iterations(), 0);
        assert_eq!(h.frequency(0), 0.0);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn record_accumulates() {
        let mut h = History::new(3);
        h.record(&sol([true, false, true]));
        h.record(&sol([true, false, false]));
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 0);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.iterations(), 2);
        assert!((h.frequency(0) - 1.0).abs() < 1e-12);
        assert!((h.frequency(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = History::new(3);
        let mut b = History::new(3);
        a.record(&sol([true, true, false]));
        b.record(&sol([false, true, true]));
        b.record(&sol([false, false, true]));
        a.merge(&b);
        assert_eq!(a.iterations(), 3);
        assert_eq!(a.count(0), 1);
        assert_eq!(a.count(1), 2);
        assert_eq!(a.count(2), 2);
    }

    #[test]
    fn is_empty_reflects_length() {
        assert!(History::new(0).is_empty());
        assert!(!History::new(1).is_empty());
    }

    #[test]
    fn reset_clears() {
        let mut h = History::new(3);
        h.record(&sol([true, true, true]));
        h.reset();
        assert_eq!(h.iterations(), 0);
        assert_eq!(h.count(1), 0);
    }

    #[test]
    #[should_panic]
    fn merge_size_mismatch_panics() {
        let mut a = History::new(3);
        let b = History::new(4);
        a.merge(&b);
    }
}
