//! The B-best elite pool (paper Fig. 1 step 7: "If X is a part of the B
//! best solutions then insert X in the BestSol array").
//!
//! The master process reads each slave's pool to measure how dispersed its
//! good solutions are (mean pairwise Hamming distance), which drives the
//! strategy adaptation.

use mkp::Solution;

/// Bounded pool of the best distinct solutions seen, ordered by descending
/// value.
#[derive(Debug, Clone)]
pub struct ElitePool {
    sols: Vec<Solution>,
    capacity: usize,
}

impl ElitePool {
    /// Pool keeping at most `capacity` solutions.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "elite pool must hold at least one solution");
        ElitePool {
            sols: Vec::with_capacity(capacity + 1),
            capacity,
        }
    }

    /// Offer a solution; it is inserted when it is distinct from every pooled
    /// solution and better than the worst pooled one (or the pool has room).
    /// Returns `true` when inserted.
    pub fn offer(&mut self, sol: &Solution) -> bool {
        if self.sols.iter().any(|s| s.bits() == sol.bits()) {
            return false;
        }
        if self.sols.len() == self.capacity
            && sol.value() <= self.sols.last().expect("nonempty at capacity").value()
        {
            return false;
        }
        let pos = self.sols.partition_point(|s| s.value() >= sol.value());
        self.sols.insert(pos, sol.clone());
        if self.sols.len() > self.capacity {
            self.sols.pop();
        }
        true
    }

    /// Best pooled solution, if any.
    pub fn best(&self) -> Option<&Solution> {
        self.sols.first()
    }

    /// All pooled solutions, best first.
    pub fn solutions(&self) -> &[Solution] {
        &self.sols
    }

    /// Number of pooled solutions.
    pub fn len(&self) -> usize {
        self.sols.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.sols.is_empty()
    }

    /// Mean pairwise Hamming distance between pooled solutions — the
    /// dispersion statistic the master's SGP uses (0 for fewer than two
    /// solutions).
    pub fn mean_pairwise_hamming(&self) -> f64 {
        let k = self.sols.len();
        if k < 2 {
            return 0.0;
        }
        let mut total = 0usize;
        let mut pairs = 0usize;
        for a in 0..k {
            for b in a + 1..k {
                total += self.sols[a].hamming(&self.sols[b]);
                pairs += 1;
            }
        }
        total as f64 / pairs as f64
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.sols.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkp::{BitVec, Instance};

    fn inst() -> Instance {
        Instance::new("e", 4, 1, vec![8, 4, 2, 1], vec![1, 1, 1, 1], vec![4]).unwrap()
    }

    fn sol(bits: [bool; 4]) -> Solution {
        Solution::from_bits(&inst(), BitVec::from_bools(bits))
    }

    #[test]
    fn keeps_best_sorted() {
        let mut pool = ElitePool::new(3);
        assert!(pool.offer(&sol([false, false, false, true]))); // 1
        assert!(pool.offer(&sol([true, false, false, false]))); // 8
        assert!(pool.offer(&sol([false, true, false, false]))); // 4
        let values: Vec<i64> = pool.solutions().iter().map(|s| s.value()).collect();
        assert_eq!(values, vec![8, 4, 1]);
        assert_eq!(pool.best().unwrap().value(), 8);
    }

    #[test]
    fn evicts_worst_at_capacity() {
        let mut pool = ElitePool::new(2);
        pool.offer(&sol([false, false, false, true])); // 1
        pool.offer(&sol([false, false, true, false])); // 2
        assert!(pool.offer(&sol([false, true, false, false]))); // 4 evicts 1
        let values: Vec<i64> = pool.solutions().iter().map(|s| s.value()).collect();
        assert_eq!(values, vec![4, 2]);
    }

    #[test]
    fn rejects_below_worst_when_full() {
        let mut pool = ElitePool::new(2);
        pool.offer(&sol([true, false, false, false])); // 8
        pool.offer(&sol([false, true, false, false])); // 4
        assert!(!pool.offer(&sol([false, false, true, false]))); // 2
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn rejects_duplicates() {
        let mut pool = ElitePool::new(3);
        assert!(pool.offer(&sol([true, false, false, false])));
        assert!(!pool.offer(&sol([true, false, false, false])));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn accepts_equal_value_distinct_bits() {
        // Items 1 (4) vs 2+3 (2+1=3)… use equal-value pair: 2+1=3 vs… craft:
        // values 4 and 4 via item1 alone vs items 2,3,0? Use bits with equal sum.
        let mut pool = ElitePool::new(3);
        assert!(pool.offer(&sol([false, true, false, false]))); // 4
        assert!(pool.offer(&sol([false, false, true, true]))); // 3 distinct
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn hamming_dispersion() {
        let mut pool = ElitePool::new(3);
        pool.offer(&sol([true, false, false, false]));
        assert_eq!(pool.mean_pairwise_hamming(), 0.0);
        pool.offer(&sol([false, true, false, false]));
        assert!((pool.mean_pairwise_hamming() - 2.0).abs() < 1e-12);
        pool.offer(&sol([true, true, false, false]));
        // pairs: (a,b)=2, (a,c)=1, (b,c)=1 → mean 4/3
        assert!((pool.mean_pairwise_hamming() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_rejected() {
        ElitePool::new(0);
    }

    #[test]
    fn clear_empties() {
        let mut pool = ElitePool::new(2);
        pool.offer(&sol([true, false, false, false]));
        pool.clear();
        assert!(pool.is_empty());
        assert!(pool.best().is_none());
    }
}
