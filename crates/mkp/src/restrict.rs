//! Subproblem restriction: fix a set of variables and reduce the instance.
//!
//! Fixing `x_j = 1` removes item `j` and shrinks every capacity by its
//! weights (contributing its profit as a constant offset); fixing `x_j = 0`
//! simply removes the item. The result is a *smaller, self-contained MKP*
//! over the free items, plus the bookkeeping to lift its solutions back to
//! the original variable space. This is the substrate for search-space
//! decomposition (the paper's §2 third source of parallelism: each thread
//! explores one cell of a partition of the solution domain).

use crate::bitset::BitVec;
use crate::instance::Instance;
use crate::solution::Solution;
use std::fmt;

/// Why a restriction could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestrictError {
    /// The forced-in items alone violate some capacity.
    ForcedInfeasible {
        /// The violated constraint.
        constraint: usize,
    },
    /// An index was forced both in and out, repeated, or out of range.
    BadIndex {
        /// The offending item index.
        item: usize,
    },
}

impl fmt::Display for RestrictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestrictError::ForcedInfeasible { constraint } => {
                write!(f, "forced-in items violate constraint {constraint}")
            }
            RestrictError::BadIndex { item } => write!(f, "bad forced index {item}"),
        }
    }
}

impl std::error::Error for RestrictError {}

/// A restricted subproblem with the mapping back to the parent.
#[derive(Debug, Clone)]
pub struct Restriction {
    sub: Instance,
    /// `kept[j_sub] = j_orig`.
    kept: Vec<usize>,
    forced_in: Vec<usize>,
    /// Profit contributed by the forced-in items.
    offset: i64,
    parent_n: usize,
}

impl Restriction {
    /// Build the subproblem fixing `forced_in → 1` and `forced_out → 0`.
    ///
    /// Fails when the forced-in set alone is infeasible, when an index is
    /// out of range, or when the sets overlap. Degenerate restrictions that
    /// would leave fewer than two free items are rejected via `BadIndex` on
    /// the first excess fix (an MKP needs at least one real decision).
    pub fn new(
        parent: &Instance,
        forced_in: &[usize],
        forced_out: &[usize],
    ) -> Result<Self, RestrictError> {
        let n = parent.n();
        let mut status = vec![0u8; n]; // 0 free, 1 in, 2 out
        for &j in forced_in {
            if j >= n || status[j] != 0 {
                return Err(RestrictError::BadIndex { item: j });
            }
            status[j] = 1;
        }
        for &j in forced_out {
            if j >= n || status[j] != 0 {
                return Err(RestrictError::BadIndex { item: j });
            }
            status[j] = 2;
        }
        let free = status.iter().filter(|&&s| s == 0).count();
        if free < 2 {
            let first_fixed = status.iter().position(|&s| s != 0).unwrap_or(0);
            return Err(RestrictError::BadIndex { item: first_fixed });
        }

        // Reduced capacities after packing the forced-in items.
        let mut capacities = parent.capacities().to_vec();
        let mut offset = 0i64;
        for &j in forced_in {
            offset += parent.profit(j);
            for (i, &a) in parent.item_weights(j).iter().enumerate() {
                capacities[i] -= a;
                if capacities[i] < 0 {
                    return Err(RestrictError::ForcedInfeasible { constraint: i });
                }
            }
        }

        let kept: Vec<usize> = (0..n).filter(|&j| status[j] == 0).collect();
        let profits: Vec<i64> = kept.iter().map(|&j| parent.profit(j)).collect();
        let mut weights = Vec::with_capacity(kept.len() * parent.m());
        for i in 0..parent.m() {
            let row = parent.constraint_row(i);
            weights.extend(kept.iter().map(|&j| row[j]));
        }
        let sub = Instance::new(
            format!("{}_restricted", parent.name()),
            kept.len(),
            parent.m(),
            profits,
            weights,
            capacities,
        )
        .expect("restriction of a valid instance is valid");

        Ok(Restriction {
            sub,
            kept,
            forced_in: forced_in.to_vec(),
            offset,
            parent_n: n,
        })
    }

    /// The reduced instance over the free items.
    pub fn instance(&self) -> &Instance {
        &self.sub
    }

    /// Profit already banked by the forced-in items.
    pub fn offset(&self) -> i64 {
        self.offset
    }

    /// Original index of sub-item `j_sub`.
    pub fn original_index(&self, j_sub: usize) -> usize {
        self.kept[j_sub]
    }

    /// Project parent-space assignment bits onto the subproblem: the bit of
    /// each free item carries over, forced bits are dropped (they are
    /// implied by the restriction itself). The inverse of [`lift`] on the
    /// free coordinates: `project(lift(s).bits()) == s.bits()`.
    ///
    /// [`lift`]: Restriction::lift
    pub fn project(&self, parent_bits: &BitVec) -> BitVec {
        assert_eq!(
            parent_bits.len(),
            self.parent_n,
            "projection from a different parent"
        );
        let mut bits = BitVec::zeros(self.sub.n());
        for (j_sub, &j_orig) in self.kept.iter().enumerate() {
            if parent_bits.get(j_orig) {
                bits.set(j_sub, true);
            }
        }
        bits
    }

    /// Lift a subproblem solution back to the parent's variable space.
    /// The result packs the forced-in items plus the lifted free items.
    pub fn lift(&self, parent: &Instance, sub_sol: &Solution) -> Solution {
        assert_eq!(
            sub_sol.bits().len(),
            self.sub.n(),
            "solution not from this subproblem"
        );
        assert_eq!(parent.n(), self.parent_n, "lift against a different parent");
        let mut bits = BitVec::zeros(self.parent_n);
        for &j in &self.forced_in {
            bits.set(j, true);
        }
        for j_sub in sub_sol.bits().iter_ones() {
            bits.set(self.kept[j_sub], true);
        }
        let lifted = Solution::from_bits(parent, bits);
        debug_assert_eq!(lifted.value(), sub_sol.value() + self.offset);
        lifted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Ratios;
    use crate::generate::uncorrelated_instance;
    use crate::greedy::greedy;

    fn parent() -> Instance {
        Instance::new(
            "p",
            5,
            2,
            vec![10, 8, 6, 4, 2],
            vec![
                4, 3, 2, 5, 1, //
                2, 4, 1, 1, 3,
            ],
            vec![9, 8],
        )
        .unwrap()
    }

    #[test]
    fn reduces_dimensions_and_capacities() {
        let p = parent();
        let r = Restriction::new(&p, &[0], &[3]).unwrap();
        assert_eq!(r.instance().n(), 3); // items 1, 2, 4 stay free
        assert_eq!(r.instance().m(), 2);
        assert_eq!(r.offset(), 10);
        // Capacities reduced by item 0's weights [4, 2].
        assert_eq!(r.instance().capacities(), &[5, 6]);
        assert_eq!(r.original_index(0), 1);
        assert_eq!(r.original_index(2), 4);
    }

    #[test]
    fn lift_restores_parent_space() {
        let p = parent();
        let r = Restriction::new(&p, &[0], &[3]).unwrap();
        let sub_sol = greedy(r.instance(), &Ratios::new(r.instance()));
        let lifted = r.lift(&p, &sub_sol);
        assert!(lifted.is_feasible(&p));
        assert!(lifted.contains(0), "forced-in item missing after lift");
        assert!(!lifted.contains(3), "forced-out item present after lift");
        assert_eq!(lifted.value(), sub_sol.value() + r.offset());
    }

    #[test]
    fn rejects_infeasible_forced_set() {
        let p = parent();
        // Items 0 and 3 together load constraint 0 with 9 ≤ 9 but let's
        // force three heavy items: 0 + 1 + 3 → 12 > 9.
        let err = Restriction::new(&p, &[0, 1, 3], &[]).unwrap_err();
        assert!(matches!(
            err,
            RestrictError::ForcedInfeasible { constraint: 0 }
        ));
    }

    #[test]
    fn rejects_overlap_and_out_of_range() {
        let p = parent();
        assert!(matches!(
            Restriction::new(&p, &[1], &[1]),
            Err(RestrictError::BadIndex { item: 1 })
        ));
        assert!(matches!(
            Restriction::new(&p, &[9], &[]),
            Err(RestrictError::BadIndex { item: 9 })
        ));
        assert!(matches!(
            Restriction::new(&p, &[1, 1], &[]),
            Err(RestrictError::BadIndex { item: 1 })
        ));
    }

    #[test]
    fn rejects_degenerate_restriction() {
        let p = parent();
        // Fixing 4 of 5 items leaves one decision — rejected.
        assert!(Restriction::new(&p, &[0], &[1, 2, 3]).is_err());
    }

    #[test]
    fn partition_covers_the_search_space() {
        // The four restrictions over two split variables partition the
        // space: the best lifted optimum across cells equals the full
        // optimum (brute force).
        let p = uncorrelated_instance("part", 12, 2, 0.5, 5);
        let brute = |forced_in: &[usize], forced_out: &[usize]| -> i64 {
            let mut best = -1i64;
            'mask: for mask in 0u32..(1 << p.n()) {
                for &j in forced_in {
                    if (mask >> j) & 1 == 0 {
                        continue 'mask;
                    }
                }
                for &j in forced_out {
                    if (mask >> j) & 1 == 1 {
                        continue 'mask;
                    }
                }
                for i in 0..p.m() {
                    let load: i64 = (0..p.n())
                        .filter(|&j| (mask >> j) & 1 == 1)
                        .map(|j| p.weight(i, j))
                        .sum();
                    if load > p.capacity(i) {
                        continue 'mask;
                    }
                }
                let v: i64 = (0..p.n())
                    .filter(|&j| (mask >> j) & 1 == 1)
                    .map(|j| p.profit(j))
                    .sum();
                best = best.max(v);
            }
            best
        };
        let full = brute(&[], &[]);
        let split = [0usize, 1];
        let mut best_cell = -1i64;
        for pattern in 0u8..4 {
            let f_in: Vec<usize> = split
                .iter()
                .enumerate()
                .filter(|(b, _)| (pattern >> b) & 1 == 1)
                .map(|(_, &j)| j)
                .collect();
            let f_out: Vec<usize> = split
                .iter()
                .enumerate()
                .filter(|(b, _)| (pattern >> b) & 1 == 0)
                .map(|(_, &j)| j)
                .collect();
            best_cell = best_cell.max(brute(&f_in, &f_out));
            // And the Restriction-based cell optimum must agree where the
            // cell is feasible.
            if let Ok(r) = Restriction::new(&p, &f_in, &f_out) {
                let mut cell_best = -1i64;
                let sub = r.instance();
                for mask in 0u32..(1 << sub.n()) {
                    let ok = (0..sub.m()).all(|i| {
                        (0..sub.n())
                            .filter(|&j| (mask >> j) & 1 == 1)
                            .map(|j| sub.weight(i, j))
                            .sum::<i64>()
                            <= sub.capacity(i)
                    });
                    if ok {
                        let v: i64 = (0..sub.n())
                            .filter(|&j| (mask >> j) & 1 == 1)
                            .map(|j| sub.profit(j))
                            .sum();
                        cell_best = cell_best.max(v + r.offset());
                    }
                }
                assert_eq!(cell_best, brute(&f_in, &f_out), "cell optimum mismatch");
            }
        }
        assert_eq!(best_cell, full, "partition lost the optimum");
    }

    mod properties {
        use super::*;
        use crate::prop_check;
        use crate::testkit::gen;

        /// Any valid restriction lifts greedy sub-solutions to feasible
        /// parent solutions with the exact profit offset.
        #[test]
        fn prop_lift_is_feasible_and_offset_exact() {
            prop_check!(
                |rng| {
                    (
                        rng.next_u64(),
                        gen::vec_of(rng, 0, 2, |r| gen::usize_in(r, 0, 25)),
                        gen::vec_of(rng, 0, 2, |r| gen::usize_in(r, 0, 25)),
                    )
                },
                |input| {
                    let (seed, fix_in, fix_out) = input;
                    let parent = uncorrelated_instance("prop", 25, 3, 0.5, *seed);
                    // Deduplicate and disjoin the fix sets.
                    let mut f_in: Vec<usize> = fix_in.iter().copied().filter(|&j| j < 25).collect();
                    f_in.sort_unstable();
                    f_in.dedup();
                    let mut f_out: Vec<usize> = fix_out
                        .iter()
                        .copied()
                        .filter(|j| *j < 25 && !f_in.contains(j))
                        .collect();
                    f_out.sort_unstable();
                    f_out.dedup();
                    if let Ok(r) = Restriction::new(&parent, &f_in, &f_out) {
                        let ratios = Ratios::new(r.instance());
                        let sub = greedy(r.instance(), &ratios);
                        let lifted = r.lift(&parent, &sub);
                        assert!(lifted.is_feasible(&parent));
                        assert!(lifted.check_consistent(&parent));
                        assert_eq!(lifted.value(), sub.value() + r.offset());
                        for &j in &f_in {
                            assert!(lifted.contains(j));
                        }
                        for &j in &f_out {
                            assert!(!lifted.contains(j));
                        }
                    }
                }
            );
        }

        /// Core projection round-trips: any feasible core (sub-space)
        /// solution lifts to a feasible full-space solution carrying the
        /// exact same objective (sub value + offset), and projecting the
        /// lifted bits back recovers the core solution bit-for-bit. This is
        /// the contract the CORE engine policy leans on when it ships
        /// master-chosen starts into the restricted space and lifts the
        /// slaves' results back out.
        #[test]
        fn prop_core_projection_round_trips() {
            use crate::greedy::dynamic_randomized_greedy;
            use crate::Xoshiro256;
            prop_check!(
                |rng| {
                    (
                        rng.next_u64(),
                        rng.next_u64(),
                        gen::vec_of(rng, 0, 3, |r| gen::usize_in(r, 0, 30)),
                        gen::vec_of(rng, 0, 3, |r| gen::usize_in(r, 0, 30)),
                    )
                },
                |input| {
                    let (seed, sub_seed, fix_in, fix_out) = input;
                    let parent = uncorrelated_instance("core", 30, 4, 0.5, *seed);
                    let mut f_in: Vec<usize> = fix_in.clone();
                    f_in.sort_unstable();
                    f_in.dedup();
                    let mut f_out: Vec<usize> = fix_out
                        .iter()
                        .copied()
                        .filter(|j| !f_in.contains(j))
                        .collect();
                    f_out.sort_unstable();
                    f_out.dedup();
                    if let Ok(r) = Restriction::new(&parent, &f_in, &f_out) {
                        // An arbitrary feasible core solution, not just the
                        // deterministic greedy one.
                        let mut rng = Xoshiro256::seed_from_u64(*sub_seed);
                        let sub = dynamic_randomized_greedy(r.instance(), &mut rng, 3);
                        assert!(sub.is_feasible(r.instance()));
                        let lifted = r.lift(&parent, &sub);
                        assert!(lifted.is_feasible(&parent), "lift broke feasibility");
                        assert_eq!(
                            lifted.value(),
                            sub.value() + r.offset(),
                            "lift changed the objective"
                        );
                        // project ∘ lift is the identity on the core.
                        assert_eq!(
                            r.project(lifted.bits()),
                            *sub.bits(),
                            "projection lost core bits"
                        );
                        // And the projection of any parent assignment only
                        // carries free-variable bits (forced bits implied).
                        let projected = r.project(lifted.bits());
                        assert_eq!(projected.len(), r.instance().n());
                    }
                }
            );
        }
    }
}
