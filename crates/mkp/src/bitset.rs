//! Fixed-length bit vector used to represent 0–1 solution vectors.
//!
//! A dedicated implementation (rather than `Vec<bool>`) keeps solutions
//! compact — Hamming distances between slave solutions are computed by the
//! master every search iteration, and `count_ones`/XOR over `u64` words is
//! the natural kernel for that.

/// A fixed-length vector of bits, packed into `u64` words.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

// Manual `Clone` so `clone_from` reuses the existing word buffer: the
// best-of-K scan clones solutions into per-slot scratch every move, and the
// derived impl's `*self = source.clone()` would allocate each time.
impl Clone for BitVec {
    fn clone(&self) -> Self {
        BitVec {
            len: self.len,
            words: self.words.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.len = source.len;
        self.words.clone_from(&source.words);
    }
}

const WORD_BITS: usize = 64;

impl BitVec {
    /// All-zero bit vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Build from an iterator of booleans.
    pub fn from_bools<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bools: Vec<bool> = iter.into_iter().collect();
        let mut bv = BitVec::zeros(bools.len());
        for (j, &b) in bools.iter().enumerate() {
            if b {
                bv.set(j, true);
            }
        }
        bv
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `j`. Panics if out of range (debug and release).
    #[inline]
    pub fn get(&self, j: usize) -> bool {
        assert!(j < self.len, "bit index {j} out of range {}", self.len);
        (self.words[j / WORD_BITS] >> (j % WORD_BITS)) & 1 == 1
    }

    /// Write bit `j`.
    #[inline]
    pub fn set(&mut self, j: usize, value: bool) {
        assert!(j < self.len, "bit index {j} out of range {}", self.len);
        let mask = 1u64 << (j % WORD_BITS);
        if value {
            self.words[j / WORD_BITS] |= mask;
        } else {
            self.words[j / WORD_BITS] &= !mask;
        }
    }

    /// Flip bit `j`, returning its new value.
    #[inline]
    pub fn toggle(&mut self, j: usize) -> bool {
        assert!(j < self.len, "bit index {j} out of range {}", self.len);
        self.words[j / WORD_BITS] ^= 1u64 << (j % WORD_BITS);
        self.get(j)
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Set every bit to zero, keeping the length.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Hamming distance to another vector of the same length.
    pub fn hamming(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "hamming over unequal lengths");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            bv: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterator over the indices of clear bits, ascending.
    pub fn iter_zeros(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&j| !self.get(j))
    }

    /// Collect set-bit indices into a `Vec`.
    pub fn ones(&self) -> Vec<usize> {
        self.iter_ones().collect()
    }

    /// The backing `u64` words, least-significant bit first. Bits at
    /// `len..` are zero. Exposed for word-parallel kernels (e.g. the tabu
    /// census of the Drop scan).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// 64-bit fingerprint of the contents (SplitMix64 over the words).
    /// Used as the solution identity key by the reactive tabu memory and the
    /// reverse elimination method; not cryptographic.
    pub fn fingerprint(&self) -> u64 {
        let mut state = 0x9E37_79B9_0000_0000 ^ self.len as u64;
        let mut acc = 0u64;
        for &w in &self.words {
            state ^= w;
            acc = acc.rotate_left(7) ^ crate::rng::splitmix64(&mut state);
        }
        acc
    }

    /// In-place bitwise OR with another vector of the same length.
    pub fn union_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place bitwise AND with another vector of the same length.
    pub fn intersect_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }
}

/// Iterator produced by [`BitVec::iter_ones`].
pub struct OnesIter<'a> {
    bv: &'a BitVec,
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bv.words.len() {
                return None;
            }
            self.current = self.bv.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop_check;
    use crate::testkit::gen;

    #[test]
    fn zeros_is_all_clear() {
        let bv = BitVec::zeros(130);
        assert_eq!(bv.len(), 130);
        assert_eq!(bv.count_ones(), 0);
        for j in 0..130 {
            assert!(!bv.get(j));
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut bv = BitVec::zeros(100);
        bv.set(0, true);
        bv.set(63, true);
        bv.set(64, true);
        bv.set(99, true);
        assert!(bv.get(0) && bv.get(63) && bv.get(64) && bv.get(99));
        assert_eq!(bv.count_ones(), 4);
        bv.set(63, false);
        assert!(!bv.get(63));
        assert_eq!(bv.count_ones(), 3);
    }

    #[test]
    fn toggle_flips() {
        let mut bv = BitVec::zeros(10);
        assert!(bv.toggle(3));
        assert!(!bv.toggle(3));
        assert_eq!(bv.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(8).get(8);
    }

    #[test]
    fn iter_ones_crosses_word_boundary() {
        let mut bv = BitVec::zeros(200);
        let set = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &j in &set {
            bv.set(j, true);
        }
        assert_eq!(bv.ones(), set.to_vec());
    }

    #[test]
    fn iter_zeros_complements_ones() {
        let mut bv = BitVec::zeros(70);
        bv.set(2, true);
        bv.set(69, true);
        let zeros: Vec<usize> = bv.iter_zeros().collect();
        assert_eq!(zeros.len(), 68);
        assert!(!zeros.contains(&2) && !zeros.contains(&69));
    }

    #[test]
    fn hamming_basic() {
        let a = BitVec::from_bools([true, false, true, false]);
        let b = BitVec::from_bools([true, true, false, false]);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = BitVec::from_bools([true, false, true, false]);
        let b = BitVec::from_bools([false, false, true, true]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.ones(), vec![0, 2, 3]);
        a.intersect_with(&b);
        assert_eq!(a.ones(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "unequal lengths")]
    fn hamming_length_mismatch_panics() {
        BitVec::zeros(4).hamming(&BitVec::zeros(5));
    }

    #[test]
    #[should_panic]
    fn union_length_mismatch_panics() {
        BitVec::zeros(4).union_with(&BitVec::zeros(5));
    }

    #[test]
    fn empty_bitvec_behaves() {
        let bv = BitVec::zeros(0);
        assert!(bv.is_empty());
        assert_eq!(bv.count_ones(), 0);
        assert_eq!(bv.ones(), Vec::<usize>::new());
        assert_eq!(bv.fingerprint(), BitVec::zeros(0).fingerprint());
    }

    #[test]
    fn clear_resets() {
        let mut bv = BitVec::from_bools((0..300).map(|j| j % 3 == 0));
        assert!(bv.count_ones() > 0);
        bv.clear();
        assert_eq!(bv.count_ones(), 0);
        assert_eq!(bv.len(), 300);
    }

    #[test]
    fn fingerprint_distinguishes_and_is_stable() {
        let a = BitVec::from_bools((0..200).map(|j| j % 3 == 0));
        let b = BitVec::from_bools((0..200).map(|j| j % 3 == 1));
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Single-bit flip changes the fingerprint.
        let mut c = a.clone();
        c.toggle(199);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn prop_from_bools_matches() {
        prop_check!(|rng| gen::vec_of(rng, 0, 300, gen::boolean), |bools| {
            let bv = BitVec::from_bools(bools.iter().copied());
            assert_eq!(bv.len(), bools.len());
            for (j, &b) in bools.iter().enumerate() {
                assert_eq!(bv.get(j), b);
            }
            assert_eq!(bv.count_ones(), bools.iter().filter(|&&b| b).count());
        });
    }

    #[test]
    fn prop_iter_ones_sorted_and_exact() {
        prop_check!(|rng| gen::vec_of(rng, 0, 300, gen::boolean), |bools| {
            let bv = BitVec::from_bools(bools.iter().copied());
            let ones = bv.ones();
            let expected: Vec<usize> = bools
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(j, _)| j)
                .collect();
            assert_eq!(ones, expected);
        });
    }

    #[test]
    fn prop_hamming_metric_axioms() {
        prop_check!(
            |rng| {
                let a = gen::vec_of(rng, 1, 200, gen::boolean);
                let n = a.len();
                let flips = gen::vec_of(rng, 0, 20, |r| gen::usize_in(r, 0, n));
                (a, flips)
            },
            |input| {
                let (a, flips) = input;
                if a.is_empty() {
                    return; // shrinking may empty `a`; nothing to flip then
                }
                let x = BitVec::from_bools(a.iter().copied());
                let mut y = x.clone();
                for &f in flips {
                    y.toggle(f.min(a.len() - 1));
                }
                // symmetry and identity
                assert_eq!(x.hamming(&y), y.hamming(&x));
                assert_eq!(x.hamming(&x), 0);
                // distance bounded by number of applied flips
                assert!(x.hamming(&y) <= flips.len());
            }
        );
    }
}
