//! Deterministic pseudo-random number generation.
//!
//! The search code must be bit-exactly reproducible across runs and across the
//! sequential/parallel modes (each slave owns an independently seeded stream),
//! so we implement a small, well-known generator instead of depending on an
//! external crate whose output could change between versions:
//! [xoshiro256**](https://prng.di.unimi.it/) seeded through SplitMix64, the
//! combination recommended by the xoshiro authors.

/// SplitMix64 stepper, used to expand a single `u64` seed into the 256-bit
/// xoshiro state (and usable on its own for cheap hashing-style mixing).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** pseudo-random generator.
///
/// Period 2^256 − 1; passes BigCrush. Not cryptographic — it drives a
/// metaheuristic, not a key schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Create a generator from a 64-bit seed via SplitMix64 expansion.
    ///
    /// Any seed is valid, including 0 (the expansion never yields the
    /// all-zero state, which would be a fixed point of the transition).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    /// Derive an independent child stream, e.g. one per parallel slave.
    ///
    /// Mixes the parent's next output with the child index through SplitMix64
    /// so `fork(0)`, `fork(1)`, … are decorrelated from each other and from
    /// the parent's continuation.
    pub fn fork(&mut self, index: u64) -> Self {
        let mut sm = self.next_u64() ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    /// The raw 256-bit state, for checkpointing a generator mid-stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a [`state`](Xoshiro256::state) snapshot,
    /// continuing its stream exactly where the snapshot was taken. The
    /// all-zero state is a fixed point of the transition and is rejected.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0; 4], "all-zero xoshiro state is degenerate");
        Xoshiro256 { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of randomness).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-then-reject method, which is unbiased.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` index in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Uniformly chosen reference into a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose from empty slice");
        &slice[self.index(slice.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C code.
        let mut s = 1234567u64;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        assert_ne!(a, b);
        // Deterministic: same seed, same outputs.
        let mut s2 = 1234567u64;
        assert_eq!(a, splitmix64(&mut s2));
        assert_eq!(b, splitmix64(&mut s2));
    }

    #[test]
    fn deterministic_stream() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = Xoshiro256::seed_from_u64(0);
        assert_ne!(r.next_u64(), 0u64.wrapping_add(r.next_u64()));
        // State must never be all zero.
        assert_ne!(r.s, [0; 4]);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Xoshiro256::seed_from_u64(9);
        for bound in [1u64, 2, 3, 7, 100, 1 << 33] {
            for _ in 0..1000 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Xoshiro256::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 per bucket; allow ±6% (well over 5 sigma).
            assert!((9_400..=10_600).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut r = Xoshiro256::seed_from_u64(13);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.range_inclusive(5, 8);
            assert!((5..=8).contains(&v));
            saw_lo |= v == 5;
            saw_hi |= v == 8;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::seed_from_u64(17);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn fork_streams_decorrelated() {
        let mut parent = Xoshiro256::seed_from_u64(21);
        let mut c0 = parent.fork(0);
        let mut c1 = parent.fork(1);
        let same = (0..64).filter(|_| c0.next_u64() == c1.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Xoshiro256::seed_from_u64(23);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn choose_returns_element() {
        let mut r = Xoshiro256::seed_from_u64(29);
        let v = [10, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(r.choose(&v)));
        }
    }
}
