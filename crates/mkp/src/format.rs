//! Plain-text instance format, compatible with the OR-Library `mknap1`
//! layout:
//!
//! ```text
//! n m optimum        (optimum = 0 when unknown)
//! c_1 … c_n          (profits)
//! a_11 … a_1n        (one row per constraint)
//! …
//! a_m1 … a_mn
//! b_1 … b_m          (capacities)
//! ```
//!
//! Tokens may be separated by any whitespace including newlines, exactly as
//! in the published files.

use crate::instance::{Instance, InstanceError};
use std::fmt::Write as _;

/// Errors raised while parsing an instance file.
#[allow(missing_docs)] // field names are self-describing
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Ran out of tokens while expecting `what`.
    UnexpectedEof { what: &'static str },
    /// A token failed to parse as an integer.
    BadToken { what: &'static str, token: String },
    /// Extra non-whitespace content after a complete instance.
    TrailingData { token: String },
    /// The parsed data failed instance validation.
    Invalid(InstanceError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnexpectedEof { what } => {
                write!(f, "unexpected end of input, expected {what}")
            }
            ParseError::BadToken { what, token } => write!(f, "cannot parse {what} from {token:?}"),
            ParseError::TrailingData { token } => {
                write!(f, "trailing data after instance: {token:?}")
            }
            ParseError::Invalid(e) => write!(f, "invalid instance data: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Pre-allocation cap for header-declared sizes (see `parse_instance`).
const CAP_HINT: usize = 1 << 16;

struct Tokens<'a> {
    iter: std::str::SplitWhitespace<'a>,
}

impl<'a> Tokens<'a> {
    fn next_i64(&mut self, what: &'static str) -> Result<i64, ParseError> {
        let token = self.iter.next().ok_or(ParseError::UnexpectedEof { what })?;
        token.parse().map_err(|_| ParseError::BadToken {
            what,
            token: token.to_string(),
        })
    }

    fn next_usize(&mut self, what: &'static str) -> Result<usize, ParseError> {
        let v = self.next_i64(what)?;
        usize::try_from(v).map_err(|_| ParseError::BadToken {
            what,
            token: v.to_string(),
        })
    }
}

/// Parse a single instance from text. `name` labels the result.
pub fn parse_instance(name: &str, text: &str) -> Result<Instance, ParseError> {
    let mut t = Tokens {
        iter: text.split_whitespace(),
    };
    let n = t.next_usize("n")?;
    let m = t.next_usize("m")?;
    let optimum = t.next_i64("optimum")?;
    // Capacity hints are capped: a corrupt header must not trigger a huge
    // allocation before the missing-token errors get a chance to fire.
    let mut profits = Vec::with_capacity(n.min(CAP_HINT));
    for _ in 0..n {
        profits.push(t.next_i64("profit")?);
    }
    let cells = n.saturating_mul(m);
    let mut weights = Vec::with_capacity(cells.min(CAP_HINT));
    for _ in 0..cells {
        weights.push(t.next_i64("weight")?);
    }
    let mut capacities = Vec::with_capacity(m.min(CAP_HINT));
    for _ in 0..m {
        capacities.push(t.next_i64("capacity")?);
    }
    if let Some(extra) = t.iter.next() {
        return Err(ParseError::TrailingData {
            token: extra.to_string(),
        });
    }
    let inst =
        Instance::new(name, n, m, profits, weights, capacities).map_err(ParseError::Invalid)?;
    Ok(if optimum > 0 {
        inst.with_best_known(optimum)
    } else {
        inst
    })
}

/// Parse a multi-instance file (the OR-Library convention: an instance
/// count followed by the concatenated instances). Instance `k` is named
/// `{name}#{k+1}`.
pub fn parse_instances(name: &str, text: &str) -> Result<Vec<Instance>, ParseError> {
    let mut t = Tokens {
        iter: text.split_whitespace(),
    };
    let count = t.next_usize("instance count")?;
    let mut out = Vec::with_capacity(count.min(CAP_HINT));
    for k in 0..count {
        let n = t.next_usize("n")?;
        let m = t.next_usize("m")?;
        let optimum = t.next_i64("optimum")?;
        let mut profits = Vec::with_capacity(n.min(CAP_HINT));
        for _ in 0..n {
            profits.push(t.next_i64("profit")?);
        }
        let cells = n.saturating_mul(m);
        let mut weights = Vec::with_capacity(cells.min(CAP_HINT));
        for _ in 0..cells {
            weights.push(t.next_i64("weight")?);
        }
        let mut capacities = Vec::with_capacity(m.min(CAP_HINT));
        for _ in 0..m {
            capacities.push(t.next_i64("capacity")?);
        }
        let inst = Instance::new(
            format!("{name}#{}", k + 1),
            n,
            m,
            profits,
            weights,
            capacities,
        )
        .map_err(ParseError::Invalid)?;
        out.push(if optimum > 0 {
            inst.with_best_known(optimum)
        } else {
            inst
        });
    }
    if let Some(extra) = t.iter.next() {
        return Err(ParseError::TrailingData {
            token: extra.to_string(),
        });
    }
    Ok(out)
}

/// Serialize several instances in the multi-instance layout accepted by
/// [`parse_instances`].
pub fn write_instances(instances: &[Instance]) -> String {
    let mut out = format!("{}\n", instances.len());
    for inst in instances {
        out.push_str(&write_instance(inst));
    }
    out
}

/// Serialize an instance in the `mknap1` layout. Round-trips with
/// [`parse_instance`].
pub fn write_instance(inst: &Instance) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} {} {}",
        inst.n(),
        inst.m(),
        inst.best_known().unwrap_or(0)
    );
    let join = |row: &[i64]| {
        row.iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    };
    let _ = writeln!(out, "{}", join(inst.profits()));
    for i in 0..inst.m() {
        let _ = writeln!(out, "{}", join(inst.constraint_row(i)));
    }
    let _ = writeln!(out, "{}", join(inst.capacities()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "3 2 16\n10 6 4\n5 4 3\n1 2 3\n8 4\n";

    #[test]
    fn parse_sample() {
        let inst = parse_instance("s", SAMPLE).unwrap();
        assert_eq!(inst.n(), 3);
        assert_eq!(inst.m(), 2);
        assert_eq!(inst.profits(), &[10, 6, 4]);
        assert_eq!(inst.constraint_row(1), &[1, 2, 3]);
        assert_eq!(inst.capacities(), &[8, 4]);
        assert_eq!(inst.best_known(), Some(16));
    }

    #[test]
    fn zero_optimum_means_unknown() {
        let text = "1 1 0\n5\n3\n10\n";
        let inst = parse_instance("u", text).unwrap();
        assert_eq!(inst.best_known(), None);
    }

    #[test]
    fn whitespace_is_flexible() {
        let text = "3   2\t16 10 6 4 5 4 3 1 2 3 8 4";
        let inst = parse_instance("w", text).unwrap();
        assert_eq!(inst.capacities(), &[8, 4]);
    }

    #[test]
    fn roundtrip() {
        let inst = parse_instance("rt", SAMPLE).unwrap();
        let text = write_instance(&inst);
        let back = parse_instance("rt", &text).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn eof_error() {
        let err = parse_instance("e", "3 2 0 10 6").unwrap_err();
        assert!(matches!(err, ParseError::UnexpectedEof { what: "profit" }));
    }

    #[test]
    fn bad_token_error() {
        let err = parse_instance("e", "3 x 0").unwrap_err();
        assert!(matches!(err, ParseError::BadToken { what: "m", .. }));
    }

    #[test]
    fn trailing_data_error() {
        let text = format!("{SAMPLE} 99");
        let err = parse_instance("e", &text).unwrap_err();
        assert!(matches!(err, ParseError::TrailingData { .. }));
    }

    #[test]
    fn negative_data_rejected() {
        let err = parse_instance("e", "1 1 0\n-5\n3\n10\n").unwrap_err();
        assert!(matches!(err, ParseError::Invalid(_)));
    }

    #[test]
    fn error_messages_name_the_field() {
        let err = parse_instance("e", "2 1 0 1 2 3").unwrap_err();
        assert!(err.to_string().contains("weight"));
    }

    #[test]
    fn multi_instance_roundtrip() {
        let a = parse_instance("a", SAMPLE).unwrap();
        let b = parse_instance("b", "1 1 0\n5\n3\n10\n").unwrap();
        let text = write_instances(&[a.clone(), b.clone()]);
        let parsed = parse_instances("suite", &text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name(), "suite#1");
        assert_eq!(parsed[0].profits(), a.profits());
        assert_eq!(parsed[0].best_known(), Some(16));
        assert_eq!(parsed[1].capacities(), b.capacities());
        assert_eq!(parsed[1].best_known(), None);
    }

    #[test]
    fn multi_instance_empty_file() {
        assert_eq!(parse_instances("e", "0").unwrap().len(), 0);
    }

    #[test]
    fn multi_instance_truncation_detected() {
        // Claims two instances, provides one.
        let text = format!("2\n{SAMPLE}");
        assert!(matches!(
            parse_instances("t", &text),
            Err(ParseError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn absurd_header_sizes_error_without_allocating() {
        // A multi-terabyte claim must fail on missing tokens, not abort on
        // allocation.
        let err = parse_instance("h", "99999999999 99999999 0 1 2 3").unwrap_err();
        assert!(matches!(err, ParseError::UnexpectedEof { .. }));
        let err = parse_instances("h", "98765432109 3 2 0").unwrap_err();
        assert!(matches!(err, ParseError::UnexpectedEof { .. }));
    }

    mod fuzz {
        use super::*;
        use crate::prop_check;
        use crate::testkit::gen;

        /// The parser must never panic, whatever bytes arrive.
        #[test]
        fn prop_parser_never_panics() {
            prop_check!(|rng| gen::string_any(rng, 400), |text| {
                let _ = parse_instance("fuzz", text);
                let _ = parse_instances("fuzz", text);
            });
        }

        /// Random token streams of digits are also handled gracefully.
        #[test]
        fn prop_numeric_garbage_handled() {
            prop_check!(
                |rng| gen::vec_of(rng, 0, 60, |r| gen::i64_in(r, -1000, 1000)),
                |nums| {
                    let text = nums
                        .iter()
                        .map(|n| n.to_string())
                        .collect::<Vec<_>>()
                        .join(" ");
                    let _ = parse_instance("fuzz", &text);
                    let _ = parse_instances("fuzz", &text);
                }
            );
        }
    }

    #[test]
    fn multi_instance_trailing_detected() {
        let text = format!("1\n{SAMPLE} 123");
        assert!(matches!(
            parse_instances("t", &text),
            Err(ParseError::TrailingData { .. })
        ));
    }
}
