//! testkit — in-tree property-testing harness.
//!
//! A small, zero-dependency stand-in for the registry `proptest` crate:
//! seeded generators on top of [`Xoshiro256`], a greedy "shrinking-lite"
//! pass that minimizes failing inputs, and the [`prop_check!`] macro that
//! ties them together. Every workspace crate's property tests run through
//! this module, so the whole test suite builds offline.
//!
//! # Model
//!
//! A property test is two closures:
//!
//! * a **generator** `|rng: &mut Xoshiro256| -> T` that draws one input
//!   (compose the helpers in [`gen`] freely);
//! * a **property** `|input: &T|` whose body uses plain `assert!` /
//!   `assert_eq!`; a panic is a counterexample.
//!
//! The runner draws `cases` inputs from deterministic per-case seeds. On
//! the first failure it asks the input's [`Shrink`] implementation for
//! structurally smaller candidates, greedily descending while the property
//! keeps failing, then panics with the minimal counterexample, the case
//! seed, and the original assertion message — everything needed to replay
//! the failure by seed.
//!
//! ```
//! use mkp::prop_check;
//! use mkp::testkit::gen;
//!
//! prop_check!(|rng| gen::vec_of(rng, 0, 30, |r| gen::i64_in(r, -50, 50)),
//!     |xs| {
//!         let mut sorted = xs.clone();
//!         sorted.sort_unstable();
//!         assert_eq!(sorted.len(), xs.len());
//!         assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
//!     });
//! ```
//!
//! # Environment knobs
//!
//! * `TESTKIT_CASES` — override the per-property case count (CI can turn
//!   the crank up; `--smoke` style runs can turn it down);
//! * `TESTKIT_SEED` — override the base seed to replay a reported failure.

use crate::rng::Xoshiro256;
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runner configuration. [`Config::default`] honors the `TESTKIT_CASES`
/// and `TESTKIT_SEED` environment variables.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Base seed; case `i` derives its own stream from `seed` and `i`.
    pub seed: u64,
    /// Upper bound on property executions spent shrinking a failure.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("TESTKIT_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        let seed = std::env::var("TESTKIT_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        Config {
            cases,
            seed,
            max_shrink_steps: 512,
        }
    }
}

/// Base seed used when `TESTKIT_SEED` is unset ("test" in hexspeak).
pub const DEFAULT_SEED: u64 = 0x7e57_0123_4567_89ab;

/// Structurally smaller variants of a failing input ("shrinking-lite").
///
/// Implementations return a *finite* list of candidates, each plausibly
/// simpler than `self`; the runner keeps any candidate on which the
/// property still fails and recurses. An empty list (the default) means
/// the value is atomic for shrinking purposes.
pub trait Shrink: Sized {
    /// Candidate simplifications, simplest first.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

// Integers shrink toward 0 with halving deltas (`v − v/2, v − v/4, …,
// v − 1`), so the greedy descent converges in O(log²|v|) probes instead
// of walking unit steps.
macro_rules! impl_shrink_uint {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0];
                let mut delta = v / 2;
                while delta != 0 {
                    out.push(v - delta);
                    delta /= 2;
                }
                out.dedup();
                out
            }
        }
    )*};
}
impl_shrink_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_shrink_int {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0];
                if v == <$t>::MIN {
                    return out; // |MIN| overflows below; 0 is enough
                }
                if v < 0 {
                    out.push(-v); // prefer positive counterexamples
                }
                let mut delta = v / 2;
                while delta != 0 {
                    out.push(v - delta);
                    delta /= 2;
                }
                out.dedup();
                out
            }
        }
    )*};
}
impl_shrink_int!(i8, i16, i32, i64, isize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for f64 {
    fn shrink(&self) -> Vec<Self> {
        let v = *self;
        if v == 0.0 || !v.is_finite() {
            return Vec::new();
        }
        let mut out = vec![0.0, v / 2.0];
        if v < 0.0 {
            out.push(-v);
        }
        out
    }
}

// Whole instances shrink as atoms: element-wise shrinking would break the
// n·m weight-matrix invariants. Replaying the reported seed is the tool
// for minimizing instance-shaped counterexamples.
impl Shrink for crate::Instance {}

impl Shrink for char {
    fn shrink(&self) -> Vec<Self> {
        if *self == 'a' {
            Vec::new()
        } else {
            vec!['a']
        }
    }
}

impl Shrink for String {
    fn shrink(&self) -> Vec<Self> {
        let n = self.chars().count();
        if n == 0 {
            return Vec::new();
        }
        let take = |k: usize| -> String { self.chars().take(k).collect() };
        let mut out = vec![String::new()];
        if n > 1 {
            out.push(take(n / 2));
        }
        out.push(take(n - 1));
        out
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let n = self.len();
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        // Structural: empty, halves, drop-one (bounded).
        out.push(Vec::new());
        if n > 1 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n / 2..].to_vec());
        }
        for k in 0..n.min(8) {
            let mut v = self.clone();
            v.remove(k);
            out.push(v);
        }
        // Element-wise: first shrink candidate of each element (bounded).
        for k in 0..n.min(8) {
            if let Some(smaller) = self[k].shrink().into_iter().next() {
                let mut v = self.clone();
                v[k] = smaller;
                out.push(v);
            }
        }
        out
    }
}

macro_rules! impl_shrink_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Shrink + Clone),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink() {
                        let mut t = self.clone();
                        t.$idx = candidate;
                        out.push(t);
                    }
                )+
                out
            }
        }
    )*};
}
impl_shrink_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Run `prop` under `catch_unwind`, turning a panic into the panic
/// message. `Ok(())` means the property held on this input.
fn run_one<T, P>(prop: &P, input: &T) -> Result<(), String>
where
    P: Fn(&T),
{
    match catch_unwind(AssertUnwindSafe(|| prop(input))) {
        Ok(()) => Ok(()),
        // `as_ref`, not `&payload`: a `&Box<dyn Any>` would itself coerce
        // to `&dyn Any` and every downcast of the *box* would miss.
        Err(payload) => Err(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Check a property over `cfg.cases` generated inputs; panic with a
/// shrunk counterexample on the first failure. Prefer the [`prop_check!`]
/// macro, which supplies the closure plumbing.
pub fn check<T, G, P>(cfg: &Config, mut generator: G, prop: P)
where
    T: Shrink + Clone + Debug,
    G: FnMut(&mut Xoshiro256) -> T,
    P: Fn(&T),
{
    for case in 0..cfg.cases {
        // Independent stream per case: replaying `case` needs only the
        // base seed, not the generator state of earlier cases.
        let case_seed = cfg.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1));
        let mut rng = Xoshiro256::seed_from_u64(case_seed);
        let input = generator(&mut rng);
        if let Err(first_msg) = run_one(&prop, &input) {
            // Shrinking happens with the default panic hook suppressed:
            // every probe that still fails would otherwise spray its
            // backtrace over the test output.
            let prev_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let (minimal, minimal_msg, steps) =
                shrink_failure(&prop, input, first_msg.clone(), cfg.max_shrink_steps);
            std::panic::set_hook(prev_hook);
            panic!(
                "property failed at case {case}/{cases} (base seed {seed:#x}, \
                 case seed {case_seed:#x}, {steps} shrink steps)\n\
                 minimal input: {minimal:?}\n\
                 failure: {minimal_msg}\n\
                 original failure: {first_msg}\n\
                 replay with TESTKIT_SEED={seed}",
                cases = cfg.cases,
                seed = cfg.seed,
            );
        }
    }
}

/// Greedy descent: keep the first shrink candidate that still fails.
fn shrink_failure<T, P>(prop: &P, mut current: T, mut msg: String, budget: u32) -> (T, String, u32)
where
    T: Shrink + Clone + Debug,
    P: Fn(&T),
{
    let mut spent = 0u32;
    'outer: loop {
        for candidate in current.shrink() {
            if spent >= budget {
                break 'outer;
            }
            spent += 1;
            if let Err(candidate_msg) = run_one(prop, &candidate) {
                current = candidate;
                msg = candidate_msg;
                continue 'outer; // restart from the smaller input
            }
        }
        break; // no candidate fails: local minimum
    }
    (current, msg, spent)
}

/// Seeded generator helpers. All draw from the caller's [`Xoshiro256`],
/// so a test's whole input derives from one reported seed.
pub mod gen {
    use crate::rng::Xoshiro256;

    /// Uniform `usize` in `[lo, hi)`. `hi` must exceed `lo`.
    pub fn usize_in(rng: &mut Xoshiro256, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + rng.index(hi - lo)
    }

    /// Uniform `i64` in the inclusive range `[lo, hi]`.
    pub fn i64_in(rng: &mut Xoshiro256, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        lo.wrapping_add(rng.range_inclusive(0, hi.wrapping_sub(lo) as u64) as i64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(rng: &mut Xoshiro256, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + rng.next_f64() * (hi - lo)
    }

    /// Fair coin.
    pub fn boolean(rng: &mut Xoshiro256) -> bool {
        rng.next_u64() & 1 == 1
    }

    /// Vector with a uniform length in `[min_len, max_len]`, elements
    /// drawn by `element`.
    pub fn vec_of<T>(
        rng: &mut Xoshiro256,
        min_len: usize,
        max_len: usize,
        mut element: impl FnMut(&mut Xoshiro256) -> T,
    ) -> Vec<T> {
        assert!(min_len <= max_len);
        let len = rng.range_inclusive(min_len as u64, max_len as u64) as usize;
        (0..len).map(|_| element(rng)).collect()
    }

    /// String of up to `max_chars` characters mixing ASCII (common case)
    /// with multi-byte code points (boundary case for codecs/parsers).
    pub fn string_any(rng: &mut Xoshiro256, max_chars: usize) -> String {
        let len = rng.range_inclusive(0, max_chars as u64) as usize;
        (0..len)
            .map(|_| match rng.index(8) {
                // Printable ASCII most of the time.
                0..=5 => char::from(rng.range_inclusive(0x20, 0x7e) as u8),
                // Latin-1 / BMP multi-byte.
                6 => char::from_u32(rng.range_inclusive(0xa0, 0x2fff) as u32).unwrap_or('¤'),
                // Occasional control char / newline / tab.
                _ => *rng.choose(&['\n', '\t', '\r', '\0', '\u{7f}']),
            })
            .collect()
    }
}

/// Check a property over generated inputs (see [`check`]).
///
/// ```ignore
/// prop_check!(|rng| gen::i64_in(rng, 0, 100), |x| assert!(*x <= 100));
/// prop_check!(cases = 16, |rng| generate(rng), |input| { ... });
/// ```
///
/// The generator's value must implement [`Shrink`] + `Clone` + `Debug`
/// (tuples of the provided implementations cover the usual shapes). The
/// property body takes the input **by reference** and signals failure by
/// panicking (`assert!`, `assert_eq!`, …).
#[macro_export]
macro_rules! prop_check {
    (cases = $cases:expr, |$rng:ident| $generator:expr, |$input:ident| $body:expr) => {{
        let cfg = $crate::testkit::Config {
            cases: $cases,
            ..$crate::testkit::Config::default()
        };
        $crate::testkit::check(
            &cfg,
            |$rng: &mut $crate::Xoshiro256| $generator,
            |$input| {
                $body;
            },
        );
    }};
    (|$rng:ident| $generator:expr, |$input:ident| $body:expr) => {{
        let cfg = $crate::testkit::Config::default();
        $crate::testkit::check(
            &cfg,
            |$rng: &mut $crate::Xoshiro256| $generator,
            |$input| {
                $body;
            },
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u32;
        let cfg = Config {
            cases: 17,
            seed: 1,
            max_shrink_steps: 10,
        };
        check(
            &cfg,
            |_rng| {
                ran += 1;
                0u64
            },
            |_| {},
        );
        assert_eq!(ran, 17);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = Config {
            cases: 8,
            seed: 42,
            max_shrink_steps: 0,
        };
        let mut a = Vec::new();
        let mut b = Vec::new();
        check(
            &cfg,
            |rng| {
                let v = rng.next_u64();
                a.push(v);
                v
            },
            |_| {},
        );
        check(
            &cfg,
            |rng| {
                let v = rng.next_u64();
                b.push(v);
                v
            },
            |_| {},
        );
        assert_eq!(a, b);
    }

    #[test]
    fn failure_reports_minimal_counterexample() {
        // Property "all vecs have fewer than 3 elements" fails on most
        // generated inputs; shrinking must land on exactly 3 elements.
        let cfg = Config {
            cases: 64,
            seed: 7,
            max_shrink_steps: 512,
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                &cfg,
                |rng| gen::vec_of(rng, 0, 40, |r| gen::i64_in(r, 0, 9)),
                |xs| assert!(xs.len() < 3, "vec too long: {}", xs.len()),
            );
        }));
        let msg = panic_message(result.unwrap_err().as_ref());
        assert!(msg.contains("minimal input: [0, 0, 0]"), "got: {msg}");
        assert!(msg.contains("replay with TESTKIT_SEED="), "got: {msg}");
    }

    #[test]
    fn shrink_descends_scalars_toward_zero() {
        let cfg = Config {
            cases: 32,
            seed: 3,
            max_shrink_steps: 512,
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                &cfg,
                |rng| gen::i64_in(rng, 0, 1_000_000),
                |x| assert!(*x < 500, "too big"),
            );
        }));
        let msg = panic_message(result.unwrap_err().as_ref());
        // Greedy halving from anywhere in [500, 1e6] must end at 500.
        assert!(msg.contains("minimal input: 500"), "got: {msg}");
    }

    #[test]
    fn tuple_shrink_covers_components() {
        let shrunk = (4u64, vec![1i64]).shrink();
        assert!(shrunk.contains(&(0u64, vec![1i64])));
        assert!(shrunk.contains(&(4u64, vec![])));
    }

    #[test]
    fn vec_shrink_candidates_are_smaller_or_equal() {
        let v = vec![5i64, -3, 7, 0];
        for c in v.shrink() {
            assert!(c.len() <= v.len());
        }
    }

    #[test]
    fn string_shrink_terminates() {
        let mut s = "héllo wörld".to_string();
        let mut steps = 0;
        while let Some(next) = s.shrink().into_iter().next() {
            s = next;
            steps += 1;
            assert!(steps < 100, "string shrink does not terminate");
        }
        assert_eq!(s, "");
    }

    #[test]
    fn gen_ranges_respected() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        for _ in 0..2_000 {
            assert!((5..9).contains(&gen::usize_in(&mut rng, 5, 9)));
            assert!((-3..=3).contains(&gen::i64_in(&mut rng, -3, 3)));
            let f = gen::f64_in(&mut rng, 0.25, 0.75);
            assert!((0.25..0.75).contains(&f));
            let v = gen::vec_of(&mut rng, 2, 5, |r| r.next_u64());
            assert!((2..=5).contains(&v.len()));
            let s = gen::string_any(&mut rng, 12);
            assert!(s.chars().count() <= 12);
        }
    }
}
